//! Offline stub for the `rand` crate (0.9-compatible API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and uniform range sampling
//! via [`Rng::random_range`]. The stream differs from upstream `rand`
//! (SplitMix64 instead of ChaCha12), which is fine for the synthetic
//! catalogue: callers only rely on determinism per seed, not on a
//! specific stream.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = rng.next_f64();
        let x = self.start + u * (self.end - self.start);
        // Guard the half-open contract against rounding at the top end.
        if x >= self.end {
            self.start.max(f64::from_bits(self.end.to_bits() - 1))
        } else {
            x
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). API-compatible stand-in
    /// for `rand::rngs::StdRng` in this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut rng = StdRng { state };
            // Scramble so that nearby seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.random_range(3..9);
            assert!((3..9).contains(&n));
            let m: usize = rng.random_range(4..=6);
            assert!((4..=6).contains(&m));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
