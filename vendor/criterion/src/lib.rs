//! Offline stub for the `criterion` crate (0.5 API subset).
//!
//! Provides the macros and types the workspace's micro-benchmarks use,
//! with a plain timing loop instead of criterion's statistical engine:
//! each benchmark is warmed up, then timed for a fixed budget, and the
//! mean time per iteration is printed as `group/id ... <time>/iter`.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _c: self }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }
}

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `"name/parameter"`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's timing budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Benchmark `f` with a fixed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated executions of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        std::hint::black_box(f());
        let one = warmup_start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~100 ms of measurement, capped to keep suites quick.
        let budget = Duration::from_millis(100);
        let iters = (budget.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<40} (no measurement)");
            return;
        }
        let per = self.elapsed.as_secs_f64() / self.iters as f64;
        let human = if per >= 1.0 {
            format!("{per:.3} s")
        } else if per >= 1e-3 {
            format!("{:.3} ms", per * 1e3)
        } else if per >= 1e-6 {
            format!("{:.3} µs", per * 1e6)
        } else {
            format!("{:.1} ns", per * 1e9)
        };
        println!("{id:<40} {human}/iter ({} iters)", self.iters);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    b.report(id);
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_groups_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        group.finish();
        assert!(ran);
    }
}
