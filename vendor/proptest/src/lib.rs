//! Offline stub for the `proptest` crate (1.x API subset).
//!
//! Supports what this workspace's property tests use:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! - strategies: numeric ranges (`-5.0f64..5.0`, `2usize..8`, inclusive
//!   variants), tuples of strategies, [`Just`],
//!   [`collection::vec`] with fixed or ranged lengths, and
//!   [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//! - assertions: [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`].
//!
//! There is **no shrinking** and no persistence: on failure the harness
//! reports the deterministic case number (cases are seeded from the test
//! path and case index, so reruns reproduce the same inputs). Existing
//! `.proptest-regressions` files are ignored.

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary state.
    pub fn new(state: u64) -> TestRng {
        let mut rng = TestRng { state: state ^ 0x6A09_E667_F3BC_C909 };
        let _ = rng.next_u64();
        rng
    }

    /// Seed deterministically from a test path and case index.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h ^ ((case as u64) << 32 | case as u64))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "TestRng::below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one random value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

/// Type-erased strategy (cheap to clone).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `elem` with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a test running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest stub: {} failed at case {}/{} (deterministic; rerun reproduces it)",
                        stringify!($name),
                        __case,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = TestRng::for_case("self_test", 0);
        for _ in 0..500 {
            let x = Strategy::new_value(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&x));
            let n = Strategy::new_value(&(3usize..7), &mut rng);
            assert!((3..7).contains(&n));
            let v = Strategy::new_value(&collection::vec(0.0f64..1.0, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let fixed = Strategy::new_value(&collection::vec(0u32..9, 4), &mut rng);
            assert_eq!(fixed.len(), 4);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::for_case("self_test_map", 1);
        let strat = (0usize..5, 0.0f64..1.0).prop_map(|(n, x)| vec![x; n + 1]);
        for _ in 0..100 {
            let v = Strategy::new_value(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(v in collection::vec(-1.0f64..1.0, 1..10), k in 1usize..4) {
            prop_assert!(v.len() < 10);
            prop_assert_ne!(k, 0);
            prop_assert_eq!(k.min(3), k);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = Strategy::new_value(&(0u64..1_000_000), &mut TestRng::for_case("t", 3));
        let b = Strategy::new_value(&(0u64..1_000_000), &mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
