//! Offline stub for the `bytes` crate (1.x API subset).
//!
//! Implements exactly the little-endian get/put surface the SAPLA codec
//! uses. [`Bytes`] is a cursor over an immutable buffer (reads consume
//! from the front, as in upstream `bytes`); [`BytesMut`] is a growable
//! write buffer that freezes into [`Bytes`].

use std::sync::Arc;

/// Read access to a consumable byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes. Panics past the end.
    fn advance(&mut self, cnt: usize);

    /// `true` while any bytes are unread.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy exactly `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable shared byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]), pos: 0 }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data), pos: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// Borrowed-slice reader (upstream `bytes` provides the same impl):
/// reading consumes from the front by shrinking the slice, so decoding
/// from `&data[..]` never copies the input up front.
impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::from(self.data), pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f64_le(-1.5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.len(), 1 + 4 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), -1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn deref_exposes_unread_bytes() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        let mut c = b.clone();
        c.advance(3);
        assert_eq!(&c[..], &[4]);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn reading_past_end_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn slice_buf_reads_without_copying() {
        let data = [7u8, 0xEF, 0xBE, 0xAD, 0xDE, 1, 2, 3];
        let mut r: &[u8] = &data;
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.chunk(), &[1, 2, 3]);
        r.advance(3);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn slice_buf_advance_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        r.advance(3);
    }
}
