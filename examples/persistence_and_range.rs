//! Persist a reduced database with the binary codec, reload it into a
//! fresh index via incremental inserts, and answer ε-range queries —
//! the storage + maintenance story of a deployed similarity-search
//! service.
//!
//! Run with: `cargo run --release -p sapla-cli --example persistence_and_range`

use sapla_baselines::{reduce_batch_parallel, SaplaReducer};
use sapla_core::codec::{decode_collection, encode_collection};
use sapla_data::{catalogue, Protocol};
use sapla_index::{linear_scan_range, scheme_for, DbchTree, Query};

fn main() {
    // 1. Ingest: reduce a mixed fleet (two signal regimes) in parallel.
    let protocol = Protocol { series_len: 512, series_per_dataset: 40, queries_per_dataset: 1 };
    let cat = catalogue();
    let ramps = cat.iter().find(|d| d.name == "RampTrend_00").unwrap().load(&protocol);
    let spikes = cat.iter().find(|d| d.name == "SpikeTrain_00").unwrap().load(&protocol);
    let mut ds = ramps.clone();
    ds.series.extend(spikes.series.iter().cloned());
    let reducer = SaplaReducer::new();
    let reps = reduce_batch_parallel(&reducer, &ds.series, 24, 4).expect("reduce");

    // 2. Persist: the codec stores segments, not samples.
    let blob = encode_collection(&reps).expect("encode");
    let raw_bytes = ds.series.len() * ds.series_len() * 8;
    println!(
        "persisted {} reduced series in {} bytes (raw samples: {} bytes, {:.0}x smaller)",
        reps.len(),
        blob.len(),
        raw_bytes,
        raw_bytes as f64 / blob.len() as f64
    );

    // 3. Reload into a fresh DBCH-tree by incremental insertion (the path
    //    a long-running service takes as new series arrive).
    let reloaded = decode_collection(&blob).expect("decode");
    let scheme = scheme_for("SAPLA").unwrap();
    let mut tree = DbchTree::build(scheme.as_ref(), vec![], 2, 5).expect("empty tree");
    for rep in reloaded {
        tree.insert(scheme.as_ref(), rep).expect("insert");
    }
    println!(
        "rebuilt index: {} entries, {} nodes, height {}",
        tree.len(),
        tree.shape().total_nodes(),
        tree.shape().height
    );

    // 4. ε-range query with exact refinement.
    let q = Query::new(&ds.queries[0], &reducer, 24).expect("query");
    for eps in [15.0f64, 25.0, 35.0] {
        let got = tree.range(&q, eps, scheme.as_ref(), &ds.series).expect("range");
        let exact = linear_scan_range(&ds.queries[0], &ds.series, eps).expect("scan");
        println!(
            "ε = {eps:5}: {} hits (exact: {}), measured {} of {} series",
            got.retrieved.len(),
            exact.retrieved.len(),
            got.measured,
            got.total
        );
    }
}
