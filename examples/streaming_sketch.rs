//! Online sketching of an unbounded sensor stream with
//! [`sapla_core::stream::StreamingSapla`] — constant memory, `O(1)`
//! amortised work per point, built from the paper's Eq. 2 increments and
//! stage-2 merge machinery.
//!
//! Run with: `cargo run --release -p sapla-cli --example streaming_sketch`

use sapla_core::stream::StreamingSapla;
use sapla_core::TimeSeries;

fn main() {
    // A day of 1 Hz telemetry: slow daily trend + duty cycles + noise.
    let n = 86_400usize;
    let signal = |t: usize| -> f64 {
        let x = t as f64;
        let daily = 10.0 * (x / 86_400.0 * std::f64::consts::TAU).sin();
        let duty = if (t / 7_200).is_multiple_of(2) { 4.0 } else { -4.0 };
        let noise = 0.2 * ((x * 12.9898).sin() * 43758.5453).fract();
        daily + duty + noise
    };

    let mut sketch = StreamingSapla::new(16);
    let start = std::time::Instant::now();
    for t in 0..n {
        sketch.push(signal(t));
    }
    let elapsed = start.elapsed();

    let repr = sketch.representation().expect("points were pushed");
    println!(
        "consumed {n} points in {elapsed:?} ({:.0} ns/point)",
        elapsed.as_nanos() as f64 / n as f64
    );
    println!(
        "sketch: {} segments = {} coefficients ({}x compression)",
        repr.num_segments(),
        3 * repr.num_segments(),
        n / (3 * repr.num_segments())
    );

    // Quality check against the raw stream.
    let raw = TimeSeries::new((0..n).map(signal).collect()).expect("finite");
    let dev = repr.max_deviation(&raw).expect("same length");
    let spread = raw.values().iter().cloned().fold(f64::MIN, f64::max)
        - raw.values().iter().cloned().fold(f64::MAX, f64::min);
    println!("max deviation: {dev:.3} ({:.1}% of the signal range)", 100.0 * dev / spread);

    println!("\nsegments (start -> end: slope):");
    let mut start_idx = 0usize;
    for (i, seg) in repr.segments().iter().enumerate().take(6) {
        println!("  {i:2}: [{start_idx:6} -> {:6}]  a = {:+.5}", seg.r, seg.a);
        start_idx = seg.r + 1;
    }
    println!("  ... ({} more)", repr.num_segments().saturating_sub(6));
}
