//! Anomaly detection with SAPLA — a downstream task from the paper's
//! introduction: the series whose nearest neighbour (under the reduced
//! representation) is farthest away is the discord candidate.
//!
//! We plant one anomalous series in a fleet of normal ones, score every
//! series by its 1-NN distance computed with `Dist_PAR` over SAPLA
//! representations, and check the plant is found — at a fraction of the
//! exact-distance cost.
//!
//! Run with: `cargo run --release -p sapla-cli --example anomaly_detection`

use sapla_baselines::{Reducer, SaplaReducer};
use sapla_core::TimeSeries;
use sapla_data::generators::{generate, Family};
use sapla_distance::dist_par;

fn main() {
    // 60 normal heartbeat-like series …
    let mut fleet: Vec<TimeSeries> =
        (0..60).map(|i| generate(Family::SpikeTrain, 2, 100 + i, 512)).collect();
    // … plus one with an injected arrhythmia: a violent low-frequency
    // oscillation replacing the quiet baseline for ~180 samples.
    let mut anomaly = generate(Family::SpikeTrain, 2, 999, 512).into_values();
    for (i, v) in anomaly.iter_mut().enumerate().skip(150).take(180) {
        *v += 8.0 * ((i as f64) * 0.05).sin();
    }
    let planted = fleet.len();
    fleet.push(TimeSeries::new(anomaly).unwrap().znormalized());

    // Reduce the whole fleet once (this is the point: scoring runs on
    // 24 coefficients instead of 512 raw points).
    let reducer = SaplaReducer::new();
    let reps: Vec<_> = fleet
        .iter()
        .map(|s| {
            reducer
                .reduce(s, 24)
                .expect("valid budget")
                .as_linear()
                .expect("SAPLA is linear")
                .clone()
        })
        .collect();

    // Discord score: distance to the nearest other series, in rep space.
    let mut scores: Vec<(f64, usize)> = (0..reps.len())
        .map(|i| {
            let nn = (0..reps.len())
                .filter(|&j| j != i)
                .map(|j| dist_par(&reps[i], &reps[j]).expect("same length"))
                .fold(f64::INFINITY, f64::min);
            (nn, i)
        })
        .collect();
    scores.sort_by(|a, b| b.0.total_cmp(&a.0));

    println!("top-3 discord candidates (1-NN Dist_PAR, higher = more anomalous):");
    for (score, id) in scores.iter().take(3) {
        let marker = if *id == planted { "  <-- planted anomaly" } else { "" };
        println!("  series {id:2}: {score:.3}{marker}");
    }
    assert_eq!(scores[0].1, planted, "the planted anomaly must rank first");
    println!("\nfound the planted anomaly at rank 1 using only SAPLA coefficients.");
}
