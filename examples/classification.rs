//! 1-NN time-series classification — the headline downstream task from
//! the paper's introduction — run entirely in reduced space.
//!
//! The eight generator families act as class labels. A training set is
//! reduced once; test series are classified by the label of their nearest
//! training neighbour under the representation distance. Reduced-space
//! 1-NN is compared with raw-space 1-NN (the accuracy ceiling).
//!
//! Run with: `cargo run --release -p sapla-cli --example classification`

use sapla_baselines::{Paa, Reducer, SaplaReducer};
use sapla_core::{Representation, TimeSeries};
use sapla_data::generators::{generate, Family};
use sapla_distance::rep_distance;

const TRAIN_PER_CLASS: usize = 12;
const TEST_PER_CLASS: usize = 6;
const N: usize = 256;
const M: usize = 24;

fn nearest_label_reduced(query: &Representation, train: &[(Representation, Family)]) -> Family {
    train
        .iter()
        .min_by(|(a, _), (b, _)| {
            let da = rep_distance(query, a).expect("same method/length");
            let db = rep_distance(query, b).expect("same method/length");
            da.total_cmp(&db)
        })
        .expect("training set is non-empty")
        .1
}

fn nearest_label_raw(query: &TimeSeries, train: &[(TimeSeries, Family)]) -> Family {
    train
        .iter()
        .min_by(|(a, _), (b, _)| {
            query.euclidean(a).unwrap().total_cmp(&query.euclidean(b).unwrap())
        })
        .expect("training set is non-empty")
        .1
}

fn main() {
    // Build labelled train/test splits.
    let mut train_raw = Vec::new();
    let mut test_raw = Vec::new();
    for family in Family::ALL {
        for i in 0..TRAIN_PER_CLASS {
            train_raw.push((generate(family, 1, 10 + i as u64, N), family));
        }
        for i in 0..TEST_PER_CLASS {
            test_raw.push((generate(family, 1, 900 + i as u64, N), family));
        }
    }
    println!(
        "{} classes x {} train / {} test series, n = {N}",
        Family::ALL.len(),
        TRAIN_PER_CLASS,
        TEST_PER_CLASS
    );

    // Raw-space ceiling.
    let raw_hits =
        test_raw.iter().filter(|(q, label)| nearest_label_raw(q, &train_raw) == *label).count();

    // Reduced-space classifiers.
    for (name, reducer) in
        [("SAPLA", Box::new(SaplaReducer::new()) as Box<dyn Reducer>), ("PAA", Box::new(Paa))]
    {
        let train: Vec<(Representation, Family)> = train_raw
            .iter()
            .map(|(s, f)| (reducer.reduce(s, M).expect("valid budget"), *f))
            .collect();
        let hits = test_raw
            .iter()
            .filter(|(q, label)| {
                let q_rep = reducer.reduce(q, M).expect("valid budget");
                nearest_label_reduced(&q_rep, &train) == *label
            })
            .count();
        println!(
            "  {name:6} 1-NN accuracy in reduced space ({}x compression): {:.1}%",
            N / M,
            100.0 * hits as f64 / test_raw.len() as f64
        );
    }
    println!(
        "  raw    1-NN accuracy (no reduction):                 {:.1}%",
        100.0 * raw_hits as f64 / test_raw.len() as f64
    );
}
