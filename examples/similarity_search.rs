//! Similarity search over a synthetic sensor fleet: build a DBCH-tree
//! over SAPLA representations and answer k-NN queries with pruning, then
//! verify against an exact linear scan.
//!
//! Run with: `cargo run --release -p sapla-cli --example similarity_search`

use sapla_baselines::{Reducer, SaplaReducer};
use sapla_data::{catalogue, Protocol};
use sapla_index::{linear_scan_knn, scheme_for, DbchTree, Query};

fn main() {
    // 100 z-normalised series from the EOG-like "Burst" family — the
    // regularly-changing workload the paper highlights.
    let spec = catalogue()
        .into_iter()
        .find(|d| d.name == "Burst_00")
        .expect("catalogue always contains Burst_00");
    let protocol = Protocol { series_len: 512, series_per_dataset: 100, queries_per_dataset: 1 };
    let ds = spec.load(&protocol);
    println!("dataset {}: {} series of length {}", ds.name, ds.series.len(), ds.series_len());

    // Reduce everything with SAPLA at M = 24 (N = 8 segments).
    let reducer = SaplaReducer::new();
    let m = 24;
    let reps: Vec<_> =
        ds.series.iter().map(|s| reducer.reduce(s, m).expect("valid budget")).collect();
    println!("reduced 512 points -> {} coefficients per series ({}x compression)", m, 512 / m);

    // Index with the paper's DBCH-tree (min fill 2, max fill 5).
    let scheme = scheme_for("SAPLA").unwrap();
    let tree = DbchTree::build(scheme.as_ref(), reps, 2, 5).expect("build");

    // Query.
    let k = 5;
    let query = Query::new(&ds.queries[0], &reducer, m).expect("reduce query");
    let stats = tree.knn(&query, k, scheme.as_ref(), &ds.series).expect("search");
    println!("\nDBCH-tree {k}-NN: {:?}", stats.retrieved);
    println!(
        "measured {} of {} series (pruning power ρ = {:.2})",
        stats.measured,
        stats.total,
        stats.pruning_power()
    );

    // Ground truth.
    let exact = linear_scan_knn(&ds.queries[0], &ds.series, k).expect("scan");
    println!("exact {k}-NN:     {:?}", exact.retrieved);
    println!("accuracy: {:.2}", stats.accuracy(&exact.retrieved));
}
