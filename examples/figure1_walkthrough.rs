//! The paper's Fig. 1 / Figs. 5–8 walkthrough: the 20-point example
//! series through every reduction method and through SAPLA's three stages,
//! with ASCII sparklines of the reconstructions.
//!
//! Run with: `cargo run --release -p sapla-cli --example figure1_walkthrough`

use sapla_baselines::{all_reducers, Reducer, SaplaReducer};
use sapla_core::sapla::SaplaConfig;
use sapla_core::TimeSeries;

const FIG1: [f64; 20] = [
    7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0, 9.0,
    10.0, 10.0,
];

fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (max - min).max(1e-12);
    values.iter().map(|&v| LEVELS[(((v - min) / span) * 7.0).round() as usize]).collect()
}

fn main() {
    let series = TimeSeries::new(FIG1.to_vec()).expect("static example");
    println!("original (n = 20):        {}", sparkline(series.values()));

    // --- Fig. 1: all methods at the same coefficient budget M = 12. -----
    println!("\nFig. 1 — same budget M = 12, different segment counts:");
    for reducer in all_reducers() {
        if reducer.name() == "SAX" {
            continue; // SAX assumes z-normalised input; the paper's Fig. 1 omits it too
        }
        let rep = reducer.reduce(&series, 12).expect("M = 12 divides all methods");
        let rec = reducer.reconstruct(&rep).expect("reconstructible");
        let dev = series.max_abs_diff(&rec).expect("same length");
        println!(
            "  {:6} N = {:2}  dev = {:7.4}  {}",
            reducer.name(),
            rep.num_segments(),
            dev,
            sparkline(rec.values()),
        );
    }

    // --- Figs. 5, 6, 8: SAPLA stage by stage. ----------------------------
    println!("\nSAPLA stage by stage (target N = 4):");
    let stages: [(&str, SaplaConfig); 3] = [
        (
            "initialization",
            SaplaConfig {
                refine_split_merge: false,
                max_refine_rounds: 0,
                endpoint_movement: false,
                ..SaplaConfig::default()
            },
        ),
        ("split & merge", SaplaConfig { endpoint_movement: false, ..SaplaConfig::default() }),
        ("endpoint movement", SaplaConfig::default()),
    ];
    for (name, config) in stages {
        let rep = SaplaReducer::with_config(config).reduce(&series, 12).expect("valid");
        let lin = rep.as_linear().expect("SAPLA is linear");
        let rec = lin.reconstruct();
        println!(
            "  {:18} endpoints {:?}  dev = {:.4}",
            name,
            lin.endpoints(),
            lin.max_deviation(&series).unwrap(),
        );
        println!("  {:18} {}", "", sparkline(rec.values()));
    }
    println!("\n(paper reference: SAPLA 9.27, APLA 9.09, APCA 18.42, PLA 19.40 — Fig. 1)");
}
