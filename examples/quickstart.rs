//! Quickstart: reduce a time series with SAPLA, inspect the segments,
//! reconstruct, and compare against the equal-length baselines.
//!
//! Run with: `cargo run --release -p sapla-cli --example quickstart`

use sapla_baselines::{Paa, Pla, Reducer, SaplaReducer};
use sapla_core::sapla::Sapla;
use sapla_core::TimeSeries;

fn main() {
    // A device-like signal: a short power-up ramp, a long steady plateau
    // and a fast shutdown — linear regimes of very unequal length, which
    // is where adaptive segmentation beats equal windows.
    let values: Vec<f64> = (0..240)
        .map(|t| {
            let x = t as f64;
            let wiggle = 0.05 * (x * 1.7).sin();
            if t < 30 {
                0.2 * x + wiggle
            } else if t < 200 {
                6.0 + wiggle
            } else {
                6.0 - 0.15 * (x - 200.0) + wiggle
            }
        })
        .collect();
    let series = TimeSeries::new(values).expect("finite input");

    // --- Direct API: ask for N adaptive segments. -----------------------
    let repr = Sapla::with_segments(5).reduce(&series).expect("series long enough");
    println!("SAPLA with N = 5 adaptive segments:");
    for (i, seg) in repr.segments().iter().enumerate() {
        println!(
            "  segment {i}: č_u = {:.4}·u + {:.4}, covering ..= index {}",
            seg.a, seg.b, seg.r
        );
    }
    println!("max deviation: {:.4}", repr.max_deviation(&series).unwrap());

    // --- Reconstruction. -------------------------------------------------
    let reconstructed = repr.reconstruct();
    println!(
        "reconstruction error at t = 100: {:.4}",
        (series.at(100) - reconstructed.at(100)).abs()
    );

    // --- The coefficient-budget interface (paper protocol, M = 15). ------
    println!("\nSame budget M = 15 across methods:");
    let methods: Vec<Box<dyn Reducer>> =
        vec![Box::new(SaplaReducer::new()), Box::new(Pla), Box::new(Paa)];
    // (SAPLA spends 3 coefficients per segment, PLA 2, PAA 1 — so the
    // segment counts differ: 5 vs 7 vs 15; M must divide accordingly.)
    for (reducer, m) in methods.iter().zip([15usize, 14, 15]) {
        let rep = reducer.reduce(&series, m).expect("valid budget");
        let dev = reducer.max_deviation(&series, &rep).expect("same length");
        println!(
            "  {:6}  M = {m:2}  N = {:2}  max deviation = {dev:.4}",
            reducer.name(),
            rep.num_segments(),
        );
    }
}
