//! R-tree vs DBCH-tree head to head: the overlap problem in action.
//!
//! Homogeneous series (same data source) produce adaptive-length MBRs
//! that overlap heavily, degrading the R-tree; the DBCH-tree bounds nodes
//! by `Dist_PAR` instead. This example measures both on one dataset.
//!
//! Run with: `cargo run --release -p sapla-cli --example index_comparison`

use sapla_baselines::{Reducer, SaplaReducer};
use sapla_data::{catalogue, Protocol};
use sapla_index::{scheme_for, DbchTree, Query, RTree};

fn main() {
    let spec = catalogue()
        .into_iter()
        .find(|d| d.name == "SmoothPeriodic_00")
        .expect("catalogue always contains SmoothPeriodic_00");
    let protocol = Protocol { series_len: 256, series_per_dataset: 100, queries_per_dataset: 5 };
    let ds = spec.load(&protocol);

    let reducer = SaplaReducer::new();
    let m = 12;
    let scheme = scheme_for("SAPLA").unwrap();
    let reps: Vec<_> =
        ds.series.iter().map(|s| reducer.reduce(s, m).expect("valid budget")).collect();

    let rtree = RTree::build(scheme.as_ref(), reps.clone(), 2, 5).expect("rtree");
    let dbch = DbchTree::build(scheme.as_ref(), reps, 2, 5).expect("dbch");

    println!("tree shapes over {} homogeneous series:", ds.series.len());
    for (name, shape) in [("R-tree", rtree.shape()), ("DBCH-tree", dbch.shape())] {
        println!(
            "  {name:9} internal = {:3}  leaves = {:3}  height = {}  avg leaf fill = {:.2}",
            shape.internal_nodes,
            shape.leaf_nodes,
            shape.height,
            shape.avg_leaf_fill()
        );
    }

    let k = 8;
    let (mut rho_r, mut rho_d, mut acc_r, mut acc_d) = (0.0, 0.0, 0.0, 0.0);
    for qraw in &ds.queries {
        let q = Query::new(qraw, &reducer, m).expect("reduce query");
        let truth = ds.exact_knn(qraw, k);
        let r = rtree.knn(&q, k, scheme.as_ref(), &ds.series).expect("knn");
        let d = dbch.knn(&q, k, scheme.as_ref(), &ds.series).expect("knn");
        rho_r += r.pruning_power();
        rho_d += d.pruning_power();
        acc_r += r.accuracy(&truth);
        acc_d += d.accuracy(&truth);
    }
    let nq = ds.queries.len() as f64;
    println!("\n{k}-NN over {} queries:", ds.queries.len());
    println!("  R-tree:    pruning power ρ = {:.3}, accuracy = {:.3}", rho_r / nq, acc_r / nq);
    println!("  DBCH-tree: pruning power ρ = {:.3}, accuracy = {:.3}", rho_d / nq, acc_d / nq);
    println!("\n(the paper's Fig. 13: DBCH-tree lifts adaptive methods' pruning & accuracy)");
}
