//! Interleaving exploration of the `sapla-serve` admission queue.
//!
//! `crates/serve/src/server.rs` coordinates three parties around one
//! `Mutex<VecDeque<Job>> + Condvar + AtomicBool` triple: connection
//! threads enqueue jobs (`handle_knn`), the batcher drains them
//! (`batch_loop`), and shutdown raises the flag and wakes the batcher
//! (`raise_shutdown_flag`). [`QueueModel`] re-expresses that protocol
//! over the model-aware primitives in `sapla_parallel::model` — a
//! [`Mutex`]/[`Condvar`] pair whose lock, wait, and notify operations
//! are scheduling steps, plus the already-instrumented [`AtomicCell`]
//! for the shutdown flag — so the CHESS-style explorer can enumerate
//! every interleaving up to a preemption bound and check:
//!
//! * **Accepted ⇒ answered exactly once**: a job admitted under the
//!   queue lock is answered by the batcher even when shutdown races it.
//! * **Rejected ⇒ never answered**: a job refused at admission is not
//!   silently processed.
//! * **Termination**: every schedule finishes — no deadlock, no lost
//!   wakeup stranding the batcher, within the step budget.
//!
//! The pre-fix `initiate_shutdown` stored the flag *outside* the queue
//! lock; [`QueueModel::stop_buggy`] reproduces it and the explorer
//! finds the lost-wakeup deadlock (the historical `Server::stop` hang).
//! [`QueueModel::stop_fixed`] mirrors the shipped code and passes the
//! same exploration exhaustively, with and without injected spurious
//! wakeups.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use sapla_parallel::model::{explore, run_schedule_spurious, Condvar, Mutex, Policy, RunTrace};
use sapla_parallel::AtomicCell;

/// Generous step budget: the largest harness below takes ~40 steps.
const MAX_STEPS: usize = 2000;

/// The serve admission protocol, reduced to its synchronisation
/// skeleton: jobs are plain ids, "answering" is bumping a counter.
struct QueueModel {
    queue: Mutex<VecDeque<usize>>,
    available: Condvar,
    shutdown: AtomicCell,
}

impl QueueModel {
    fn new() -> Self {
        QueueModel {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicCell::new(0),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) == 1
    }

    /// Mirrors `handle_knn`'s admission block: the flag is checked
    /// under the queue lock, so an admitted job is guaranteed a
    /// batcher pass (the batcher only exits with the lock held, flag
    /// up, queue empty).
    fn enqueue(&self, job: usize) -> bool {
        {
            let mut q = self.queue.lock();
            if self.shutting_down() {
                return false;
            }
            q.push_back(job);
        }
        self.available.notify_one();
        true
    }

    /// Mirrors `batch_loop`: drain everything in one gulp or exit once
    /// the flag is up and the queue is empty, waiting in a
    /// predicate-checked loop otherwise.
    fn batch_loop(&self, answered: &[AtomicUsize]) {
        loop {
            let jobs: Vec<usize> = {
                let mut q = self.queue.lock();
                loop {
                    if !q.is_empty() {
                        break q.drain(..).collect();
                    }
                    if self.shutting_down() {
                        return;
                    }
                    q = self.available.wait(q);
                }
            };
            for j in jobs {
                answered[j].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The pre-fix `initiate_shutdown`: flag stored *outside* the
    /// queue lock. The store + notify can land between the batcher's
    /// flag check and its wait — the notify finds no waiter, the
    /// batcher sleeps forever (lost wakeup ⇒ `Server::stop` hang).
    fn stop_buggy(&self) {
        self.shutdown.store(1, Ordering::Release);
        self.available.notify_all();
    }

    /// Mirrors the shipped `raise_shutdown_flag`: the store happens
    /// under the queue lock, so it cannot land inside the batcher's
    /// check-then-wait window (the batcher holds the lock throughout).
    fn stop_fixed(&self) {
        {
            let _q = self.queue.lock();
            self.shutdown.store(1, Ordering::Release);
        }
        self.available.notify_all();
    }
}

/// One controlled execution of batcher vs. enqueuer vs. stopper,
/// asserting the queue invariants. `stop` selects the shutdown variant
/// under test; `spurious` is the injected spurious-wakeup budget.
fn run_queue(replay: &[usize], policy: Policy, spurious: usize, stop: fn(&QueueModel)) -> RunTrace {
    let model = QueueModel::new();
    let answered = [AtomicUsize::new(0)];
    let accepted = AtomicBool::new(false);
    let trace = run_schedule_spurious(3, replay, policy, MAX_STEPS, spurious, |tid| match tid {
        0 => model.batch_loop(&answered),
        1 => {
            if model.enqueue(0) {
                accepted.store(true, Ordering::Relaxed);
            }
        }
        _ => stop(&model),
    });
    assert!(!trace.exceeded_budget, "schedule {} hit the step budget", trace.schedule_id());
    let n = answered[0].load(Ordering::Relaxed);
    if accepted.load(Ordering::Relaxed) {
        assert_eq!(
            n,
            1,
            "admitted job answered {n} times (lost if 0) under schedule {}",
            trace.schedule_id()
        );
    } else {
        assert_eq!(n, 0, "rejected job was answered under schedule {}", trace.schedule_id());
    }
    trace
}

/// The shipped shutdown protocol survives an exhaustive enumeration:
/// every interleaving of enqueue vs. batcher-drain vs. shutdown-drain
/// up to 4 preemptions terminates with the queue invariants intact.
/// The schedule count is pinned so a protocol or model change that
/// silently shrinks the explored space fails loudly.
#[test]
fn fixed_stop_is_exhaustively_clean() {
    let out = explore(4, 100_000, |replay| {
        run_queue(replay, Policy::Continue, 0, QueueModel::stop_fixed)
    });
    assert!(!out.capped, "enumeration must run to completion, not hit the cap");
    assert_eq!(out.schedules, 1737, "explored schedule count changed — retune the pin");
}

/// Same exploration with one injected spurious wakeup allowed per run:
/// the predicate loops re-check their conditions, so a wakeup without
/// a notify must change nothing.
#[test]
fn fixed_stop_tolerates_spurious_wakeups() {
    let out = explore(4, 100_000, |replay| {
        run_queue(replay, Policy::Continue, 1, QueueModel::stop_fixed)
    });
    assert!(!out.capped, "enumeration must run to completion, not hit the cap");
    assert_eq!(out.schedules, 12_021, "explored schedule count changed — retune the pin");
}

/// The checker must *find* the historical `Server::stop` hang, not
/// just bless the fix: with the flag stored outside the queue lock,
/// some schedule loses the wakeup and the batcher blocks forever —
/// reported as a model deadlock.
#[test]
fn buggy_stop_deadlocks_on_a_lost_wakeup() {
    let caught = std::panic::catch_unwind(|| {
        explore(4, 100_000, |replay| run_queue(replay, Policy::Continue, 0, QueueModel::stop_buggy))
    });
    let payload = caught.expect_err("the lost wakeup must deadlock some schedule");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "expected a model deadlock report, got: {msg}");
}

/// Spurious-wakeup injection must be able to break code that treats a
/// wakeup as a notification: a batcher that waits with `if` instead of
/// a predicate loop pops an empty queue when woken spuriously. With no
/// budget the naive code passes (every wakeup really is a notify);
/// with a budget of 1 the explorer finds the failure.
#[test]
fn spurious_injection_catches_an_if_instead_of_while_wait() {
    let naive = |replay: &[usize], spurious: usize| {
        let model = QueueModel::new();
        let answered = [AtomicUsize::new(0)];
        let trace =
            run_schedule_spurious(2, replay, Policy::Continue, MAX_STEPS, spurious, |tid| {
                match tid {
                    0 => {
                        let mut q = model.queue.lock();
                        if q.is_empty() {
                            // BUG (planted): `if`, not a predicate loop.
                            q = model.available.wait(q);
                        }
                        match q.pop_front() {
                            Some(j) => {
                                answered[j].fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                panic!("spurious wakeup handed the naive batcher an empty queue")
                            }
                        }
                    }
                    _ => {
                        model.enqueue(0);
                    }
                }
            });
        assert!(!trace.exceeded_budget, "schedule {} hit the step budget", trace.schedule_id());
        trace
    };

    let clean = explore(4, 100_000, |replay| naive(replay, 0));
    assert!(!clean.capped);

    let caught = std::panic::catch_unwind(|| explore(4, 100_000, |replay| naive(replay, 1)));
    let payload = caught.expect_err("a spurious wakeup must break the if-wait");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(msg.contains("spurious wakeup"), "expected the planted failure, got: {msg}");
}

/// Seeded randomized long-run mode over the fixed protocol with
/// spurious wakeups allowed. Tunable without recompiling:
/// `SAPLA_AUDIT_RANDOM_RUNS` (iterations) and `SAPLA_AUDIT_SEED`
/// (base seed, decimal) — a nightly job can run hundreds of thousands.
#[test]
fn randomized_long_run_mode() {
    let runs: u64 =
        std::env::var("SAPLA_AUDIT_RANDOM_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    let seed: u64 =
        std::env::var("SAPLA_AUDIT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0x5AB1A);
    for i in 0..runs {
        run_queue(&[], Policy::Random(seed.wrapping_add(i)), 1, QueueModel::stop_fixed);
    }
}
