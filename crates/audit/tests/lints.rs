//! Fixture tests for the four lints: for each one a positive case (the
//! lint fires), a negative case (correct code stays clean), and an
//! allowlist case (a matching `audit.toml` entry absorbs the finding).
//! The final test runs the real audit over this workspace and requires
//! it to pass clean — the CI gate in test form.

use sapla_audit::allowlist::{self, AllowEntry};
use sapla_audit::lints::{lint_file, Finding};
use sapla_audit::run_audit;

const LIB: &str = "crates/core/src/fixture.rs";

fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.lint).collect()
}

// ---------------------------------------------------------------- unsafe

#[test]
fn unsafe_block_without_safety_comment_fires() {
    let src = r#"
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["unsafe-safety"]);
    assert_eq!(f[0].line, 3);
    assert!(f[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_impl_without_safety_comment_fires() {
    let src = "struct S;\nunsafe impl Sync for S {}\n";
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["unsafe-safety"]);
}

#[test]
fn safety_comment_silences_unsafe() {
    let src = r#"
pub fn read(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

struct S;
// SAFETY: S holds no data.
unsafe impl Sync for S {}

// SAFETY: attributes between the comment and the impl are fine.
#[allow(dead_code)]
unsafe impl Send for S {}
"#;
    assert!(lint_file(LIB, src).is_empty());
}

#[test]
fn unsafe_fn_declarations_need_no_local_comment() {
    // The contract of an `unsafe fn` lives in its docs, not a comment.
    let src = "pub unsafe fn f() {}\npub unsafe trait T {}\n";
    assert!(lint_file(LIB, src).is_empty());
}

#[test]
fn unsafe_applies_even_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n";
    assert_eq!(lints_of(&lint_file(LIB, src)), ["unsafe-safety"]);
}

// -------------------------------------------------------------- no-panic

#[test]
fn unwrap_expect_panic_todo_fire_in_library_code() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a > b {
        panic!("impossible");
    }
    todo!()
}
"#;
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["no-panic"; 4]);
    assert_eq!(f.iter().map(|f| f.line).collect::<Vec<_>>(), [3, 4, 6, 8]);
}

#[test]
fn test_code_and_harness_crates_are_exempt_from_no_panic() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}

#[test]
fn top_level_test() {
    None::<u32>.expect("fine");
}
"#;
    assert!(lint_file(LIB, src).is_empty());
    // The cli / bench / tests crates may panic freely.
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lint_file("crates/cli/src/main.rs", src).is_empty());
    assert!(lint_file("crates/bench/src/perf.rs", src).is_empty());
    assert!(lint_file("crates/tests/src/lib.rs", src).is_empty());
    // ...but library code next to a test module is still checked.
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {}\n";
    assert_eq!(lints_of(&lint_file(LIB, src)), ["no-panic"]);
}

#[test]
fn lookalikes_do_not_fire() {
    let src = r##"
pub fn f(x: Option<u32>) -> u32 {
    // A comment mentioning .unwrap() and panic! is fine.
    let s = "so is .unwrap() inside a string, or panic!";
    let r = r#"and .expect("inside a raw string")"#;
    let _ = (s, r);
    x.unwrap_or_else(|| 7)
}
#[cfg(not(test))]
pub fn g(x: Option<u32>) -> u32 {
    x.unwrap()
}
"##;
    // `unwrap_or_else` is not `unwrap`; `cfg(not(test))` is NOT a test
    // gate, so `g` is still flagged.
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["no-panic"]);
    assert_eq!(f[0].line, 11);
}

// -------------------------------------------------------------- float-eq

#[test]
fn float_equality_fires_on_literals_and_constants() {
    let src = r#"
pub fn f(x: f64) -> bool {
    let a = x == 1.0;
    let b = x != 2.5e-3;
    let c = x == f64::INFINITY;
    a && b && c
}
"#;
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["float-eq"; 3]);
    assert_eq!(f.iter().map(|f| f.line).collect::<Vec<_>>(), [3, 4, 5]);
}

#[test]
fn integer_equality_and_exempt_files_stay_clean() {
    let clean = r#"
pub fn f(x: usize, y: f64, z: f64) -> bool {
    let a = x == 1;
    let b = (y - 2.5).abs() < 1e-9;
    let c = y.to_bits() == z.to_bits() && y < 4.0;
    a && b && c
}
"#;
    // Bit comparison (`to_bits`), tolerance comparison and `<` ordering
    // are the sanctioned forms and stay clean.
    assert!(lint_file(LIB, clean).is_empty());
    // ordf64.rs implements the total order and may compare floats.
    let raw = "pub fn eq(a: f64, b: f64) -> bool { a == 1.0 }\n";
    assert!(lint_file("crates/core/src/ordf64.rs", raw).is_empty());
    // Test code is exempt.
    let test = "#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 1.0 }\n}\n";
    assert!(lint_file(LIB, test).is_empty());
}

// -------------------------------------------------------------- no-alloc

#[test]
fn allocations_fire_only_inside_annotated_functions() {
    let src = r#"
// audit: no_alloc
pub fn hot(buf: &mut Vec<u64>) -> String {
    let v = Vec::new();
    buf.push(1);
    let s = format!("{v:?}");
    s.clone()
}

pub fn cold() -> Vec<u64> {
    let mut v = Vec::new();
    v.push(1);
    v.clone()
}
"#;
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["no-alloc"; 3]);
    assert_eq!(f.iter().map(|f| f.line).collect::<Vec<_>>(), [4, 6, 7]);
    assert!(f[0].message.contains("Vec::new") && f[0].message.contains("`hot`"));
    assert!(f[1].message.contains("format!"));
    assert!(f[2].message.contains(".clone()"));
}

#[test]
fn clean_annotated_function_passes() {
    let src = r#"
// audit: no_alloc — steady-state claim loop, no heap traffic.
#[inline]
pub fn claim(slots: &mut [u64], next: &mut usize) -> Option<u64> {
    let i = *next;
    if i >= slots.len() {
        return None;
    }
    *next = i + 1;
    Some(slots[i])
}
"#;
    assert!(lint_file(LIB, src).is_empty());
}

// ------------------------------------------------------------- allowlist

#[test]
fn allowlist_entry_absorbs_matching_findings_only() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    x.expect("invariant: caller checked")
}
pub fn g(x: Option<u32>) -> u32 {
    x.expect("a different message")
}
"#;
    let findings = lint_file(LIB, src);
    assert_eq!(findings.len(), 2);
    let entry = AllowEntry {
        lint: "no-panic".to_string(),
        path: LIB.to_string(),
        contains: "invariant: caller checked".to_string(),
        reason: "fixture".to_string(),
        line: 1,
    };
    let absorbed: Vec<_> = findings.iter().filter(|f| entry.matches(f)).collect();
    assert_eq!(absorbed.len(), 1);
    assert_eq!(absorbed[0].line, 3);
    // Wrong path: nothing matches.
    let elsewhere = AllowEntry { path: "crates/index/src/knn.rs".to_string(), ..entry };
    assert!(!findings.iter().any(|f| elsewhere.matches(f)));
}

#[test]
fn allowlist_rejects_malformed_files() {
    assert!(allowlist::parse("[[allow]]\nlint = \"no-panic\"\n").is_err());
    assert!(allowlist::parse("lint = \"orphan\"\n").is_err());
    assert!(allowlist::parse("").unwrap().is_empty());
}

// --------------------------------------------------------- the real gate

/// The workspace itself must audit clean with its checked-in allowlist —
/// the same check CI runs via `cargo run -p sapla-audit`.
#[test]
fn workspace_passes_audit_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf();
    let report = run_audit(&root).expect("audit runs");
    assert!(report.files > 50, "walker found only {} files", report.files);
    assert!(
        report.is_clean(),
        "workspace has unallowlisted findings or stale allowlist entries:\n{}",
        report.render()
    );
    // The allowlist stays small and justified (acceptance: ≤ 15 entries).
    assert!(report.allowlisted.len() <= 15 * 3, "allowlist absorbing too much");
}
