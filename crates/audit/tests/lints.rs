//! Fixture tests for the seven lints: for each one a positive case
//! (the lint fires on a planted bug), a negative case (correct code
//! stays clean), and an allowlist case (a matching `audit.toml` entry
//! absorbs the finding). The final test runs the real audit over this
//! workspace and requires it to pass clean — the CI gate in test form.

use sapla_audit::allowlist::{self, AllowEntry};
use sapla_audit::lints::{lint_file, Finding};
use sapla_audit::{lock_order, run_audit};

const LIB: &str = "crates/core/src/fixture.rs";

fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.lint).collect()
}

// ---------------------------------------------------------------- unsafe

#[test]
fn unsafe_block_without_safety_comment_fires() {
    let src = r#"
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["unsafe-safety"]);
    assert_eq!(f[0].line, 3);
    assert!(f[0].message.contains("SAFETY"));
}

#[test]
fn unsafe_impl_without_safety_comment_fires() {
    let src = "struct S;\nunsafe impl Sync for S {}\n";
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["unsafe-safety"]);
}

#[test]
fn safety_comment_silences_unsafe() {
    let src = r#"
pub fn read(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

struct S;
// SAFETY: S holds no data.
unsafe impl Sync for S {}

// SAFETY: attributes between the comment and the impl are fine.
#[allow(dead_code)]
unsafe impl Send for S {}
"#;
    assert!(lint_file(LIB, src).is_empty());
}

#[test]
fn unsafe_fn_declarations_need_no_local_comment() {
    // The contract of an `unsafe fn` lives in its docs, not a comment.
    let src = "pub unsafe fn f() {}\npub unsafe trait T {}\n";
    assert!(lint_file(LIB, src).is_empty());
}

#[test]
fn unsafe_applies_even_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n";
    assert_eq!(lints_of(&lint_file(LIB, src)), ["unsafe-safety"]);
}

// -------------------------------------------------------------- no-panic

#[test]
fn unwrap_expect_panic_todo_fire_in_library_code() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a > b {
        panic!("impossible");
    }
    todo!()
}
"#;
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["no-panic"; 4]);
    assert_eq!(f.iter().map(|f| f.line).collect::<Vec<_>>(), [3, 4, 6, 8]);
}

#[test]
fn test_code_and_harness_crates_are_exempt_from_no_panic() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}

#[test]
fn top_level_test() {
    None::<u32>.expect("fine");
}
"#;
    assert!(lint_file(LIB, src).is_empty());
    // The cli / bench / tests crates may panic freely.
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lint_file("crates/cli/src/main.rs", src).is_empty());
    assert!(lint_file("crates/bench/src/perf.rs", src).is_empty());
    assert!(lint_file("crates/tests/src/lib.rs", src).is_empty());
    // ...but library code next to a test module is still checked.
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {}\n";
    assert_eq!(lints_of(&lint_file(LIB, src)), ["no-panic"]);
}

#[test]
fn lookalikes_do_not_fire() {
    let src = r##"
pub fn f(x: Option<u32>) -> u32 {
    // A comment mentioning .unwrap() and panic! is fine.
    let s = "so is .unwrap() inside a string, or panic!";
    let r = r#"and .expect("inside a raw string")"#;
    let _ = (s, r);
    x.unwrap_or_else(|| 7)
}
#[cfg(not(test))]
pub fn g(x: Option<u32>) -> u32 {
    x.unwrap()
}
"##;
    // `unwrap_or_else` is not `unwrap`; `cfg(not(test))` is NOT a test
    // gate, so `g` is still flagged.
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["no-panic"]);
    assert_eq!(f[0].line, 11);
}

// -------------------------------------------------------------- float-eq

#[test]
fn float_equality_fires_on_literals_and_constants() {
    let src = r#"
pub fn f(x: f64) -> bool {
    let a = x == 1.0;
    let b = x != 2.5e-3;
    let c = x == f64::INFINITY;
    a && b && c
}
"#;
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["float-eq"; 3]);
    assert_eq!(f.iter().map(|f| f.line).collect::<Vec<_>>(), [3, 4, 5]);
}

#[test]
fn integer_equality_and_exempt_files_stay_clean() {
    let clean = r#"
pub fn f(x: usize, y: f64, z: f64) -> bool {
    let a = x == 1;
    let b = (y - 2.5).abs() < 1e-9;
    let c = y.to_bits() == z.to_bits() && y < 4.0;
    a && b && c
}
"#;
    // Bit comparison (`to_bits`), tolerance comparison and `<` ordering
    // are the sanctioned forms and stay clean.
    assert!(lint_file(LIB, clean).is_empty());
    // ordf64.rs implements the total order and may compare floats.
    let raw = "pub fn eq(a: f64, b: f64) -> bool { a == 1.0 }\n";
    assert!(lint_file("crates/core/src/ordf64.rs", raw).is_empty());
    // Test code is exempt.
    let test = "#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 1.0 }\n}\n";
    assert!(lint_file(LIB, test).is_empty());
}

// -------------------------------------------------------------- no-alloc

#[test]
fn allocations_fire_only_inside_annotated_functions() {
    let src = r#"
// audit: no_alloc
pub fn hot(buf: &mut Vec<u64>) -> String {
    let v = Vec::new();
    buf.push(1);
    let s = format!("{v:?}");
    s.clone()
}

pub fn cold() -> Vec<u64> {
    let mut v = Vec::new();
    v.push(1);
    v.clone()
}
"#;
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["no-alloc"; 3]);
    assert_eq!(f.iter().map(|f| f.line).collect::<Vec<_>>(), [4, 6, 7]);
    assert!(f[0].message.contains("Vec::new") && f[0].message.contains("`hot`"));
    assert!(f[1].message.contains("format!"));
    assert!(f[2].message.contains(".clone()"));
}

#[test]
fn clean_annotated_function_passes() {
    let src = r#"
// audit: no_alloc — steady-state claim loop, no heap traffic.
#[inline]
pub fn claim(slots: &mut [u64], next: &mut usize) -> Option<u64> {
    let i = *next;
    if i >= slots.len() {
        return None;
    }
    *next = i + 1;
    Some(slots[i])
}
"#;
    assert!(lint_file(LIB, src).is_empty());
}

// --------------------------------------------------------- unsafe-bounds

#[test]
fn unsafe_raw_access_without_bounds_evidence_fires() {
    // Planted bug: a raw pointer walk in an `unsafe` block whose
    // function carries neither a `debug_assert!` nor a length-invariant
    // comment. The SAFETY comment satisfies `unsafe-safety` but says
    // nothing about bounds, so `unsafe-bounds` must still fire.
    let src = r#"
pub fn sum2(p: *const f64, off: usize) -> f64 {
    // SAFETY: caller passes a valid pointer.
    unsafe { *p.add(off) + *p.add(off + 1) }
}
"#;
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["unsafe-bounds"]);
    assert!(f[0].message.contains("`add`") && f[0].message.contains("`sum2`"));
}

#[test]
fn bounds_assert_or_invariant_comment_silences_unsafe_bounds() {
    let asserted = r#"
pub fn sum2(p: *const f64, off: usize, n: usize) -> f64 {
    debug_assert!(off + 1 < n);
    // SAFETY: caller passes a pointer valid for `n` reads.
    unsafe { *p.add(off) + *p.add(off + 1) }
}
"#;
    assert!(lint_file(LIB, asserted).is_empty());
    let commented = r#"
pub fn sum2(p: *const f64, off: usize) -> f64 {
    // SAFETY: `off + 1 < n` by the caller's contract, so both reads
    // stay in bounds of the allocation.
    unsafe { *p.add(off) + *p.add(off + 1) }
}
"#;
    assert!(lint_file(LIB, commented).is_empty());
}

#[test]
fn safe_target_feature_fn_needs_a_contract_comment() {
    // Planted bug: a safe `#[target_feature]` fn with no SAFETY
    // contract explaining why safe callers are sound.
    let src = "#[target_feature(enable = \"avx2\")]\nfn combine(a: u64) -> u64 { a }\n";
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["unsafe-bounds"]);
    assert!(f[0].message.contains("target_feature") && f[0].message.contains("`combine`"));

    let ok = "// SAFETY contract: argument types are only constructible under AVX2.\n\
              #[target_feature(enable = \"avx2\")]\n\
              fn combine(a: u64) -> u64 { a }\n";
    assert!(lint_file(LIB, ok).is_empty());
}

// --------------------------------------------------------- cast-truncate

#[test]
fn narrowing_cast_without_annotation_fires() {
    // Planted bug: a silent `usize → u32` truncation in library code.
    let src = "pub fn count(xs: &[u64]) -> u32 { xs.len() as u32 }\n";
    let f = lint_file(LIB, src);
    assert_eq!(lints_of(&f), ["cast-truncate"]);
    assert!(f[0].message.contains("try_from"));
}

#[test]
fn float_to_wide_integer_cast_fires_and_int_widening_stays_clean() {
    // `f64 → usize` truncates and saturates; the float evidence
    // (`.floor()`) makes the wide target suspicious.
    let f = lint_file(LIB, "pub fn bucket(x: f64) -> usize { x.floor() as usize }\n");
    assert_eq!(lints_of(&f), ["cast-truncate"]);
    // Pure integer widening to a wide target carries no float
    // evidence and stays clean, as do casts in test code.
    assert!(lint_file(LIB, "pub fn up(x: u16) -> usize { x as usize }\n").is_empty());
    let test = "#[cfg(test)]\nmod tests {\n    fn t(x: usize) -> u32 { x as u32 }\n}\n";
    assert!(lint_file(LIB, test).is_empty());
}

#[test]
fn cast_ok_annotation_needs_a_justification() {
    let justified = "// audit: cast_ok — partition_point over ≤ 256 breakpoints fits u8.\n\
                     pub fn f(n: usize) -> u8 { n as u8 }\n";
    assert!(lint_file(LIB, justified).is_empty());
    let bare = "pub fn f(n: usize) -> u8 { n as u8 } // audit: cast_ok\n";
    let f = lint_file(LIB, bare);
    assert_eq!(lints_of(&f), ["cast-truncate"]);
    assert!(f[0].message.contains("without a justification"));
}

// ------------------------------------------------------------ lock-order

/// Wrap fixture sources for `lock_order::analyze`, which takes the
/// whole workspace's `(rel_path, source)` list.
fn lock_fixture(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, s)| ((*p).to_string(), (*s).to_string())).collect();
    lock_order::analyze(&owned)
}

#[test]
fn inverted_lock_order_across_files_fires_at_both_sites() {
    // Planted bug: one site nests `streams` under `queue`, the other
    // nests `queue` under `streams` — a classic ABBA deadlock.
    let ab =
        "pub fn ab(s: &S) {\n    let g1 = s.queue.lock();\n    let g2 = s.streams.lock();\n}\n";
    let ba =
        "pub fn ba(s: &S) {\n    let g1 = s.streams.lock();\n    let g2 = s.queue.lock();\n}\n";
    let f = lock_fixture(&[("crates/serve/src/a.rs", ab), ("crates/serve/src/b.rs", ba)]);
    assert_eq!(lints_of(&f), ["lock-order", "lock-order"]);
    assert!(f.iter().all(|x| x.message.contains("inconsistent lock order")));
    assert_eq!(f[0].path, "crates/serve/src/a.rs");
    assert_eq!(f[1].path, "crates/serve/src/b.rs");
    // Out-of-scope crates are not analysed.
    assert!(lock_fixture(&[("crates/core/src/a.rs", ab), ("crates/core/src/b.rs", ba)]).is_empty());
}

#[test]
fn dropping_the_first_guard_removes_the_nesting() {
    let ab = "pub fn ab(s: &S) {\n    let g1 = s.queue.lock();\n    drop(g1);\n    let g2 = s.streams.lock();\n}\n";
    let ba = "pub fn ba(s: &S) {\n    let g1 = s.streams.lock();\n    drop(g1);\n    let g2 = s.queue.lock();\n}\n";
    assert!(
        lock_fixture(&[("crates/serve/src/a.rs", ab), ("crates/serve/src/b.rs", ba)]).is_empty()
    );
}

#[test]
fn double_lock_of_the_same_name_fires() {
    let src = "pub fn f(s: &S) {\n    let g1 = s.queue.lock();\n    let g2 = s.queue.lock();\n}\n";
    let f = lock_fixture(&[("crates/parallel/src/x.rs", src)]);
    assert_eq!(lints_of(&f), ["lock-order"]);
    assert!(f[0].message.contains("self-deadlock"));
}

#[test]
fn condvar_wait_outside_a_loop_fires() {
    // Planted bug: `if`-guarded wait — a spurious wakeup skips the
    // predicate re-check.
    let src = "use std::sync::{Condvar, Mutex};\n\
               pub fn f(cv: &Condvar, m: &Mutex<bool>) {\n\
               \x20   let mut g = m.lock();\n\
               \x20   if !*g {\n\
               \x20       g = cv.wait(g);\n\
               \x20   }\n\
               }\n";
    let f = lock_fixture(&[("crates/serve/src/x.rs", src)]);
    assert_eq!(lints_of(&f), ["lock-order"]);
    assert!(f[0].message.contains("predicate-checked loop"));

    let looped = "use std::sync::{Condvar, Mutex};\n\
                  pub fn f(cv: &Condvar, m: &Mutex<bool>) {\n\
                  \x20   let mut g = m.lock();\n\
                  \x20   while !*g {\n\
                  \x20       g = cv.wait(g);\n\
                  \x20   }\n\
                  }\n";
    assert!(lock_fixture(&[("crates/serve/src/x.rs", looped)]).is_empty());
    // `wait_while` embeds the loop and is exempt.
    let wait_while = "use std::sync::{Condvar, Mutex};\n\
                      pub fn f(cv: &Condvar, m: &Mutex<bool>) {\n\
                      \x20   let g = m.lock();\n\
                      \x20   let _g = cv.wait_while(g, |done| !*done);\n\
                      }\n";
    assert!(lock_fixture(&[("crates/serve/src/x.rs", wait_while)]).is_empty());
}

// ------------------------------------------------------------- allowlist

#[test]
fn allowlist_entry_absorbs_matching_findings_only() {
    let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    x.expect("invariant: caller checked")
}
pub fn g(x: Option<u32>) -> u32 {
    x.expect("a different message")
}
"#;
    let findings = lint_file(LIB, src);
    assert_eq!(findings.len(), 2);
    let entry = AllowEntry {
        lint: "no-panic".to_string(),
        path: LIB.to_string(),
        contains: "invariant: caller checked".to_string(),
        reason: "fixture".to_string(),
        line: 1,
    };
    let absorbed: Vec<_> = findings.iter().filter(|f| entry.matches(f)).collect();
    assert_eq!(absorbed.len(), 1);
    assert_eq!(absorbed[0].line, 3);
    // Wrong path: nothing matches.
    let elsewhere = AllowEntry { path: "crates/index/src/knn.rs".to_string(), ..entry };
    assert!(!findings.iter().any(|f| elsewhere.matches(f)));
}

#[test]
fn allowlist_rejects_malformed_files() {
    assert!(allowlist::parse("[[allow]]\nlint = \"no-panic\"\n").is_err());
    assert!(allowlist::parse("lint = \"orphan\"\n").is_err());
    assert!(allowlist::parse("").unwrap().is_empty());
}

/// A stale entry naming one of the block-structured lints is reported
/// like any other: the allowlist cannot quietly carry exemptions for
/// `unsafe-bounds` / `cast-truncate` / `lock-order` findings that no
/// longer exist.
#[test]
fn stale_allowlist_entries_for_new_lints_fail_the_audit() {
    let root = std::env::temp_dir().join(format!("sapla-audit-stale-{}", std::process::id()));
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(src_dir.join("lib.rs"), "pub fn id(x: u64) -> u64 { x }\n").unwrap();
    std::fs::write(
        root.join("audit.toml"),
        "[[allow]]\nlint = \"lock-order\"\npath = \"crates/core/src/lib.rs\"\n\
         contains = \"never matches anything\"\nreason = \"stale on purpose\"\n",
    )
    .unwrap();
    let report = run_audit(&root).expect("audit runs");
    std::fs::remove_dir_all(&root).ok();
    assert!(report.violations.is_empty());
    assert_eq!(report.unused_allows.len(), 1);
    assert_eq!(report.unused_allows[0].lint, "lock-order");
    assert!(!report.is_clean(), "a stale entry must fail the audit");
}

// --------------------------------------------------------- the real gate

/// The workspace itself must audit clean with its checked-in allowlist —
/// the same check CI runs via `cargo run -p sapla-audit`.
#[test]
fn workspace_passes_audit_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf();
    let started = std::time::Instant::now();
    let report = run_audit(&root).expect("audit runs");
    let elapsed = started.elapsed();
    assert!(report.files > 50, "walker found only {} files", report.files);
    assert!(
        report.is_clean(),
        "workspace has unallowlisted findings or stale allowlist entries:\n{}",
        report.render()
    );
    // The allowlist stays small and justified (acceptance: ≤ 15 entries).
    assert!(report.allowlisted.len() <= 15 * 3, "allowlist absorbing too much");
    // Runtime budget: the audit gates every CI run and `just ci`; the
    // full pass (lex + block trees + seven lints over the workspace)
    // must stay interactive. Debug-profile runs take well under 10 s.
    assert!(elapsed.as_secs() < 10, "audit took {elapsed:?} — over the 10 s budget");
}
