//! Interleaving exploration of the work-stealing deque protocol.
//!
//! These tests drive `sapla_parallel::model` (compiled via this crate's
//! dev-dependency on `sapla-parallel` with the `audit-model` feature):
//! every `AtomicCell` operation becomes a yield point, a coordinator
//! serialises the virtual threads, and the DFS in `explore` enumerates
//! all schedules up to a preemption bound. Each enumerated schedule runs
//! the *production* `RangeDeque` code and asserts the protocol
//! invariants:
//!
//! * **No lost or duplicated index**: every index of the initial range
//!   is claimed exactly once across all workers.
//! * **No double claim**: the same index never leaves two successful
//!   `pop_front`s (covered by the exactly-once count).
//! * **Termination**: every schedule completes without hitting the step
//!   budget.
//!
//! A failing schedule panics with its replayable schedule ID; feed that
//! ID to [`replay`] / `parse_schedule_id` to re-run it deterministically.

use std::sync::atomic::{AtomicUsize, Ordering};

use sapla_parallel::model::{explore, parse_schedule_id, run_schedule, Policy, RunTrace};
use sapla_parallel::RangeDeque;

/// Generous step budget: the largest harness below takes ~120 steps.
const MAX_STEPS: usize = 2000;

/// Claim every index of `deque` (owner side) into `claims`.
fn drain_pop(deque: &RangeDeque, block: usize, claims: &[AtomicUsize]) {
    while let Some(r) = deque.pop_front(block) {
        for i in r {
            claims[i].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Thief side: repeatedly steal from `victim`, republish into `own`,
/// and drain the stolen range.
fn drain_steal(victim: &RangeDeque, own: &RangeDeque, block: usize, claims: &[AtomicUsize]) {
    while let Some(stolen) = victim.steal_half() {
        own.install(&stolen);
        drain_pop(own, block, claims);
    }
}

/// Assert the exactly-once claim invariant, naming the schedule.
fn assert_claims(claims: &[AtomicUsize], trace: &RunTrace) {
    for (i, c) in claims.iter().enumerate() {
        let c = c.load(Ordering::Relaxed);
        assert_eq!(
            c,
            1,
            "index {i} claimed {c} times (lost if 0, duplicated if > 1) under schedule {}",
            trace.schedule_id()
        );
    }
}

/// One controlled execution of the 2-thread owner-pop vs. steal race
/// over `0..n`, asserting all invariants.
fn owner_vs_thief(n: usize, block: usize, replay: &[usize], policy: Policy) -> RunTrace {
    let owner = RangeDeque::new(0, n);
    let thief = RangeDeque::new(0, 0);
    let claims: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let trace = run_schedule(2, replay, policy, MAX_STEPS, |tid| match tid {
        0 => drain_pop(&owner, block, &claims),
        _ => drain_steal(&owner, &thief, block, &claims),
    });
    assert!(!trace.exceeded_budget, "schedule {} hit the step budget", trace.schedule_id());
    assert_claims(&claims, &trace);
    trace
}

/// The tentpole coverage test: exhaustively enumerate ≥ 10k distinct
/// schedules of the owner-pop vs. steal race and check every one.
#[test]
fn dfs_explores_over_10k_owner_vs_thief_schedules() {
    // n = 6, preemption bound 5 ⇒ 16,646 distinct schedules (~3 s).
    let out = explore(5, 200_000, |replay| owner_vs_thief(6, 1, replay, Policy::Continue));
    assert!(
        out.schedules >= 10_000,
        "expected ≥ 10k distinct schedules, explored {}",
        out.schedules
    );
    assert!(!out.capped, "enumeration must run to completion, not hit the cap");
}

/// Three virtual threads — one owner, two thieves both raiding it — at a
/// lower preemption bound (the schedule space grows much faster with a
/// third thread).
#[test]
fn dfs_three_threads_owner_and_two_thieves() {
    let out = explore(2, 200_000, |replay| {
        let n = 5;
        let owner = RangeDeque::new(0, n);
        let thieves = [RangeDeque::new(0, 0), RangeDeque::new(0, 0)];
        let claims: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let trace = run_schedule(3, replay, Policy::Continue, MAX_STEPS, |tid| match tid {
            0 => drain_pop(&owner, 1, &claims),
            t => drain_steal(&owner, &thieves[t - 1], 1, &claims),
        });
        assert!(!trace.exceeded_budget, "schedule {} hit the step budget", trace.schedule_id());
        assert_claims(&claims, &trace);
        trace
    });
    assert!(out.schedules >= 1_000, "explored only {} schedules", out.schedules);
    assert!(!out.capped);
}

/// A schedule ID names its execution: replaying it reproduces the exact
/// same decision trace, and a replayed prefix pins the execution's start.
#[test]
fn schedule_ids_replay_deterministically() {
    // Produce a non-trivial schedule with the seeded random policy.
    let first = owner_vs_thief(6, 1, &[], Policy::Random(0xA0D17));
    let id = first.schedule_id();
    let replay = parse_schedule_id(&id);
    assert_eq!(replay.len(), first.choices.len());

    // Full replay: identical trace, twice.
    for _ in 0..2 {
        let again = owner_vs_thief(6, 1, &replay, Policy::Continue);
        assert!(!again.replay_diverged, "own schedule must replay cleanly");
        assert_eq!(again.schedule_id(), id);
        assert_eq!(again.choices, first.choices);
    }

    // Prefix replay: the execution starts exactly as named, then the
    // deterministic Continue policy finishes it.
    let prefix = &replay[..replay.len() / 2];
    let cont = owner_vs_thief(6, 1, prefix, Policy::Continue);
    assert!(!cont.replay_diverged);
    assert!(cont
        .schedule_id()
        .starts_with(&prefix.iter().map(|t| char::from(b'0' + *t as u8)).collect::<String>()));
}

/// Seeded randomized long-run mode: many random schedules of a larger
/// instance than the DFS can exhaust. Tunable without recompiling:
/// `SAPLA_AUDIT_RANDOM_RUNS` (iterations) and `SAPLA_AUDIT_SEED` (base
/// seed, decimal) — e.g. a nightly job can run hundreds of thousands.
#[test]
fn randomized_long_run_mode() {
    let runs: u64 =
        std::env::var("SAPLA_AUDIT_RANDOM_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    let seed: u64 =
        std::env::var("SAPLA_AUDIT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0x5AB1A);
    for i in 0..runs {
        owner_vs_thief(32, 3, &[], Policy::Random(seed.wrapping_add(i)));
    }
}

/// The checker must be able to *find* a real race, not just bless the
/// correct protocol: a deliberately broken deque that updates `start`
/// non-atomically (load, then blind store — the classic lost-update bug)
/// must produce a duplicated claim within the explored schedules.
#[test]
fn explorer_catches_a_seeded_lost_update_bug() {
    use sapla_parallel::AtomicCell;

    /// `RangeDeque` with the CAS replaced by a blind store.
    struct BrokenDeque(AtomicCell);
    impl BrokenDeque {
        fn pop_front(&self) -> Option<usize> {
            let word = self.0.load(Ordering::Acquire);
            let (s, e) = (word >> 32, word & 0xFFFF_FFFF);
            if s >= e {
                return None;
            }
            // BUG: another thread's claim between the load and this
            // store is overwritten, handing out the same index twice.
            self.0.store(((s + 1) << 32) | e, Ordering::Release);
            Some(s as usize)
        }
    }

    let caught = std::panic::catch_unwind(|| {
        explore(2, 50_000, |replay| {
            let n = 4;
            let deque = BrokenDeque(AtomicCell::new(n as u64));
            let claims: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let trace = run_schedule(2, replay, Policy::Continue, MAX_STEPS, |_| {
                while let Some(i) = deque.pop_front() {
                    claims[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_claims(&claims, &trace);
            trace
        })
    });
    assert!(caught.is_err(), "the seeded lost-update bug must be caught by some schedule");
}
