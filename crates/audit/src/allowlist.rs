//! Hand-parsed `audit.toml` allowlist.
//!
//! The file is a restricted TOML subset — only what the allowlist
//! needs, parsed by hand because the audit crate is dependency-free:
//!
//! ```toml
//! # comments and blank lines are ignored
//! [[allow]]
//! lint = "no-panic"
//! path = "crates/core/src/work.rs"
//! contains = "stage windows are always in range"
//! reason = "refit is only called on windows produced by the tiling"
//! ```
//!
//! Every entry must carry all four keys. An entry matches a finding
//! when the lint name and path are equal and the offending source line
//! contains the `contains` substring; one entry may absorb several
//! findings (e.g. a repeated `expect` message). Entries that match
//! nothing are themselves reported as errors so the allowlist can only
//! shrink, never silently rot.

use crate::lints::Finding;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub lint: String,
    pub path: String,
    pub contains: String,
    pub reason: String,
    /// 1-based line of the `[[allow]]` header in `audit.toml`.
    pub line: u32,
}

impl AllowEntry {
    pub fn matches(&self, f: &Finding) -> bool {
        self.lint == f.lint && self.path == f.path && f.line_text.contains(&self.contains)
    }
}

/// Parse the allowlist. Returns the entries or a list of parse errors
/// (`line: message`), never both.
pub fn parse(source: &str) -> Result<Vec<AllowEntry>, Vec<String>> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    /// An `[[allow]]` entry mid-parse: every key still optional, plus the
    /// 1-based line of its header.
    #[derive(Default)]
    struct Partial {
        lint: Option<String>,
        path: Option<String>,
        contains: Option<String>,
        reason: Option<String>,
        line: u32,
    }
    let mut current: Option<Partial> = None;

    let finish =
        |cur: &mut Option<Partial>, errors: &mut Vec<String>, entries: &mut Vec<AllowEntry>| {
            if let Some(Partial { lint, path, contains, reason, line }) = cur.take() {
                match (lint, path, contains, reason) {
                    (Some(lint), Some(path), Some(contains), Some(reason)) => {
                        entries.push(AllowEntry { lint, path, contains, reason, line });
                    }
                    (lint, path, contains, reason) => {
                        let mut missing = Vec::new();
                        if lint.is_none() {
                            missing.push("lint");
                        }
                        if path.is_none() {
                            missing.push("path");
                        }
                        if contains.is_none() {
                            missing.push("contains");
                        }
                        if reason.is_none() {
                            missing.push("reason");
                        }
                        errors.push(format!(
                            "{line}: [[allow]] entry missing key(s): {}",
                            missing.join(", ")
                        ));
                    }
                }
            }
        };

    for (idx, raw) in source.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut current, &mut errors, &mut entries);
            current = Some(Partial { line: lineno, ..Partial::default() });
            continue;
        }
        let Some(eq) = line.find('=') else {
            errors.push(format!("{lineno}: expected `[[allow]]` or `key = \"value\"`"));
            continue;
        };
        let key = line[..eq].trim();
        let value = match parse_string(line[eq + 1..].trim()) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("{lineno}: {e}"));
                continue;
            }
        };
        let Some(cur) = current.as_mut() else {
            errors.push(format!("{lineno}: `{key}` outside any [[allow]] entry"));
            continue;
        };
        let slot = match key {
            "lint" => &mut cur.lint,
            "path" => &mut cur.path,
            "contains" => &mut cur.contains,
            "reason" => &mut cur.reason,
            other => {
                errors.push(format!("{lineno}: unknown key `{other}`"));
                continue;
            }
        };
        if slot.is_some() {
            errors.push(format!("{lineno}: duplicate key `{key}`"));
        } else {
            *slot = Some(value);
        }
    }
    finish(&mut current, &mut errors, &mut entries);

    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// Parse a double-quoted TOML basic string supporting `\"`, `\\`, `\n`,
/// `\t` escapes. The quoted value must be the whole input (a trailing
/// `# comment` after the close quote is tolerated).
fn parse_string(s: &str) -> Result<String, String> {
    let mut chars = s.chars();
    if chars.next() != Some('"') {
        return Err(format!("expected a double-quoted string, found `{s}`"));
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(format!("unsupported escape `\\{}`", other.unwrap_or(' ')));
                }
            },
            Some(c) => out.push(c),
        }
    }
    let rest = chars.as_str().trim();
    if !rest.is_empty() && !rest.starts_with('#') {
        return Err(format!("unexpected trailing content `{rest}`"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let src = r#"
# workspace allowlist
[[allow]]
lint = "no-panic"
path = "crates/core/src/work.rs"
contains = "always in range"
reason = "invariant upheld by the tiling"

[[allow]]
lint = "float-eq"
path = "crates/core/src/sapla.rs"  # trailing comment
contains = "slope == 0.0"
reason = "exact sentinel produced by the fitter itself"
"#;
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].lint, "no-panic");
        assert_eq!(entries[1].contains, "slope == 0.0");
        assert_eq!(entries[0].line, 3);
    }

    #[test]
    fn reports_missing_keys_and_bad_lines() {
        let src = "[[allow]]\nlint = \"no-panic\"\n\nnot-a-kv\n";
        let errs = parse(src).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing key")), "{errs:?}");
        assert!(errs.iter().any(|e| e.starts_with("4:")), "{errs:?}");
    }

    #[test]
    fn rejects_duplicate_and_unknown_keys() {
        let src = "[[allow]]\nlint = \"a\"\nlint = \"b\"\nfrobnicate = \"c\"\n";
        let errs = parse(src).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("duplicate key `lint`")));
        assert!(errs.iter().any(|e| e.contains("unknown key `frobnicate`")));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse_string(r#""a\"b\\c""#).unwrap(), "a\"b\\c");
        assert!(parse_string("bare").is_err());
        assert!(parse_string("\"unterminated").is_err());
    }

    #[test]
    fn matching_is_lint_path_and_substring() {
        let e = AllowEntry {
            lint: "no-panic".into(),
            path: "crates/x/src/a.rs".into(),
            contains: "probed split".into(),
            reason: "r".into(),
            line: 1,
        };
        let f = Finding {
            path: "crates/x/src/a.rs".into(),
            line: 10,
            lint: "no-panic",
            message: String::new(),
            line_text: "  .expect(\"replays the probed split\")".into(),
        };
        assert!(e.matches(&f));
        let other = Finding { path: "crates/y/src/a.rs".into(), ..f };
        assert!(!e.matches(&other));
    }
}
