//! Workspace file discovery: every `.rs` file under `crates/*/src`,
//! in deterministic (sorted) order, with workspace-relative paths using
//! forward slashes regardless of platform.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file to lint.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative, forward-slash path (`crates/core/src/sapla.rs`).
    pub rel: String,
    /// Absolute path on disk.
    pub abs: PathBuf,
}

/// Collect all `crates/*/src/**/*.rs` under `root`, sorted by relative
/// path. Directories without `src/` (or non-directories in `crates/`)
/// are skipped silently.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut children: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            collect_rs(&child, root, out)?;
        } else if child.extension().is_some_and(|e| e == "rs") {
            let rel = child
                .strip_prefix(root)
                .unwrap_or(&child)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile { rel, abs: child });
        }
    }
    Ok(())
}

/// Find the workspace root: walk upward from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
