//! `sapla-audit` — in-repo static analysis and model checking for the
//! SAPLA workspace.
//!
//! Two subsystems:
//!
//! 1. **Lint pass** ([`lexer`], [`block`], [`lints`], [`lock_order`],
//!    [`allowlist`], [`walk`], [`run_audit`]): a dependency-free,
//!    hand-rolled Rust lexer plus a brace-tree/item parser drive seven
//!    project-specific lints over every `crates/*/src/**/*.rs` file —
//!    six per-file ([`lints`]) and one cross-file lock-acquisition
//!    analysis ([`lock_order`]). Violations must be fixed or
//!    allowlisted in `audit.toml` with a one-line justification; the
//!    `sapla-audit` binary exits nonzero on any unallowlisted finding
//!    *or* any stale allowlist entry, and CI runs it as a blocking
//!    gate (`just audit`).
//!
//! 2. **Interleaving explorer** (in `sapla-parallel`'s `model` module,
//!    behind its `audit-model` feature; exercised by this crate's
//!    `tests/model.rs` and `tests/model_serve.rs`): a deterministic
//!    scheduler that enumerates interleavings — of the work-stealing
//!    deque protocol and, via `model::Mutex`/`model::Condvar` shims
//!    with spurious-wakeup injection and deadlock detection, of the
//!    serve admission queue — with bounded preemptions. Any failing
//!    schedule prints a replayable schedule ID.
//!
//! See DESIGN.md, "Static analysis & model checking".

pub mod allowlist;
pub mod block;
pub mod lexer;
pub mod lints;
pub mod lock_order;
pub mod walk;

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use allowlist::AllowEntry;
use lints::Finding;

/// Everything one audit run produced, pre-partitioned for reporting.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any allowlist entry — these fail the run.
    pub violations: Vec<Finding>,
    /// Findings absorbed by the allowlist, with the entry that did.
    pub allowlisted: Vec<(Finding, AllowEntry)>,
    /// Allowlist entries that matched nothing — these also fail the run.
    pub unused_allows: Vec<AllowEntry>,
    /// Number of files linted.
    pub files: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.unused_allows.is_empty()
    }

    /// Render the full human-readable report (diagnostics + summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.violations {
            let _ = writeln!(out, "{}", f.render());
        }
        for e in &self.unused_allows {
            let _ = writeln!(
                out,
                "audit.toml:{}: [stale-allow] entry ({} @ {} contains {:?}) matched nothing — \
                 remove it",
                e.line, e.lint, e.path, e.contains
            );
        }
        let _ = writeln!(
            out,
            "audit: {} file(s), {} violation(s), {} allowlisted, {} stale allowlist entr(ies)",
            self.files,
            self.violations.len(),
            self.allowlisted.len(),
            self.unused_allows.len()
        );
        out
    }
}

/// Errors that stop the audit before it can produce a [`Report`].
#[derive(Debug)]
pub enum AuditError {
    Io(String),
    Allowlist(Vec<String>),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io(msg) => write!(f, "{msg}"),
            AuditError::Allowlist(errs) => {
                writeln!(f, "audit.toml parse error(s):")?;
                for e in errs {
                    writeln!(f, "  audit.toml:{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Run the full lint pass over the workspace at `root`, applying the
/// allowlist at `root/audit.toml` (a missing allowlist is an empty
/// one).
pub fn run_audit(root: &Path) -> Result<Report, AuditError> {
    let allow_path = root.join("audit.toml");
    let entries = if allow_path.is_file() {
        let text = fs::read_to_string(&allow_path)
            .map_err(|e| AuditError::Io(format!("read {}: {e}", allow_path.display())))?;
        allowlist::parse(&text).map_err(AuditError::Allowlist)?
    } else {
        Vec::new()
    };
    let files = walk::workspace_sources(root)
        .map_err(|e| AuditError::Io(format!("walk {}: {e}", root.display())))?;

    let mut report = Report { files: files.len(), ..Report::default() };
    let mut used = vec![false; entries.len()];
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for file in &files {
        let source = fs::read_to_string(&file.abs)
            .map_err(|e| AuditError::Io(format!("read {}: {e}", file.abs.display())))?;
        sources.push((file.rel.clone(), source));
    }
    let mut findings = Vec::new();
    for (rel, source) in &sources {
        findings.extend(lints::lint_file(rel, source));
    }
    // The lock-acquisition graph is cross-file: an inconsistent order
    // needs both directions, wherever each lives.
    findings.extend(lock_order::analyze(&sources));
    for finding in findings {
        match entries.iter().position(|e| e.matches(&finding)) {
            Some(idx) => {
                used[idx] = true;
                report.allowlisted.push((finding, entries[idx].clone()));
            }
            None => report.violations.push(finding),
        }
    }
    report.unused_allows =
        entries.iter().zip(&used).filter(|(_, &u)| !u).map(|(e, _)| e.clone()).collect();
    Ok(report)
}
