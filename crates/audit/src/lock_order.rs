//! `lock-order` — a static lock-acquisition analysis over the
//! concurrency crates (`crates/serve`, `crates/parallel`).
//!
//! Three rules, built on [`crate::block`]'s brace tree and a
//! guard-scope approximation:
//!
//! 1. **Inconsistent order**: if one site acquires lock `b` while a
//!    guard for lock `a` is live, and another site (any file in scope)
//!    acquires `a` while holding `b`, both sites are flagged — a
//!    cross-thread deadlock needs only those two interleaved.
//! 2. **Double-lock**: acquiring a lock while a guard for the *same*
//!    lock is live self-deadlocks with `std::sync::Mutex` (UB-free but
//!    hangs forever).
//! 3. **Wait-in-loop**: in files that use `Condvar`, every `.wait(…)` /
//!    `.wait_timeout(…)` must sit inside a `loop`/`while`/`for` body in
//!    its function, because spurious wakeups mean the predicate must be
//!    re-checked (`wait_while` embeds the loop and is exempt).
//!
//! Locks are identified by the last field identifier of the acquiring
//! expression (`lock(&shared.queue)`, `self.queue.lock()` → `queue`) —
//! a name-based abstraction, so two fields with the same name on
//! different structs alias. Guard scopes: a `let g = <acq>;` binding
//! lives to the end of its block (truncated at `drop(g)`), anything
//! else is a temporary living to the end of its statement. Known false
//! negatives: acquisitions reached through function calls are not
//! inlined (the graph is per-function nesting only), and guards
//! returned from functions are not tracked.

use crate::block::BlockTree;
use crate::lexer::{lex, Tok, TokKind};
use crate::lints::Finding;

/// Path prefixes the lock-order analysis covers.
const SCOPE: &[&str] = &["crates/serve/", "crates/parallel/"];

/// One static lock acquisition site.
#[derive(Debug, Clone)]
struct Acq {
    /// Lock name (last field identifier of the acquiring expression).
    name: String,
    /// Token index of the acquisition.
    tok: usize,
    /// Token index at which the guard is dead.
    scope_end: usize,
    /// Source line of the acquisition.
    line: u32,
}

/// Run the analysis over every in-scope file of the workspace and
/// return findings (same shape as the per-file lints, same allowlist
/// machinery).
pub fn analyze(files: &[(String, String)]) -> Vec<Finding> {
    let mut out = Vec::new();
    // (held, acquired) -> first site, for the cross-file order check.
    let mut edges: Vec<(String, String, String, u32, String)> = Vec::new();
    for (rel, source) in files {
        if !SCOPE.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let toks = lex(source);
        let lines: Vec<&str> = source.lines().collect();
        let tree = BlockTree::build(&toks);
        let acqs = acquisitions(&toks, &tree);
        for (ai, a) in acqs.iter().enumerate() {
            for b in &acqs[ai + 1..] {
                if b.tok <= a.tok || b.tok > a.scope_end {
                    continue;
                }
                if b.name == a.name {
                    out.push(finding(
                        rel,
                        &lines,
                        b.line,
                        format!(
                            "`{}` acquired while a guard for `{}` is already live — \
                             self-deadlock with `std::sync` locks",
                            b.name, a.name
                        ),
                    ));
                } else if !edges.iter().any(|(h, q, ..)| h == &a.name && q == &b.name) {
                    edges.push((
                        a.name.clone(),
                        b.name.clone(),
                        rel.clone(),
                        b.line,
                        lines
                            .get(b.line as usize - 1)
                            .map_or_else(String::new, |l| (*l).to_string()),
                    ));
                }
            }
        }
        wait_in_loop(rel, &toks, &lines, &tree, &mut out);
    }
    for (i, (h1, q1, p1, l1, text1)) in edges.iter().enumerate() {
        for (h2, q2, p2, l2, text2) in &edges[i + 1..] {
            if h1 == q2 && q1 == h2 {
                for (ph, lh, texth, qh, hh, po, lo) in
                    [(p1, l1, text1, q1, h1, p2, l2), (p2, l2, text2, q2, h2, p1, l1)]
                {
                    out.push(Finding {
                        path: ph.clone(),
                        line: *lh,
                        lint: "lock-order",
                        message: format!(
                            "inconsistent lock order: `{qh}` acquired while holding `{hh}` \
                             here, but the reverse order occurs at {po}:{lo} — pick one global \
                             order"
                        ),
                        line_text: texth.clone(),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

fn finding(rel: &str, lines: &[&str], line: u32, message: String) -> Finding {
    Finding {
        path: rel.to_string(),
        line,
        lint: "lock-order",
        message,
        line_text: lines.get(line as usize - 1).map_or_else(String::new, |l| (*l).to_string()),
    }
}

/// Collect acquisition sites with their guard scopes, in token order.
fn acquisitions(toks: &[Tok], tree: &BlockTree) -> Vec<Acq> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        // `lock(&shared.queue)` — the workspace's poison-ignoring
        // helper. Skip its own definition (`fn lock…`) and method
        // position (`.lock(` is handled below).
        let helper = toks[i].is_ident("lock")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && i.checked_sub(1).is_none_or(|k| !(toks[k].is_punct(".") || toks[k].is_ident("fn")));
        // `x.lock()` / `x.try_lock()` / `x.read()` / `x.write()` with
        // empty argument lists (so `io::Read::read(&mut buf)` and
        // friends don't fire).
        let method = toks[i].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| {
                matches!(n.text.as_str(), "lock" | "try_lock" | "read" | "write")
                    && n.kind == TokKind::Ident
            })
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(")"));
        let (name, expr_end) = if helper {
            let Some(close) = matching_fwd(toks, i + 1, "(", ")") else { continue };
            let Some(name) = toks[i + 2..close].iter().rev().find(|t| t.kind == TokKind::Ident)
            else {
                continue;
            };
            (name.text.clone(), close)
        } else if method {
            // Receiver's last field identifier sits right before the dot.
            let Some(name) =
                i.checked_sub(1).map(|k| &toks[k]).filter(|t| t.kind == TokKind::Ident)
            else {
                continue;
            };
            (name.text.clone(), i + 3)
        } else {
            continue;
        };
        let line = toks[i].line;
        out.push(Acq { name, tok: i, scope_end: guard_scope_end(toks, tree, i, expr_end), line });
    }
    out
}

/// Where the guard acquired at `acq` (whose acquiring expression ends
/// at `expr_end`) dies.
fn guard_scope_end(toks: &[Tok], tree: &BlockTree, acq: usize, expr_end: usize) -> usize {
    // `let g = <acq-expr>;` — guard bound for the rest of the block.
    let next = (expr_end + 1..toks.len()).find(|&k| toks[k].kind != TokKind::Comment);
    let stmt_start = statement_start(toks, acq);
    let bound_let = next.is_some_and(|n| toks[n].is_punct(";"))
        && toks[stmt_start..acq].iter().any(|t| t.is_ident("let"));
    if bound_let {
        let block_end = tree.innermost(acq).map_or(toks.len() - 1, |b| tree.blocks[b].close);
        // The binding's name: first identifier after `let` (skipping
        // `mut`), used to honour an explicit `drop(name)`.
        let binding = toks[stmt_start..acq]
            .iter()
            .skip_while(|t| !t.is_ident("let"))
            .skip(1)
            .find(|t| t.kind == TokKind::Ident && t.text != "mut")
            .map(|t| t.text.clone());
        if let Some(bname) = binding {
            for k in expr_end..block_end {
                if toks[k].is_ident("drop")
                    && toks.get(k + 1).is_some_and(|n| n.is_punct("("))
                    && toks.get(k + 2).is_some_and(|n| n.is_ident(&bname))
                    && toks.get(k + 3).is_some_and(|n| n.is_punct(")"))
                {
                    return k;
                }
            }
        }
        return block_end;
    }
    // Temporary guard: lives to the end of the enclosing statement.
    let mut depth = 0isize;
    for (k, t) in toks.iter().enumerate().skip(expr_end + 1) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" if depth == 0 => return k,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return k,
            _ => {}
        }
    }
    toks.len() - 1
}

/// Token index where the statement containing `at` begins: just after
/// the previous `;`, `{` or `}` at this nesting level.
fn statement_start(toks: &[Tok], at: usize) -> usize {
    let mut k = at;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            ";" | "{" | "}" => return k + 1,
            ")" | "]" => {
                let close_sym = t.text.clone();
                let open_sym = if close_sym == ")" { "(" } else { "[" };
                let mut depth = 1usize;
                while k > 0 && depth > 0 {
                    k -= 1;
                    if toks[k].is_punct(&close_sym) {
                        depth += 1;
                    } else if toks[k].is_punct(open_sym) {
                        depth -= 1;
                    }
                }
            }
            _ => {}
        }
    }
    0
}

/// Forward bracket matcher (same contract as `lints::matching`, local
/// copy to keep module boundaries simple).
fn matching_fwd(toks: &[Tok], open: usize, open_sym: &str, close_sym: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_sym) {
            depth += 1;
        } else if t.is_punct(close_sym) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Rule 3: `.wait(…)` / `.wait_timeout(…)` in Condvar-using files must
/// be inside a loop in their function.
fn wait_in_loop(rel: &str, toks: &[Tok], lines: &[&str], tree: &BlockTree, out: &mut Vec<Finding>) {
    if !toks.iter().any(|t| t.is_ident("Condvar")) {
        return;
    }
    for i in 0..toks.len() {
        let is_wait = toks[i].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| matches!(n.text.as_str(), "wait" | "wait_timeout"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("));
        if !is_wait {
            continue;
        }
        let in_loop = tree.enclosing_fn(i).is_some_and(|f| tree.in_loop_within_fn(i, f));
        if !in_loop {
            out.push(finding(
                rel,
                lines,
                toks[i + 1].line,
                format!(
                    "`.{}(…)` outside a predicate-checked loop — spurious wakeups require \
                     re-checking the condition (use `while !pred {{ guard = cv.wait(guard) }}` \
                     or `wait_while`)",
                    toks[i + 1].text
                ),
            ));
        }
    }
}
