//! The `sapla-audit` binary: lint the workspace, print diagnostics,
//! exit nonzero on any unallowlisted finding or stale allowlist entry.
//!
//! ```text
//! sapla-audit [--root DIR]
//! ```
//!
//! Without `--root`, the workspace root is found by walking upward from
//! the current directory to the first directory containing both
//! `Cargo.toml` and `crates/` — so `cargo run -p sapla-audit` works
//! from anywhere inside the repo.

use std::path::PathBuf;
use std::process::ExitCode;

use sapla_audit::{run_audit, walk};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("sapla-audit: --root requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: sapla-audit [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sapla-audit: unknown argument `{other}` (see --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("sapla-audit: cannot determine current directory: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match walk::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "sapla-audit: no workspace root (Cargo.toml + crates/) found above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match run_audit(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("sapla-audit: {e}");
            ExitCode::FAILURE
        }
    }
}
