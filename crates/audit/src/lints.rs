//! The project lints, run over the token stream of one file at a time.
//!
//! Six per-file lints, each encoding a contract the workspace's
//! correctness story depends on (see DESIGN.md "Static analysis &
//! model checking"; the cross-file `lock-order` lint lives in
//! [`crate::lock_order`]):
//!
//! * `unsafe-safety` — every `unsafe` block or `unsafe impl` must be
//!   preceded by a `// SAFETY:` comment justifying it. Applies
//!   everywhere, including tests.
//! * `no-panic` — no `.unwrap()`, `.expect(…)`, `panic!` or `todo!` in
//!   non-test library code. The `cli`, `bench` and `tests` crates are
//!   exempt, as is anything under `#[cfg(test)]` / `#[test]`.
//! * `float-eq` — no `==`/`!=` against float literals or obvious `f64`
//!   expressions outside `ordf64.rs` and test code; bit-compare with
//!   `to_bits()`, order with `OrdF64`, or compare with a tolerance.
//! * `no-alloc` — inside a function annotated `// audit: no_alloc`, no
//!   allocating calls (`Vec::new`, `to_vec`, `collect`, `clone`,
//!   `Box::new`, `format!`, `vec!`, …). This turns the zero-allocation
//!   contract of the hot reduce/kNN paths into a per-function gate.
//! * `unsafe-bounds` — block-structured (uses [`crate::block`]): every
//!   raw memory access inside an `unsafe` block (`get_unchecked`,
//!   pointer `.add(…)`/`.offset(…)`, `from_raw_parts`, vector
//!   load/store intrinsics, …) must be covered, in the *same function*,
//!   by a `debug_assert!`-family bounds check or a comment documenting
//!   the length invariant (`in bounds`, `len()`, `fixed-size`, …); and
//!   every `#[target_feature]` fn must either be `unsafe` or carry a
//!   `SAFETY:` contract comment explaining why safe callers are sound.
//!   Applies everywhere, including tests.
//! * `cast-truncate` — narrowing `as` casts in non-test library code
//!   must become checked `try_from` conversions or carry a justified
//!   `// audit: cast_ok — <reason>` annotation on the same line or the
//!   line above. Casts to `u8`/`u16`/`u32`/`i8`/`i16`/`i32`/`f32`
//!   always count as narrowing; casts to the wide integer types only
//!   when the source expression shows float evidence (a float literal,
//!   `f64`/`f32`, or `floor`/`ceil`/`round`/`trunc`/`sqrt`), since
//!   float→int `as` saturates and silently drops fractions. Known
//!   false negative: a bare identifier of float type (`qs as usize`)
//!   carries no token-level evidence and is not flagged.

use crate::block::BlockTree;
use crate::lexer::{lex, Tok, TokKind};

/// One diagnostic: a lint fired at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Lint name (`unsafe-safety`, `no-panic`, `float-eq`, `no-alloc`,
    /// `unsafe-bounds`, `cast-truncate`, `lock-order`).
    pub lint: &'static str,
    /// Human-readable message.
    pub message: String,
    /// The full text of the offending source line (allowlist matching).
    pub line_text: String,
}

impl Finding {
    /// `path:line: [lint] message` — the rustc-like diagnostic line.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.path, self.line, self.lint, self.message)
    }
}

/// Crates whose binaries/benches/test-harness nature exempts them from
/// the `no-panic` and `float-eq` lints (`unsafe-safety` and `no-alloc`
/// still apply).
const EXEMPT_CRATES: &[&str] = &["crates/cli/", "crates/bench/", "crates/tests/"];

/// Lint one file. `rel_path` is the workspace-relative path used both
/// for diagnostics and for path-based exemptions.
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let toks = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let exempt_crate = EXEMPT_CRATES.iter().any(|p| rel_path.starts_with(p));
    let test_ranges = test_exempt_ranges(&toks);
    let in_test = |i: usize| test_ranges.iter().any(|&(a, b)| i >= a && i <= b);
    let mut out = Vec::new();

    lint_unsafe_safety(rel_path, &toks, &lines, &mut out);
    if !exempt_crate {
        lint_no_panic(rel_path, &toks, &lines, &in_test, &mut out);
        if !rel_path.ends_with("ordf64.rs") {
            lint_float_eq(rel_path, &toks, &lines, &in_test, &mut out);
        }
    }
    lint_no_alloc(rel_path, &toks, &lines, &mut out);

    let tree = BlockTree::build(&toks);
    lint_unsafe_bounds(rel_path, &toks, &lines, &tree, &mut out);
    if !exempt_crate {
        lint_cast_truncate(rel_path, &toks, &lines, &in_test, &mut out);
    }

    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.lint.cmp(b.lint)));
    out
}

fn finding(
    rel_path: &str,
    lines: &[&str],
    line: u32,
    lint: &'static str,
    message: String,
) -> Finding {
    Finding {
        path: rel_path.to_string(),
        line,
        lint,
        message,
        line_text: lines.get(line as usize - 1).map_or_else(String::new, |l| l.to_string()),
    }
}

/// Token index ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
/// items. An attribute counts as a test gate when it contains the bare
/// identifier `test` and no `not` (so `#[cfg(not(test))]` stays linted).
fn test_exempt_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let attr_end = match matching(toks, i + 1, "[", "]") {
                Some(e) => e,
                None => break,
            };
            let attr = &toks[i + 1..=attr_end];
            let is_test =
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
            if is_test {
                if let Some(end) = item_end(toks, attr_end + 1) {
                    ranges.push((i, end));
                    i = end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Index of the token closing the item that starts at `start` (skipping
/// leading comments and further attributes): the `}` matching its body's
/// first `{`, or the terminating `;` for brace-less items.
fn item_end(toks: &[Tok], start: usize) -> Option<usize> {
    let mut i = start;
    // Skip comments and further attributes decorating the same item.
    while i < toks.len() {
        if toks[i].kind == TokKind::Comment {
            i += 1;
        } else if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            i = matching(toks, i + 1, "[", "]")? + 1;
        } else {
            break;
        }
    }
    // First `{` (body) or `;` (brace-less item), whichever comes first.
    while i < toks.len() {
        if toks[i].is_punct(";") {
            return Some(i);
        }
        if toks[i].is_punct("{") {
            return matching(toks, i, "{", "}");
        }
        i += 1;
    }
    None
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold the `open_sym` token), counting nesting.
fn matching(toks: &[Tok], open: usize, open_sym: &str, close_sym: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_sym) {
            depth += 1;
        } else if t.is_punct(close_sym) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn lint_unsafe_safety(rel_path: &str, toks: &[Tok], lines: &[&str], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // Only unsafe *blocks* and *impls* need a local justification;
        // `unsafe fn` / `unsafe trait` document their contract in docs.
        let next = toks[i + 1..].iter().find(|t| t.kind != TokKind::Comment);
        let needs = next.is_some_and(|n| n.is_punct("{") || n.is_ident("impl"));
        if !needs {
            continue;
        }
        if !has_safety_comment_before(toks, i) {
            out.push(finding(
                rel_path,
                lines,
                t.line,
                "unsafe-safety",
                "`unsafe` block/impl without a preceding `// SAFETY:` comment".to_string(),
            ));
        }
    }
}

/// Walk backwards from the `unsafe` token over comments, visibility
/// modifiers and attributes; true if any comment on the way (or ending
/// the previous line) contains `SAFETY:`.
fn has_safety_comment_before(toks: &[Tok], unsafe_idx: usize) -> bool {
    let mut k = unsafe_idx;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        match t.kind {
            TokKind::Comment => {
                if t.text.contains("SAFETY:") {
                    return true;
                }
            }
            TokKind::Ident if t.text == "pub" || t.text == "crate" || t.text == "in" => {}
            TokKind::Punct if t.text == "(" || t.text == ")" => {}
            // Skip a whole attribute `#[…]` when we meet its closing `]`.
            TokKind::Punct if t.text == "]" => {
                let mut depth = 1usize;
                while k > 0 && depth > 0 {
                    k -= 1;
                    if toks[k].is_punct("]") {
                        depth += 1;
                    } else if toks[k].is_punct("[") {
                        depth -= 1;
                    }
                }
                if k > 0 && toks[k - 1].is_punct("#") {
                    k -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}

fn lint_no_panic(
    rel_path: &str,
    toks: &[Tok],
    lines: &[&str],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let t = &toks[i];
        let method_call = |name: &str| {
            t.is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_ident(name))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        };
        let bang_macro =
            |name: &str| t.is_ident(name) && toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        let hit = if method_call("unwrap") {
            Some("`.unwrap()`")
        } else if method_call("expect") {
            Some("`.expect(…)`")
        } else if bang_macro("panic") {
            Some("`panic!`")
        } else if bang_macro("todo") {
            Some("`todo!`")
        } else {
            None
        };
        if let Some(what) = hit {
            let line = toks.get(i + 1).map_or(t.line, |n| n.line);
            out.push(finding(
                rel_path,
                lines,
                line,
                "no-panic",
                format!(
                    "{what} in non-test library code — return a `sapla_core::Error` or \
                     allowlist with a one-line invariant justification"
                ),
            ));
        }
    }
}

/// Idents that make the neighbouring side of a comparison an obvious
/// float: `f64::NAN == x`, `x != f64::INFINITY`, …
const FLOAT_CONST_TAILS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY"];

fn lint_float_eq(
    rel_path: &str,
    toks: &[Tok],
    lines: &[&str],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) || in_test(i) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|k| toks.get(k));
        let next = toks.get(i + 1);
        let float_literal = prev.is_some_and(|p| p.kind == TokKind::Float)
            || next.is_some_and(|n| n.kind == TokKind::Float);
        let float_const = prev
            .is_some_and(|p| p.kind == TokKind::Ident && FLOAT_CONST_TAILS.contains(&&*p.text))
            || (next.is_some_and(|n| n.is_ident("f64") || n.is_ident("f32"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("::")));
        if float_literal || float_const {
            out.push(finding(
                rel_path,
                lines,
                t.line,
                "float-eq",
                format!(
                    "`{}` on a float — compare with `to_bits()`, `OrdF64`, or a tolerance",
                    t.text
                ),
            ));
        }
    }
}

/// Calls that allocate, as `(receiver-method)` names after a `.`.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "collect", "to_owned", "to_string"];
/// Allocating associated functions as `Type::name` paths.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];
/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

fn lint_no_alloc(rel_path: &str, toks: &[Tok], lines: &[&str], out: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        let is_marker =
            toks[i].kind == TokKind::Comment && toks[i].text.contains("audit: no_alloc");
        if !is_marker {
            i += 1;
            continue;
        }
        // Find the `fn` this marker annotates (skipping attributes,
        // comments and modifiers), then its body.
        let Some(fn_idx) = (i + 1..toks.len().min(i + 40)).find(|&k| toks[k].is_ident("fn")) else {
            i += 1;
            continue;
        };
        let fn_name = toks
            .get(fn_idx + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map_or_else(|| "?".to_string(), |t| t.text.clone());
        let Some(open) = (fn_idx..toks.len()).find(|&k| toks[k].is_punct("{")) else {
            i = fn_idx + 1;
            continue;
        };
        let Some(close) = matching(toks, open, "{", "}") else {
            i = fn_idx + 1;
            continue;
        };
        for k in open..=close {
            let t = &toks[k];
            let path_call = || -> Option<String> {
                let func = toks.get(k + 2)?;
                if toks.get(k + 1)?.is_punct("::")
                    && ALLOC_PATHS.iter().any(|(ty, f)| t.is_ident(ty) && func.is_ident(f))
                {
                    Some(format!("{}::{}", t.text, func.text))
                } else {
                    None
                }
            };
            let hit: Option<String> = if t.is_punct(".")
                && toks
                    .get(k + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && ALLOC_METHODS.contains(&&*n.text))
                && toks.get(k + 2).is_some_and(|n| n.is_punct("(") || n.is_punct("::"))
            {
                Some(format!(".{}()", toks[k + 1].text))
            } else if t.kind == TokKind::Ident && path_call().is_some() {
                path_call()
            } else if t.kind == TokKind::Ident
                && ALLOC_MACROS.contains(&&*t.text)
                && toks.get(k + 1).is_some_and(|n| n.is_punct("!"))
            {
                Some(format!("{}!", t.text))
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(finding(
                    rel_path,
                    lines,
                    toks[k].line,
                    "no-alloc",
                    format!("allocating call `{what}` inside `// audit: no_alloc` fn `{fn_name}`"),
                ));
            }
        }
        i = close + 1;
    }
}

/// Raw-access names that are method calls on pointers (`p.add(…)`),
/// requiring a preceding `.` so free functions of the same name don't
/// fire.
const RAW_DOT_ONLY: &[&str] = &["add", "offset", "sub", "byte_add", "byte_offset", "byte_sub"];
/// Raw-access names unambiguous in any call position.
const RAW_ANYWHERE: &[&str] = &[
    "get_unchecked",
    "get_unchecked_mut",
    "from_raw_parts",
    "from_raw_parts_mut",
    "copy_nonoverlapping",
    "read_unaligned",
    "write_unaligned",
    "read_volatile",
    "write_volatile",
    "set_len",
    "assume_init",
];
/// Bounds-checking macros whose presence in the enclosing fn counts as
/// coverage (any of them, invoked with `!`).
const BOUNDS_ASSERTS: &[&str] =
    &["debug_assert", "debug_assert_eq", "debug_assert_ne", "assert", "assert_eq", "assert_ne"];
/// Comment phrases accepted as a documented length invariant.
const INVARIANT_PHRASES: &[&str] =
    &["in bounds", "bounds", "len()", "length", "fixed-size", "capacity"];

/// True when token `k` is a raw memory access in call position: a
/// pointer-offset method, an unchecked accessor, or a SIMD load/store
/// intrinsic (`_mm*load*`, `vld1q_f64`, …).
fn raw_access(toks: &[Tok], k: usize) -> Option<&str> {
    let t = &toks[k];
    if t.kind != TokKind::Ident || !toks.get(k + 1).is_some_and(|n| n.is_punct("(")) {
        return None;
    }
    let name = t.text.as_str();
    let after_dot = k > 0 && toks[k - 1].is_punct(".");
    let intrinsic = (name.starts_with("_mm")
        && ["load", "store", "gather", "scatter"].iter().any(|op| name.contains(op)))
        || name.starts_with("vld")
        || name.starts_with("vst");
    if (after_dot && RAW_DOT_ONLY.contains(&name)) || RAW_ANYWHERE.contains(&name) || intrinsic {
        Some(name)
    } else {
        None
    }
}

/// `unsafe-bounds`: raw accesses inside `unsafe` blocks need a bounds
/// check or documented length invariant in the same function, and safe
/// `#[target_feature]` fns need a `SAFETY:` contract comment.
fn lint_unsafe_bounds(
    rel_path: &str,
    toks: &[Tok],
    lines: &[&str],
    tree: &BlockTree,
    out: &mut Vec<Finding>,
) {
    for &u in &tree.unsafe_blocks {
        // The block this `unsafe` introduces.
        let Some(open) = (u + 1..toks.len()).find(|&k| toks[k].is_punct("{")) else {
            continue;
        };
        let Some(block) = tree.blocks.iter().find(|b| b.open == open) else {
            continue;
        };
        let raw = (block.open..=block.close).find_map(|k| raw_access(toks, k).map(|n| (k, n)));
        let Some((raw_tok, raw_name)) = raw else {
            continue;
        };
        // Coverage is searched over the whole enclosing fn, from its
        // leading comments/attributes to the end of its body; an
        // `unsafe` block outside any fn falls back to its own extent.
        let (cover_start, cover_end, fn_name) = match tree.enclosing_fn(u) {
            Some(f) => {
                let item = &tree.fns[f];
                let end = item.body.map_or(block.close, |b| tree.blocks[b].close);
                (item.lead_start, end, item.name.clone())
            }
            None => (u, block.close, "?".to_string()),
        };
        let covered = toks[cover_start..=cover_end].iter().enumerate().any(|(off, t)| {
            let k = cover_start + off;
            match t.kind {
                TokKind::Comment => {
                    let lower = t.text.to_lowercase();
                    INVARIANT_PHRASES.iter().any(|p| lower.contains(p))
                }
                TokKind::Ident => {
                    BOUNDS_ASSERTS.contains(&t.text.as_str())
                        && toks.get(k + 1).is_some_and(|n| n.is_punct("!"))
                }
                _ => false,
            }
        });
        if !covered {
            out.push(finding(
                rel_path,
                lines,
                toks[raw_tok].line,
                "unsafe-bounds",
                format!(
                    "raw access `{raw_name}` in `unsafe` block of fn `{fn_name}` with no \
                     `debug_assert!` bounds check or length-invariant comment in the function"
                ),
            ));
        }
    }
    for f in &tree.fns {
        if !f.target_feature || f.is_unsafe {
            continue;
        }
        let contract = toks[f.lead_start..f.fn_tok]
            .iter()
            .any(|t| t.kind == TokKind::Comment && t.text.contains("SAFETY"));
        if !contract {
            out.push(finding(
                rel_path,
                lines,
                toks[f.fn_tok].line,
                "unsafe-bounds",
                format!(
                    "safe `#[target_feature]` fn `{}` without a `SAFETY:` contract comment \
                     explaining why safe callers are sound",
                    f.name
                ),
            ));
        }
    }
}

/// Cast targets that always narrow (from any integer in practical use).
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
/// Wide integer targets: narrowing only from floats, so they are
/// flagged only when the source expression shows float evidence.
const WIDE_TARGETS: &[&str] = &["usize", "u64", "u128", "isize", "i64", "i128"];
/// Method names that mark a source expression as float-valued.
const FLOAT_EVIDENCE_FNS: &[&str] = &["floor", "ceil", "round", "trunc", "sqrt"];

/// `cast-truncate`: narrowing `as` casts need `try_from` or a justified
/// `// audit: cast_ok` annotation.
fn lint_cast_truncate(
    rel_path: &str,
    toks: &[Tok],
    lines: &[&str],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("as") || in_test(i) {
            continue;
        }
        let Some(target) = toks[i + 1..]
            .iter()
            .find(|t| t.kind != TokKind::Comment)
            .filter(|t| t.kind == TokKind::Ident)
        else {
            continue;
        };
        let target = target.text.as_str();
        let narrow = NARROW_TARGETS.contains(&target);
        if !narrow && !WIDE_TARGETS.contains(&target) {
            continue;
        }
        if !narrow {
            // Wide targets: only float sources narrow. Walk the postfix
            // chain of the source expression backwards and look for
            // float evidence anywhere in it (including call arguments).
            let start = cast_source_start(toks, i);
            let evidence = toks[start..i].iter().any(|t| {
                t.kind == TokKind::Float
                    || (t.kind == TokKind::Ident
                        && (t.text == "f64"
                            || t.text == "f32"
                            || FLOAT_EVIDENCE_FNS.contains(&t.text.as_str())))
            });
            if !evidence {
                continue;
            }
        }
        let lineno = toks[i].line;
        match cast_annotation(lines, lineno) {
            Some(true) => {}
            Some(false) => out.push(finding(
                rel_path,
                lines,
                lineno,
                "cast-truncate",
                "`// audit: cast_ok` without a justification — say why the value fits".to_string(),
            )),
            None => out.push(finding(
                rel_path,
                lines,
                lineno,
                "cast-truncate",
                format!(
                    "narrowing `as {target}` cast in library code — use `try_from` (existing \
                     error variants: `TooManyRecords`/`CorruptIndex`) or annotate the line with \
                     `// audit: cast_ok — <why the value fits>`"
                ),
            )),
        }
    }
}

/// Look for an `audit: cast_ok` annotation on `lineno` or in the run
/// of `//` comment lines directly above it. `Some(true)` = annotated
/// with a justification, `Some(false)` = annotated but bare, `None` =
/// no annotation.
fn cast_annotation(lines: &[&str], lineno: u32) -> Option<bool> {
    let marker = "audit: cast_ok";
    let check = |text: &str| {
        text.find(marker).map(|at| {
            let reason =
                text[at + marker.len()..].trim_start_matches([' ', '\t', '-', '—', ':', ',']);
            reason.trim().len() >= 10
        })
    };
    let at = lineno as usize; // 1-based
    if let Some(hit) = lines.get(at.wrapping_sub(1)).and_then(|l| check(l)) {
        return Some(hit);
    }
    let mut k = at.wrapping_sub(1); // 0-based index of the line above
    while k > 0 && lines.get(k - 1).is_some_and(|l| l.trim_start().starts_with("//")) {
        k -= 1;
        if let Some(hit) = check(lines[k]) {
            return Some(hit);
        }
    }
    None
}

/// Token index where the postfix chain of the expression ending just
/// before the `as` at `as_idx` begins. Walks left over `expr.method(…)`
/// / `path::seg` / `x[i]` / `(grouped)` links; the returned range is
/// only used to scan for float evidence, so over-shooting into a
/// receiver is harmless and under-shooting (stopping at an operator)
/// only loses evidence the operator's operand would carry anyway.
fn cast_source_start(toks: &[Tok], as_idx: usize) -> usize {
    let prev = |from: usize| (0..from).rev().find(|&k| toks[k].kind != TokKind::Comment);
    let Some(mut i) = prev(as_idx) else {
        return as_idx;
    };
    loop {
        let t = &toks[i];
        if t.is_punct(")") || t.is_punct("]") {
            // Jump to the matching opener, then keep following the
            // chain through a callee/receiver before it.
            let close_sym = t.text.clone();
            let open_sym = if close_sym == ")" { "(" } else { "[" };
            let mut depth = 1usize;
            let mut j = i;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(&close_sym) {
                    depth += 1;
                } else if toks[j].is_punct(open_sym) {
                    depth -= 1;
                }
            }
            match prev(j) {
                Some(p)
                    if toks[p].kind == TokKind::Ident
                        || toks[p].is_punct(")")
                        || toks[p].is_punct("]") =>
                {
                    i = p;
                }
                _ => return j,
            }
        } else if matches!(t.kind, TokKind::Ident | TokKind::Int | TokKind::Float) {
            match prev(i) {
                Some(p) if toks[p].is_punct(".") || toks[p].is_punct("::") => match prev(p) {
                    Some(q) => i = q,
                    None => return p,
                },
                _ => return i,
            }
        } else {
            return i + 1;
        }
    }
}
