//! The project lints, run over the token stream of one file at a time.
//!
//! Four lints, each encoding a contract the workspace's correctness
//! story depends on (see DESIGN.md "Static analysis & model checking"):
//!
//! * `unsafe-safety` — every `unsafe` block or `unsafe impl` must be
//!   preceded by a `// SAFETY:` comment justifying it. Applies
//!   everywhere, including tests.
//! * `no-panic` — no `.unwrap()`, `.expect(…)`, `panic!` or `todo!` in
//!   non-test library code. The `cli`, `bench` and `tests` crates are
//!   exempt, as is anything under `#[cfg(test)]` / `#[test]`.
//! * `float-eq` — no `==`/`!=` against float literals or obvious `f64`
//!   expressions outside `ordf64.rs` and test code; bit-compare with
//!   `to_bits()`, order with `OrdF64`, or compare with a tolerance.
//! * `no-alloc` — inside a function annotated `// audit: no_alloc`, no
//!   allocating calls (`Vec::new`, `to_vec`, `collect`, `clone`,
//!   `Box::new`, `format!`, `vec!`, …). This turns the zero-allocation
//!   contract of the hot reduce/kNN paths into a per-function gate.

use crate::lexer::{lex, Tok, TokKind};

/// One diagnostic: a lint fired at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Lint name (`unsafe-safety`, `no-panic`, `float-eq`, `no-alloc`).
    pub lint: &'static str,
    /// Human-readable message.
    pub message: String,
    /// The full text of the offending source line (allowlist matching).
    pub line_text: String,
}

impl Finding {
    /// `path:line: [lint] message` — the rustc-like diagnostic line.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.path, self.line, self.lint, self.message)
    }
}

/// Crates whose binaries/benches/test-harness nature exempts them from
/// the `no-panic` and `float-eq` lints (`unsafe-safety` and `no-alloc`
/// still apply).
const EXEMPT_CRATES: &[&str] = &["crates/cli/", "crates/bench/", "crates/tests/"];

/// Lint one file. `rel_path` is the workspace-relative path used both
/// for diagnostics and for path-based exemptions.
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let toks = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let exempt_crate = EXEMPT_CRATES.iter().any(|p| rel_path.starts_with(p));
    let test_ranges = test_exempt_ranges(&toks);
    let in_test = |i: usize| test_ranges.iter().any(|&(a, b)| i >= a && i <= b);
    let mut out = Vec::new();

    lint_unsafe_safety(rel_path, &toks, &lines, &mut out);
    if !exempt_crate {
        lint_no_panic(rel_path, &toks, &lines, &in_test, &mut out);
        if !rel_path.ends_with("ordf64.rs") {
            lint_float_eq(rel_path, &toks, &lines, &in_test, &mut out);
        }
    }
    lint_no_alloc(rel_path, &toks, &lines, &mut out);

    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.lint.cmp(b.lint)));
    out
}

fn finding(
    rel_path: &str,
    lines: &[&str],
    line: u32,
    lint: &'static str,
    message: String,
) -> Finding {
    Finding {
        path: rel_path.to_string(),
        line,
        lint,
        message,
        line_text: lines.get(line as usize - 1).map_or_else(String::new, |l| l.to_string()),
    }
}

/// Token index ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
/// items. An attribute counts as a test gate when it contains the bare
/// identifier `test` and no `not` (so `#[cfg(not(test))]` stays linted).
fn test_exempt_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let attr_end = match matching(toks, i + 1, "[", "]") {
                Some(e) => e,
                None => break,
            };
            let attr = &toks[i + 1..=attr_end];
            let is_test =
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
            if is_test {
                if let Some(end) = item_end(toks, attr_end + 1) {
                    ranges.push((i, end));
                    i = end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Index of the token closing the item that starts at `start` (skipping
/// leading comments and further attributes): the `}` matching its body's
/// first `{`, or the terminating `;` for brace-less items.
fn item_end(toks: &[Tok], start: usize) -> Option<usize> {
    let mut i = start;
    // Skip comments and further attributes decorating the same item.
    while i < toks.len() {
        if toks[i].kind == TokKind::Comment {
            i += 1;
        } else if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            i = matching(toks, i + 1, "[", "]")? + 1;
        } else {
            break;
        }
    }
    // First `{` (body) or `;` (brace-less item), whichever comes first.
    while i < toks.len() {
        if toks[i].is_punct(";") {
            return Some(i);
        }
        if toks[i].is_punct("{") {
            return matching(toks, i, "{", "}");
        }
        i += 1;
    }
    None
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold the `open_sym` token), counting nesting.
fn matching(toks: &[Tok], open: usize, open_sym: &str, close_sym: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_sym) {
            depth += 1;
        } else if t.is_punct(close_sym) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn lint_unsafe_safety(rel_path: &str, toks: &[Tok], lines: &[&str], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // Only unsafe *blocks* and *impls* need a local justification;
        // `unsafe fn` / `unsafe trait` document their contract in docs.
        let next = toks[i + 1..].iter().find(|t| t.kind != TokKind::Comment);
        let needs = next.is_some_and(|n| n.is_punct("{") || n.is_ident("impl"));
        if !needs {
            continue;
        }
        if !has_safety_comment_before(toks, i) {
            out.push(finding(
                rel_path,
                lines,
                t.line,
                "unsafe-safety",
                "`unsafe` block/impl without a preceding `// SAFETY:` comment".to_string(),
            ));
        }
    }
}

/// Walk backwards from the `unsafe` token over comments, visibility
/// modifiers and attributes; true if any comment on the way (or ending
/// the previous line) contains `SAFETY:`.
fn has_safety_comment_before(toks: &[Tok], unsafe_idx: usize) -> bool {
    let mut k = unsafe_idx;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        match t.kind {
            TokKind::Comment => {
                if t.text.contains("SAFETY:") {
                    return true;
                }
            }
            TokKind::Ident if t.text == "pub" || t.text == "crate" || t.text == "in" => {}
            TokKind::Punct if t.text == "(" || t.text == ")" => {}
            // Skip a whole attribute `#[…]` when we meet its closing `]`.
            TokKind::Punct if t.text == "]" => {
                let mut depth = 1usize;
                while k > 0 && depth > 0 {
                    k -= 1;
                    if toks[k].is_punct("]") {
                        depth += 1;
                    } else if toks[k].is_punct("[") {
                        depth -= 1;
                    }
                }
                if k > 0 && toks[k - 1].is_punct("#") {
                    k -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}

fn lint_no_panic(
    rel_path: &str,
    toks: &[Tok],
    lines: &[&str],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let t = &toks[i];
        let method_call = |name: &str| {
            t.is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_ident(name))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        };
        let bang_macro =
            |name: &str| t.is_ident(name) && toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        let hit = if method_call("unwrap") {
            Some("`.unwrap()`")
        } else if method_call("expect") {
            Some("`.expect(…)`")
        } else if bang_macro("panic") {
            Some("`panic!`")
        } else if bang_macro("todo") {
            Some("`todo!`")
        } else {
            None
        };
        if let Some(what) = hit {
            let line = toks.get(i + 1).map_or(t.line, |n| n.line);
            out.push(finding(
                rel_path,
                lines,
                line,
                "no-panic",
                format!(
                    "{what} in non-test library code — return a `sapla_core::Error` or \
                     allowlist with a one-line invariant justification"
                ),
            ));
        }
    }
}

/// Idents that make the neighbouring side of a comparison an obvious
/// float: `f64::NAN == x`, `x != f64::INFINITY`, …
const FLOAT_CONST_TAILS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY"];

fn lint_float_eq(
    rel_path: &str,
    toks: &[Tok],
    lines: &[&str],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) || in_test(i) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|k| toks.get(k));
        let next = toks.get(i + 1);
        let float_literal = prev.is_some_and(|p| p.kind == TokKind::Float)
            || next.is_some_and(|n| n.kind == TokKind::Float);
        let float_const = prev
            .is_some_and(|p| p.kind == TokKind::Ident && FLOAT_CONST_TAILS.contains(&&*p.text))
            || (next.is_some_and(|n| n.is_ident("f64") || n.is_ident("f32"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("::")));
        if float_literal || float_const {
            out.push(finding(
                rel_path,
                lines,
                t.line,
                "float-eq",
                format!(
                    "`{}` on a float — compare with `to_bits()`, `OrdF64`, or a tolerance",
                    t.text
                ),
            ));
        }
    }
}

/// Calls that allocate, as `(receiver-method)` names after a `.`.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "collect", "to_owned", "to_string"];
/// Allocating associated functions as `Type::name` paths.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];
/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

fn lint_no_alloc(rel_path: &str, toks: &[Tok], lines: &[&str], out: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        let is_marker =
            toks[i].kind == TokKind::Comment && toks[i].text.contains("audit: no_alloc");
        if !is_marker {
            i += 1;
            continue;
        }
        // Find the `fn` this marker annotates (skipping attributes,
        // comments and modifiers), then its body.
        let Some(fn_idx) = (i + 1..toks.len().min(i + 40)).find(|&k| toks[k].is_ident("fn")) else {
            i += 1;
            continue;
        };
        let fn_name = toks
            .get(fn_idx + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map_or_else(|| "?".to_string(), |t| t.text.clone());
        let Some(open) = (fn_idx..toks.len()).find(|&k| toks[k].is_punct("{")) else {
            i = fn_idx + 1;
            continue;
        };
        let Some(close) = matching(toks, open, "{", "}") else {
            i = fn_idx + 1;
            continue;
        };
        for k in open..=close {
            let t = &toks[k];
            let path_call = || -> Option<String> {
                let func = toks.get(k + 2)?;
                if toks.get(k + 1)?.is_punct("::")
                    && ALLOC_PATHS.iter().any(|(ty, f)| t.is_ident(ty) && func.is_ident(f))
                {
                    Some(format!("{}::{}", t.text, func.text))
                } else {
                    None
                }
            };
            let hit: Option<String> = if t.is_punct(".")
                && toks
                    .get(k + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident && ALLOC_METHODS.contains(&&*n.text))
                && toks.get(k + 2).is_some_and(|n| n.is_punct("(") || n.is_punct("::"))
            {
                Some(format!(".{}()", toks[k + 1].text))
            } else if t.kind == TokKind::Ident && path_call().is_some() {
                path_call()
            } else if t.kind == TokKind::Ident
                && ALLOC_MACROS.contains(&&*t.text)
                && toks.get(k + 1).is_some_and(|n| n.is_punct("!"))
            {
                Some(format!("{}!", t.text))
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(finding(
                    rel_path,
                    lines,
                    toks[k].line,
                    "no-alloc",
                    format!("allocating call `{what}` inside `// audit: no_alloc` fn `{fn_name}`"),
                ));
            }
        }
        i = close + 1;
    }
}
