//! A small hand-rolled Rust lexer — enough of the language to lint on.
//!
//! The offline workspace has no `syn`/`proc-macro2`, so the lint pass
//! tokenises source itself. The lexer handles everything that could make
//! a naive text scan lie about code: line (`//`) and nested block
//! (`/* */`) comments, doc comments, string / raw-string / byte-string
//! literals with arbitrary `#` fences, char literals vs. lifetimes, and
//! numeric literals (classifying floats for the float-equality lint).
//! Comments are *kept* in the token stream because two lints read them
//! (`// SAFETY:` and `// audit: no_alloc`).
//!
//! It does not parse: the lints downstream work on the token stream with
//! brace matching, which is exact for the constructs they care about.

/// What a token is, as far as the lints need to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `unwrap`, …).
    Ident,
    /// A lifetime such as `'a` (including the leading quote).
    Lifetime,
    /// Integer literal (any base, any suffix).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`, …).
    Float,
    /// String, raw-string, byte-string or C-string literal.
    Str,
    /// Char or byte literal.
    Char,
    /// Punctuation / operator, maximal munch (`==`, `::`, `->`, …).
    Punct,
    /// Any comment, line or block, doc or plain. Text includes markers.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the list in order.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Tokenise `source`. Unterminated literals and comments are tolerated
/// (the remainder of the file becomes one token) — the linter's job is
/// to diagnose project rules, not syntax errors `rustc` already rejects.
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer { src: source.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(start, line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(start, line),
                b'"' => self.string(start, line),
                b'\'' => self.quote(start, line),
                b'0'..=b'9' => self.number(start, line),
                c if ident_start(c) => self.ident_or_prefixed(start, line),
                _ => self.punct(start, line),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.push(Tok { kind, text, line });
    }

    fn bump_lines(&mut self, from: usize) {
        for &b in &self.src[from..self.pos] {
            if b == b'\n' {
                self.line += 1;
            }
        }
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokKind::Comment, start, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.bump_lines(start);
        self.push(TokKind::Comment, start, line);
    }

    /// A `"…"` string with escapes.
    fn string(&mut self, start: usize, line: u32) {
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        self.bump_lines(start);
        self.push(TokKind::Str, start, line);
    }

    /// `r"…"` / `r#"…"#` with any number of `#` fences. `self.pos` is on
    /// the first `#` or `"` after the prefix.
    fn raw_string(&mut self, start: usize, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        'scan: while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                // A close needs `hashes` trailing #s.
                for k in 0..hashes {
                    if self.src.get(self.pos + 1 + k) != Some(&b'#') {
                        self.pos += 1;
                        continue 'scan;
                    }
                }
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.bump_lines(start);
        self.push(TokKind::Str, start, line);
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, start: usize, line: u32) {
        match self.peek(1) {
            // `'\…'` is always a char literal.
            Some(b'\\') => {
                self.pos += 2; // quote + backslash
                self.pos += 1; // escaped char (or first of \u{…})
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos += 1;
                self.push(TokKind::Char, start, line);
            }
            // `'x'` (closing quote right after one char) is a char.
            Some(c) if self.peek(2) == Some(b'\'') && c != b'\'' => {
                self.pos += 3;
                self.push(TokKind::Char, start, line);
            }
            // Otherwise `'ident` is a lifetime (or `'static`).
            Some(c) if ident_start(c) => {
                self.pos += 2;
                while self.pos < self.src.len() && ident_continue(self.src[self.pos]) {
                    self.pos += 1;
                }
                self.push(TokKind::Lifetime, start, line);
            }
            _ => {
                self.pos += 1;
                self.push(TokKind::Punct, start, line);
            }
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        let mut is_float = false;
        let hex_or_bin = self.src[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x') | Some(b'X') | Some(b'b') | Some(b'o'));
        if hex_or_bin {
            self.pos += 2;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            self.push(TokKind::Int, start, line);
            return;
        }
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_digit() || c == b'_' {
                self.pos += 1;
            } else if c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) && !is_float {
                // `1.5` — but `1..4` and `1.method()` leave the dot alone.
                is_float = true;
                self.pos += 1;
            } else if (c == b'e' || c == b'E')
                && self.peek(1).is_some_and(|d| d.is_ascii_digit() || d == b'+' || d == b'-')
                && self
                    .peek(if matches!(self.peek(1), Some(b'+') | Some(b'-')) { 2 } else { 1 })
                    .is_some_and(|d| d.is_ascii_digit())
            {
                is_float = true;
                self.pos += 2;
            } else if c == b'f' && (self.rest_starts("f32") || self.rest_starts("f64")) {
                is_float = true;
                self.pos += 3;
                break;
            } else if ident_start(c) {
                // Integer suffix (`u32`, `usize`, …).
                while self.pos < self.src.len() && ident_continue(self.src[self.pos]) {
                    self.pos += 1;
                }
                break;
            } else {
                break;
            }
        }
        self.push(if is_float { TokKind::Float } else { TokKind::Int }, start, line);
    }

    fn rest_starts(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn ident_or_prefixed(&mut self, start: usize, line: u32) {
        while self.pos < self.src.len() && ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let next = self.peek(0);
        // Raw / byte string and char prefixes: r" r#" b" br#" c" b' r#ident
        match text {
            b"r" | b"br" | b"rb" | b"c" | b"cr" if matches!(next, Some(b'"') | Some(b'#')) => {
                // `r#ident` (raw identifier) vs `r#"…"#`: a raw string's
                // hashes are followed by `"` eventually; a raw ident by
                // an ident char. Distinguish on the byte after the #s.
                let mut k = 0;
                while self.peek(k) == Some(b'#') {
                    k += 1;
                }
                if self.peek(k) == Some(b'"') {
                    self.raw_string(start, line);
                    return;
                }
                if k > 0 {
                    // raw identifier r#foo
                    self.pos += k;
                    while self.pos < self.src.len() && ident_continue(self.src[self.pos]) {
                        self.pos += 1;
                    }
                }
                self.push(TokKind::Ident, start, line);
            }
            b"b" if next == Some(b'"') => self.string(start, line),
            b"b" if next == Some(b'\'') => {
                self.pos += 1;
                self.quote(start, line);
                // quote() already pushed with kind Char; fix the text to
                // include the `b` prefix (it used `start`, so it does).
            }
            _ => self.push(TokKind::Ident, start, line),
        }
    }

    fn punct(&mut self, start: usize, line: u32) {
        for op in PUNCTS {
            if self.src[self.pos..].starts_with(op.as_bytes()) {
                self.pos += op.len();
                self.push(TokKind::Punct, start, line);
                return;
            }
        }
        self.pos += 1;
        self.push(TokKind::Punct, start, line);
    }
}

fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_strings_and_code_are_separated() {
        let toks = kinds(
            "// line \"not a string\"\nlet s = \"// not a comment\"; /* blk /* nested */ */ x",
        );
        assert_eq!(toks[0].0, TokKind::Comment);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("not a comment")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Comment && t.contains("nested")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"let s = r#"has "quotes" and .unwrap()"#; y"###);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("unwrap")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "y"));
        // The unwrap inside the raw string must NOT lex as an ident.
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn float_classification() {
        for (src, float_count) in [
            ("1.0 + 2.5e3 - 7", 2),
            ("1..4", 0),
            ("x.0.clone()", 0),
            ("3f64 - 2e-9 + 0x1f", 2),
            ("tuple.1 .0", 0),
            ("1_000.5", 1),
        ] {
            let got = lex(src).iter().filter(|t| t.kind == TokKind::Float).count();
            assert_eq!(got, float_count, "source: {src}");
        }
    }

    #[test]
    fn multi_char_operators_munch_maximally() {
        let toks = kinds("a == b != c :: d -> e ..= f");
        let puncts: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Punct).map(|(_, t)| t.as_str()).collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->", "..="]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("a\n/* two\nlines */\nb\n\"str\nacross\"\nc");
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }
}
