//! Block structure over the token stream: the layer between the lexer
//! and the block-sensitive lints.
//!
//! The PR-3 lints work on a flat token stream with ad-hoc brace
//! matching, which is enough for "is there a SAFETY comment above this
//! token" but not for questions like *which function does this
//! `get_unchecked` live in* or *is this `Condvar::wait` inside a loop*.
//! This module builds, in one pass, a tree of `{ … }` blocks (with
//! parent links and a loop/other classification) and a list of `fn`
//! items (with their modifiers, attributes, and body block), then
//! answers containment queries over token indices.
//!
//! It is still not a parser — generics, patterns and expressions are
//! never analysed. The only structural facts extracted are the ones
//! brace/bracket matching can establish exactly:
//!
//! * every `{` / `}` pair, its nesting parent, and whether the block is
//!   the body of a `loop` / `while` / `for` (found by scanning backwards
//!   from the `{` to the start of its statement);
//! * every `fn` item: name, whether the token run between its leading
//!   attributes and the `fn` keyword contains `unsafe`, whether any
//!   attribute mentions `target_feature`, the token index where its
//!   leading comments/attributes begin (so lints can search contract
//!   comments), and its body block if it has one;
//! * every `unsafe` token introducing an `unsafe { … }` block.

use crate::lexer::{Tok, TokKind};

/// How a `{ … }` block is introduced, as far as the lints care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Body of `loop`, `while`, `while let` or `for` — the kinds of
    /// block whose re-entry re-checks a predicate.
    Loop,
    /// Anything else: fn bodies, `if`/`else`/`match` arms, `unsafe`
    /// blocks, plain scopes, struct literals, …
    Other,
}

/// One `{ … }` pair.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token index of the `{`.
    pub open: usize,
    /// Token index of the matching `}` (or the last token of the file
    /// when unbalanced — the lexer tolerates syntax errors, so we do
    /// too).
    pub close: usize,
    /// Index into [`BlockTree::blocks`] of the enclosing block.
    pub parent: Option<usize>,
    /// Loop body or not.
    pub kind: BlockKind,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name (`?` for `fn` tokens without one, which a
    /// valid file never has).
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index where the item's leading comments/attributes start —
    /// the left edge for "is there a contract comment on this fn".
    pub lead_start: usize,
    /// Index into [`BlockTree::blocks`] of the body, `None` for trait
    /// method declarations (`fn f();`).
    pub body: Option<usize>,
    /// `unsafe fn`.
    pub is_unsafe: bool,
    /// Carries a `#[target_feature(…)]` attribute.
    pub target_feature: bool,
}

/// The block structure of one file.
#[derive(Debug, Default)]
pub struct BlockTree {
    /// All blocks, in order of their `{` token.
    pub blocks: Vec<Block>,
    /// All `fn` items, in order of their `fn` token.
    pub fns: Vec<FnItem>,
    /// Token indices of `unsafe` tokens that introduce `unsafe { … }`
    /// blocks (not `unsafe fn` / `unsafe impl` / `unsafe trait`).
    pub unsafe_blocks: Vec<usize>,
}

impl BlockTree {
    /// Build the tree for a lexed file.
    pub fn build(toks: &[Tok]) -> Self {
        let mut tree = BlockTree::default();
        let mut stack: Vec<usize> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.is_punct("{") {
                let kind = block_kind(toks, i);
                tree.blocks.push(Block {
                    open: i,
                    close: toks.len().saturating_sub(1),
                    parent: stack.last().copied(),
                    kind,
                });
                stack.push(tree.blocks.len() - 1);
            } else if t.is_punct("}") {
                if let Some(b) = stack.pop() {
                    tree.blocks[b].close = i;
                }
            } else if t.is_ident("fn") {
                tree.push_fn(toks, i);
            } else if t.is_ident("unsafe") {
                let next = toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment);
                if next.is_some_and(|n| n.is_punct("{")) {
                    tree.unsafe_blocks.push(i);
                }
            }
        }
        // Attach fn bodies: the first block whose `{` follows the `fn`
        // token before any `;` at the item's level. The signature scan
        // in `push_fn` recorded the body `{` index; resolve it here.
        for f in &mut tree.fns {
            if let Some(open) = f.body {
                f.body = tree.blocks.iter().position(|b| b.open == open);
            }
        }
        tree
    }

    fn push_fn(&mut self, toks: &[Tok], fn_idx: usize) {
        let name = toks
            .get(fn_idx + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map_or_else(|| "?".to_string(), |t| t.text.clone());
        // Walk backwards over modifiers, attributes and comments to the
        // item's left edge, noting `unsafe` and `#[target_feature]`.
        let mut is_unsafe = false;
        let mut target_feature = false;
        let mut lead_start = fn_idx;
        let mut k = fn_idx;
        while k > 0 {
            let t = &toks[k - 1];
            let keep = match t.kind {
                TokKind::Comment => true,
                TokKind::Str => true, // extern "C"
                TokKind::Ident => matches!(
                    t.text.as_str(),
                    "pub"
                        | "crate"
                        | "in"
                        | "super"
                        | "self"
                        | "const"
                        | "async"
                        | "unsafe"
                        | "extern"
                        | "default"
                ),
                TokKind::Punct => t.text == "(" || t.text == ")" || t.text == "]",
                _ => false,
            };
            if !keep {
                break;
            }
            if t.is_ident("unsafe") {
                is_unsafe = true;
            }
            if t.is_punct("]") {
                // Swallow the whole attribute, checking its contents.
                let mut depth = 1usize;
                let mut j = k - 1;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].is_punct("]") {
                        depth += 1;
                    } else if toks[j].is_punct("[") {
                        depth -= 1;
                    }
                }
                if toks[j..k].iter().any(|a| a.is_ident("target_feature")) {
                    target_feature = true;
                }
                if j > 0 && toks[j - 1].is_punct("#") {
                    j -= 1;
                }
                k = j;
                lead_start = k;
                continue;
            }
            k -= 1;
            lead_start = k;
        }
        // Forward scan for the body `{` or the declaration's `;`,
        // skipping bracketed groups so array types in the signature
        // (`[f64; 4]`) don't end the item early. Signatures contain no
        // braces in this codebase (no const-expr default generics), so
        // the first top-level `{` / `;` decides.
        let mut body = None;
        let mut depth = 0usize;
        for (j, t) in toks.iter().enumerate().skip(fn_idx) {
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(";") {
                break;
            } else if depth == 0 && t.is_punct("{") {
                body = Some(j); // resolved to a block index in `build`
                break;
            }
        }
        self.fns.push(FnItem { name, fn_tok: fn_idx, lead_start, body, is_unsafe, target_feature });
    }

    /// Index of the innermost block containing token `tok`, if any.
    pub fn innermost(&self, tok: usize) -> Option<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.open < tok && tok <= b.close)
            .max_by_key(|(_, b)| b.open)
            .map(|(i, _)| i)
    }

    /// Index (into `fns`) of the innermost fn whose body contains `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.body
                    .and_then(|b| self.blocks.get(b))
                    .is_some_and(|b| b.open < tok && tok <= b.close)
            })
            .max_by_key(|(_, f)| f.fn_tok)
            .map(|(i, _)| i)
    }

    /// True when token `tok` sits inside a loop body without leaving the
    /// body of fn `f` (loops in *enclosing* fns don't count: a closure's
    /// `wait` inside an outer loop is still not predicate-checked).
    pub fn in_loop_within_fn(&self, tok: usize, f: usize) -> bool {
        let Some(body) = self.fns.get(f).and_then(|f| f.body) else {
            return false;
        };
        let mut cur = self.innermost(tok);
        while let Some(b) = cur {
            if self.blocks[b].kind == BlockKind::Loop {
                return true;
            }
            if b == body {
                return false;
            }
            cur = self.blocks[b].parent;
        }
        false
    }
}

/// Classify the block opened at token `open` by walking backwards to
/// the start of its controlling statement. Stops at statement
/// boundaries (`;`, `{`, `}`, `=>`) and at the first control keyword;
/// bracketed groups (`(…)`, `[…]`) are skipped whole so `while
/// pred(a, b) {` and `for x in v[..n] {` classify on the keyword, not
/// their contents.
fn block_kind(toks: &[Tok], open: usize) -> BlockKind {
    let mut k = open;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        match t.kind {
            TokKind::Comment => {}
            TokKind::Punct => match t.text.as_str() {
                ";" | "{" | "}" | "=>" => return BlockKind::Other,
                ")" | "]" => {
                    let close_sym = t.text.clone();
                    let open_sym = if close_sym == ")" { "(" } else { "[" };
                    let mut depth = 1usize;
                    while k > 0 && depth > 0 {
                        k -= 1;
                        if toks[k].is_punct(&close_sym) {
                            depth += 1;
                        } else if toks[k].is_punct(open_sym) {
                            depth -= 1;
                        }
                    }
                }
                _ => {}
            },
            TokKind::Ident => match t.text.as_str() {
                "loop" | "while" | "for" => return BlockKind::Loop,
                "if" | "else" | "match" | "unsafe" | "async" | "move" | "try" => {
                    return BlockKind::Other
                }
                _ => {}
            },
            _ => {}
        }
    }
    BlockKind::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_items_and_bodies() {
        let toks = lex("/// docs\n#[inline]\npub unsafe fn danger(x: usize) -> usize { x }\n\
             fn plain() {}\ntrait T { fn decl(&self); }\n");
        let tree = BlockTree::build(&toks);
        let names: Vec<&str> = tree.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["danger", "plain", "decl"]);
        assert!(tree.fns[0].is_unsafe && !tree.fns[1].is_unsafe);
        assert!(tree.fns[0].body.is_some());
        assert!(tree.fns[2].body.is_none());
        // The lead of `danger` reaches back over the attribute and doc.
        assert_eq!(tree.fns[0].lead_start, 0);
    }

    #[test]
    fn target_feature_detection() {
        let toks = lex("#[inline]\n#[target_feature(enable = \"avx2\")]\nfn fast() {}\n\
             #[cold]\nfn slow() {}\n");
        let tree = BlockTree::build(&toks);
        assert!(tree.fns[0].target_feature);
        assert!(!tree.fns[1].target_feature);
    }

    #[test]
    fn loop_kinds() {
        let src = "fn f(v: Vec<u32>) {\n\
                   loop { body(); }\n\
                   while cond(a, b) { body(); }\n\
                   while let Some(x) = it.next() { body(); }\n\
                   for x in v[..n].iter() { body(); }\n\
                   if c { body(); }\n\
                   match x { _ => { body(); } }\n\
                   let s = Foo { a: 1 };\n\
                   }\n";
        let toks = lex(src);
        let tree = BlockTree::build(&toks);
        let loops = tree.blocks.iter().filter(|b| b.kind == BlockKind::Loop).count();
        assert_eq!(loops, 4, "loop/while/while-let/for and nothing else");
    }

    #[test]
    fn containment_queries() {
        let src = "fn outer() { loop { inner_tok(); } }\nfn flat() { other_tok(); }\n";
        let toks = lex(src);
        let tree = BlockTree::build(&toks);
        let inner = toks.iter().position(|t| t.is_ident("inner_tok")).unwrap();
        let other = toks.iter().position(|t| t.is_ident("other_tok")).unwrap();
        let f0 = tree.enclosing_fn(inner).unwrap();
        assert_eq!(tree.fns[f0].name, "outer");
        assert!(tree.in_loop_within_fn(inner, f0));
        let f1 = tree.enclosing_fn(other).unwrap();
        assert_eq!(tree.fns[f1].name, "flat");
        assert!(!tree.in_loop_within_fn(other, f1));
    }

    #[test]
    fn unsafe_blocks_are_attributed() {
        let src = "unsafe fn f() { unsafe { raw(); } }\nunsafe impl Send for X {}\n";
        let toks = lex(src);
        let tree = BlockTree::build(&toks);
        assert_eq!(tree.unsafe_blocks.len(), 1);
        let f = tree.enclosing_fn(tree.unsafe_blocks[0]).unwrap();
        assert_eq!(tree.fns[f].name, "f");
    }

    #[test]
    fn loop_in_enclosing_fn_does_not_count() {
        // A nested fn inside a loop: its tokens are in the loop block
        // textually, but not within the nested fn's own loop.
        let src = "fn outer() { loop { fn nested() { tok(); } } }\n";
        let toks = lex(src);
        let tree = BlockTree::build(&toks);
        let tok = toks.iter().position(|t| t.is_ident("tok")).unwrap();
        let f = tree.enclosing_fn(tok).unwrap();
        assert_eq!(tree.fns[f].name, "nested");
        assert!(!tree.in_loop_within_fn(tok, f));
    }
}
