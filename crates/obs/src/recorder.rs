//! Request-scoped flight recorder: a fixed-capacity ring of per-request
//! stage traces.
//!
//! Every serve request that passes through the daemon gets a
//! generation-stamped [`TraceId`] and writes its stage timeline — decode,
//! prepare, queue wait, batch formation, per-shard execute, merge, reply
//! write — into one of [`TRACE_CAPACITY`] pre-allocated slots. Nothing is
//! sampled away: the ring always holds the *last* `TRACE_CAPACITY`
//! requests, and [`recent`] / [`fetch`] dump them on demand (that cold
//! path allocates; the hot append path does not — `// audit: no_alloc`).
//!
//! # Ring layout and generation stamps
//!
//! Trace ids are a monotonically increasing `u64` (starting at 1; 0 is
//! the "not recording" sentinel). A trace with id `t` lives in slot
//! `t % TRACE_CAPACITY`, so the ring overwrites the oldest trace
//! naturally. Each slot stores the id it currently belongs to; every
//! write re-checks that stamp and silently drops updates aimed at a
//! trace that has since been overwritten. A stamp check racing the
//! overwrite itself can still land one stale field in the new trace —
//! that requires `TRACE_CAPACITY` whole requests to start during one
//! field store, and corrupts a diagnostic, not an answer; we tolerate it
//! rather than lock the hot path.
//!
//! # Arming
//!
//! The recorder is armed by default. [`set_armed(false)`](set_armed)
//! turns [`begin`] into a no-op returning `TraceId::NONE` (and every
//! later call on that id into a no-op) — this is the knob the
//! `obs_overhead` A/B benchmark flips, and what `--slow-ms`-less
//! deployments can use to shed even the recorder's relaxed stores.

/// Stage slots of one request's timeline, in wire order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Frame read + request decode on the connection thread.
    Decode = 0,
    /// Request validation / job construction before enqueue.
    Prepare = 1,
    /// Admission-queue wait: enqueue → batcher drain.
    Queue = 2,
    /// Batch formation: drain → this job's k-cohort starts executing.
    Batch = 3,
    /// `Engine::knn` execution of the job's cohort (shared interval —
    /// every job in the cohort reports the same span).
    Execute = 4,
    /// Scatter-gather merge: cohort done → this job's reply handed off.
    Merge = 5,
    /// Reply encode + frame write on the connection thread.
    Reply = 6,
}

/// Names indexed by [`Stage`] discriminant; also the exposition order.
pub const STAGE_NAMES: [&str; STAGE_COUNT] =
    ["decode", "prepare", "queue", "batch", "execute", "merge", "reply"];

/// Number of stages a trace can hold.
pub const STAGE_COUNT: usize = 7;

/// Scalar annotations attached to a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Meta {
    /// Requested k of the kNN request.
    K = 0,
    /// Jobs in the batch this request was drained with.
    BatchJobs = 1,
    /// Total queries in that batch.
    BatchQueries = 2,
    /// Queries in this request's same-k cohort.
    CohortQueries = 3,
}

/// Names indexed by [`Meta`] discriminant.
pub const META_NAMES: [&str; META_COUNT] = ["k", "batch_jobs", "batch_queries", "cohort_queries"];

/// Number of meta cells per trace.
pub const META_COUNT: usize = 4;

/// Traces kept before the ring wraps.
pub const TRACE_CAPACITY: usize = 128;

/// Handle to one in-flight trace. Copyable; `NONE` (id 0) makes every
/// recorder call a no-op, which is how the disarmed path stays free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The "not recording" sentinel.
    pub const NONE: TraceId = TraceId(0);

    /// `true` when this handle refers to a live recording.
    #[must_use]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One completed (or in-flight) trace, as dumped from the ring.
#[derive(Clone, Debug, Default)]
pub struct TraceDump {
    /// Generation stamp (monotonic per process, starts at 1).
    pub id: u64,
    /// Trace start on the obs clock (ns since process epoch).
    pub start_ns: u64,
    /// End-to-end duration; 0 while the request is still in flight.
    pub total_ns: u64,
    /// Meta cells indexed like [`META_NAMES`].
    pub meta: [u64; META_COUNT],
    /// `(stage name, offset from trace start, duration)` for each stage
    /// that recorded, in [`STAGE_NAMES`] order.
    pub stages: Vec<(&'static str, u64, u64)>,
}

impl TraceDump {
    /// Sum of recorded stage durations. Stages are disjoint intervals of
    /// the request's lifetime, so this is ≤ [`total_ns`](Self::total_ns)
    /// (the remainder is unattributed scheduling gaps).
    #[must_use]
    pub fn stage_sum_ns(&self) -> u64 {
        self.stages.iter().map(|&(_, _, d)| d).sum()
    }
}

#[cfg(feature = "obs")]
mod enabled {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use super::{Meta, Stage, TraceDump, TraceId, META_COUNT, STAGE_COUNT, TRACE_CAPACITY};
    use crate::clock;

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_U64: AtomicU64 = AtomicU64::new(0);

    struct Slot {
        /// Generation stamp of the trace occupying this slot; 0 = free
        /// or mid-reset.
        id: AtomicU64,
        start: AtomicU64,
        end: AtomicU64,
        /// Bit `s` set ⇔ stage `s` recorded.
        stages_set: AtomicU64,
        meta: [AtomicU64; META_COUNT],
        stage_off: [AtomicU64; STAGE_COUNT],
        stage_dur: [AtomicU64; STAGE_COUNT],
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY_SLOT: Slot = Slot {
        id: AtomicU64::new(0),
        start: AtomicU64::new(0),
        end: AtomicU64::new(0),
        stages_set: AtomicU64::new(0),
        meta: [ZERO_U64; META_COUNT],
        stage_off: [ZERO_U64; STAGE_COUNT],
        stage_dur: [ZERO_U64; STAGE_COUNT],
    };

    static SLOTS: [Slot; TRACE_CAPACITY] = [EMPTY_SLOT; TRACE_CAPACITY];
    /// Next trace id; starts at 1 so id 0 stays the NONE sentinel.
    static NEXT: AtomicU64 = AtomicU64::new(1);
    static ARMED: AtomicBool = AtomicBool::new(true);

    fn slot_of(id: u64) -> &'static Slot {
        // cast_ok: reduced modulo TRACE_CAPACITY (= 128) first, so the
        // value always fits usize.
        &SLOTS[(id % TRACE_CAPACITY as u64) as usize]
    }

    /// Claim the next ring slot and stamp the trace start. Returns
    /// [`TraceId::NONE`] while the recorder is disarmed.
    // audit: no_alloc
    #[must_use]
    pub fn begin() -> TraceId {
        if !ARMED.load(Ordering::Relaxed) {
            return TraceId::NONE;
        }
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        let slot = slot_of(id);
        // Invalidate first so concurrent writers aimed at the evicted
        // trace fail their stamp check, then reset, then publish.
        slot.id.store(0, Ordering::Release);
        slot.end.store(0, Ordering::Relaxed);
        slot.stages_set.store(0, Ordering::Relaxed);
        for m in &slot.meta {
            m.store(0, Ordering::Relaxed);
        }
        slot.start.store(clock::now_ns(), Ordering::Relaxed);
        slot.id.store(id, Ordering::Release);
        TraceId(id)
    }

    /// Record stage `stage` as the interval `[start_ns, end_ns]` (obs
    /// clock values). Dropped silently if the trace has been overwritten.
    // audit: no_alloc
    pub fn stage(t: TraceId, stage: Stage, start_ns: u64, end_ns: u64) {
        if !t.is_some() {
            return;
        }
        let slot = slot_of(t.0);
        if slot.id.load(Ordering::Acquire) != t.0 {
            return;
        }
        let idx = stage as usize;
        let base = slot.start.load(Ordering::Relaxed);
        slot.stage_off[idx].store(start_ns.saturating_sub(base), Ordering::Relaxed);
        slot.stage_dur[idx].store(end_ns.saturating_sub(start_ns), Ordering::Relaxed);
        slot.stages_set.fetch_or(1 << idx, Ordering::Release);
    }

    /// Attach a scalar annotation to the trace.
    // audit: no_alloc
    pub fn set_meta(t: TraceId, meta: Meta, v: u64) {
        if !t.is_some() {
            return;
        }
        let slot = slot_of(t.0);
        if slot.id.load(Ordering::Acquire) != t.0 {
            return;
        }
        slot.meta[meta as usize].store(v, Ordering::Relaxed);
    }

    /// Stamp the trace end; returns the end-to-end duration in ns (0 if
    /// the trace was overwritten or `t` is NONE).
    // audit: no_alloc
    pub fn end(t: TraceId) -> u64 {
        if !t.is_some() {
            return 0;
        }
        let slot = slot_of(t.0);
        if slot.id.load(Ordering::Acquire) != t.0 {
            return 0;
        }
        let now = clock::now_ns();
        slot.end.store(now, Ordering::Release);
        now.saturating_sub(slot.start.load(Ordering::Relaxed))
    }

    /// Disarm (`false`) or re-arm (`true`) the recorder. Disarmed,
    /// [`begin`] returns NONE and every stage write no-ops.
    pub fn set_armed(on: bool) {
        ARMED.store(on, Ordering::Relaxed);
    }

    /// `true` while the recorder accepts new traces.
    #[must_use]
    pub fn armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    fn dump_slot(slot: &Slot, want_id: u64) -> Option<TraceDump> {
        let set = slot.stages_set.load(Ordering::Acquire);
        let start = slot.start.load(Ordering::Relaxed);
        let end = slot.end.load(Ordering::Relaxed);
        let mut d = TraceDump {
            id: want_id,
            start_ns: start,
            total_ns: end.saturating_sub(start),
            ..TraceDump::default()
        };
        for (i, m) in slot.meta.iter().enumerate() {
            d.meta[i] = m.load(Ordering::Relaxed);
        }
        for i in 0..STAGE_COUNT {
            if set & (1 << i) != 0 {
                d.stages.push((
                    super::STAGE_NAMES[i],
                    slot.stage_off[i].load(Ordering::Relaxed),
                    slot.stage_dur[i].load(Ordering::Relaxed),
                ));
            }
        }
        // Re-check the stamp: if the slot was recycled while we read it,
        // the dump may mix generations — drop it.
        if slot.id.load(Ordering::Acquire) == want_id {
            Some(d)
        } else {
            None
        }
    }

    /// Dump one trace by id, if it is still in the ring.
    #[must_use]
    pub fn fetch(t: TraceId) -> Option<TraceDump> {
        if !t.is_some() {
            return None;
        }
        let slot = slot_of(t.0);
        if slot.id.load(Ordering::Acquire) != t.0 {
            return None;
        }
        dump_slot(slot, t.0)
    }

    /// Dump the most recent completed traces, newest first, at most
    /// `max`. In-flight traces (no end stamp yet) are skipped.
    #[must_use]
    pub fn recent(max: usize) -> Vec<TraceDump> {
        let mut out: Vec<TraceDump> = Vec::new();
        for slot in &SLOTS {
            let id = slot.id.load(Ordering::Acquire);
            if id == 0 || slot.end.load(Ordering::Acquire) == 0 {
                continue;
            }
            if let Some(d) = dump_slot(slot, id) {
                out.push(d);
            }
        }
        out.sort_by_key(|d| std::cmp::Reverse(d.id));
        out.truncate(max);
        out
    }

    /// Clear the ring and restart ids from 1 (tests only; racing
    /// requests may keep writing into cleared slots).
    pub fn reset() {
        for slot in &SLOTS {
            slot.id.store(0, Ordering::Release);
            slot.end.store(0, Ordering::Relaxed);
            slot.stages_set.store(0, Ordering::Relaxed);
        }
        NEXT.store(1, Ordering::Relaxed);
    }
}

#[cfg(feature = "obs")]
pub use enabled::{armed, begin, end, fetch, recent, reset, set_armed, set_meta, stage};

#[cfg(not(feature = "obs"))]
mod disabled {
    use super::{Meta, Stage, TraceDump, TraceId};

    /// Always [`TraceId::NONE`] with the feature off.
    #[must_use]
    pub fn begin() -> TraceId {
        TraceId::NONE
    }

    /// No-op with the feature off.
    pub fn stage(_t: TraceId, _stage: Stage, _start_ns: u64, _end_ns: u64) {}

    /// No-op with the feature off.
    pub fn set_meta(_t: TraceId, _meta: Meta, _v: u64) {}

    /// Always 0 with the feature off.
    pub fn end(_t: TraceId) -> u64 {
        0
    }

    /// No-op with the feature off.
    pub fn set_armed(_on: bool) {}

    /// Always `false` with the feature off.
    #[must_use]
    pub fn armed() -> bool {
        false
    }

    /// Always `None` with the feature off.
    #[must_use]
    pub fn fetch(_t: TraceId) -> Option<TraceDump> {
        None
    }

    /// Always empty with the feature off.
    #[must_use]
    pub fn recent(_max: usize) -> Vec<TraceDump> {
        Vec::new()
    }

    /// No-op with the feature off.
    pub fn reset() {}
}

#[cfg(not(feature = "obs"))]
pub use disabled::{armed, begin, end, fetch, recent, reset, set_armed, set_meta, stage};
