//! Real implementation, compiled only with the `obs` feature.
//!
//! Every macro call site declares its own function-local `static` metric.
//! The first time a site fires it pushes a `&'static` reference into the
//! global registry (the single, one-time allocation); after that the hot
//! path is a relaxed `fetch_add` plus a relaxed "already registered" load.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::sketch::WindowedHist;
use crate::{HistSnapshot, Snapshot, MAX_LANES, MAX_SPAN_DEPTH};

/// Power-of-two histogram buckets: bucket `i` holds values whose bit
/// length is `i` (bucket 0 holds zero). 44 buckets cover durations up to
/// ~73 minutes in nanoseconds; larger values fold into the last bucket.
pub(crate) const BUCKETS: usize = 44;

// Interior mutability is the point of these consts: they exist only as
// repeat-expression initializers for atomic arrays in `const fn new`.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);

enum Entry {
    Counter(&'static Counter),
    Gauge(&'static MaxGauge),
    Lanes(&'static LaneCounter),
    Hist(&'static Histogram),
    Windowed(&'static WindowedHist),
}

static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

fn lock_registry() -> MutexGuard<'static, Vec<Entry>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Push `entry` exactly once even when several threads race the first hit:
/// the flag is re-checked under the registry lock.
fn register_entry(flag: &AtomicBool, entry: Entry) {
    let mut reg = lock_registry();
    if !flag.swap(true, Ordering::AcqRel) {
        reg.push(entry);
    }
}

/// Registration hook for [`WindowedHist`] (lives in `crate::sketch`, so
/// it cannot name the private [`Entry`] type itself).
pub(crate) fn register_windowed_entry(flag: &AtomicBool, w: &'static WindowedHist) {
    register_entry(flag, Entry::Windowed(w));
}

/// A named monotonic event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    // audit: no_alloc
    #[inline]
    pub fn add(&'static self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    #[cold]
    fn register(&'static self) {
        register_entry(&self.registered, Entry::Counter(self));
    }
}

/// A named high-water-mark gauge (`fetch_max` semantics).
pub struct MaxGauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl MaxGauge {
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        MaxGauge { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    // audit: no_alloc
    #[inline]
    pub fn record(&'static self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    #[cold]
    fn register(&'static self) {
        register_entry(&self.registered, Entry::Gauge(self));
    }
}

/// A counter split across [`MAX_LANES`] lanes. Lanes index workers (for
/// the parallel engine) or tree levels (for per-level fanout); indices at
/// or above [`MAX_LANES`] fold into the last lane so totals stay exact.
pub struct LaneCounter {
    name: &'static str,
    lanes: [AtomicU64; MAX_LANES],
    registered: AtomicBool,
}

impl LaneCounter {
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        LaneCounter { name, lanes: [ZERO_U64; MAX_LANES], registered: AtomicBool::new(false) }
    }

    // audit: no_alloc
    #[inline]
    pub fn add(&'static self, lane: usize, n: u64) {
        let idx = if lane < MAX_LANES { lane } else { MAX_LANES - 1 };
        self.lanes[idx].fetch_add(n, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    #[cold]
    fn register(&'static self) {
        register_entry(&self.registered, Entry::Lanes(self));
    }
}

/// A fixed-bucket power-of-two histogram (see [`BUCKETS`]).
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO_U64; BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    // audit: no_alloc
    #[inline]
    pub fn record(&'static self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    /// Register without recording, so idle histograms still surface (as
    /// zero-count rows) in snapshots — the pre-registration pattern.
    pub fn register_only(&'static self) {
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
    }

    #[cold]
    fn register(&'static self) {
        register_entry(&self.registered, Entry::Hist(self));
    }
}

/// Bucket index of value `v`: its bit length, folded into the last
/// bucket past [`BUCKETS`].
// audit: no_alloc
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    let bits = 64 - v.leading_zeros() as usize;
    if bits < BUCKETS {
        bits
    } else {
        BUCKETS - 1
    }
}

/// `[lower, upper)` bounds of bucket `idx`. Bucket 0 is `[0, 1)` (only
/// zero); bucket `i > 0` is `[2^(i-1), 2^i)`; the last bucket's upper
/// bound saturates at `u64::MAX`.
pub(crate) fn bucket_bounds(idx: usize) -> (u64, u64) {
    let lower = if idx == 0 { 0 } else { 1u64 << (idx - 1) };
    let upper = if idx >= BUCKETS - 1 { u64::MAX } else { 1u64 << idx };
    (lower, upper)
}

// ---------------------------------------------------------------------------
// Thread-local worker attribution + span stack.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct SpanStack {
    depth: usize,
    names: [&'static str; MAX_SPAN_DEPTH],
}

thread_local! {
    static WORKER: Cell<usize> = const { Cell::new(0) };
    static SPANS: Cell<SpanStack> = const {
        Cell::new(SpanStack { depth: 0, names: [""; MAX_SPAN_DEPTH] })
    };
}

/// Per-thread worker-id attribution for per-worker lanes and span time.
pub mod worker {
    /// Restores the previous worker id on drop.
    pub struct WorkerGuard {
        prev: usize,
    }

    impl Drop for WorkerGuard {
        fn drop(&mut self) {
            super::WORKER.with(|c| c.set(self.prev));
        }
    }

    /// Tag the current thread as worker `wid` until the guard drops.
    #[must_use]
    pub fn enter(wid: usize) -> WorkerGuard {
        let prev = super::WORKER.with(|c| c.replace(wid));
        WorkerGuard { prev }
    }

    /// The current thread's worker id (0 outside the parallel engine).
    #[must_use]
    pub fn get() -> usize {
        super::WORKER.with(std::cell::Cell::get)
    }
}

/// Name of the innermost active span on this thread, if any.
#[must_use]
pub fn current_span() -> Option<&'static str> {
    SPANS.with(|c| {
        let s = c.get();
        if s.depth == 0 || s.depth > MAX_SPAN_DEPTH {
            if s.depth == 0 {
                None
            } else {
                Some(s.names[MAX_SPAN_DEPTH - 1])
            }
        } else {
            Some(s.names[s.depth - 1])
        }
    })
}

/// Current span nesting depth on this thread (may exceed
/// [`MAX_SPAN_DEPTH`]; only the name stack saturates).
#[must_use]
pub fn span_depth() -> usize {
    SPANS.with(|c| c.get().depth)
}

/// RAII span: records the elapsed monotonic-clock nanoseconds into its
/// histogram on drop, attributes the time to the current worker's lane,
/// and maintains the thread-local span name stack.
#[must_use = "a span records its duration when the guard drops"]
pub struct SpanGuard {
    hist: &'static Histogram,
    worker_ns: &'static LaneCounter,
    start: Instant,
}

impl SpanGuard {
    // audit: no_alloc
    pub fn enter(
        name: &'static str,
        hist: &'static Histogram,
        worker_ns: &'static LaneCounter,
    ) -> Self {
        SPANS.with(|c| {
            let mut s = c.get();
            if s.depth < MAX_SPAN_DEPTH {
                s.names[s.depth] = name;
            }
            s.depth += 1;
            c.set(s);
        });
        SpanGuard { hist, worker_ns, start: Instant::now() }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(ns);
        self.worker_ns.add(worker::get(), ns);
        SPANS.with(|c| {
            let mut s = c.get();
            s.depth = s.depth.saturating_sub(1);
            c.set(s);
        });
    }
}

// ---------------------------------------------------------------------------
// Snapshot capture / reset.
// ---------------------------------------------------------------------------

/// Capture every registered metric, merging same-named call sites
/// (counters and histograms sum, gauges max, lanes sum element-wise).
#[must_use]
pub fn capture() -> Snapshot {
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut lanes: BTreeMap<&'static str, [u64; MAX_LANES]> = BTreeMap::new();
    let mut hists: BTreeMap<&'static str, (u64, u64, [u64; BUCKETS])> = BTreeMap::new();
    let mut wins: BTreeMap<(&'static str, usize), crate::sketch::enabled::WinAcc> = BTreeMap::new();
    {
        let reg = lock_registry();
        for entry in reg.iter() {
            match entry {
                Entry::Counter(c) => {
                    *counters.entry(c.name).or_insert(0) += c.value.load(Ordering::Relaxed);
                }
                Entry::Gauge(g) => {
                    let v = g.value.load(Ordering::Relaxed);
                    let slot = gauges.entry(g.name).or_insert(0);
                    if v > *slot {
                        *slot = v;
                    }
                }
                Entry::Lanes(l) => {
                    let slot = lanes.entry(l.name).or_insert([0; MAX_LANES]);
                    for (dst, src) in slot.iter_mut().zip(l.lanes.iter()) {
                        *dst += src.load(Ordering::Relaxed);
                    }
                }
                Entry::Hist(h) => {
                    let slot = hists.entry(h.name).or_insert((0, 0, [0; BUCKETS]));
                    slot.0 += h.count.load(Ordering::Relaxed);
                    slot.1 += h.sum.load(Ordering::Relaxed);
                    for (dst, src) in slot.2.iter_mut().zip(h.buckets.iter()) {
                        *dst += src.load(Ordering::Relaxed);
                    }
                }
                Entry::Windowed(w) => w.accumulate(&mut wins),
            }
        }
    }
    Snapshot {
        counters: counters.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
        gauges: gauges.into_iter().map(|(n, v)| (n.to_string(), v)).collect(),
        lanes: lanes
            .into_iter()
            .map(|(n, ls)| {
                let keep = ls.iter().rposition(|&v| v > 0).map_or(1, |last| last + 1);
                (n.to_string(), ls[..keep].to_vec())
            })
            .collect(),
        histograms: hists
            .into_iter()
            .map(|(n, (count, sum, bs))| HistSnapshot {
                name: n.to_string(),
                count,
                sum,
                buckets: bs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        let (lo, hi) = bucket_bounds(i);
                        (lo, hi, c)
                    })
                    .collect(),
            })
            .collect(),
        windows: wins.into_iter().map(|((n, lane), acc)| acc.into_snapshot(n, lane)).collect(),
    }
}

/// Zero every registered metric (entries stay registered, so counters a
/// run has touched keep appearing in snapshots with value 0).
pub fn reset() {
    let reg = lock_registry();
    for entry in reg.iter() {
        match entry {
            Entry::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Entry::Gauge(g) => g.value.store(0, Ordering::Relaxed),
            Entry::Lanes(l) => {
                for lane in &l.lanes {
                    lane.store(0, Ordering::Relaxed);
                }
            }
            Entry::Hist(h) => {
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
            Entry::Windowed(w) => w.reset(),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros (feature on). Each expansion declares its own static metric.
// ---------------------------------------------------------------------------

/// Increment a named counter: `counter!("dist.par.evals")` or
/// `counter!("index.knn.considered", n)`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        $crate::counter!($name, 1u64)
    };
    ($name:literal, $n:expr) => {{
        static __SAPLA_OBS_C: $crate::Counter = $crate::Counter::new($name);
        __SAPLA_OBS_C.add($n);
    }};
}

/// Add to one lane of a per-worker / per-level counter:
/// `lane_counter!("parallel.tasks", wid, len)`.
#[macro_export]
macro_rules! lane_counter {
    ($name:literal, $lane:expr, $n:expr) => {{
        static __SAPLA_OBS_L: $crate::LaneCounter = $crate::LaneCounter::new($name);
        __SAPLA_OBS_L.add($lane, $n);
    }};
}

/// Record a high-water mark: `gauge_max!("parallel.queue.hwm", depth)`.
#[macro_export]
macro_rules! gauge_max {
    ($name:literal, $v:expr) => {{
        static __SAPLA_OBS_G: $crate::MaxGauge = $crate::MaxGauge::new($name);
        __SAPLA_OBS_G.record($v);
    }};
}

/// Record a value into a histogram: `hist!("dist.par.windows", len)`.
#[macro_export]
macro_rules! hist {
    ($name:literal, $v:expr) => {{
        static __SAPLA_OBS_H: $crate::Histogram = $crate::Histogram::new($name);
        __SAPLA_OBS_H.record($v);
    }};
}

/// Open a span: `let _span = span!("sapla.reduce");` — duration lands in
/// the `$name` histogram and the `$name.worker_ns` per-worker lanes when
/// the guard drops.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __SAPLA_OBS_SH: $crate::Histogram = $crate::Histogram::new($name);
        static __SAPLA_OBS_SW: $crate::LaneCounter =
            $crate::LaneCounter::new(concat!($name, ".worker_ns"));
        $crate::SpanGuard::enter($name, &__SAPLA_OBS_SH, &__SAPLA_OBS_SW)
    }};
}

/// Record into a windowed percentile sketch:
/// `windowed!("serve.stage.queue", 0, ns)` (lane, value).
#[macro_export]
macro_rules! windowed {
    ($name:literal, $lane:expr, $v:expr) => {{
        static __SAPLA_OBS_W: $crate::sketch::WindowedHist =
            $crate::sketch::WindowedHist::new($name);
        __SAPLA_OBS_W.record($lane, $v);
    }};
}

/// Pre-register a histogram so it appears (count 0) before first use.
#[macro_export]
macro_rules! register_hist {
    ($name:literal) => {{
        static __SAPLA_OBS_RH: $crate::Histogram = $crate::Histogram::new($name);
        __SAPLA_OBS_RH.register_only();
    }};
}

/// Pre-register a windowed sketch so its lane-0 row appears (count 0)
/// before first use.
#[macro_export]
macro_rules! register_windowed {
    ($name:literal) => {{
        static __SAPLA_OBS_RW: $crate::sketch::WindowedHist =
            $crate::sketch::WindowedHist::new($name);
        __SAPLA_OBS_RW.register_only();
    }};
}
