//! The observability clock: monotonic nanoseconds since a process-wide
//! epoch, with an injectable manual mode for deterministic tests.
//!
//! Both the flight recorder ([`crate::recorder`]) and the windowed
//! sketches ([`crate::sketch`]) read time through [`now_ns`], so a test
//! that installs a [`TestClock`] controls trace timestamps *and* window
//! rotation from one knob. With the `obs` feature off the clock is a
//! constant zero (nothing reads it).

#[cfg(feature = "obs")]
mod enabled {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static TEST_MODE: AtomicBool = AtomicBool::new(false);
    static TEST_NOW: AtomicU64 = AtomicU64::new(0);

    /// Nanoseconds since the first call (or the [`TestClock`] value when
    /// one is installed). Monotonic; saturates at `u64::MAX` (~584 years).
    // audit: no_alloc
    #[must_use]
    pub fn now_ns() -> u64 {
        if TEST_MODE.load(Ordering::Relaxed) {
            return TEST_NOW.load(Ordering::Relaxed);
        }
        let epoch = *EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// RAII guard that replaces the wall clock with a manually advanced
    /// counter (starting at the value given to [`TestClock::install`]).
    /// Dropping the guard restores the real clock. Tests that install
    /// one must serialize with each other — the mode is process-global.
    #[must_use = "dropping the guard restores the real clock"]
    pub struct TestClock(());

    impl TestClock {
        /// Switch the clock to manual mode at `start_ns`.
        pub fn install(start_ns: u64) -> TestClock {
            TEST_NOW.store(start_ns, Ordering::Relaxed);
            TEST_MODE.store(true, Ordering::Relaxed);
            TestClock(())
        }

        /// Move the manual clock forward by `ns`.
        pub fn advance(&self, ns: u64) {
            TEST_NOW.fetch_add(ns, Ordering::Relaxed);
        }

        /// Set the manual clock to an absolute value.
        pub fn set(&self, ns: u64) {
            TEST_NOW.store(ns, Ordering::Relaxed);
        }
    }

    impl Drop for TestClock {
        fn drop(&mut self) {
            TEST_MODE.store(false, Ordering::Relaxed);
        }
    }
}

#[cfg(feature = "obs")]
pub use enabled::{now_ns, TestClock};

#[cfg(not(feature = "obs"))]
mod disabled {
    /// Always 0 with the feature off (nothing records time).
    #[must_use]
    pub fn now_ns() -> u64 {
        0
    }

    /// No-op stand-in so test helpers compile in both feature states.
    #[must_use = "dropping the guard restores the real clock"]
    pub struct TestClock(());

    impl TestClock {
        /// No-op with the feature off.
        pub fn install(_start_ns: u64) -> TestClock {
            TestClock(())
        }

        /// No-op with the feature off.
        pub fn advance(&self, _ns: u64) {}

        /// No-op with the feature off.
        pub fn set(&self, _ns: u64) {}
    }
}

#[cfg(not(feature = "obs"))]
pub use disabled::{now_ns, TestClock};
