//! Stub implementation, compiled when the `obs` feature is off.
//!
//! The macros expand to `()` (the `span!` macro to a zero-sized guard
//! value), so instrumented call sites emit no statics, no atomics, and no
//! branches. The query API keeps the same signatures as the enabled build
//! and returns empty/neutral values, so downstream code needs no `cfg`.

use crate::Snapshot;

/// Zero-sized stand-in for the enabled build's RAII span guard. Carries
/// no clock and has no `Drop`; binding it is free.
#[derive(Clone, Copy, Debug, Default)]
#[must_use = "bind the span guard so enabled builds measure the scope"]
pub struct SpanGuard;

/// Always empty with the feature off.
#[must_use]
pub fn capture() -> Snapshot {
    Snapshot::default()
}

/// No-op with the feature off.
pub fn reset() {}

/// Always `None` with the feature off.
#[must_use]
pub fn current_span() -> Option<&'static str> {
    None
}

/// Always 0 with the feature off.
#[must_use]
pub fn span_depth() -> usize {
    0
}

/// Worker attribution stubs.
pub mod worker {
    /// Zero-sized no-op guard.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WorkerGuard;

    /// No-op with the feature off.
    #[must_use]
    pub fn enter(_wid: usize) -> WorkerGuard {
        WorkerGuard
    }

    /// Always 0 with the feature off.
    #[must_use]
    pub fn get() -> usize {
        0
    }
}

/// Feature off: expands to `()`.
#[macro_export]
macro_rules! counter {
    ($name:literal $(, $n:expr)?) => {
        ()
    };
}

/// Feature off: expands to `()`.
#[macro_export]
macro_rules! lane_counter {
    ($name:literal, $lane:expr, $n:expr) => {
        ()
    };
}

/// Feature off: expands to `()`.
#[macro_export]
macro_rules! gauge_max {
    ($name:literal, $v:expr) => {
        ()
    };
}

/// Feature off: expands to `()`.
#[macro_export]
macro_rules! hist {
    ($name:literal, $v:expr) => {
        ()
    };
}

/// Feature off: expands to the zero-sized [`SpanGuard`].
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::SpanGuard
    };
}

/// Feature off: expands to `()`.
#[macro_export]
macro_rules! windowed {
    ($name:literal, $lane:expr, $v:expr) => {
        ()
    };
}

/// Feature off: expands to `()`.
#[macro_export]
macro_rules! register_hist {
    ($name:literal) => {
        ()
    };
}

/// Feature off: expands to `()`.
#[macro_export]
macro_rules! register_windowed {
    ($name:literal) => {
        ()
    };
}
