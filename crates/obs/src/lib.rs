//! `sapla-obs`: a std-only, feature-gated tracing + metrics layer.
//!
//! The paper's claims are counted claims — refinement operations (Alg.
//! 4.3–4.5), `Dist_PAR` evaluations and pruning power (Fig. 13), DBCH-tree
//! node accesses (Figs. 15–16) — so the workspace instruments its hot paths
//! with named counters, fixed-bucket histograms, and lightweight spans. All
//! of it is gated behind the `obs` cargo feature:
//!
//! - **feature off** (default): every macro in this crate expands to `()`.
//!   No statics, no atomics, no branches are emitted at the call sites; the
//!   instrumented code compiles to exactly what it was before
//!   instrumentation. `Snapshot::capture()` returns an empty snapshot and
//!   [`enabled()`] is `false`, so downstream code needs no `cfg` of its own.
//! - **feature on**: each macro call site declares a function-local
//!   `static` metric and updates it with relaxed atomic operations. The hot
//!   path is one `fetch_add` plus one relaxed flag load; the only
//!   allocation ever performed is a one-time registry push the first time a
//!   call site fires (covered by warm-up in the zero-alloc tests).
//!
//! # Determinism caveat
//!
//! Counter *totals* are exact in every configuration (atomic adds never
//! lose updates). Single-threaded runs are therefore bit-reproducible.
//! Under the work-stealing engine, per-worker lanes attribute work to the
//! worker that performed it, but the interleaving is scheduling-dependent:
//! two runs may split the same total differently across lanes, and relaxed
//! ordering means a snapshot taken concurrently with workers is a
//! consistent set of per-metric values, not a globally ordered cut.

#[cfg(feature = "obs")]
mod enabled_impl;
#[cfg(feature = "obs")]
pub use enabled_impl::{
    capture, current_span, reset, span_depth, worker, Counter, Histogram, LaneCounter, MaxGauge,
    SpanGuard,
};

#[cfg(not(feature = "obs"))]
mod disabled_impl;
#[cfg(not(feature = "obs"))]
pub use disabled_impl::{capture, current_span, reset, span_depth, worker, SpanGuard};

pub mod clock;
pub mod recorder;
pub mod sketch;

/// `true` when this build carries instrumentation (`--features obs`).
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// Largest number of per-worker / per-level lanes a [`LaneCounter`] keeps.
/// Lane indices at or above this fold into the last lane (attribution
/// becomes approximate past 32 workers; totals stay exact).
pub const MAX_LANES: usize = 32;

/// Deepest span nesting tracked by the thread-local span stack. Deeper
/// spans still record durations; only the name stack stops growing.
pub const MAX_SPAN_DEPTH: usize = 16;

/// A point-in-time export of every metric that has fired so far.
///
/// Same-named call sites (e.g. the same counter updated from two
/// functions) are merged: counters and histograms sum, gauges take the
/// max, lanes sum element-wise. Entries are sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic event counters, `(name, total)`.
    pub counters: Vec<(String, u64)>,
    /// High-water-mark gauges, `(name, max observed)`.
    pub gauges: Vec<(String, u64)>,
    /// Per-lane counters (lane = worker id or tree level), trailing zero
    /// lanes trimmed.
    pub lanes: Vec<(String, Vec<u64>)>,
    /// Value distributions (span durations in ns, partition sizes, ...).
    pub histograms: Vec<HistSnapshot>,
    /// Windowed percentile rows (one per `(name, lane)`), covering the
    /// last [`sketch::WINDOWS`] × [`sketch::WINDOW_NS`] of wall time.
    pub windows: Vec<WindowSnapshot>,
}

/// Exported state of one histogram.
#[derive(Debug, Clone, Default)]
pub struct HistSnapshot {
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (ns for span histograms).
    pub sum: u64,
    /// `(lower inclusive, upper exclusive, count)` per non-empty
    /// power-of-two bucket, self-describing so consumers need not
    /// re-derive the edges. The last bucket's upper bound saturates at
    /// `u64::MAX`.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Exported state of one windowed-percentile row: counts, the true
/// observed max, and bucket-resolution percentiles over the live
/// windows of one [`sketch::WindowedHist`] lane.
#[derive(Debug, Clone, Default)]
pub struct WindowSnapshot {
    pub name: String,
    /// Lane index (serve stages use lane 0; per-shard rows the shard id).
    pub lane: usize,
    /// Values recorded in the live windows.
    pub count: u64,
    /// Sum of those values (ns for latency sketches).
    pub sum: u64,
    /// True maximum observed in the live windows.
    pub max: u64,
    /// Median, clamped to `max` (bucket resolution, see `sketch` docs).
    pub p50: u64,
    /// 95th percentile, clamped to `max`.
    pub p95: u64,
    /// 99th percentile, clamped to `max`.
    pub p99: u64,
    /// `(lower inclusive, upper exclusive, count)` per non-empty bucket.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistSnapshot {
    /// Mean recorded value, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Snapshot {
    /// Capture the current state of every registered metric.
    #[must_use]
    pub fn capture() -> Self {
        capture()
    }

    /// `true` when nothing has been recorded (always true with `obs` off).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.lanes.is_empty()
            && self.histograms.is_empty()
            && self.windows.is_empty()
    }

    /// Hand-rolled JSON export, in the `perf_json` style (no serde).
    /// Always emits the four section keys so consumers can key on them
    /// regardless of feature state.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"enabled\": ");
        s.push_str(if enabled() { "true" } else { "false" });
        s.push_str(",\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_key(&mut s, name);
            s.push_str(&v.to_string());
        }
        if !self.counters.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_key(&mut s, name);
            s.push_str(&v.to_string());
        }
        if !self.gauges.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"lanes\": {");
        for (i, (name, vals)) in self.lanes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_key(&mut s, name);
            s.push('[');
            for (j, v) in vals.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&v.to_string());
            }
            s.push(']');
        }
        if !self.lanes.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_key(&mut s, &h.name);
            s.push_str("{\"count\": ");
            s.push_str(&h.count.to_string());
            s.push_str(", \"sum\": ");
            s.push_str(&h.sum.to_string());
            s.push_str(", \"buckets\": ");
            push_json_buckets(&mut s, &h.buckets);
            s.push('}');
        }
        if !self.histograms.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"windows\": [");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"name\": ");
            push_json_string(&mut s, &w.name);
            s.push_str(&format!(
                ", \"lane\": {}, \"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": ",
                w.lane, w.count, w.sum, w.max, w.p50, w.p95, w.p99
            ));
            push_json_buckets(&mut s, &w.buckets);
            s.push('}');
        }
        if !self.windows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Human-readable table, one metric per line, aligned.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !enabled() {
            out.push_str("observability disabled: rebuild with `--features obs`\n");
            return out;
        }
        if self.is_empty() {
            out.push_str("no metrics recorded\n");
            return out;
        }
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.lanes.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .chain(self.windows.iter().map(|w| w.name.len()))
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            out.push_str(&format!("counter  {name:<width$}  {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge    {name:<width$}  max {v}\n"));
        }
        for (name, vals) in &self.lanes {
            let total: u64 = vals.iter().sum();
            let lanes: Vec<String> = vals.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "lanes    {name:<width$}  total {total}  per-lane [{}]\n",
                lanes.join(", ")
            ));
        }
        for h in &self.histograms {
            let max_lt = h.buckets.last().map_or(0, |&(_, hi, _)| hi);
            out.push_str(&format!(
                "hist     {:<width$}  count {}  sum {}  mean {:.1}  max< {}\n",
                h.name,
                h.count,
                h.sum,
                h.mean(),
                max_lt
            ));
        }
        for w in &self.windows {
            out.push_str(&format!(
                "window   {:<width$}  lane {}  count {}  p50 {}  p95 {}  p99 {}  max {}\n",
                w.name, w.lane, w.count, w.p50, w.p95, w.p99, w.max
            ));
        }
        out
    }
}

/// Append a quoted JSON string with minimal escaping (metric names are
/// ASCII identifiers with dots, but stay safe on arbitrary input).
fn push_json_string(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            // audit: cast_ok — char → u32 is lossless by definition.
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Append `"name": ` (see [`push_json_string`] for the quoting).
fn push_json_key(s: &mut String, name: &str) {
    push_json_string(s, name);
    s.push_str(": ");
}

/// Append `[[lower,upper,count], ...]` for self-describing buckets.
fn push_json_buckets(s: &mut String, buckets: &[(u64, u64, u64)]) {
    s.push('[');
    for (j, (lo, hi, n)) in buckets.iter().enumerate() {
        if j > 0 {
            s.push(',');
        }
        s.push('[');
        s.push_str(&lo.to_string());
        s.push(',');
        s.push_str(&hi.to_string());
        s.push(',');
        s.push_str(&n.to_string());
        s.push(']');
    }
    s.push(']');
}
