//! Windowed latency sketches: rotating time-bucketed histograms that
//! answer "p50/p95/p99/max over the last minute" instead of process
//! lifetime.
//!
//! A [`WindowedHist`] keeps [`WINDOWS`] rotating windows of
//! [`WINDOW_NS`] nanoseconds each, per lane (lane = serve stage shard,
//! worker id, …; indices at or above [`WIN_LANES`] fold into the last
//! lane). Each window is a power-of-two-bucket histogram like the
//! lifetime [`crate::Histogram`], plus a true-max cell so reported
//! percentiles can be clamped to an actually-observed value. Recording
//! is lock-free relaxed atomics and allocation-free; a window whose
//! epoch has passed is re-claimed by CAS and zeroed in place by the
//! claimant.
//!
//! # Accuracy caveats
//!
//! Values racing a window rotation may land in a window that is being
//! zeroed (lost) or in the outgoing window (counted one rotation early).
//! Totals are approximate by design — these sketches answer operational
//! "last minute" questions; exact lifetime totals live in the plain
//! histograms. Percentiles are bucket upper bounds (power-of-two
//! resolution) clamped to the observed max, so
//! `p50 ≤ p95 ≤ p99 ≤ max` always holds.
//!
//! Time comes from [`crate::clock::now_ns`], so tests drive rotation
//! deterministically through [`crate::clock::TestClock`].

/// Rotating windows per lane. 6 × 10 s ⇒ percentiles cover the last
/// minute.
pub const WINDOWS: usize = 6;
/// Width of one window in nanoseconds (10 s).
pub const WINDOW_NS: u64 = 10_000_000_000;
/// Lanes per windowed sketch (serve stages use lane 0; per-shard rows
/// use the shard index). Indices at or above this fold into the last.
pub const WIN_LANES: usize = 8;

#[cfg(feature = "obs")]
pub(crate) mod enabled {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use super::{WINDOWS, WINDOW_NS, WIN_LANES};
    use crate::clock;
    use crate::enabled_impl::{bucket_bounds, bucket_index, register_windowed_entry, BUCKETS};
    use crate::WindowSnapshot;

    // Repeat-expression initializers for the const constructor (same
    // pattern as the atomic arrays in `enabled_impl`).
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_U64: AtomicU64 = AtomicU64::new(0);

    /// One rotating window: the absolute window number it currently
    /// holds (`0` = never claimed; stored as `window index + 1`), its
    /// counts, and its bucket array.
    pub(crate) struct WinSlot {
        epoch: AtomicU64,
        count: AtomicU64,
        sum: AtomicU64,
        max: AtomicU64,
        buckets: [AtomicU64; BUCKETS],
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY_SLOT: WinSlot = WinSlot {
        epoch: AtomicU64::new(0),
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        max: AtomicU64::new(0),
        buckets: [ZERO_U64; BUCKETS],
    };

    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY_LANE: [WinSlot; WINDOWS] = [EMPTY_SLOT; WINDOWS];

    /// A named windowed sketch (see the module docs).
    pub struct WindowedHist {
        name: &'static str,
        lanes: [[WinSlot; WINDOWS]; WIN_LANES],
        registered: AtomicBool,
    }

    impl WindowedHist {
        #[must_use]
        pub const fn new(name: &'static str) -> Self {
            WindowedHist {
                name,
                lanes: [EMPTY_LANE; WIN_LANES],
                registered: AtomicBool::new(false),
            }
        }

        /// Record `v` into lane `lane`'s current window.
        // audit: no_alloc
        #[inline]
        pub fn record(&'static self, lane: usize, v: u64) {
            let lane = if lane < WIN_LANES { lane } else { WIN_LANES - 1 };
            // +1 so epoch 0 can mean "never claimed".
            let win = clock::now_ns() / WINDOW_NS + 1;
            // cast_ok: reduced modulo WINDOWS (= 6) first, so the value
            // always fits usize.
            let slot = &self.lanes[lane][(win % WINDOWS as u64) as usize];
            let cur = slot.epoch.load(Ordering::Relaxed);
            if cur != win {
                // Claim the slot for the new window; exactly one racer
                // wins and zeroes it (see module docs for the race
                // semantics at the rotation edge).
                if slot
                    .epoch
                    .compare_exchange(cur, win, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    slot.count.store(0, Ordering::Relaxed);
                    slot.sum.store(0, Ordering::Relaxed);
                    slot.max.store(0, Ordering::Relaxed);
                    for b in &slot.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                }
            }
            slot.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            slot.count.fetch_add(1, Ordering::Relaxed);
            slot.sum.fetch_add(v, Ordering::Relaxed);
            slot.max.fetch_max(v, Ordering::Relaxed);
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
        }

        /// Register without recording, so idle sketches still surface
        /// (as all-zero rows) in snapshots — the pre-registration
        /// pattern.
        pub fn register_only(&'static self) {
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
        }

        #[cold]
        fn register(&'static self) {
            register_windowed_entry(&self.registered, self);
        }

        /// Forget every window (epoch back to "never claimed"); stays
        /// registered, so the lane-0 zero row keeps appearing.
        pub(crate) fn reset(&'static self) {
            for slots in &self.lanes {
                for slot in slots {
                    slot.epoch.store(0, Ordering::Relaxed);
                }
            }
        }

        /// Fold this sketch's live windows into the capture
        /// accumulator, merging same-named call sites. Lane 0 is always
        /// emitted (zeros surface); higher lanes only once touched.
        pub(crate) fn accumulate(&'static self, acc: &mut BTreeMap<(&'static str, usize), WinAcc>) {
            let now_win = clock::now_ns() / WINDOW_NS + 1;
            // Live = claimed within the last WINDOWS windows (including
            // the current one).
            let oldest_live = now_win.saturating_sub(WINDOWS as u64 - 1);
            for (lane, slots) in self.lanes.iter().enumerate() {
                let mut touched = false;
                let mut merged = WinAcc::default();
                for slot in slots {
                    let epoch = slot.epoch.load(Ordering::Relaxed);
                    if epoch == 0 {
                        continue;
                    }
                    touched = true;
                    if epoch < oldest_live {
                        continue; // expired: older than the last minute
                    }
                    merged.count += slot.count.load(Ordering::Relaxed);
                    merged.sum += slot.sum.load(Ordering::Relaxed);
                    merged.max = merged.max.max(slot.max.load(Ordering::Relaxed));
                    for (dst, src) in merged.buckets.iter_mut().zip(&slot.buckets) {
                        *dst += src.load(Ordering::Relaxed);
                    }
                }
                if lane == 0 || touched {
                    let entry = acc.entry((self.name, lane)).or_default();
                    entry.merge(&merged);
                }
            }
        }
    }

    /// Capture-time accumulator for one `(name, lane)` row.
    pub(crate) struct WinAcc {
        count: u64,
        sum: u64,
        max: u64,
        buckets: [u64; BUCKETS],
    }

    impl Default for WinAcc {
        fn default() -> Self {
            WinAcc { count: 0, sum: 0, max: 0, buckets: [0; BUCKETS] }
        }
    }

    impl WinAcc {
        fn merge(&mut self, other: &WinAcc) {
            self.count += other.count;
            self.sum += other.sum;
            self.max = self.max.max(other.max);
            for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
                *dst += src;
            }
        }

        /// Smallest bucket upper bound whose cumulative count reaches
        /// quantile `q_num / q_den`, clamped to the observed max so
        /// `p50 ≤ p95 ≤ p99 ≤ max` holds by construction.
        fn percentile(&self, q_num: u64, q_den: u64) -> u64 {
            if self.count == 0 {
                return 0;
            }
            let rank = (self.count * q_num).div_ceil(q_den).max(1);
            let mut cum = 0u64;
            for (i, &c) in self.buckets.iter().enumerate() {
                cum += c;
                if cum >= rank {
                    // Inclusive upper value of bucket i is its exclusive
                    // upper bound minus one (bucket 0 holds only zero).
                    let (_, upper) = bucket_bounds(i);
                    let inclusive = if i == 0 { 0 } else { upper.saturating_sub(1) };
                    return inclusive.min(self.max);
                }
            }
            self.max
        }

        pub(crate) fn into_snapshot(self, name: &str, lane: usize) -> WindowSnapshot {
            WindowSnapshot {
                name: name.to_string(),
                lane,
                count: self.count,
                sum: self.sum,
                max: self.max,
                p50: self.percentile(1, 2),
                p95: self.percentile(19, 20),
                p99: self.percentile(99, 100),
                buckets: self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        let (lo, hi) = bucket_bounds(i);
                        (lo, hi, c)
                    })
                    .collect(),
            }
        }
    }
}

#[cfg(feature = "obs")]
pub use enabled::WindowedHist;
