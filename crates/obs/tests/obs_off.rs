//! Behavior of the stub build. Compiled only WITHOUT `--features obs`.
#![cfg(not(feature = "obs"))]

use sapla_obs::{counter, gauge_max, hist, lane_counter, span, Snapshot};

#[test]
fn disabled_build_records_nothing() {
    assert!(!sapla_obs::enabled());
    counter!("test.off.counter");
    counter!("test.off.counter", 5);
    lane_counter!("test.off.lanes", 1, 2);
    gauge_max!("test.off.gauge", 9);
    hist!("test.off.hist", 3);
    {
        let _span = span!("test.off.span");
        assert_eq!(sapla_obs::span_depth(), 0);
        assert_eq!(sapla_obs::current_span(), None);
    }
    let _w = sapla_obs::worker::enter(7);
    assert_eq!(sapla_obs::worker::get(), 0);
    sapla_obs::reset();

    let snap = Snapshot::capture();
    assert!(snap.is_empty());
    let json = snap.to_json();
    assert!(json.contains("\"enabled\": false"));
    assert!(json.contains("\"counters\": {}"));
    assert!(snap.render_table().contains("disabled"));
}
