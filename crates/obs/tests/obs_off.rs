//! Behavior of the stub build. Compiled only WITHOUT `--features obs`.
#![cfg(not(feature = "obs"))]

use sapla_obs::{counter, gauge_max, hist, lane_counter, span, windowed, Snapshot};

#[test]
fn disabled_build_records_nothing() {
    assert!(!sapla_obs::enabled());
    counter!("test.off.counter");
    counter!("test.off.counter", 5);
    lane_counter!("test.off.lanes", 1, 2);
    gauge_max!("test.off.gauge", 9);
    hist!("test.off.hist", 3);
    windowed!("test.off.win", 0, 4);
    sapla_obs::register_hist!("test.off.pre.hist");
    sapla_obs::register_windowed!("test.off.pre.win");
    {
        let _span = span!("test.off.span");
        assert_eq!(sapla_obs::span_depth(), 0);
        assert_eq!(sapla_obs::current_span(), None);
    }
    let _w = sapla_obs::worker::enter(7);
    assert_eq!(sapla_obs::worker::get(), 0);
    sapla_obs::reset();

    let snap = Snapshot::capture();
    assert!(snap.is_empty());
    let json = snap.to_json();
    assert!(json.contains("\"enabled\": false"));
    assert!(json.contains("\"counters\": {}"));
    assert!(json.contains("\"windows\": []"));
    assert!(snap.render_table().contains("disabled"));
}

#[test]
fn disabled_recorder_and_clock_are_inert() {
    use sapla_obs::recorder::{self, Meta, Stage};
    assert_eq!(sapla_obs::clock::now_ns(), 0);
    let t = recorder::begin();
    assert!(!t.is_some());
    recorder::stage(t, Stage::Decode, 0, 5);
    recorder::set_meta(t, Meta::K, 3);
    assert_eq!(recorder::end(t), 0);
    assert!(!recorder::armed());
    assert!(recorder::fetch(t).is_none());
    assert!(recorder::recent(8).is_empty());
    recorder::reset();
}
