//! Behavior of the enabled build. Compiled only with `--features obs`.
#![cfg(feature = "obs")]

use std::sync::{Mutex, PoisonError};

use sapla_obs::{counter, gauge_max, hist, lane_counter, span, windowed, Snapshot};

/// Metrics are process-global; serialize tests that assert on exact
/// values so `reset()` in one test cannot race another's increments.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn counter_value(snap: &Snapshot, name: &str) -> Option<u64> {
    snap.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

#[test]
fn counters_accumulate_and_merge_across_call_sites() {
    let _g = lock();
    sapla_obs::reset();
    counter!("test.merge");
    counter!("test.merge", 4);
    for _ in 0..3 {
        counter!("test.merge");
    }
    let snap = Snapshot::capture();
    assert_eq!(counter_value(&snap, "test.merge"), Some(8));
}

#[test]
fn zero_add_registers_without_counting() {
    let _g = lock();
    sapla_obs::reset();
    counter!("test.zero", 0);
    let snap = Snapshot::capture();
    assert_eq!(counter_value(&snap, "test.zero"), Some(0));
}

#[test]
fn gauge_keeps_high_water_mark() {
    let _g = lock();
    sapla_obs::reset();
    gauge_max!("test.gauge", 7);
    gauge_max!("test.gauge", 3);
    let snap = Snapshot::capture();
    let v = snap.gauges.iter().find(|(n, _)| n == "test.gauge");
    assert_eq!(v.map(|&(_, v)| v), Some(7));
}

#[test]
fn lanes_sum_and_trim_trailing_zeros() {
    let _g = lock();
    sapla_obs::reset();
    lane_counter!("test.lanes", 0, 2);
    lane_counter!("test.lanes", 2, 5);
    let snap = Snapshot::capture();
    let lanes = snap.lanes.iter().find(|(n, _)| n == "test.lanes");
    assert_eq!(lanes.map(|(_, v)| v.clone()), Some(vec![2, 0, 5]));
}

#[test]
fn out_of_range_lane_folds_into_last() {
    let _g = lock();
    sapla_obs::reset();
    lane_counter!("test.lanes.fold", sapla_obs::MAX_LANES + 10, 1);
    let snap = Snapshot::capture();
    let lanes = snap.lanes.iter().find(|(n, _)| n == "test.lanes.fold");
    let lanes = lanes.map(|(_, v)| v.clone()).unwrap_or_default();
    assert_eq!(lanes.len(), sapla_obs::MAX_LANES);
    assert_eq!(lanes.last(), Some(&1));
    assert_eq!(lanes.iter().sum::<u64>(), 1);
}

#[test]
fn histogram_counts_sums_and_buckets() {
    let _g = lock();
    sapla_obs::reset();
    hist!("test.hist", 0);
    hist!("test.hist", 1);
    hist!("test.hist", 1023);
    let snap = Snapshot::capture();
    let h = snap.histograms.iter().find(|h| h.name == "test.hist").cloned().unwrap_or_default();
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 1024);
    // Buckets are self-describing [lower, upper) ranges with counts:
    // 0 -> [0,1), 1 -> [1,2), 1023 -> [512,1024).
    assert_eq!(h.buckets, vec![(0, 1, 1), (1, 2, 1), (512, 1024, 1)]);
    assert!((h.mean() - 1024.0 / 3.0).abs() < 1e-9);
}

#[test]
fn span_records_duration_and_worker_attribution() {
    let _g = lock();
    sapla_obs::reset();
    assert_eq!(sapla_obs::span_depth(), 0);
    {
        let _outer = span!("test.span.outer");
        assert_eq!(sapla_obs::span_depth(), 1);
        assert_eq!(sapla_obs::current_span(), Some("test.span.outer"));
        {
            let _w = sapla_obs::worker::enter(3);
            let _inner = span!("test.span.inner");
            assert_eq!(sapla_obs::span_depth(), 2);
            assert_eq!(sapla_obs::current_span(), Some("test.span.inner"));
        }
        assert_eq!(sapla_obs::current_span(), Some("test.span.outer"));
    }
    assert_eq!(sapla_obs::span_depth(), 0);
    assert_eq!(sapla_obs::current_span(), None);
    assert_eq!(sapla_obs::worker::get(), 0);

    let snap = Snapshot::capture();
    let outer = snap.histograms.iter().find(|h| h.name == "test.span.outer");
    assert_eq!(outer.map(|h| h.count), Some(1));
    let inner_ns = snap
        .lanes
        .iter()
        .find(|(n, _)| n == "test.span.inner.worker_ns")
        .map(|(_, v)| v.clone())
        .unwrap_or_default();
    // Inner span time lands in worker 3's lane (may be 0 ns on a coarse
    // clock, but the lane vector must reach index 3 once lane 3 is hit —
    // unless it recorded 0, in which case trimming keeps it shorter).
    assert!(inner_ns.len() <= 4);
}

#[test]
fn reset_zeroes_but_keeps_registration() {
    let _g = lock();
    sapla_obs::reset();
    counter!("test.reset", 9);
    sapla_obs::reset();
    let snap = Snapshot::capture();
    assert_eq!(counter_value(&snap, "test.reset"), Some(0));
}

#[test]
fn json_is_balanced_and_carries_sections() {
    let _g = lock();
    sapla_obs::reset();
    counter!("test.json \"quoted\"", 1);
    let snap = Snapshot::capture();
    let json = snap.to_json();
    for key in [
        "\"enabled\": true",
        "\"counters\"",
        "\"gauges\"",
        "\"lanes\"",
        "\"histograms\"",
        "\"windows\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.contains("test.json \\\"quoted\\\""));
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
    let table = snap.render_table();
    assert!(table.contains("counter"));
}

fn window_row<'a>(
    snap: &'a Snapshot,
    name: &str,
    lane: usize,
) -> Option<&'a sapla_obs::WindowSnapshot> {
    snap.windows.iter().find(|w| w.name == name && w.lane == lane)
}

#[test]
fn windowed_percentiles_are_monotone_and_clamped_to_max() {
    let _g = lock();
    sapla_obs::reset();
    let clock = sapla_obs::clock::TestClock::install(0);
    for v in [10u64, 20, 30, 1000, 5000] {
        windowed!("test.win.mono", 0, v);
    }
    let snap = Snapshot::capture();
    let w = window_row(&snap, "test.win.mono", 0).expect("window row present");
    assert_eq!(w.count, 5);
    assert_eq!(w.sum, 6060);
    assert_eq!(w.max, 5000);
    assert!(w.p50 <= w.p95, "p50 {} > p95 {}", w.p50, w.p95);
    assert!(w.p95 <= w.p99, "p95 {} > p99 {}", w.p95, w.p99);
    assert!(w.p99 <= w.max, "p99 {} > max {}", w.p99, w.max);
    // p99 falls in the 5000 bucket [4096, 8192) and clamps to the true max.
    assert_eq!(w.p99, 5000);
    // Buckets are self-describing [lower, upper) triples summing to count.
    assert_eq!(w.buckets.iter().map(|&(_, _, c)| c).sum::<u64>(), 5);
    for &(lo, hi, _) in &w.buckets {
        assert!(lo < hi);
    }
    drop(clock);
}

#[test]
fn windowed_rotation_expires_old_windows() {
    let _g = lock();
    sapla_obs::reset();
    let clock = sapla_obs::clock::TestClock::install(0);
    windowed!("test.win.rotate", 0, 100);
    // Advance past the full horizon: the old window must drop out.
    clock.advance(sapla_obs::sketch::WINDOW_NS * sapla_obs::sketch::WINDOWS as u64);
    windowed!("test.win.rotate", 0, 7);
    let snap = Snapshot::capture();
    let w = window_row(&snap, "test.win.rotate", 0).expect("window row present");
    assert_eq!(w.count, 1, "expired window still counted: {w:?}");
    assert_eq!(w.max, 7);

    // Within the horizon both windows are live.
    sapla_obs::reset();
    windowed!("test.win.rotate2", 0, 100);
    clock.advance(sapla_obs::sketch::WINDOW_NS);
    windowed!("test.win.rotate2", 0, 7);
    let snap = Snapshot::capture();
    let w = window_row(&snap, "test.win.rotate2", 0).expect("window row present");
    assert_eq!(w.count, 2);
    assert_eq!(w.max, 100);
    drop(clock);
}

#[test]
fn windowed_lanes_split_and_fold() {
    let _g = lock();
    sapla_obs::reset();
    let clock = sapla_obs::clock::TestClock::install(0);
    windowed!("test.win.lanes", 1, 5);
    windowed!("test.win.lanes", sapla_obs::sketch::WIN_LANES + 3, 9);
    let snap = Snapshot::capture();
    // Lane 0 always surfaces (pre-registration zeros), lane 1 and the
    // folded last lane carry the records.
    assert_eq!(window_row(&snap, "test.win.lanes", 0).map(|w| w.count), Some(0));
    assert_eq!(window_row(&snap, "test.win.lanes", 1).map(|w| w.count), Some(1));
    let last = window_row(&snap, "test.win.lanes", sapla_obs::sketch::WIN_LANES - 1);
    assert_eq!(last.map(|w| w.max), Some(9));
    drop(clock);
}

#[test]
fn register_macros_surface_zero_rows() {
    let _g = lock();
    sapla_obs::reset();
    sapla_obs::register_hist!("test.pre.hist");
    sapla_obs::register_windowed!("test.pre.win");
    let snap = Snapshot::capture();
    let h = snap.histograms.iter().find(|h| h.name == "test.pre.hist");
    assert_eq!(h.map(|h| h.count), Some(0));
    assert_eq!(window_row(&snap, "test.pre.win", 0).map(|w| w.count), Some(0));
}

#[test]
fn recorder_traces_decompose_into_stages() {
    use sapla_obs::recorder::{self, Meta, Stage};
    let _g = lock();
    sapla_obs::reset();
    let clock = sapla_obs::clock::TestClock::install(1_000);
    recorder::reset();
    recorder::set_armed(true);

    let t = recorder::begin();
    assert!(t.is_some());
    clock.advance(50);
    recorder::stage(t, Stage::Decode, 1_000, 1_050);
    clock.advance(200);
    recorder::stage(t, Stage::Queue, 1_050, 1_250);
    recorder::set_meta(t, Meta::K, 5);
    clock.advance(700);
    recorder::stage(t, Stage::Execute, 1_250, 1_950);
    clock.advance(50);
    let total = recorder::end(t);
    assert_eq!(total, 1_000);

    let dump = recorder::fetch(t).expect("trace still in ring");
    assert_eq!(dump.total_ns, 1_000);
    assert_eq!(dump.meta[Meta::K as usize], 5);
    assert_eq!(dump.stages, vec![("decode", 0, 50), ("queue", 50, 200), ("execute", 250, 700)]);
    assert!(dump.stage_sum_ns() <= dump.total_ns);
    let recent = recorder::recent(8);
    assert!(recent.iter().any(|d| d.id == t.0));
    drop(clock);
}

#[test]
fn recorder_ring_overwrites_and_drops_stale_writes() {
    use sapla_obs::recorder::{self, Stage, TRACE_CAPACITY};
    let _g = lock();
    sapla_obs::reset();
    let clock = sapla_obs::clock::TestClock::install(0);
    recorder::reset();
    recorder::set_armed(true);

    let old = recorder::begin();
    // Wrap the ring: `old`'s slot is reused by a newer generation.
    for _ in 0..TRACE_CAPACITY {
        let t = recorder::begin();
        recorder::end(t);
    }
    recorder::stage(old, Stage::Decode, 0, 99);
    assert_eq!(recorder::end(old), 0, "stale end must be dropped");
    assert!(recorder::fetch(old).is_none(), "overwritten trace must not resolve");

    // Disarmed: begin is a no-op.
    recorder::set_armed(false);
    let t = recorder::begin();
    assert!(!t.is_some());
    assert_eq!(recorder::end(t), 0);
    recorder::set_armed(true);
    drop(clock);
}
