//! Behavior of the enabled build. Compiled only with `--features obs`.
#![cfg(feature = "obs")]

use std::sync::{Mutex, PoisonError};

use sapla_obs::{counter, gauge_max, hist, lane_counter, span, Snapshot};

/// Metrics are process-global; serialize tests that assert on exact
/// values so `reset()` in one test cannot race another's increments.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn counter_value(snap: &Snapshot, name: &str) -> Option<u64> {
    snap.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

#[test]
fn counters_accumulate_and_merge_across_call_sites() {
    let _g = lock();
    sapla_obs::reset();
    counter!("test.merge");
    counter!("test.merge", 4);
    for _ in 0..3 {
        counter!("test.merge");
    }
    let snap = Snapshot::capture();
    assert_eq!(counter_value(&snap, "test.merge"), Some(8));
}

#[test]
fn zero_add_registers_without_counting() {
    let _g = lock();
    sapla_obs::reset();
    counter!("test.zero", 0);
    let snap = Snapshot::capture();
    assert_eq!(counter_value(&snap, "test.zero"), Some(0));
}

#[test]
fn gauge_keeps_high_water_mark() {
    let _g = lock();
    sapla_obs::reset();
    gauge_max!("test.gauge", 7);
    gauge_max!("test.gauge", 3);
    let snap = Snapshot::capture();
    let v = snap.gauges.iter().find(|(n, _)| n == "test.gauge");
    assert_eq!(v.map(|&(_, v)| v), Some(7));
}

#[test]
fn lanes_sum_and_trim_trailing_zeros() {
    let _g = lock();
    sapla_obs::reset();
    lane_counter!("test.lanes", 0, 2);
    lane_counter!("test.lanes", 2, 5);
    let snap = Snapshot::capture();
    let lanes = snap.lanes.iter().find(|(n, _)| n == "test.lanes");
    assert_eq!(lanes.map(|(_, v)| v.clone()), Some(vec![2, 0, 5]));
}

#[test]
fn out_of_range_lane_folds_into_last() {
    let _g = lock();
    sapla_obs::reset();
    lane_counter!("test.lanes.fold", sapla_obs::MAX_LANES + 10, 1);
    let snap = Snapshot::capture();
    let lanes = snap.lanes.iter().find(|(n, _)| n == "test.lanes.fold");
    let lanes = lanes.map(|(_, v)| v.clone()).unwrap_or_default();
    assert_eq!(lanes.len(), sapla_obs::MAX_LANES);
    assert_eq!(lanes.last(), Some(&1));
    assert_eq!(lanes.iter().sum::<u64>(), 1);
}

#[test]
fn histogram_counts_sums_and_buckets() {
    let _g = lock();
    sapla_obs::reset();
    hist!("test.hist", 0);
    hist!("test.hist", 1);
    hist!("test.hist", 1023);
    let snap = Snapshot::capture();
    let h = snap.histograms.iter().find(|h| h.name == "test.hist").cloned().unwrap_or_default();
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 1024);
    // 0 -> bucket 0 (le 0), 1 -> bucket 1 (le 1), 1023 -> bucket 10 (le 1023).
    assert_eq!(h.buckets, vec![(0, 1), (1, 1), (1023, 1)]);
    assert!((h.mean() - 1024.0 / 3.0).abs() < 1e-9);
}

#[test]
fn span_records_duration_and_worker_attribution() {
    let _g = lock();
    sapla_obs::reset();
    assert_eq!(sapla_obs::span_depth(), 0);
    {
        let _outer = span!("test.span.outer");
        assert_eq!(sapla_obs::span_depth(), 1);
        assert_eq!(sapla_obs::current_span(), Some("test.span.outer"));
        {
            let _w = sapla_obs::worker::enter(3);
            let _inner = span!("test.span.inner");
            assert_eq!(sapla_obs::span_depth(), 2);
            assert_eq!(sapla_obs::current_span(), Some("test.span.inner"));
        }
        assert_eq!(sapla_obs::current_span(), Some("test.span.outer"));
    }
    assert_eq!(sapla_obs::span_depth(), 0);
    assert_eq!(sapla_obs::current_span(), None);
    assert_eq!(sapla_obs::worker::get(), 0);

    let snap = Snapshot::capture();
    let outer = snap.histograms.iter().find(|h| h.name == "test.span.outer");
    assert_eq!(outer.map(|h| h.count), Some(1));
    let inner_ns = snap
        .lanes
        .iter()
        .find(|(n, _)| n == "test.span.inner.worker_ns")
        .map(|(_, v)| v.clone())
        .unwrap_or_default();
    // Inner span time lands in worker 3's lane (may be 0 ns on a coarse
    // clock, but the lane vector must reach index 3 once lane 3 is hit —
    // unless it recorded 0, in which case trimming keeps it shorter).
    assert!(inner_ns.len() <= 4);
}

#[test]
fn reset_zeroes_but_keeps_registration() {
    let _g = lock();
    sapla_obs::reset();
    counter!("test.reset", 9);
    sapla_obs::reset();
    let snap = Snapshot::capture();
    assert_eq!(counter_value(&snap, "test.reset"), Some(0));
}

#[test]
fn json_is_balanced_and_carries_sections() {
    let _g = lock();
    sapla_obs::reset();
    counter!("test.json \"quoted\"", 1);
    let snap = Snapshot::capture();
    let json = snap.to_json();
    for key in ["\"enabled\": true", "\"counters\"", "\"gauges\"", "\"lanes\"", "\"histograms\""] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.contains("test.json \\\"quoted\\\""));
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
    let table = snap.render_table();
    assert!(table.contains("counter"));
}
