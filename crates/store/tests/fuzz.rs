//! Corruption fuzzing of the snapshot container: every malformed input
//! must surface as a clean `Err`, never a panic. Deterministic xorshift
//! (no external rng), mirroring the codec fuzz tests in `sapla-core`.

use sapla_store::{ArenaWriter, SnapshotBytes, SnapshotView};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn sample_image() -> Vec<u8> {
    let mut w = ArenaWriter::new(1);
    let mut f = Vec::new();
    sapla_store::put_f64s(&mut f, (0..31).map(|i| i as f64 * 0.25));
    w.push_arena(10, 0, &f).unwrap();
    let mut u = Vec::new();
    sapla_store::put_u64s(&mut u, 0..17u64);
    w.push_arena(11, 0, &u).unwrap();
    w.push_arena(11, 1, b"odd-length arena payload!").unwrap();
    w.finish()
}

#[test]
fn truncation_at_every_length_is_an_error() {
    let image = sample_image();
    for cut in 0..image.len() {
        let owned = SnapshotBytes::from_slice(&image[..cut]);
        assert!(SnapshotView::parse(owned.bytes()).is_err(), "cut at {cut}");
    }
}

#[test]
fn every_single_bit_flip_is_caught() {
    // The checksum covers all payload bytes and the header fields are
    // each individually validated, so *any* one-bit corruption must be
    // rejected (and must never panic).
    let image = sample_image();
    for byte in 0..image.len() {
        for bit in 0..8 {
            let mut flipped = image.clone();
            flipped[byte] ^= 1 << bit;
            let owned = SnapshotBytes::from_slice(&flipped);
            match SnapshotView::parse(owned.bytes()) {
                Ok(_) => panic!("bit {bit} of byte {byte} flipped yet the snapshot parsed"),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }
}

#[test]
fn trailing_garbage_is_an_error() {
    let mut image = sample_image();
    image.push(0);
    let owned = SnapshotBytes::from_slice(&image);
    assert!(SnapshotView::parse(owned.bytes()).is_err());
}

#[test]
fn random_blobs_never_panic() {
    let mut rng = XorShift(0x5eed_cafe_f00d_d00d);
    for round in 0..500 {
        let len = (rng.next() % 513) as usize;
        let blob: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let owned = SnapshotBytes::from_slice(&blob);
        // Random bytes essentially never form a valid checksummed
        // container; parse must reject them without panicking.
        assert!(SnapshotView::parse(owned.bytes()).is_err(), "round {round}");
    }
}

#[test]
fn random_toc_mutations_never_panic() {
    // Adversarial case: keep the header consistent (length + checksum
    // recomputed) while scribbling over TOC and payload bytes, so
    // parsing reaches the TOC/arena validation layers.
    let image = sample_image();
    let mut rng = XorShift(0xbad5_eed5_bad5_eed5);
    for _ in 0..500 {
        let mut blob = image.clone();
        for _ in 0..1 + rng.next() % 8 {
            let at = 64 + (rng.next() as usize) % (blob.len() - 64);
            blob[at] = rng.next() as u8;
        }
        // Re-seal the checksum so corruption targets the structural
        // validation, not just the integrity hash.
        let sum = sapla_store::image_checksum(&blob).to_le_bytes();
        blob[24..32].copy_from_slice(&sum);
        let owned = SnapshotBytes::from_slice(&blob);
        match SnapshotView::parse(owned.bytes()) {
            Ok(v) => {
                // Structurally valid mutations (payload-only scribbles)
                // must still serve in-bounds arenas.
                for e in v.toc() {
                    let a = v.arena(e.kind, e.shard).unwrap();
                    assert_eq!(a.len() as u64, e.len);
                }
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn misaligned_image_is_an_error_not_a_panic() {
    // Feed `parse` a slice whose base address is deliberately knocked
    // off the container alignment: arena *views* must refuse it, and
    // nothing may panic. Parsing itself reads the header bytewise and
    // may succeed; the typed views are where alignment matters.
    let image = sample_image();
    let mut padded = vec![0u8; image.len() + 1];
    padded[1..].copy_from_slice(&image);
    // `SnapshotBytes` guarantees an 8-aligned base, so skipping one byte
    // guarantees a misaligned one — deterministically, not by allocator
    // luck.
    let owned = SnapshotBytes::from_slice(&padded);
    let shifted = &owned.bytes()[1..];
    match SnapshotView::parse(shifted) {
        Ok(v) => {
            let arena = v.arena(10, 0).unwrap();
            // 64-aligned file offset + base shifted by one ⇒ the f64
            // view's alignment check must fire.
            assert!(sapla_store::view::f64s(arena).is_err());
        }
        Err(e) => {
            let _ = e.to_string();
        }
    }
}
