//! # sapla-store
//!
//! On-disk, zero-copy snapshot **container** for fully-built indexes:
//! a versioned, checksummed header, a table of contents, and 64-byte
//! aligned, offset-addressed byte arenas. The container is schema-free
//! — what each arena *means* (SoA leaf coefficients, tree node records,
//! raw samples, …) is defined by the consumer (`sapla-index`); this
//! crate owns layout, integrity, and the safe reinterpretation views.
//!
//! ```text
//! file    := header (64 B) | arena* (each 64-B aligned, zero padded) | toc
//! header  := magic "SAPLSNAP" | version u16 | endian u16 | flags u32
//!            | file_len u64 | checksum u64 | toc_off u64 | toc_count u64
//!            | reserved [u8; 16]
//! toc     := (kind u32, shard u32, off u64, len u64)*   (24 B / entry)
//! ```
//!
//! Everything is little-endian. `checksum` is FNV-1a over every byte
//! of the file except the checksum field itself (header fields, arenas,
//! padding, and TOC), so any single bit flip anywhere is caught before
//! a single arena is interpreted. Loading
//! never decodes records: [`SnapshotView::parse`] validates the
//! container (magic, version, endianness mark, length, checksum, TOC
//! bounds, arena alignment) and then hands out borrowed byte slices
//! that [`view`] reinterprets as typed slices after alignment/length
//! checks. Every failure is an [`Error`] — corrupt input never panics.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::path::Path;

use sapla_core::{Error, Result};

pub mod view;

/// Arena payloads start on multiples of this (cache-line / mmap
/// friendly, and ≥ the alignment of every element type served by
/// [`view`]).
pub const ALIGN: usize = 64;

/// Container header size in bytes.
pub const HEADER_LEN: usize = 64;

/// Bytes per TOC entry.
pub const TOC_ENTRY_LEN: usize = 24;

const MAGIC: &[u8; 8] = b"SAPLSNAP";
const VERSION: u16 = 1;
/// Byte-order mark, always written little-endian: a byte-swapped
/// writer's output reads back as `0xFFFE` and is rejected.
const ENDIAN_MARK: u16 = 0xFEFF;

fn corrupt(reason: &'static str) -> Error {
    Error::CorruptIndex { reason }
}

fn io_err(path: &Path, e: &std::io::Error) -> Error {
    Error::Io { path: path.display().to_string(), message: e.to_string() }
}

/// FNV-1a over `bytes` — the container checksum primitive. Not
/// cryptographic; it exists to catch torn writes and bit rot, not
/// adversaries.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The container checksum: FNV-1a over the whole image except the
/// checksum field itself (header bytes 24..32), so header corruption —
/// flags included — is caught too. Public so corruption tests and
/// external tooling can re-seal deliberately mutated images; `image`
/// must be at least [`HEADER_LEN`] bytes.
///
/// # Panics
///
/// On images shorter than [`HEADER_LEN`] (slicing) — callers hold a
/// full header by construction.
#[must_use]
pub fn image_checksum(image: &[u8]) -> u64 {
    let h = fnv1a_update(0xcbf2_9ce4_8422_2325, &image[..24]);
    fnv1a_update(h, &image[32..])
}

/// One table-of-contents record: which arena, which shard, where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TocEntry {
    /// Consumer-defined arena kind tag.
    pub kind: u32,
    /// Shard index the arena belongs to (0 for global arenas).
    pub shard: u32,
    /// Byte offset of the arena payload from the start of the file.
    pub off: u64,
    /// Payload length in bytes (excludes alignment padding).
    pub len: u64,
}

/// Builds a snapshot file in memory: append arenas, then
/// [`ArenaWriter::finish`] seals the header + TOC.
#[derive(Debug)]
pub struct ArenaWriter {
    buf: Vec<u8>,
    toc: Vec<TocEntry>,
    flags: u32,
}

impl ArenaWriter {
    /// Start a snapshot with the given header `flags` (consumer-defined
    /// bits; `sapla-index` uses bit 0 for quantized leaves).
    #[must_use]
    pub fn new(flags: u32) -> Self {
        Self { buf: vec![0u8; HEADER_LEN], toc: Vec::new(), flags }
    }

    /// Append one arena, padding the file position to [`ALIGN`] first.
    ///
    /// # Errors
    ///
    /// [`Error::CorruptIndex`] if `(kind, shard)` was already pushed —
    /// the TOC is a map, and a duplicate key would make lookups
    /// ambiguous.
    pub fn push_arena(&mut self, kind: u32, shard: u32, bytes: &[u8]) -> Result<()> {
        if self.toc.iter().any(|e| e.kind == kind && e.shard == shard) {
            return Err(corrupt("duplicate arena (kind, shard) in snapshot"));
        }
        let pad = self.buf.len().next_multiple_of(ALIGN) - self.buf.len();
        self.buf.extend(std::iter::repeat_n(0u8, pad));
        self.toc.push(TocEntry {
            kind,
            shard,
            off: self.buf.len() as u64,
            len: bytes.len() as u64,
        });
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    /// Seal the snapshot: append the TOC, then fill in the header
    /// (lengths, checksum) and return the complete file image.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        // The TOC sits at the end, 8-aligned so future readers could
        // view it in place as well.
        let pad = self.buf.len().next_multiple_of(8) - self.buf.len();
        self.buf.extend(std::iter::repeat_n(0u8, pad));
        let toc_off = self.buf.len() as u64;
        for e in &self.toc {
            self.buf.extend_from_slice(&e.kind.to_le_bytes());
            self.buf.extend_from_slice(&e.shard.to_le_bytes());
            self.buf.extend_from_slice(&e.off.to_le_bytes());
            self.buf.extend_from_slice(&e.len.to_le_bytes());
        }
        let file_len = self.buf.len() as u64;
        {
            let h = &mut self.buf[..HEADER_LEN];
            h[0..8].copy_from_slice(MAGIC);
            h[8..10].copy_from_slice(&VERSION.to_le_bytes());
            h[10..12].copy_from_slice(&ENDIAN_MARK.to_le_bytes());
            h[12..16].copy_from_slice(&self.flags.to_le_bytes());
            h[16..24].copy_from_slice(&file_len.to_le_bytes());
            h[32..40].copy_from_slice(&toc_off.to_le_bytes());
            h[40..48].copy_from_slice(&(self.toc.len() as u64).to_le_bytes());
            // h[48..64] stays reserved zeros.
        }
        // Last: the checksum covers every other header field too.
        let checksum = image_checksum(&self.buf);
        self.buf[24..32].copy_from_slice(&checksum.to_le_bytes());
        self.buf
    }

    /// [`ArenaWriter::finish`] + write the image to `path`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on any filesystem failure.
    pub fn write_file(self, path: &Path) -> Result<u64> {
        let image = self.finish();
        std::fs::write(path, &image).map_err(|e| io_err(path, &e))?;
        Ok(image.len() as u64)
    }
}

/// An owned snapshot image whose base address is 8-byte aligned (the
/// strictest alignment [`view`] serves), backed by a `u64` allocation.
/// `Vec<u8>` from `std::fs::read` guarantees nothing about alignment;
/// copying once into word storage makes every arena view alignment
/// check pass deterministically rather than by allocator luck.
#[derive(Debug)]
pub struct SnapshotBytes {
    words: Vec<u64>,
    len: usize,
}

impl SnapshotBytes {
    /// Copy `bytes` into aligned storage.
    #[must_use]
    pub fn from_slice(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        for (w, chunk) in words.iter_mut().zip(bytes.chunks(8)) {
            let mut tmp = [0u8; 8];
            tmp[..chunk.len()].copy_from_slice(chunk);
            // from_ne_bytes: the word's in-memory representation equals
            // the original byte sequence on every host endianness.
            *w = u64::from_ne_bytes(tmp);
        }
        Self { words, len: bytes.len() }
    }

    /// Read a snapshot file into aligned storage.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on any filesystem failure.
    pub fn read_file(path: &Path) -> Result<Self> {
        let raw = std::fs::read(path).map_err(|e| io_err(path, &e))?;
        Ok(Self::from_slice(&raw))
    }

    /// The snapshot image as bytes (8-byte-aligned base address).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        debug_assert!(self.len <= self.words.len() * 8);
        // SAFETY: the backing `words` allocation holds `words.len() * 8`
        // bytes and `self.len <= words.len() * 8` by construction, so
        // all `len` bytes are in bounds of the same allocation; `u8` has
        // alignment 1, and the borrow ties the view's lifetime to the
        // allocation.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

/// A parsed, integrity-checked view over a snapshot image. Borrows the
/// underlying bytes — arena lookups return sub-slices, no copies.
#[derive(Debug)]
pub struct SnapshotView<'a> {
    data: &'a [u8],
    flags: u32,
    toc: Vec<TocEntry>,
}

fn read_u16(data: &[u8], at: usize) -> u16 {
    let mut b = [0u8; 2];
    b.copy_from_slice(&data[at..at + 2]);
    u16::from_le_bytes(b)
}

fn read_u32(data: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[at..at + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(data: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(b)
}

impl<'a> SnapshotView<'a> {
    /// Validate the container and index its TOC.
    ///
    /// Checks, in order: header presence, magic, version, endianness
    /// mark, recorded vs. actual file length, payload checksum, TOC
    /// bounds, and — per entry — arena alignment and bounds plus
    /// `(kind, shard)` uniqueness.
    ///
    /// # Errors
    ///
    /// [`Error::CorruptIndex`] describing the first violated rule.
    pub fn parse(data: &'a [u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(corrupt("snapshot shorter than its header"));
        }
        if &data[0..8] != MAGIC {
            return Err(corrupt("bad snapshot magic"));
        }
        if read_u16(data, 8) != VERSION {
            return Err(corrupt("unsupported snapshot version"));
        }
        if read_u16(data, 10) != ENDIAN_MARK {
            return Err(corrupt("snapshot endianness mark mismatch"));
        }
        let flags = read_u32(data, 12);
        if read_u64(data, 16) != data.len() as u64 {
            return Err(corrupt("snapshot length does not match header"));
        }
        if read_u64(data, 24) != image_checksum(data) {
            return Err(corrupt("snapshot checksum mismatch"));
        }
        let toc_off = usize::try_from(read_u64(data, 32))
            .map_err(|_| corrupt("snapshot TOC offset overflows"))?;
        let toc_count = usize::try_from(read_u64(data, 40))
            .map_err(|_| corrupt("snapshot TOC count overflows"))?;
        let toc_bytes = toc_count
            .checked_mul(TOC_ENTRY_LEN)
            .ok_or_else(|| corrupt("snapshot TOC count overflows"))?;
        // The TOC is written last and must end exactly at end-of-file.
        if toc_off < HEADER_LEN || toc_off.checked_add(toc_bytes) != Some(data.len()) {
            return Err(corrupt("snapshot TOC out of bounds"));
        }
        let mut toc = Vec::with_capacity(toc_count);
        for i in 0..toc_count {
            let at = toc_off + i * TOC_ENTRY_LEN;
            let e = TocEntry {
                kind: read_u32(data, at),
                shard: read_u32(data, at + 4),
                off: read_u64(data, at + 8),
                len: read_u64(data, at + 16),
            };
            let off = usize::try_from(e.off).map_err(|_| corrupt("arena offset overflows"))?;
            let len = usize::try_from(e.len).map_err(|_| corrupt("arena length overflows"))?;
            if off % ALIGN != 0 {
                return Err(corrupt("arena offset not 64-byte aligned"));
            }
            if off < HEADER_LEN || off.checked_add(len).is_none_or(|end| end > toc_off) {
                return Err(corrupt("arena extends outside the snapshot payload"));
            }
            if toc[..i].iter().any(|p: &TocEntry| p.kind == e.kind && p.shard == e.shard) {
                return Err(corrupt("duplicate arena (kind, shard) in snapshot"));
            }
            toc.push(e);
        }
        Ok(Self { data, flags, toc })
    }

    /// Consumer-defined header flags.
    #[must_use]
    pub fn flags(&self) -> u32 {
        self.flags
    }

    /// All TOC entries, file order.
    #[must_use]
    pub fn toc(&self) -> &[TocEntry] {
        &self.toc
    }

    /// The arena `(kind, shard)` if present.
    #[must_use]
    pub fn arena_opt(&self, kind: u32, shard: u32) -> Option<&'a [u8]> {
        let e = self.toc.iter().find(|e| e.kind == kind && e.shard == shard)?;
        // `parse` checked off/len fit in usize and lie inside the file.
        let off = e.off as usize;
        let len = e.len as usize;
        Some(&self.data[off..off + len])
    }

    /// The arena `(kind, shard)`, required.
    ///
    /// # Errors
    ///
    /// [`Error::CorruptIndex`] when the arena is absent.
    pub fn arena(&self, kind: u32, shard: u32) -> Result<&'a [u8]> {
        self.arena_opt(kind, shard).ok_or_else(|| corrupt("required arena missing from snapshot"))
    }
}

/// Append `vals` to `out` as little-endian `f64` bytes (writer-side
/// companion of [`view::f64s`]).
pub fn put_f64s(out: &mut Vec<u8>, vals: impl IntoIterator<Item = f64>) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Append `vals` to `out` as little-endian `u64` bytes.
pub fn put_u64s(out: &mut Vec<u8>, vals: impl IntoIterator<Item = u64>) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Append `vals` to `out` as little-endian `u32` bytes.
pub fn put_u32s(out: &mut Vec<u8>, vals: impl IntoIterator<Item = u32>) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Append `vals` to `out` as little-endian `i32` bytes.
pub fn put_i32s(out: &mut Vec<u8>, vals: impl IntoIterator<Item = i32>) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ArenaWriter::new(0b1);
        w.push_arena(1, 0, b"meta-bytes").unwrap();
        w.push_arena(2, 0, &[0u8; 40]).unwrap();
        w.push_arena(2, 1, b"").unwrap();
        w.finish()
    }

    #[test]
    fn roundtrip_arenas_and_flags() {
        let image = sample();
        let v = SnapshotView::parse(&image).unwrap();
        assert_eq!(v.flags(), 0b1);
        assert_eq!(v.arena(1, 0).unwrap(), b"meta-bytes");
        assert_eq!(v.arena(2, 0).unwrap(), &[0u8; 40]);
        assert_eq!(v.arena(2, 1).unwrap(), b"");
        assert!(v.arena_opt(9, 0).is_none());
        assert!(v.arena(9, 0).is_err());
    }

    #[test]
    fn arenas_are_aligned() {
        let image = sample();
        let v = SnapshotView::parse(&image).unwrap();
        for e in v.toc() {
            assert_eq!(e.off % ALIGN as u64, 0, "{e:?}");
        }
    }

    #[test]
    fn duplicate_arena_is_rejected_at_write_time() {
        let mut w = ArenaWriter::new(0);
        w.push_arena(1, 0, b"a").unwrap();
        assert!(w.push_arena(1, 0, b"b").is_err());
    }

    #[test]
    fn empty_snapshot_parses() {
        let image = ArenaWriter::new(0).finish();
        let v = SnapshotView::parse(&image).unwrap();
        assert!(v.toc().is_empty());
    }

    #[test]
    fn snapshot_bytes_roundtrip_and_alignment() {
        let image = sample();
        let owned = SnapshotBytes::from_slice(&image);
        assert_eq!(owned.bytes(), &image[..]);
        assert_eq!(owned.bytes().as_ptr().align_offset(8), 0);
        let v = SnapshotView::parse(owned.bytes()).unwrap();
        assert_eq!(v.arena(1, 0).unwrap(), b"meta-bytes");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sapla_store_file_roundtrip.snap");
        let mut w = ArenaWriter::new(7);
        w.push_arena(3, 2, b"payload").unwrap();
        let written = w.write_file(&path).unwrap();
        let owned = SnapshotBytes::read_file(&path).unwrap();
        assert_eq!(owned.bytes().len() as u64, written);
        let v = SnapshotView::parse(owned.bytes()).unwrap();
        assert_eq!(v.flags(), 7);
        assert_eq!(v.arena(3, 2).unwrap(), b"payload");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = SnapshotBytes::read_file(Path::new("/nonexistent/sapla.snap")).unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
    }
}
