//! Checked zero-copy reinterpretation of arena bytes as typed slices.
//!
//! Each view validates length divisibility and pointer alignment, then
//! reborrows the bytes in place — no per-element decode, no copy. The
//! element types are all fixed-size plain-old-data numerics with no
//! invalid bit patterns, so any validated byte pattern is a valid
//! slice. Byte order: snapshots are always written little-endian and
//! the container header carries a byte-order mark, so on the (only
//! supported) little-endian hosts the in-place view reads the stored
//! values directly.

use sapla_core::{Error, Result};

/// Shared implementation: `T` must be a plain-old-data numeric type
/// (every bit pattern valid) — enforced by keeping this private and
/// only instantiating it for `f64`/`u64`/`u32`/`i32` below.
fn typed<T: Copy>(bytes: &[u8]) -> Result<&[T]> {
    if bytes.is_empty() {
        // An empty arena views as an empty slice regardless of its base
        // address (a `&[]` literal's dangling pointer is only 1-aligned).
        return Ok(&[]);
    }
    let size = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(size) {
        return Err(Error::CorruptIndex { reason: "arena length not a multiple of element size" });
    }
    let ptr = bytes.as_ptr();
    if ptr.align_offset(std::mem::align_of::<T>()) != 0 {
        return Err(Error::CorruptIndex { reason: "misaligned arena view" });
    }
    let n = bytes.len() / size;
    debug_assert!(n * size <= bytes.len());
    // SAFETY: `ptr` points at `bytes`, whose length is exactly `n * size`,
    // so `n` elements of `T` are in bounds of that allocation; alignment
    // was checked above; `T` is restricted to plain-old-data numerics with
    // no invalid bit patterns; the returned slice borrows `bytes`, keeping
    // the allocation alive for the view's lifetime.
    unsafe { Ok(std::slice::from_raw_parts(ptr.cast::<T>(), n)) }
}

/// View an arena as `f64`s.
///
/// # Errors
///
/// [`Error::CorruptIndex`] on length or alignment violations.
pub fn f64s(bytes: &[u8]) -> Result<&[f64]> {
    typed::<f64>(bytes)
}

/// View an arena as `u64`s.
///
/// # Errors
///
/// [`Error::CorruptIndex`] on length or alignment violations.
pub fn u64s(bytes: &[u8]) -> Result<&[u64]> {
    typed::<u64>(bytes)
}

/// View an arena as `u32`s.
///
/// # Errors
///
/// [`Error::CorruptIndex`] on length or alignment violations.
pub fn u32s(bytes: &[u8]) -> Result<&[u32]> {
    typed::<u32>(bytes)
}

/// View an arena as `i32`s.
///
/// # Errors
///
/// [`Error::CorruptIndex`] on length or alignment violations.
pub fn i32s(bytes: &[u8]) -> Result<&[i32]> {
    typed::<i32>(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_read_back_written_values() {
        let mut buf = Vec::new();
        crate::put_f64s(&mut buf, [1.5, -2.25, f64::MAX]);
        assert_eq!(f64s(&buf).unwrap(), &[1.5, -2.25, f64::MAX]);
        let mut buf = Vec::new();
        crate::put_u64s(&mut buf, [0, 1, u64::MAX]);
        assert_eq!(u64s(&buf).unwrap(), &[0, 1, u64::MAX]);
        let mut buf = Vec::new();
        crate::put_u32s(&mut buf, [7, u32::MAX]);
        assert_eq!(u32s(&buf).unwrap(), &[7, u32::MAX]);
        let mut buf = Vec::new();
        crate::put_i32s(&mut buf, [-3, i32::MAX]);
        assert_eq!(i32s(&buf).unwrap(), &[-3, i32::MAX]);
    }

    #[test]
    fn ragged_length_is_an_error() {
        let buf = [0u8; 12];
        assert!(f64s(&buf).is_err());
        assert!(u64s(&buf[..7]).is_err());
        assert!(u32s(&buf[..6]).is_err());
        assert!(i32s(&buf[..5]).is_err());
    }

    #[test]
    fn misaligned_base_is_an_error_not_a_panic() {
        // An 8-byte aligned backing buffer shifted by one byte can never
        // satisfy an 8- or 4-byte alignment check.
        let backing = [0u64; 4];
        let base = backing.as_ptr().cast::<u8>();
        // SAFETY: `backing` holds 32 bytes; the [1..25) window (24 bytes)
        // is strictly in bounds of that allocation, and `u8` has
        // alignment 1. The view borrows `backing` for this scope only.
        unsafe {
            let shifted: &[u8] = std::slice::from_raw_parts(base.add(1), 24);
            assert!(f64s(shifted).is_err());
            assert!(u64s(shifted).is_err());
            assert!(u32s(shifted).is_err());
            assert!(i32s(shifted).is_err());
        }
    }

    #[test]
    fn empty_views_are_fine() {
        assert!(f64s(&[]).unwrap().is_empty());
        assert!(u64s(&[]).unwrap().is_empty());
    }
}
