//! # sapla-mining
//!
//! The downstream mining tasks the SAPLA paper's introduction motivates —
//! "classification, prediction, clustering, anomaly detection, motif
//! discovery, and semantic segmentation" — implemented over reduced
//! representations so the expensive raw-space work happens only during
//! final refinement:
//!
//! * [`classify`] — k-NN classification with majority voting.
//! * [`cluster`] — k-medoids clustering under any representation distance.
//! * [`discord`] — anomaly (discord) scoring by nearest-neighbour
//!   distance.
//! * [`forecast`] — short-horizon prediction by trend extrapolation.
//! * [`motif`] — closest-pair motif discovery with representation-space
//!   candidate filtering and exact refinement.
//! * [`segment`] — semantic segmentation: SAPLA's adaptive endpoints *are*
//!   change points.
//! * [`subsequence`] — best-match subsequence search over sliding windows.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod classify;
pub mod cluster;
pub mod discord;
pub mod forecast;
pub mod motif;
pub mod segment;
pub mod subsequence;

pub use classify::KnnClassifier;
pub use cluster::{k_medoids, Clustering};
pub use discord::{discord_scores, top_discords};
pub use forecast::{damped_extrapolate, extrapolate};
pub use motif::{find_motif, Motif};
pub use segment::change_points;
pub use subsequence::{best_matches, SubsequenceMatch};
