//! k-NN classification over reduced representations (the paper's
//! motivating use of similarity search).

use sapla_baselines::Reducer;
use sapla_core::{Error, Representation, Result, TimeSeries};
use sapla_distance::rep_distance;

/// A k-NN classifier that stores training series only in reduced form.
///
/// ```
/// use sapla_baselines::{Paa, Reducer};
/// use sapla_core::TimeSeries;
/// use sapla_mining::KnnClassifier;
///
/// let flat = TimeSeries::new(vec![0.0; 32]).unwrap();
/// let ramp = TimeSeries::new((0..32).map(|t| t as f64).collect()).unwrap();
/// let mut clf = KnnClassifier::new(Box::new(Paa), 8);
/// clf.fit(&[(flat.clone(), 0), (ramp.clone(), 1)]).unwrap();
/// assert_eq!(clf.predict(&flat, 1).unwrap(), 0);
/// assert_eq!(clf.predict(&ramp, 1).unwrap(), 1);
/// ```
pub struct KnnClassifier {
    reducer: Box<dyn Reducer>,
    budget: usize,
    train: Vec<(Representation, usize)>,
}

impl KnnClassifier {
    /// A classifier using `reducer` at coefficient budget `budget`.
    pub fn new(reducer: Box<dyn Reducer>, budget: usize) -> Self {
        KnnClassifier { reducer, budget, train: Vec::new() }
    }

    /// Number of stored training examples.
    pub fn len(&self) -> usize {
        self.train.len()
    }

    /// `true` before any training data is added.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty()
    }

    /// Reduce and store labelled training series (appends to any existing
    /// training set).
    ///
    /// # Errors
    ///
    /// Propagates reduction failures.
    pub fn fit(&mut self, labelled: &[(TimeSeries, usize)]) -> Result<()> {
        self.train.reserve(labelled.len());
        for (series, label) in labelled {
            let rep = self.reducer.reduce(series, self.budget)?;
            self.train.push((rep, *label));
        }
        Ok(())
    }

    /// Labels and representation distances of the k nearest training
    /// examples, closest first.
    ///
    /// # Errors
    ///
    /// [`Error::EmptySeries`] when untrained; distance errors otherwise.
    pub fn neighbors(&self, query: &TimeSeries, k: usize) -> Result<Vec<(usize, f64)>> {
        if self.train.is_empty() {
            return Err(Error::EmptySeries);
        }
        let q = self.reducer.reduce(query, self.budget)?;
        let mut dists: Vec<(f64, usize)> = Vec::with_capacity(self.train.len());
        for (rep, label) in &self.train {
            dists.push((rep_distance(&q, rep)?, *label));
        }
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(dists.into_iter().take(k.max(1)).map(|(d, l)| (l, d)).collect())
    }

    /// Majority-vote prediction over the k nearest neighbours (ties break
    /// toward the closer class).
    ///
    /// # Errors
    ///
    /// Propagates [`KnnClassifier::neighbors`] failures.
    pub fn predict(&self, query: &TimeSeries, k: usize) -> Result<usize> {
        let nn = self.neighbors(query, k)?;
        // Count votes; remember each class's best (smallest) distance.
        let mut votes: Vec<(usize, usize, f64)> = Vec::new(); // (label, count, best)
        for (label, d) in nn {
            match votes.iter_mut().find(|(l, _, _)| *l == label) {
                Some((_, c, best)) => {
                    *c += 1;
                    if d < *best {
                        *best = d;
                    }
                }
                None => votes.push((label, 1, d)),
            }
        }
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.total_cmp(&b.2)));
        Ok(votes[0].0)
    }

    /// Leave-nothing-out accuracy on a labelled evaluation set.
    ///
    /// # Errors
    ///
    /// Propagates prediction failures.
    pub fn accuracy(&self, eval: &[(TimeSeries, usize)], k: usize) -> Result<f64> {
        if eval.is_empty() {
            return Ok(1.0);
        }
        let mut hits = 0usize;
        for (series, label) in eval {
            if self.predict(series, k)? == *label {
                hits += 1;
            }
        }
        Ok(hits as f64 / eval.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::SaplaReducer;
    use sapla_data::generators::{generate, Family};

    fn labelled(families: &[Family], per: usize, seed0: u64) -> Vec<(TimeSeries, usize)> {
        let mut out = Vec::new();
        for (label, &f) in families.iter().enumerate() {
            for i in 0..per {
                out.push((generate(f, 0, seed0 + i as u64, 128), label));
            }
        }
        out
    }

    #[test]
    fn untrained_classifier_errors() {
        let clf = KnnClassifier::new(Box::new(SaplaReducer::new()), 12);
        let s = TimeSeries::new(vec![1.0; 16]).unwrap();
        assert!(clf.predict(&s, 1).is_err());
        assert!(clf.is_empty());
    }

    #[test]
    fn separable_families_classify_well() {
        // RandomWalk vs SmoothPeriodic are far apart after z-normalisation.
        let fams = [Family::SmoothPeriodic, Family::RandomWalk];
        let mut clf = KnnClassifier::new(Box::new(SaplaReducer::new()), 12);
        clf.fit(&labelled(&fams, 10, 1)).unwrap();
        assert_eq!(clf.len(), 20);
        let acc = clf.accuracy(&labelled(&fams, 6, 500), 3).unwrap();
        assert!(acc >= 0.7, "accuracy {acc}");
    }

    #[test]
    fn k_one_returns_nearest_label() {
        let fams = [Family::SmoothPeriodic, Family::SpikeTrain];
        let train = labelled(&fams, 4, 7);
        let mut clf = KnnClassifier::new(Box::new(SaplaReducer::new()), 12);
        clf.fit(&train).unwrap();
        // A training series classifies as its own label.
        for (s, label) in &train {
            assert_eq!(clf.predict(s, 1).unwrap(), *label);
        }
    }

    #[test]
    fn neighbors_are_sorted() {
        let fams = [Family::Burst];
        let mut clf = KnnClassifier::new(Box::new(SaplaReducer::new()), 12);
        clf.fit(&labelled(&fams, 8, 3)).unwrap();
        let q = generate(Family::Burst, 0, 777, 128);
        let nn = clf.neighbors(&q, 5).unwrap();
        assert_eq!(nn.len(), 5);
        assert!(nn.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
