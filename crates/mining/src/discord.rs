//! Discord (anomaly) detection: a series is anomalous when even its
//! nearest neighbour is far away. Scores are computed in representation
//! space (`O(N)` per pair instead of `O(n)`).

use sapla_core::{Representation, Result};
use sapla_distance::rep_distance;

/// 1-NN distance of every representation to the rest of the collection
/// (higher = more anomalous). `O(m²)` representation distances for `m`
/// series.
///
/// # Errors
///
/// Propagates distance failures (mixed representation kinds or lengths).
pub fn discord_scores(reps: &[Representation]) -> Result<Vec<f64>> {
    let m = reps.len();
    let mut scores = vec![f64::INFINITY; m];
    for i in 0..m {
        for j in (i + 1)..m {
            let d = rep_distance(&reps[i], &reps[j])?;
            if d < scores[i] {
                scores[i] = d;
            }
            if d < scores[j] {
                scores[j] = d;
            }
        }
    }
    if m == 1 {
        scores[0] = 0.0;
    }
    Ok(scores)
}

/// Indices of the `k` strongest discords, most anomalous first.
///
/// # Errors
///
/// Propagates [`discord_scores`] failures.
pub fn top_discords(reps: &[Representation], k: usize) -> Result<Vec<usize>> {
    let scores = discord_scores(reps)?;
    let mut order: Vec<usize> = (0..reps.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order.truncate(k);
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::{Reducer, SaplaReducer};
    use sapla_core::TimeSeries;
    use sapla_data::generators::{generate, Family};

    #[test]
    fn planted_outlier_ranks_first() {
        let reducer = SaplaReducer::new();
        let mut reps: Vec<Representation> = (0..15)
            .map(|i| reducer.reduce(&generate(Family::SmoothPeriodic, 0, i, 128), 12).unwrap())
            .collect();
        // Plant a random walk among smooth periodics.
        let outlier = generate(Family::RandomWalk, 0, 99, 128);
        reps.push(reducer.reduce(&outlier, 12).unwrap());
        let top = top_discords(&reps, 3).unwrap();
        assert_eq!(top[0], 15, "outlier should rank first: {top:?}");
    }

    #[test]
    fn identical_series_score_zero() {
        let reducer = SaplaReducer::new();
        let s = TimeSeries::new((0..64).map(|t| (t as f64 * 0.2).sin()).collect()).unwrap();
        let rep = reducer.reduce(&s, 12).unwrap();
        let scores = discord_scores(&[rep.clone(), rep.clone(), rep]).unwrap();
        assert!(scores.iter().all(|&x| x < 1e-9));
    }

    #[test]
    fn single_series_is_not_anomalous() {
        let reducer = SaplaReducer::new();
        let s = TimeSeries::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let rep = reducer.reduce(&s, 3).unwrap();
        assert_eq!(discord_scores(&[rep]).unwrap(), vec![0.0]);
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> = (0..10)
            .map(|i| reducer.reduce(&generate(Family::Burst, 1, i, 96), 12).unwrap())
            .collect();
        let scores = discord_scores(&reps).unwrap();
        let top = top_discords(&reps, 4).unwrap();
        assert_eq!(top.len(), 4);
        for w in top.windows(2) {
            assert!(scores[w[0]] >= scores[w[1]]);
        }
    }
}
