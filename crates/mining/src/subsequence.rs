//! Subsequence matching (Faloutsos et al.'s original GEMINI use case,
//! the paper's reference \[10\]): find where a short query pattern occurs
//! inside a long series.
//!
//! Sliding windows of the query's length are reduced once; candidates are
//! ranked by representation distance and refined exactly, so the `O(n·w)`
//! exact work only happens for the most promising offsets.

use sapla_baselines::Reducer;
use sapla_core::{Error, Representation, Result, TimeSeries};
use sapla_distance::{euclidean, rep_distance};

/// One subsequence match.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsequenceMatch {
    /// Window start offset within the long series.
    pub offset: usize,
    /// Exact Euclidean distance between the query and the window.
    pub distance: f64,
}

/// Find the `k` best non-overlapping matches of `query` inside `haystack`.
///
/// Windows slide with `stride`; `refine_factor × k` representation-space
/// candidates are refined exactly (a small factor compensates for the
/// conditional `Dist_PAR` bound; 3–5 is plenty in practice).
///
/// # Errors
///
/// [`Error::InvalidWindow`] when the query is longer than the haystack;
/// reduction/distance errors otherwise.
pub fn best_matches(
    haystack: &TimeSeries,
    query: &TimeSeries,
    reducer: &dyn Reducer,
    budget: usize,
    stride: usize,
    k: usize,
    refine_factor: usize,
) -> Result<Vec<SubsequenceMatch>> {
    let w = query.len();
    let n = haystack.len();
    if w > n {
        return Err(Error::InvalidWindow { start: 0, end: w, len: n });
    }
    let stride = stride.max(1);
    let q_rep = reducer.reduce(query, budget)?;

    // Reduce every window (this is the "ingest" cost, paid once per
    // haystack and reusable across queries of the same length).
    let mut candidates: Vec<(f64, usize)> = Vec::new();
    let mut offset = 0usize;
    while offset + w <= n {
        let window = TimeSeries::new(haystack.values()[offset..offset + w].to_vec())?;
        let rep: Representation = reducer.reduce(&window, budget)?;
        candidates.push((rep_distance(&q_rep, &rep)?, offset));
        offset += stride;
    }
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Exact refinement of the top candidates, keeping non-overlapping
    // winners.
    let mut exact: Vec<SubsequenceMatch> = Vec::new();
    for &(_, offset) in candidates.iter().take((refine_factor.max(1)) * k.max(1)) {
        let window = TimeSeries::new(haystack.values()[offset..offset + w].to_vec())?;
        let d = euclidean(query, &window)?;
        exact.push(SubsequenceMatch { offset, distance: d });
    }
    exact.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    let mut picked: Vec<SubsequenceMatch> = Vec::new();
    for m in exact {
        if picked.iter().all(|p| p.offset.abs_diff(m.offset) >= w) {
            picked.push(m);
            if picked.len() == k {
                break;
            }
        }
    }
    Ok(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::SaplaReducer;

    fn haystack_with_pattern(at: &[usize]) -> (TimeSeries, TimeSeries) {
        let n = 600;
        let w = 40;
        let pattern: Vec<f64> = (0..w).map(|t| (t as f64 * 0.35).sin() * 5.0).collect();
        let mut values: Vec<f64> = (0..n).map(|t| 0.4 * ((t * 13) % 7) as f64).collect();
        for &off in at {
            for (u, &p) in pattern.iter().enumerate() {
                values[off + u] = p;
            }
        }
        (TimeSeries::new(values).unwrap(), TimeSeries::new(pattern).unwrap())
    }

    #[test]
    fn finds_planted_occurrences() {
        let (hay, query) = haystack_with_pattern(&[100, 400]);
        let hits = best_matches(&hay, &query, &SaplaReducer::new(), 12, 1, 2, 5).unwrap();
        assert_eq!(hits.len(), 2);
        let mut offsets: Vec<usize> = hits.iter().map(|m| m.offset).collect();
        offsets.sort_unstable();
        assert_eq!(offsets, vec![100, 400]);
        assert!(hits.iter().all(|m| m.distance < 1e-9));
    }

    #[test]
    fn matches_do_not_overlap() {
        let (hay, query) = haystack_with_pattern(&[200]);
        let hits = best_matches(&hay, &query, &SaplaReducer::new(), 12, 1, 3, 5).unwrap();
        for (i, a) in hits.iter().enumerate() {
            for b in &hits[i + 1..] {
                assert!(a.offset.abs_diff(b.offset) >= query.len());
            }
        }
    }

    #[test]
    fn stride_trades_resolution() {
        let (hay, query) = haystack_with_pattern(&[250]);
        // Stride 10 still lands within 10 of the plant.
        let hits = best_matches(&hay, &query, &SaplaReducer::new(), 12, 10, 1, 5).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].offset.abs_diff(250) <= 10, "offset {}", hits[0].offset);
    }

    #[test]
    fn query_longer_than_haystack_errors() {
        let hay = TimeSeries::new(vec![0.0; 10]).unwrap();
        let query = TimeSeries::new(vec![0.0; 20]).unwrap();
        assert!(best_matches(&hay, &query, &SaplaReducer::new(), 6, 1, 1, 3).is_err());
    }
}
