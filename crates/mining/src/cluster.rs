//! k-medoids clustering of reduced representations (PAM-style: greedy
//! farthest-first seeding, then alternating assignment and medoid
//! updates).
//!
//! Running entirely in representation space keeps each distance `O(N)`
//! instead of `O(n)` — the same economics as the paper's similarity
//! search.

use sapla_core::{Error, Representation, Result};
use sapla_distance::rep_distance;

/// A clustering result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Indices of the medoid series, one per cluster.
    pub medoids: Vec<usize>,
    /// Cluster id per input series (indexes into `medoids`).
    pub assignment: Vec<usize>,
}

impl Clustering {
    /// Members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment.iter().enumerate().filter(|&(_, &a)| a == c).map(|(i, _)| i).collect()
    }
}

/// Cluster `reps` into `k` groups under [`rep_distance`].
///
/// Deterministic: seeding starts from index 0 and proceeds
/// farthest-first; iteration stops at a fixed point or after
/// `max_iters` rounds.
///
/// # Errors
///
/// [`Error::InvalidSegmentCount`] when `k` is zero or exceeds the input
/// size; distance errors otherwise.
pub fn k_medoids(reps: &[Representation], k: usize, max_iters: usize) -> Result<Clustering> {
    let n = reps.len();
    if k == 0 || k > n {
        return Err(Error::InvalidSegmentCount { segments: k, len: n });
    }
    // Distance matrix once: O(n²) rep distances (each O(N)).
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = rep_distance(&reps[i], &reps[j])?;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let d = |i: usize, j: usize| dist[i * n + j];

    // Farthest-first seeding from index 0. The explicit argmax keeps
    // `max_by`'s last-maximal tie rule (`>=` replaces on ties) without a
    // panicking unwrap; `k <= n` guarantees a candidate exists, and if it
    // ever did not the `else` arm stops seeding instead of panicking.
    let mut medoids = vec![0usize];
    while medoids.len() < k {
        let mut next: Option<(usize, f64)> = None;
        for i in (0..n).filter(|i| !medoids.contains(i)) {
            let di = medoids.iter().map(|&m| d(i, m)).fold(f64::INFINITY, f64::min);
            if next.is_none_or(|(_, best)| di.total_cmp(&best).is_ge()) {
                next = Some((i, di));
            }
        }
        let Some((next_i, _)) = next else { break };
        medoids.push(next_i);
    }

    // Nearest medoid per series; the explicit argmin keeps `min_by`'s
    // first-minimal tie rule (strict `<` never replaces on ties).
    let assign = |medoids: &[usize]| -> Vec<usize> {
        (0..n)
            .map(|i| {
                let mut best = (0usize, f64::INFINITY);
                for (c, &m) in medoids.iter().enumerate() {
                    if d(i, m).total_cmp(&best.1).is_lt() {
                        best = (c, d(i, m));
                    }
                }
                best.0
            })
            .collect()
    };

    let mut assignment = assign(&medoids);
    for _ in 0..max_iters {
        let mut changed = false;
        #[allow(clippy::needless_range_loop)] // c is the cluster id, used on both sides
        for c in 0..k {
            // Best medoid for cluster c: the member minimising the total
            // in-cluster distance.
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            // First-minimal argmin (matching `min_by`): strict `<` never
            // replaces on ties; `members` is non-empty, so the first
            // candidate always installs itself over the ∞ sentinel.
            let mut best = medoids[c];
            let mut best_cost = f64::INFINITY;
            for &a in &members {
                let ca: f64 = members.iter().map(|&m| d(a, m)).sum();
                if ca.total_cmp(&best_cost).is_lt() {
                    best = a;
                    best_cost = ca;
                }
            }
            if best != medoids[c] {
                medoids[c] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        assignment = assign(&medoids);
    }
    Ok(Clustering { medoids, assignment })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::{Reducer, SaplaReducer};
    use sapla_data::generators::{generate, Family};

    fn reps_of(families: &[Family], per: usize) -> Vec<Representation> {
        let reducer = SaplaReducer::new();
        let mut out = Vec::new();
        for &f in families {
            for i in 0..per {
                let s = generate(f, 0, 50 + i as u64, 128);
                out.push(reducer.reduce(&s, 12).unwrap());
            }
        }
        out
    }

    #[test]
    fn rejects_bad_k() {
        let reps = reps_of(&[Family::SmoothPeriodic], 3);
        assert!(k_medoids(&reps, 0, 5).is_err());
        assert!(k_medoids(&reps, 4, 5).is_err());
    }

    #[test]
    fn k_equals_n_puts_every_item_alone() {
        let reps = reps_of(&[Family::SmoothPeriodic], 4);
        let c = k_medoids(&reps, 4, 5).unwrap();
        let mut medoids = c.medoids.clone();
        medoids.sort_unstable();
        medoids.dedup();
        assert_eq!(medoids.len(), 4);
        for i in 0..4 {
            assert_eq!(c.members(c.assignment[i]).len(), 1);
        }
    }

    #[test]
    fn separable_classes_cluster_apart() {
        // Two phase-aligned shape classes (sine vs triangle ramp) with
        // per-member jitter: k = 2 must recover the classes exactly.
        // (Catalogue families randomise phases, so same-family members are
        // *not* close under an alignment-sensitive distance — that is why
        // this test builds aligned classes explicitly.)
        let reducer = SaplaReducer::new();
        let mk = |shape: usize, jitter: u64| {
            let v: Vec<f64> = (0..128)
                .map(|t| {
                    let x = t as f64;
                    let noise = 0.05 * (((t as u64 + jitter) * 2654435761 % 17) as f64 - 8.0);
                    match shape {
                        0 => (x * 0.1).sin() * 4.0 + noise,
                        _ => ((x % 32.0) - 16.0).abs() * 0.3 + noise,
                    }
                })
                .collect();
            let s = sapla_core::TimeSeries::new(v).unwrap().znormalized();
            reducer.reduce(&s, 12).unwrap()
        };
        let reps: Vec<Representation> =
            (0..6).map(|i| mk(0, i)).chain((0..6).map(|i| mk(1, 100 + i))).collect();
        let c = k_medoids(&reps, 2, 10).unwrap();
        let first = c.assignment[0];
        assert!(c.assignment[..6].iter().all(|&a| a == first), "{:?}", c.assignment);
        assert!(c.assignment[6..].iter().all(|&a| a != first), "{:?}", c.assignment);
    }

    #[test]
    fn assignment_is_nearest_medoid() {
        let reps = reps_of(&[Family::Burst, Family::SpikeTrain], 4);
        let c = k_medoids(&reps, 3, 10).unwrap();
        for (i, &a) in c.assignment.iter().enumerate() {
            let di = rep_distance(&reps[i], &reps[c.medoids[a]]).unwrap();
            for &m in &c.medoids {
                let dm = rep_distance(&reps[i], &reps[m]).unwrap();
                assert!(di <= dm + 1e-9, "item {i} not assigned to nearest medoid");
            }
        }
    }

    #[test]
    fn deterministic() {
        let reps = reps_of(&[Family::MixedHarmonic], 8);
        let a = k_medoids(&reps, 3, 10).unwrap();
        let b = k_medoids(&reps, 3, 10).unwrap();
        assert_eq!(a, b);
    }
}
