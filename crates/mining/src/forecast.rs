//! Short-horizon forecasting from reduced representations ("prediction",
//! the remaining task on the paper's downstream list).
//!
//! Two estimators, both reading only the representation:
//!
//! * [`extrapolate`] — continue the last segment's fitted line (the local
//!   trend), the natural forecast for a piecewise-linear model;
//! * [`damped_extrapolate`] — the same with the slope geometrically damped
//!   toward zero, the standard guard against trend overshoot on long
//!   horizons.

use sapla_core::{Error, PiecewiseLinear, Result};

/// Continue the final segment's line for `horizon` future steps.
///
/// # Errors
///
/// [`Error::InvalidSegmentCount`] when the representation is empty
/// (cannot happen for validated representations) — kept for API symmetry.
pub fn extrapolate(rep: &PiecewiseLinear, horizon: usize) -> Result<Vec<f64>> {
    let seg = *rep.segments().last().ok_or(Error::InvalidSegmentCount { segments: 1, len: 0 })?;
    let start = rep.start(rep.num_segments() - 1);
    let len = seg.r + 1 - start;
    Ok((1..=horizon).map(|h| seg.a * (len - 1 + h) as f64 + seg.b).collect())
}

/// [`extrapolate`] with slope damping: step `h` uses an effective slope of
/// `a · φ^h` (`0 < φ ≤ 1`); `φ = 1` recovers the undamped forecast.
///
/// # Errors
///
/// See [`extrapolate`].
pub fn damped_extrapolate(rep: &PiecewiseLinear, horizon: usize, phi: f64) -> Result<Vec<f64>> {
    let seg = *rep.segments().last().ok_or(Error::InvalidSegmentCount { segments: 1, len: 0 })?;
    let start = rep.start(rep.num_segments() - 1);
    let len = seg.r + 1 - start;
    let phi = phi.clamp(0.0, 1.0);
    let last = seg.a * (len - 1) as f64 + seg.b;
    let mut out = Vec::with_capacity(horizon);
    let mut level = last;
    let mut damp = 1.0;
    for _ in 0..horizon {
        damp *= phi;
        level += seg.a * damp;
        out.push(level);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_core::sapla::Sapla;
    use sapla_core::TimeSeries;

    fn rep_of(v: Vec<f64>, n: usize) -> PiecewiseLinear {
        Sapla::with_segments(n).reduce(&TimeSeries::new(v).unwrap()).unwrap()
    }

    #[test]
    fn linear_trend_is_continued_exactly() {
        let v: Vec<f64> = (0..50).map(|t| 2.0 * t as f64 + 1.0).collect();
        let rep = rep_of(v, 2);
        let fc = extrapolate(&rep, 3).unwrap();
        for (h, &y) in fc.iter().enumerate() {
            let want = 2.0 * (50 + h) as f64 + 1.0;
            assert!((y - want).abs() < 1e-6, "h={h}: {y} vs {want}");
        }
    }

    #[test]
    fn only_the_last_regime_matters() {
        // A rise followed by a fall: the forecast must continue the fall.
        let mut v: Vec<f64> = (0..40).map(|t| t as f64).collect();
        v.extend((0..40).map(|t| 39.0 - 2.0 * t as f64));
        let rep = rep_of(v, 2);
        let fc = extrapolate(&rep, 2).unwrap();
        assert!(fc[1] < fc[0], "forecast should keep falling: {fc:?}");
        assert!(fc[0] < -35.0);
    }

    #[test]
    fn damping_flattens_long_horizons() {
        let v: Vec<f64> = (0..30).map(|t| 3.0 * t as f64).collect();
        let rep = rep_of(v, 1);
        let raw = extrapolate(&rep, 20).unwrap();
        let damped = damped_extrapolate(&rep, 20, 0.8).unwrap();
        assert!(damped[19] < raw[19], "damped {} vs raw {}", damped[19], raw[19]);
        // φ = 1 recovers the raw forecast.
        let undamped = damped_extrapolate(&rep, 20, 1.0).unwrap();
        for (a, b) in undamped.iter().zip(&raw) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn horizon_zero_is_empty() {
        let v: Vec<f64> = (0..10).map(|t| t as f64).collect();
        let rep = rep_of(v, 1);
        assert!(extrapolate(&rep, 0).unwrap().is_empty());
    }

    #[test]
    fn phi_zero_holds_the_level() {
        let v: Vec<f64> = (0..20).map(|t| t as f64).collect();
        let rep = rep_of(v, 1);
        let fc = damped_extrapolate(&rep, 5, 0.0).unwrap();
        let last = 19.0;
        for y in fc {
            assert!((y - last).abs() < 1e-6);
        }
    }
}
