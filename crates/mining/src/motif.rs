//! Motif discovery: the closest pair of series in a collection,
//! found with representation-space candidate filtering and exact
//! Euclidean refinement.

use sapla_core::{Error, Representation, Result, TimeSeries};
use sapla_distance::{euclidean, rep_distance};

/// A discovered motif pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Motif {
    /// Index of the first member.
    pub a: usize,
    /// Index of the second member.
    pub b: usize,
    /// Exact Euclidean distance between the members.
    pub distance: f64,
    /// How many exact distances the refinement computed (of the
    /// `m(m−1)/2` a brute-force search would need).
    pub refined_pairs: usize,
}

/// Find the closest pair under the exact Euclidean distance.
///
/// All `m(m−1)/2` pairs are ranked by their cheap representation distance
/// and refined in that order; refinement stops once the best exact
/// distance is below `slack ×` the next candidate's representation
/// distance (with `Dist_PAR`'s conditional bound, `slack < 1.0` trades
/// certainty for speed; `slack = 1.0` is the natural setting for true
/// lower bounds).
///
/// # Errors
///
/// [`Error::InvalidSegmentCount`] for collections of fewer than two
/// series; distance errors otherwise.
pub fn find_motif(raws: &[TimeSeries], reps: &[Representation], slack: f64) -> Result<Motif> {
    let m = raws.len();
    if m < 2 || reps.len() != m {
        return Err(Error::InvalidSegmentCount { segments: 2, len: m });
    }
    // Rank pairs by representation distance.
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(m * (m - 1) / 2);
    for i in 0..m {
        for j in (i + 1)..m {
            pairs.push((rep_distance(&reps[i], &reps[j])?, i, j));
        }
    }
    pairs.sort_by(|x, y| x.0.total_cmp(&y.0));

    let mut best = Motif { a: 0, b: 1, distance: f64::INFINITY, refined_pairs: 0 };
    for &(rep_d, i, j) in &pairs {
        if best.distance <= slack * rep_d && best.refined_pairs > 0 {
            break; // every remaining candidate is (approximately) farther
        }
        let exact = euclidean(&raws[i], &raws[j])?;
        best.refined_pairs += 1;
        if exact < best.distance {
            best = Motif { a: i, b: j, distance: exact, refined_pairs: best.refined_pairs };
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::{Reducer, SaplaReducer};
    use sapla_data::generators::{generate, Family};

    fn collection() -> (Vec<TimeSeries>, Vec<Representation>) {
        let reducer = SaplaReducer::new();
        let mut raws: Vec<TimeSeries> =
            (0..12).map(|i| generate(Family::MixedHarmonic, i % 3, 10 + i, 128)).collect();
        // Plant a near-duplicate pair: series 3 plus a whisper of noise.
        let near: Vec<f64> = raws[3]
            .values()
            .iter()
            .enumerate()
            .map(|(t, v)| v + 1e-3 * ((t * 7) % 5) as f64)
            .collect();
        raws.push(TimeSeries::new(near).unwrap());
        let reps = raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        (raws, reps)
    }

    #[test]
    fn finds_the_planted_pair() {
        let (raws, reps) = collection();
        let motif = find_motif(&raws, &reps, 1.0).unwrap();
        assert_eq!((motif.a, motif.b), (3, 12));
        assert!(motif.distance < 0.1);
    }

    #[test]
    fn refinement_prunes_most_pairs() {
        let (raws, reps) = collection();
        let motif = find_motif(&raws, &reps, 1.0).unwrap();
        let all_pairs = raws.len() * (raws.len() - 1) / 2;
        assert!(motif.refined_pairs < all_pairs, "refined {} of {all_pairs}", motif.refined_pairs);
    }

    #[test]
    fn matches_brute_force() {
        let (raws, reps) = collection();
        let motif = find_motif(&raws, &reps, 1.0).unwrap();
        let mut best = (f64::INFINITY, 0usize, 0usize);
        for i in 0..raws.len() {
            for j in (i + 1)..raws.len() {
                let d = euclidean(&raws[i], &raws[j]).unwrap();
                if d < best.0 {
                    best = (d, i, j);
                }
            }
        }
        assert_eq!((motif.a, motif.b), (best.1, best.2));
        assert!((motif.distance - best.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_tiny_collections() {
        let s = TimeSeries::new(vec![1.0, 2.0]).unwrap();
        let reducer = SaplaReducer::new();
        let rep = reducer.reduce(&s, 3).unwrap();
        assert!(find_motif(&[s], &[rep], 1.0).is_err());
    }
}
