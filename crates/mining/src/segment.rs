//! Semantic segmentation: SAPLA's adaptive endpoints are change-point
//! estimates — the segmentation that minimises the β objective cuts where
//! the signal's linear regime changes.

use sapla_core::sapla::Sapla;
use sapla_core::{Result, TimeSeries};

/// Estimate `k` change points of `series` (the internal endpoints of a
/// `(k+1)`-segment SAPLA reduction, i.e. the last index of each regime
/// except the final one).
///
/// ```
/// use sapla_core::TimeSeries;
/// use sapla_mining::change_points;
///
/// let mut v = vec![0.0; 50];
/// v.extend(vec![5.0; 50]);
/// let cps = change_points(&TimeSeries::new(v)?, 1)?;
/// assert!((cps[0] as isize - 49).abs() <= 2);
/// # Ok::<(), sapla_core::Error>(())
/// ```
///
/// # Errors
///
/// Propagates [`Sapla::reduce`] failures (series shorter than `k + 1`).
pub fn change_points(series: &TimeSeries, k: usize) -> Result<Vec<usize>> {
    let rep = Sapla::with_segments(k + 1).reduce(series)?;
    let mut ends = rep.endpoints();
    ends.pop(); // the last endpoint is the series end, not a change
    Ok(ends)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    #[test]
    fn finds_a_single_level_shift() {
        let mut v = vec![0.0; 60];
        v.extend(vec![8.0; 60]);
        let cps = change_points(&ts(v), 1).unwrap();
        assert_eq!(cps.len(), 1);
        assert!((cps[0] as isize - 59).abs() <= 2, "change point {} should be near 59", cps[0]);
    }

    #[test]
    fn finds_slope_breaks() {
        let mut v: Vec<f64> = (0..50).map(|t| 0.5 * t as f64).collect();
        v.extend((0..50).map(|t| 24.5 - 1.0 * t as f64));
        v.extend((0..50).map(|t| -24.5 + 0.2 * t as f64));
        let cps = change_points(&ts(v), 2).unwrap();
        assert_eq!(cps.len(), 2);
        assert!((cps[0] as isize - 49).abs() <= 3, "{cps:?}");
        assert!((cps[1] as isize - 99).abs() <= 3, "{cps:?}");
    }

    #[test]
    fn zero_changes_is_empty() {
        let v: Vec<f64> = (0..40).map(|t| t as f64).collect();
        assert!(change_points(&ts(v), 0).unwrap().is_empty());
    }

    #[test]
    fn change_points_are_sorted_and_interior() {
        let v: Vec<f64> =
            (0..200).map(|t| ((t / 40) as f64) * 3.0 + (t as f64 * 0.7).sin() * 0.1).collect();
        let n = v.len();
        let cps = change_points(&ts(v), 4).unwrap();
        assert_eq!(cps.len(), 4);
        assert!(cps.windows(2).all(|w| w[0] < w[1]));
        assert!(cps.iter().all(|&c| c < n - 1));
    }
}
