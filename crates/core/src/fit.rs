//! Exact least-squares line fitting in `O(1)` per window.
//!
//! A segment of length `l` starting at global index `s` is modelled by the
//! paper as `č_t = a·u + b` where `u = t − s ∈ [0, l)` is the window-local
//! position (Eq. 1). Given the prefix sums of the series, the optimal
//! `(a, b)` for **any** window follows in constant time, which is the
//! engine behind every `O(1)` claim in Section 4: the paper's closed-form
//! update equations (Eq. 2–11, see [`crate::equations`]) are algebraic
//! specialisations of this.

use crate::error::Result;
use crate::series::PrefixSums;

/// A fitted line `č_u = a·u + b` over a window of `len` points,
/// `u ∈ [0, len)` window-local.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope `a`.
    pub a: f64,
    /// Intercept `b` (value at the window's first point).
    pub b: f64,
    /// Number of points in the window.
    pub len: usize,
}

impl LineFit {
    /// Least-squares fit of the window `[start, end)` using prefix sums.
    ///
    /// Degenerate windows: a single point fits `a = 0, b = c`; two points
    /// interpolate exactly.
    ///
    /// # Errors
    ///
    /// [`crate::Error::InvalidWindow`] for empty or out-of-range windows.
    pub fn over_window(sums: &PrefixSums, start: usize, end: usize) -> Result<LineFit> {
        sums.check_window(start, end)?;
        let l = end - start;
        Ok(Self::from_sums(l, sums.sum(start, end), sums.sum_local_t(start, end)))
    }

    /// Least-squares fit of a raw slice (for tests and one-off callers;
    /// `O(len)`).
    pub fn over_slice(values: &[f64]) -> LineFit {
        let l = values.len();
        let sum_c: f64 = values.iter().sum();
        let sum_uc: f64 = values.iter().enumerate().map(|(u, &v)| u as f64 * v).sum();
        Self::from_sums(l, sum_c, sum_uc)
    }

    /// Fit from the sufficient statistics of a window: length, `Σ c` and
    /// window-local `Σ u·c`.
    pub fn from_sums(len: usize, sum_c: f64, sum_uc: f64) -> LineFit {
        debug_assert!(len >= 1);
        if len == 1 {
            return LineFit { a: 0.0, b: sum_c, len };
        }
        let lf = len as f64;
        // a = 12·Σ(u − (l−1)/2)·c / (l(l²−1))   [Eq. 1 with the paper's n
        //     read as the segment length l]
        let a = 12.0 * (sum_uc - (lf - 1.0) / 2.0 * sum_c) / (lf * (lf * lf - 1.0));
        // b = mean − a·(l−1)/2
        let b = sum_c / lf - a * (lf - 1.0) / 2.0;
        LineFit { a, b, len }
    }

    /// Reconstructed value at window-local position `u`.
    #[inline]
    pub fn value_at(&self, u: usize) -> f64 {
        self.a * u as f64 + self.b
    }

    /// Value just past the right end of the window (the paper's *extended
    /// point* `č_{r'_i} = a·l + b`, Section 4.1.1).
    #[inline]
    pub fn extended_value(&self) -> f64 {
        self.a * self.len as f64 + self.b
    }

    /// Sufficient statistics `(Σ c, Σ u·c)` implied by this fit.
    ///
    /// A least-squares line is a bijection of the window's first two
    /// moments, so the statistics are exactly recoverable — this is what
    /// makes the paper's merge/split equations (Eq. 3–8) exact.
    pub fn to_stats(&self) -> SegStats {
        let lf = self.len as f64;
        let sum_c = lf * self.b + self.a * lf * (lf - 1.0) / 2.0;
        // invert a = 12(sum_uc − (l−1)/2·sum_c)/(l(l²−1))
        let sum_uc = if self.len == 1 {
            0.0
        } else {
            self.a * lf * (lf * lf - 1.0) / 12.0 + (lf - 1.0) / 2.0 * sum_c
        };
        SegStats { len: self.len, sum_c, sum_uc }
    }

    /// Residual L1 error against the original window (`O(len)`).
    pub fn l1_error(&self, window: &[f64]) -> f64 {
        debug_assert_eq!(window.len(), self.len);
        window.iter().enumerate().map(|(u, &c)| (c - self.value_at(u)).abs()).sum()
    }

    /// Max deviation against the original window (`O(len)`).
    pub fn max_deviation(&self, window: &[f64]) -> f64 {
        debug_assert_eq!(window.len(), self.len);
        window.iter().enumerate().map(|(u, &c)| (c - self.value_at(u)).abs()).fold(0.0, f64::max)
    }
}

/// Sufficient statistics of a window for line fitting: the window length,
/// `Σ c_u`, and the window-local `Σ u·c_u`.
///
/// These compose under every structural edit the SAPLA iterations perform —
/// append/drop a point on either side, merge with a neighbour, split —
/// each in `O(1)`, giving the same results as the paper's Eq. 2–11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegStats {
    /// Number of points in the window.
    pub len: usize,
    /// `Σ c_u` over the window.
    pub sum_c: f64,
    /// `Σ u·c_u` over the window, `u` window-local.
    pub sum_uc: f64,
}

impl SegStats {
    /// Statistics of a single point.
    pub fn single(c: f64) -> SegStats {
        SegStats { len: 1, sum_c: c, sum_uc: 0.0 }
    }

    /// Statistics for the window `[start, end)` from prefix sums.
    pub fn over_window(sums: &PrefixSums, start: usize, end: usize) -> Result<SegStats> {
        sums.check_window(start, end)?;
        Ok(SegStats {
            len: end - start,
            sum_c: sums.sum(start, end),
            sum_uc: sums.sum_local_t(start, end),
        })
    }

    /// The least-squares fit for these statistics.
    #[inline]
    pub fn fit(&self) -> LineFit {
        LineFit::from_sums(self.len, self.sum_c, self.sum_uc)
    }

    /// Append a point `c` at the right end (the *increment* of Eq. 2).
    #[inline]
    pub fn push_right(&self, c: f64) -> SegStats {
        SegStats {
            len: self.len + 1,
            sum_c: self.sum_c + c,
            sum_uc: self.sum_uc + self.len as f64 * c,
        }
    }

    /// Drop the right-most point, whose value is `c_last` (Eq. 9).
    #[inline]
    pub fn pop_right(&self, c_last: f64) -> SegStats {
        debug_assert!(self.len >= 2);
        SegStats {
            len: self.len - 1,
            sum_c: self.sum_c - c_last,
            sum_uc: self.sum_uc - (self.len - 1) as f64 * c_last,
        }
    }

    /// Prepend a point `c` at the left end; existing points shift to local
    /// indices `u + 1` (Eq. 10).
    #[inline]
    pub fn push_left(&self, c: f64) -> SegStats {
        SegStats { len: self.len + 1, sum_c: self.sum_c + c, sum_uc: self.sum_uc + self.sum_c }
    }

    /// Drop the left-most point, whose value is `c_first`; remaining points
    /// shift to local indices `u − 1` (Eq. 11).
    #[inline]
    pub fn pop_left(&self, c_first: f64) -> SegStats {
        debug_assert!(self.len >= 2);
        let sum_c = self.sum_c - c_first;
        SegStats { len: self.len - 1, sum_c, sum_uc: self.sum_uc - sum_c }
    }

    /// Merge with the adjacent right neighbour `right` (Eq. 3–4): `right`'s
    /// local indices shift by `self.len`.
    #[inline]
    pub fn merge_right(&self, right: &SegStats) -> SegStats {
        SegStats {
            len: self.len + right.len,
            sum_c: self.sum_c + right.sum_c,
            sum_uc: self.sum_uc + right.sum_uc + self.len as f64 * right.sum_c,
        }
    }

    /// Split off the statistics of the right part given the left part
    /// (inverse of [`SegStats::merge_right`], cf. Eq. 7–8).
    #[inline]
    pub fn split_right(&self, left: &SegStats) -> SegStats {
        debug_assert!(left.len < self.len);
        let len = self.len - left.len;
        let sum_c = self.sum_c - left.sum_c;
        SegStats { len, sum_c, sum_uc: self.sum_uc - left.sum_uc - left.len as f64 * sum_c }
    }

    /// Split off the statistics of the left part given the right part
    /// (cf. Eq. 5–6).
    #[inline]
    pub fn split_left(&self, right: &SegStats) -> SegStats {
        debug_assert!(right.len < self.len);
        let len = self.len - right.len;
        SegStats {
            len,
            sum_c: self.sum_c - right.sum_c,
            sum_uc: self.sum_uc - right.sum_uc - len as f64 * right.sum_c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    fn fits_eq(a: &LineFit, b: &LineFit) -> bool {
        a.len == b.len && approx(a.a, b.a) && approx(a.b, b.b)
    }

    #[test]
    fn single_point_fit() {
        let f = LineFit::over_slice(&[5.0]);
        assert_eq!(f, LineFit { a: 0.0, b: 5.0, len: 1 });
    }

    #[test]
    fn two_point_fit_interpolates() {
        let f = LineFit::over_slice(&[3.0, 7.0]);
        assert!(approx(f.a, 4.0) && approx(f.b, 3.0));
        assert!(approx(f.extended_value(), 11.0));
    }

    #[test]
    fn exact_line_is_recovered() {
        let v: Vec<f64> = (0..10).map(|u| 2.5 * u as f64 - 1.0).collect();
        let f = LineFit::over_slice(&v);
        assert!(approx(f.a, 2.5) && approx(f.b, -1.0));
        assert!(approx(f.max_deviation(&v), 0.0));
    }

    #[test]
    fn window_fit_matches_slice_fit() {
        let ts = TimeSeries::new(vec![7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0]).unwrap();
        let sums = ts.prefix_sums();
        for start in 0..7 {
            for end in (start + 1)..=8 {
                let w = LineFit::over_window(&sums, start, end).unwrap();
                let s = LineFit::over_slice(&ts.values()[start..end]);
                assert!(fits_eq(&w, &s), "window [{start},{end}): {w:?} vs {s:?}");
            }
        }
    }

    #[test]
    fn fit_minimises_sse() {
        // Perturbing the optimal (a, b) never reduces the SSE.
        let v = [1.0, -2.0, 0.5, 4.0, 3.0, -1.0];
        let f = LineFit::over_slice(&v);
        let sse = |a: f64, b: f64| -> f64 {
            v.iter()
                .enumerate()
                .map(|(u, &c)| {
                    let d = c - (a * u as f64 + b);
                    d * d
                })
                .sum()
        };
        let best = sse(f.a, f.b);
        for da in [-0.1, 0.1] {
            for db in [-0.1, 0.1] {
                assert!(sse(f.a + da, f.b + db) >= best);
            }
        }
    }

    #[test]
    fn stats_roundtrip_through_fit() {
        let v = [2.0, 9.0, -3.0, 4.0, 4.0];
        let s = SegStats {
            len: 5,
            sum_c: v.iter().sum(),
            sum_uc: v.iter().enumerate().map(|(u, &c)| u as f64 * c).sum(),
        };
        let back = s.fit().to_stats();
        assert_eq!(back.len, s.len);
        assert!(approx(back.sum_c, s.sum_c));
        assert!(approx(back.sum_uc, s.sum_uc));
    }

    #[test]
    fn push_pop_edits_match_direct_fits() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mid = SegStats {
            len: 4,
            sum_c: v[2..6].iter().sum(),
            sum_uc: v[2..6].iter().enumerate().map(|(u, &c)| u as f64 * c).sum(),
        };
        assert!(fits_eq(&mid.push_right(v[6]).fit(), &LineFit::over_slice(&v[2..7])));
        assert!(fits_eq(&mid.pop_right(v[5]).fit(), &LineFit::over_slice(&v[2..5])));
        assert!(fits_eq(&mid.push_left(v[1]).fit(), &LineFit::over_slice(&v[1..6])));
        assert!(fits_eq(&mid.pop_left(v[2]).fit(), &LineFit::over_slice(&v[3..6])));
    }

    #[test]
    fn merge_and_split_are_inverse() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0];
        let stats = |r: std::ops::Range<usize>| SegStats {
            len: r.len(),
            sum_c: v[r.clone()].iter().sum(),
            sum_uc: v[r].iter().enumerate().map(|(u, &c)| u as f64 * c).sum(),
        };
        let left = stats(0..4);
        let right = stats(4..9);
        let merged = left.merge_right(&right);
        assert!(fits_eq(&merged.fit(), &LineFit::over_slice(&v)));
        let r2 = merged.split_right(&left);
        let l2 = merged.split_left(&right);
        assert!(fits_eq(&r2.fit(), &right.fit()));
        assert!(fits_eq(&l2.fit(), &left.fit()));
    }
}
