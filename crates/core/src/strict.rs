//! Runtime invariant layer behind the `strict-invariants` feature.
//!
//! With the feature on, every reduction re-validates its output against
//! the paper's contracts through an **independent** code path: the checks
//! below recompute deviations point-by-point from the published fit
//! lines, not through the incremental `SegStats` machinery that produced
//! them, so a bug in the closed-form updates cannot also hide in its own
//! verifier.
//!
//! What is (and is not) asserted, per bound mode:
//!
//! * [`BoundMode::Exact`] — `β_i` is the segment's exact max deviation,
//!   which upper-bounds the reconstruction error **unconditionally**; the
//!   check recomputes the deviation directly and requires `β_i` to cover
//!   it.
//! * [`BoundMode::Paper`] — the Theorem 4.2/4.3 bound is **conditional**
//!   (it only covers the deviation when the endpoint-dominance premise
//!   holds), so asserting coverage would reject valid paper-mode output.
//!   Only well-formedness is asserted: finite, non-negative `β_i`.
//!
//! The layer is compiled out entirely without the feature — release
//! builds carry zero cost and zero behavioural difference.

use crate::sapla::BoundMode;
use crate::work::{Ctx, Seg};

/// Relative tolerance for floating-point comparisons: the incremental
/// and direct paths take different rounding routes to the same value.
fn tol(scale: f64) -> f64 {
    1e-6 * (1.0 + scale.abs())
}

/// Validate a finished segmentation against `ctx`. Panics with a
/// diagnostic naming the violated contract and the offending segment.
pub(crate) fn check_reduction(ctx: &Ctx<'_>, segs: &[Seg]) {
    let n = ctx.values.len();
    assert!(!segs.is_empty(), "strict-invariants: reduction produced no segments");
    assert_eq!(segs[0].start, 0, "strict-invariants: first segment must start at 0");
    assert_eq!(
        segs[segs.len() - 1].end,
        n,
        "strict-invariants: last segment must end at the series length"
    );
    for w in segs.windows(2) {
        assert_eq!(
            w[0].end, w[1].start,
            "strict-invariants: segments must tile the series contiguously"
        );
    }
    for (i, seg) in segs.iter().enumerate() {
        assert!(
            seg.fit.a.is_finite() && seg.fit.b.is_finite(),
            "strict-invariants: segment {i} has a non-finite fit (a={}, b={})",
            seg.fit.a,
            seg.fit.b
        );
        assert!(
            seg.beta.is_finite() && seg.beta >= 0.0,
            "strict-invariants: segment {i} has an ill-formed β = {}",
            seg.beta
        );
        if matches!(ctx.mode, BoundMode::Exact) {
            // Independent recomputation: walk the window and compare the
            // raw values against the fit line directly.
            let window = &ctx.values[seg.start..seg.end];
            let required = window
                .iter()
                .enumerate()
                .map(|(u, &v)| (v - seg.fit.value_at(u)).abs())
                .fold(0.0f64, f64::max);
            assert!(
                seg.beta + tol(required) >= required,
                "strict-invariants: segment {i} ([{}, {})) has β = {} < max-dev = \
                 {required}; the Exact bound must cover the recomputed deviation",
                seg.start,
                seg.end,
                seg.beta
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: [f64; 12] = [1.0, 4.0, 2.0, 9.0, 8.5, 7.0, 2.0, 1.5, 0.0, 4.0, 5.0, 5.5];

    #[test]
    fn accepts_well_formed_exact_segments() {
        let ctx = Ctx::new(&V, BoundMode::Exact);
        let segs = vec![ctx.make_seg(0, 6), ctx.make_seg(6, 12)];
        check_reduction(&ctx, &segs);
    }

    #[test]
    fn accepts_paper_mode_without_coverage_claims() {
        let ctx = Ctx::new(&V, BoundMode::Paper);
        let segs = vec![ctx.make_seg(0, 12)];
        check_reduction(&ctx, &segs);
    }

    #[test]
    #[should_panic(expected = "must cover the recomputed deviation")]
    fn rejects_an_understated_exact_beta() {
        let ctx = Ctx::new(&V, BoundMode::Exact);
        let mut segs = vec![ctx.make_seg(0, 12)];
        segs[0].beta = 0.0; // deliberately understate the bound
        check_reduction(&ctx, &segs);
    }

    #[test]
    #[should_panic(expected = "tile the series contiguously")]
    fn rejects_a_gap_in_the_tiling() {
        let ctx = Ctx::new(&V, BoundMode::Exact);
        let segs = vec![ctx.make_seg(0, 5), ctx.make_seg(6, 12)];
        check_reduction(&ctx, &segs);
    }
}
