//! Reconstruction-quality metrics shared by the evaluation harness.
//!
//! The paper scores methods by max deviation (Definition 3.4) and, in
//! Fig. 1, by the sum of per-segment max deviations; RMSE/MAE and
//! compression ratio round out the picture for library users.

use crate::error::{Error, Result};
use crate::series::TimeSeries;

/// A bundle of reconstruction-quality metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructionReport {
    /// Maximum absolute pointwise deviation (Definition 3.4).
    pub max_deviation: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
}

/// Compare an original series with a reconstruction.
///
/// # Errors
///
/// [`Error::LengthMismatch`] when lengths differ.
pub fn reconstruction_report(
    original: &TimeSeries,
    reconstructed: &TimeSeries,
) -> Result<ReconstructionReport> {
    if original.len() != reconstructed.len() {
        return Err(Error::LengthMismatch { left: original.len(), right: reconstructed.len() });
    }
    let n = original.len() as f64;
    let mut max = 0.0f64;
    let mut sq = 0.0f64;
    let mut abs = 0.0f64;
    for (a, b) in original.values().iter().zip(reconstructed.values()) {
        let d = (a - b).abs();
        max = max.max(d);
        sq += d * d;
        abs += d;
    }
    Ok(ReconstructionReport { max_deviation: max, rmse: (sq / n).sqrt(), mae: abs / n })
}

/// Compression ratio of a reduction: raw samples per stored coefficient
/// (`n / M`). Returns `f64::INFINITY` for a zero-coefficient budget.
pub fn compression_ratio(series_len: usize, coefficients: usize) -> f64 {
    if coefficients == 0 {
        f64::INFINITY
    } else {
        series_len as f64 / coefficients as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn report_on_identical_series_is_zero() {
        let a = ts(&[1.0, -2.0, 3.0]);
        let r = reconstruction_report(&a, &a).unwrap();
        assert_eq!(r.max_deviation, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.mae, 0.0);
    }

    #[test]
    fn report_matches_hand_computation() {
        let a = ts(&[0.0, 0.0, 0.0, 0.0]);
        let b = ts(&[1.0, -1.0, 3.0, -1.0]);
        let r = reconstruction_report(&a, &b).unwrap();
        assert_eq!(r.max_deviation, 3.0);
        assert!((r.mae - 1.5).abs() < 1e-12);
        assert!((r.rmse - (12.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn metric_ordering_invariant() {
        // MAE ≤ RMSE ≤ max deviation always.
        let a = ts(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let b = ts(&[2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0]);
        let r = reconstruction_report(&a, &b).unwrap();
        assert!(r.mae <= r.rmse + 1e-12);
        assert!(r.rmse <= r.max_deviation + 1e-12);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(reconstruction_report(&ts(&[1.0]), &ts(&[1.0, 2.0])).is_err());
    }

    #[test]
    fn compression_ratios() {
        assert_eq!(compression_ratio(1024, 12), 1024.0 / 12.0);
        assert_eq!(compression_ratio(100, 0), f64::INFINITY);
    }
}
