//! Internal working state shared by the three SAPLA stages.

use crate::bounds;
use crate::fit::LineFit;
#[cfg(test)]
use crate::repr::{LinearSegment, PiecewiseLinear};
use crate::sapla::BoundMode;
use crate::series::PrefixSums;

/// A working segment over the half-open global window `[start, end)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Seg {
    pub start: usize,
    pub end: usize,
    pub fit: LineFit,
    /// Segment upper bound `β_i` (Definition 3.5).
    pub beta: f64,
}

impl Seg {
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Bitwise equality on every field, the validation predicate for
    /// memoised per-segment results: a memo hit requires the exact same
    /// inputs (ulp-level differences must miss) so replaying a cached
    /// outcome is indistinguishable from recomputing it.
    #[inline]
    pub fn bits_eq(&self, other: &Seg) -> bool {
        self.start == other.start
            && self.end == other.end
            && self.fit.len == other.fit.len
            && self.fit.a.to_bits() == other.fit.a.to_bits()
            && self.fit.b.to_bits() == other.fit.b.to_bits()
            && self.beta.to_bits() == other.beta.to_bits()
    }
}

/// Immutable per-reduction context: the original series, its prefix sums
/// (for `O(1)` window refits) and the bound mode.
pub(crate) struct Ctx<'a> {
    pub values: &'a [f64],
    pub sums: PrefixSums,
    pub mode: BoundMode,
}

impl<'a> Ctx<'a> {
    /// Context owning freshly built sums (test-only convenience; the
    /// reduce path lends a workspace's sums via [`Ctx::with_sums`]).
    #[cfg(test)]
    pub fn new(values: &'a [f64], mode: BoundMode) -> Self {
        Self::with_sums(values, PrefixSums::new(values), mode)
    }

    /// Build a context around already-computed prefix sums (the scratch
    /// reuse path: the workspace lends its rebuilt sums for the duration
    /// of one reduction and takes them back via [`Ctx::into_sums`]).
    pub fn with_sums(values: &'a [f64], sums: PrefixSums, mode: BoundMode) -> Self {
        debug_assert_eq!(sums.len(), values.len());
        Ctx { values, sums, mode }
    }

    /// Recover the prefix sums for reuse by the next reduction.
    pub fn into_sums(self) -> PrefixSums {
        self.sums
    }

    /// Exact least-squares fit of `[start, end)` in `O(1)`.
    #[inline]
    // audit: no_alloc — O(1) prefix-sum fit, called in every stage-2 probe.
    pub fn refit(&self, start: usize, end: usize) -> LineFit {
        LineFit::over_window(&self.sums, start, end).expect("stage windows are always in range")
    }

    /// Generic `β` for a segment whose previous reconstruction was the line
    /// `reference` (with `ref_offset` = the old line's local coordinate of
    /// the new window's first point). With no reference the bound degrades
    /// to the original-vs-fit endpoint differences.
    ///
    /// In [`BoundMode::Exact`] this is the segment's exact max deviation
    /// scaled by `len − 1` (see [`bounds::exact_beta`]).
    pub fn beta(
        &self,
        start: usize,
        end: usize,
        fit: &LineFit,
        reference: Option<(&LineFit, isize)>,
    ) -> f64 {
        let window = &self.values[start..end];
        match self.mode {
            BoundMode::Exact => bounds::exact_beta(window, fit),
            BoundMode::Paper => {
                let l = end - start;
                let refv = |u: usize| match reference {
                    Some((rf, off)) => rf.extended_value_at(u as f64 + off as f64),
                    None => fit.value_at(u),
                };
                let m = bounds::get_max(&[
                    (window[0], fit.b, refv(0)),
                    (window[l - 1], fit.value_at(l - 1), refv(l - 1)),
                ]);
                m * (l - 1) as f64
            }
        }
    }

    /// Build a segment with a fresh fit and a reference-free `β`.
    pub fn make_seg(&self, start: usize, end: usize) -> Seg {
        let fit = self.refit(start, end);
        let beta = self.beta(start, end, &fit, None);
        Seg { start, end, fit, beta }
    }
}

/// Sum upper bound `β = Σ β_i` (Definition 3.5).
#[inline]
pub(crate) fn total_beta(segs: &[Seg]) -> f64 {
    segs.iter().map(|s| s.beta).sum()
}

/// Convert working segments into the public representation. (Test-only;
/// `Sapla::reduce_into` writes `LinearSegment`s straight into the caller
/// buffer instead.)
#[cfg(test)]
pub(crate) fn to_representation(segs: &[Seg]) -> PiecewiseLinear {
    PiecewiseLinear::new(
        segs.iter().map(|s| LinearSegment { a: s.fit.a, b: s.fit.b, r: s.end - 1 }).collect(),
    )
    .expect("working segmentation is contiguous and ordered")
}

/// Debug-only invariant check: segments tile `[0, n)` contiguously.
#[cfg(debug_assertions)]
pub(crate) fn assert_tiling(segs: &[Seg], n: usize) {
    assert!(!segs.is_empty());
    assert_eq!(segs[0].start, 0);
    assert_eq!(segs[segs.len() - 1].end, n);
    for w in segs.windows(2) {
        assert_eq!(w[0].end, w[1].start, "segments must tile contiguously");
    }
    for s in segs {
        assert!(s.len() >= 1);
        assert_eq!(s.fit.len, s.len());
    }
}

#[cfg(not(debug_assertions))]
pub(crate) fn assert_tiling(_segs: &[Seg], _n: usize) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sapla::BoundMode;

    const V: [f64; 10] = [1.0, 3.0, 2.0, 8.0, 7.0, 7.5, 2.0, 1.0, 0.0, 4.0];

    #[test]
    fn make_seg_is_consistent_in_both_modes() {
        for mode in [BoundMode::Paper, BoundMode::Exact] {
            let ctx = Ctx::new(&V, mode);
            let seg = ctx.make_seg(2, 8);
            assert_eq!(seg.len(), 6);
            assert_eq!(seg.fit.len, 6);
            assert!(seg.beta.is_finite() && seg.beta >= 0.0);
        }
    }

    #[test]
    fn exact_beta_upper_bounds_paper_free_variant_on_fit_window() {
        // With no reference line, the paper bound only sees endpoint
        // differences — exact mode sees the whole window, so on a window
        // whose interior deviates most, exact ≥ paper.
        let v = [0.0, 10.0, 0.0]; // fit is flat-ish; interior point huge
        let paper = Ctx::new(&v, BoundMode::Paper);
        let exact = Ctx::new(&v, BoundMode::Exact);
        let ps = paper.make_seg(0, 3);
        let es = exact.make_seg(0, 3);
        assert!(es.beta >= ps.beta - 1e-9, "exact {} < paper {}", es.beta, ps.beta);
    }

    #[test]
    fn total_beta_sums() {
        let ctx = Ctx::new(&V, BoundMode::Exact);
        let segs = vec![ctx.make_seg(0, 5), ctx.make_seg(5, 10)];
        let total = total_beta(&segs);
        assert!((total - (segs[0].beta + segs[1].beta)).abs() < 1e-12);
        assert_tiling(&segs, 10);
    }
}
