//! Compact binary codec for reduced representations — persist a reduced
//! database (the index's payload) without keeping raw series around.
//!
//! Format (little-endian):
//!
//! ```text
//! collection := magic "SAPL" | version u8 | count u32 | record*
//! record     := kind u8 | body
//! linear     := kind 0 | n_segs u32 | (a f64, b f64, r u64)*
//! constant   := kind 1 | n_segs u32 | (v f64, r u64)*
//! polynomial := kind 2 | n u64 | k u32 | coeff f64 * k
//! symbolic   := kind 3 | n u64 | alphabet u32 | len u32 | symbol u8 * len
//! ```
//!
//! A SAPLA segment costs 24 bytes — a length-1024 series at `N = 4`
//! persists in 97 bytes, ~84× smaller than the raw `f64` samples.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Error, Result};
use crate::repr::{
    ConstantSegment, LinearSegment, PiecewiseConstant, PiecewiseLinear, PolyCoeffs, Representation,
    SymbolicWord,
};

const MAGIC: &[u8; 4] = b"SAPL";
const VERSION: u8 = 1;

const KIND_LINEAR: u8 = 0;
const KIND_CONSTANT: u8 = 1;
const KIND_POLY: u8 = 2;
const KIND_SYMBOLIC: u8 = 3;

fn corrupt(reason: &'static str) -> Error {
    Error::MalformedRepresentation { reason }
}

/// Encode one representation (no container header).
pub fn encode_representation(rep: &Representation, out: &mut BytesMut) {
    match rep {
        Representation::Linear(l) => {
            out.put_u8(KIND_LINEAR);
            out.put_u32_le(l.num_segments() as u32);
            for seg in l.segments() {
                out.put_f64_le(seg.a);
                out.put_f64_le(seg.b);
                out.put_u64_le(seg.r as u64);
            }
        }
        Representation::Constant(c) => {
            out.put_u8(KIND_CONSTANT);
            out.put_u32_le(c.num_segments() as u32);
            for seg in c.segments() {
                out.put_f64_le(seg.v);
                out.put_u64_le(seg.r as u64);
            }
        }
        Representation::Polynomial(p) => {
            out.put_u8(KIND_POLY);
            out.put_u64_le(p.n as u64);
            out.put_u32_le(p.coeffs.len() as u32);
            for &c in &p.coeffs {
                out.put_f64_le(c);
            }
        }
        Representation::Symbolic(w) => {
            out.put_u8(KIND_SYMBOLIC);
            out.put_u64_le(w.n as u64);
            out.put_u32_le(w.alphabet_size as u32);
            out.put_u32_le(w.symbols.len() as u32);
            out.put_slice(&w.symbols);
        }
    }
}

fn need(buf: &impl Buf, bytes: usize) -> Result<()> {
    if buf.remaining() < bytes {
        Err(corrupt("truncated record"))
    } else {
        Ok(())
    }
}

/// Decode one representation (no container header).
///
/// # Errors
///
/// [`Error::MalformedRepresentation`] on truncation, unknown kinds, or
/// structurally invalid payloads (validation is re-run on decode).
pub fn decode_representation(buf: &mut Bytes) -> Result<Representation> {
    need(buf, 1)?;
    match buf.get_u8() {
        KIND_LINEAR => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n.checked_mul(24).ok_or(corrupt("segment count overflow"))?)?;
            let mut segs = Vec::with_capacity(n);
            for _ in 0..n {
                let a = buf.get_f64_le();
                let b = buf.get_f64_le();
                let r = buf.get_u64_le() as usize;
                segs.push(LinearSegment { a, b, r });
            }
            Ok(Representation::Linear(PiecewiseLinear::new(segs)?))
        }
        KIND_CONSTANT => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n.checked_mul(16).ok_or(corrupt("segment count overflow"))?)?;
            let mut segs = Vec::with_capacity(n);
            for _ in 0..n {
                let v = buf.get_f64_le();
                let r = buf.get_u64_le() as usize;
                segs.push(ConstantSegment { v, r });
            }
            Ok(Representation::Constant(PiecewiseConstant::new(segs)?))
        }
        KIND_POLY => {
            need(buf, 12)?;
            let n = buf.get_u64_le() as usize;
            let k = buf.get_u32_le() as usize;
            need(buf, k.checked_mul(8).ok_or(corrupt("coefficient count overflow"))?)?;
            let coeffs = (0..k).map(|_| buf.get_f64_le()).collect();
            Ok(Representation::Polynomial(PolyCoeffs { coeffs, n }))
        }
        KIND_SYMBOLIC => {
            need(buf, 16)?;
            let n = buf.get_u64_le() as usize;
            let alphabet_size = buf.get_u32_le() as usize;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let mut symbols = vec![0u8; len];
            buf.copy_to_slice(&mut symbols);
            if alphabet_size < 2 || symbols.iter().any(|&s| s as usize >= alphabet_size) {
                return Err(corrupt("symbol outside alphabet"));
            }
            Ok(Representation::Symbolic(SymbolicWord { symbols, alphabet_size, n }))
        }
        _ => Err(corrupt("unknown representation kind")),
    }
}

/// Encode a whole reduced database.
///
/// ```
/// use sapla_core::codec::{decode_collection, encode_collection};
/// use sapla_core::sapla::Sapla;
/// use sapla_core::{Representation, TimeSeries};
///
/// let ts = TimeSeries::new((0..256).map(|t| (t as f64 * 0.05).sin()).collect())?;
/// let rep = Representation::Linear(Sapla::with_segments(4).reduce(&ts)?);
/// let blob = encode_collection(&[rep.clone()]);
/// assert!(blob.len() < 256 * 8 / 10, "at least 10x smaller than raw");
/// assert_eq!(decode_collection(&blob)?, vec![rep]);
/// # Ok::<(), sapla_core::Error>(())
/// ```
pub fn encode_collection(reps: &[Representation]) -> Bytes {
    let mut out = BytesMut::with_capacity(16 + reps.len() * 128);
    out.put_slice(MAGIC);
    out.put_u8(VERSION);
    out.put_u32_le(reps.len() as u32);
    for rep in reps {
        encode_representation(rep, &mut out);
    }
    out.freeze()
}

/// Decode a whole reduced database.
///
/// # Errors
///
/// [`Error::MalformedRepresentation`] on a bad header or any bad record.
pub fn decode_collection(data: &[u8]) -> Result<Vec<Representation>> {
    let mut buf = Bytes::copy_from_slice(data);
    need(&buf, 9)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if buf.get_u8() != VERSION {
        return Err(corrupt("unsupported version"));
    }
    let count = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        out.push(decode_representation(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after collection"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sapla::Sapla;
    use crate::series::TimeSeries;

    fn sample_reps() -> Vec<Representation> {
        let ts = TimeSeries::new(
            (0..64).map(|t| (t as f64 * 0.2).sin() * 4.0 + 0.01 * t as f64).collect(),
        )
        .unwrap();
        vec![
            Representation::Linear(Sapla::with_segments(4).reduce(&ts).unwrap()),
            Representation::Constant(
                PiecewiseConstant::new(vec![
                    ConstantSegment { v: 1.5, r: 9 },
                    ConstantSegment { v: -2.0, r: 63 },
                ])
                .unwrap(),
            ),
            Representation::Polynomial(PolyCoeffs { coeffs: vec![1.0, -0.5, 0.25], n: 64 }),
            Representation::Symbolic(SymbolicWord {
                symbols: vec![0, 3, 7, 2],
                alphabet_size: 8,
                n: 64,
            }),
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        let reps = sample_reps();
        let blob = encode_collection(&reps);
        let back = decode_collection(&blob).unwrap();
        assert_eq!(back, reps);
    }

    #[test]
    fn compression_ratio_is_large() {
        let ts = TimeSeries::new((0..1024).map(|t| (t as f64 * 0.01).sin()).collect()).unwrap();
        let rep = Representation::Linear(Sapla::with_segments(4).reduce(&ts).unwrap());
        let blob = encode_collection(&[rep]);
        let raw_bytes = 1024 * 8;
        assert!(blob.len() * 50 < raw_bytes, "blob {} bytes vs raw {raw_bytes}", blob.len());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let reps = sample_reps();
        let blob = encode_collection(&reps);
        let mut bad = blob.to_vec();
        bad[0] = b'X';
        assert!(decode_collection(&bad).is_err());
        let mut bad = blob.to_vec();
        bad[4] = 99;
        assert!(decode_collection(&bad).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let reps = sample_reps();
        let blob = encode_collection(&reps);
        for cut in [0, 5, 9, 15, blob.len() / 2, blob.len() - 1] {
            assert!(decode_collection(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let blob = encode_collection(&sample_reps());
        let mut padded = blob.to_vec();
        padded.push(0);
        assert!(decode_collection(&padded).is_err());
    }

    #[test]
    fn rejects_invalid_symbols() {
        let word =
            Representation::Symbolic(SymbolicWord { symbols: vec![0, 1], alphabet_size: 4, n: 8 });
        let mut blob = encode_collection(&[word]).to_vec();
        // Corrupt the last symbol byte to exceed the alphabet.
        let last = blob.len() - 1;
        blob[last] = 200;
        assert!(decode_collection(&blob).is_err());
    }

    #[test]
    fn empty_collection_roundtrips() {
        let blob = encode_collection(&[]);
        assert_eq!(decode_collection(&blob).unwrap(), vec![]);
    }
}
