//! Compact binary codec for reduced representations — persist a reduced
//! database (the index's payload) without keeping raw series around.
//!
//! Format (little-endian):
//!
//! ```text
//! collection := magic "SAPL" | version u8 | endian u16 | payload_len u32
//!               | count u32 | record*
//! record     := kind u8 | body
//! linear     := kind 0 | n_segs u32 | (a f64, b f64, r u64)*
//! constant   := kind 1 | n_segs u32 | (v f64, r u64)*
//! polynomial := kind 2 | n u64 | k u32 | coeff f64 * k
//! symbolic   := kind 3 | n u64 | alphabet u32 | len u32 | symbol u8 * len
//! ```
//!
//! A SAPLA segment costs 24 bytes — a length-1024 series at `N = 4`
//! persists in ~100 bytes, ~80× smaller than the raw `f64` samples.
//!
//! The version-2 container header carries a byte-order mark (`0xFEFF`
//! written little-endian — a byte-swapped writer's output reads back as
//! `0xFFFE` and is rejected) and the exact payload byte length, checked
//! against the input before any record is decoded. Header-level
//! mismatches (magic, version, endianness, length) raise
//! [`Error::CorruptIndex`]; structurally invalid *records* keep raising
//! [`Error::MalformedRepresentation`].
//!
//! Counts travel as fixed-width `u32`s, so encoding **checks** every
//! count instead of truncating with `as` — a truncated header would
//! round-trip to *different* data. Decoding reads straight from the
//! borrowed input slice (no upfront copy: reloading a snapshot peaks at
//! the blob plus the decoded records, not 2× the blob).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Error, Result};
use crate::repr::{
    ConstantSegment, LinearSegment, PiecewiseConstant, PiecewiseLinear, PolyCoeffs, Representation,
    SymbolicWord,
};

const MAGIC: &[u8; 4] = b"SAPL";
const VERSION: u8 = 2;
/// Byte-order mark, always written little-endian. A writer that emitted
/// native big-endian fields would produce `0xFFFE` here, and decode
/// refuses the blob instead of misreading every count and coefficient.
const ENDIAN_MARK: u16 = 0xFEFF;
/// magic (4) + version (1) + endian mark (2) + payload_len (4) + count (4).
const HEADER_LEN: usize = 15;

const KIND_LINEAR: u8 = 0;
const KIND_CONSTANT: u8 = 1;
const KIND_POLY: u8 = 2;
const KIND_SYMBOLIC: u8 = 3;

fn corrupt(reason: &'static str) -> Error {
    Error::MalformedRepresentation { reason }
}

fn container(reason: &'static str) -> Error {
    Error::CorruptIndex { reason }
}

/// Checked narrowing for every count the format stores as `u32`.
/// `limit` is [`u32::MAX`] in production; tests lower it to prove the
/// overflow path errors instead of truncating.
fn checked_count(count: usize, limit: usize, what: &'static str) -> Result<u32> {
    if count > limit {
        return Err(Error::TooManyRecords { what, count, limit });
    }
    u32::try_from(count).map_err(|_| Error::TooManyRecords {
        what,
        count,
        limit: u32::MAX as usize,
    })
}

/// Encode one representation (no container header).
///
/// # Errors
///
/// [`Error::TooManyRecords`] when a segment / coefficient / symbol count
/// does not fit the wire format's `u32` fields.
pub fn encode_representation(rep: &Representation, out: &mut BytesMut) -> Result<()> {
    encode_representation_impl(rep, out, u32::MAX as usize)
}

fn encode_representation_impl(
    rep: &Representation,
    out: &mut BytesMut,
    limit: usize,
) -> Result<()> {
    match rep {
        Representation::Linear(l) => {
            out.put_u8(KIND_LINEAR);
            out.put_u32_le(checked_count(l.num_segments(), limit, "segments")?);
            for seg in l.segments() {
                out.put_f64_le(seg.a);
                out.put_f64_le(seg.b);
                out.put_u64_le(seg.r as u64);
            }
        }
        Representation::Constant(c) => {
            out.put_u8(KIND_CONSTANT);
            out.put_u32_le(checked_count(c.num_segments(), limit, "segments")?);
            for seg in c.segments() {
                out.put_f64_le(seg.v);
                out.put_u64_le(seg.r as u64);
            }
        }
        Representation::Polynomial(p) => {
            out.put_u8(KIND_POLY);
            out.put_u64_le(p.n as u64);
            out.put_u32_le(checked_count(p.coeffs.len(), limit, "coefficients")?);
            for &c in &p.coeffs {
                out.put_f64_le(c);
            }
        }
        Representation::Symbolic(w) => {
            out.put_u8(KIND_SYMBOLIC);
            out.put_u64_le(w.n as u64);
            out.put_u32_le(checked_count(w.alphabet_size, limit, "alphabet symbols")?);
            out.put_u32_le(checked_count(w.symbols.len(), limit, "symbols")?);
            out.put_slice(&w.symbols);
        }
    }
    Ok(())
}

fn need(buf: &impl Buf, bytes: usize) -> Result<()> {
    if buf.remaining() < bytes {
        Err(corrupt("truncated record"))
    } else {
        Ok(())
    }
}

/// Decode one representation (no container header) from any [`Buf`] —
/// a consumed [`Bytes`] cursor or a plain `&mut &[u8]` slice reader.
///
/// # Errors
///
/// [`Error::MalformedRepresentation`] on truncation, unknown kinds, or
/// structurally invalid payloads (validation is re-run on decode).
pub fn decode_representation<B: Buf>(buf: &mut B) -> Result<Representation> {
    need(buf, 1)?;
    match buf.get_u8() {
        KIND_LINEAR => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n.checked_mul(24).ok_or(corrupt("segment count overflow"))?)?;
            let mut segs = Vec::with_capacity(n);
            for _ in 0..n {
                let a = buf.get_f64_le();
                let b = buf.get_f64_le();
                let r = buf.get_u64_le() as usize;
                segs.push(LinearSegment { a, b, r });
            }
            Ok(Representation::Linear(PiecewiseLinear::new(segs)?))
        }
        KIND_CONSTANT => {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n.checked_mul(16).ok_or(corrupt("segment count overflow"))?)?;
            let mut segs = Vec::with_capacity(n);
            for _ in 0..n {
                let v = buf.get_f64_le();
                let r = buf.get_u64_le() as usize;
                segs.push(ConstantSegment { v, r });
            }
            Ok(Representation::Constant(PiecewiseConstant::new(segs)?))
        }
        KIND_POLY => {
            need(buf, 12)?;
            let n = buf.get_u64_le() as usize;
            let k = buf.get_u32_le() as usize;
            need(buf, k.checked_mul(8).ok_or(corrupt("coefficient count overflow"))?)?;
            let coeffs = (0..k).map(|_| buf.get_f64_le()).collect();
            Ok(Representation::Polynomial(PolyCoeffs { coeffs, n }))
        }
        KIND_SYMBOLIC => {
            need(buf, 16)?;
            let n = buf.get_u64_le() as usize;
            let alphabet_size = buf.get_u32_le() as usize;
            let len = buf.get_u32_le() as usize;
            need(buf, len)?;
            let mut symbols = vec![0u8; len];
            buf.copy_to_slice(&mut symbols);
            if alphabet_size < 2 || symbols.iter().any(|&s| s as usize >= alphabet_size) {
                return Err(corrupt("symbol outside alphabet"));
            }
            Ok(Representation::Symbolic(SymbolicWord { symbols, alphabet_size, n }))
        }
        _ => Err(corrupt("unknown representation kind")),
    }
}

/// Encode a whole reduced database.
///
/// ```
/// use sapla_core::codec::{decode_collection, encode_collection};
/// use sapla_core::sapla::Sapla;
/// use sapla_core::{Representation, TimeSeries};
///
/// let ts = TimeSeries::new((0..256).map(|t| (t as f64 * 0.05).sin()).collect())?;
/// let rep = Representation::Linear(Sapla::with_segments(4).reduce(&ts)?);
/// let blob = encode_collection(&[rep.clone()])?;
/// assert!(blob.len() < 256 * 8 / 10, "at least 10x smaller than raw");
/// assert_eq!(decode_collection(&blob)?, vec![rep]);
/// # Ok::<(), sapla_core::Error>(())
/// ```
///
/// # Errors
///
/// [`Error::TooManyRecords`] when the record count (or any per-record
/// count) exceeds the wire format's `u32` fields.
pub fn encode_collection(reps: &[Representation]) -> Result<Bytes> {
    encode_collection_impl(reps, u32::MAX as usize)
}

fn encode_collection_impl(reps: &[Representation], limit: usize) -> Result<Bytes> {
    let count = checked_count(reps.len(), limit, "records")?;
    let mut payload = BytesMut::with_capacity(reps.len() * 128);
    for rep in reps {
        encode_representation_impl(rep, &mut payload, limit)?;
    }
    // The header stores the exact payload byte length so decode can
    // check it *before* walking any record.
    let payload_len = checked_count(payload.len(), u32::MAX as usize, "payload bytes")?;
    let mut out = BytesMut::with_capacity(HEADER_LEN + payload.len());
    out.put_slice(MAGIC);
    out.put_u8(VERSION);
    out.put_slice(&ENDIAN_MARK.to_le_bytes());
    out.put_u32_le(payload_len);
    out.put_u32_le(count);
    out.put_slice(&payload);
    Ok(out.freeze())
}

/// Decode a whole reduced database, reading directly from `data` — no
/// upfront copy of the blob, so peak memory on snapshot reload is the
/// blob plus the decoded records.
///
/// # Errors
///
/// [`Error::CorruptIndex`] on a bad container header (magic, version,
/// endianness mark, payload length); [`Error::MalformedRepresentation`]
/// on any bad record.
pub fn decode_collection(data: &[u8]) -> Result<Vec<Representation>> {
    let mut buf: &[u8] = data;
    if buf.remaining() < HEADER_LEN {
        return Err(container("truncated collection header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(container("bad magic"));
    }
    if buf.get_u8() != VERSION {
        return Err(container("unsupported version"));
    }
    let mut mark = [0u8; 2];
    buf.copy_to_slice(&mut mark);
    if u16::from_le_bytes(mark) != ENDIAN_MARK {
        return Err(container("endianness mark mismatch"));
    }
    let payload_len = buf.get_u32_le() as usize;
    let count = buf.get_u32_le() as usize;
    if buf.remaining() != payload_len {
        return Err(container("payload length mismatch"));
    }
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        out.push(decode_representation(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(container("trailing bytes after collection"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sapla::Sapla;
    use crate::series::TimeSeries;

    fn sample_reps() -> Vec<Representation> {
        let ts = TimeSeries::new(
            (0..64).map(|t| (t as f64 * 0.2).sin() * 4.0 + 0.01 * t as f64).collect(),
        )
        .unwrap();
        vec![
            Representation::Linear(Sapla::with_segments(4).reduce(&ts).unwrap()),
            Representation::Constant(
                PiecewiseConstant::new(vec![
                    ConstantSegment { v: 1.5, r: 9 },
                    ConstantSegment { v: -2.0, r: 63 },
                ])
                .unwrap(),
            ),
            Representation::Polynomial(PolyCoeffs { coeffs: vec![1.0, -0.5, 0.25], n: 64 }),
            Representation::Symbolic(SymbolicWord {
                symbols: vec![0, 3, 7, 2],
                alphabet_size: 8,
                n: 64,
            }),
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        let reps = sample_reps();
        let blob = encode_collection(&reps).unwrap();
        let back = decode_collection(&blob).unwrap();
        assert_eq!(back, reps);
    }

    #[test]
    fn compression_ratio_is_large() {
        let ts = TimeSeries::new((0..1024).map(|t| (t as f64 * 0.01).sin()).collect()).unwrap();
        let rep = Representation::Linear(Sapla::with_segments(4).reduce(&ts).unwrap());
        let blob = encode_collection(&[rep]).unwrap();
        let raw_bytes = 1024 * 8;
        assert!(blob.len() * 50 < raw_bytes, "blob {} bytes vs raw {raw_bytes}", blob.len());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let reps = sample_reps();
        let blob = encode_collection(&reps).unwrap();
        let mut bad = blob.to_vec();
        bad[0] = b'X';
        assert!(matches!(decode_collection(&bad), Err(Error::CorruptIndex { .. })));
        let mut bad = blob.to_vec();
        bad[4] = 99;
        assert!(matches!(decode_collection(&bad), Err(Error::CorruptIndex { .. })));
    }

    #[test]
    fn rejects_endianness_mark_mismatch() {
        let blob = encode_collection(&sample_reps()).unwrap();
        // A byte-swapped writer would emit the mark as 0xFFFE.
        let mut swapped = blob.to_vec();
        swapped.swap(5, 6);
        let err = decode_collection(&swapped).unwrap_err();
        assert_eq!(err, Error::CorruptIndex { reason: "endianness mark mismatch" });
    }

    #[test]
    fn rejects_payload_length_mismatch() {
        let blob = encode_collection(&sample_reps()).unwrap();
        // Bump the declared payload length without changing the payload:
        // the length check must fire before any record is decoded.
        let mut bad = blob.to_vec();
        bad[7] = bad[7].wrapping_add(1);
        let err = decode_collection(&bad).unwrap_err();
        assert_eq!(err, Error::CorruptIndex { reason: "payload length mismatch" });
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let reps = sample_reps();
        let blob = encode_collection(&reps).unwrap();
        for cut in [0, 5, 9, 15, blob.len() / 2, blob.len() - 1] {
            assert!(decode_collection(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let blob = encode_collection(&sample_reps()).unwrap();
        let mut padded = blob.to_vec();
        padded.push(0);
        assert!(decode_collection(&padded).is_err());
    }

    #[test]
    fn rejects_invalid_symbols() {
        let word =
            Representation::Symbolic(SymbolicWord { symbols: vec![0, 1], alphabet_size: 4, n: 8 });
        let mut blob = encode_collection(&[word]).unwrap().to_vec();
        // Corrupt the last symbol byte to exceed the alphabet.
        let last = blob.len() - 1;
        blob[last] = 200;
        assert!(decode_collection(&blob).is_err());
    }

    #[test]
    fn empty_collection_roundtrips() {
        let blob = encode_collection(&[]).unwrap();
        assert_eq!(decode_collection(&blob).unwrap(), vec![]);
    }

    #[test]
    fn checked_count_errors_instead_of_truncating() {
        // The old `as u32` would have mapped u32::MAX + 1 to 0 — a header
        // that decodes an empty collection from a blob holding billions
        // of records' payload bytes.
        let over = u32::MAX as usize + 1;
        let err = checked_count(over, u32::MAX as usize, "records").unwrap_err();
        assert_eq!(
            err,
            Error::TooManyRecords { what: "records", count: over, limit: u32::MAX as usize }
        );
        assert!(err.to_string().contains("too many records"));
        assert_eq!(
            checked_count(u32::MAX as usize, u32::MAX as usize, "records").unwrap(),
            u32::MAX
        );
        assert_eq!(checked_count(0, u32::MAX as usize, "records").unwrap(), 0);
    }

    #[test]
    fn record_count_overflow_is_an_error_with_a_lowered_limit() {
        // Synthetic override of the limit: 3 records against a limit of 2
        // must refuse to encode, proving the checked path (the production
        // limit of u32::MAX is unreachable in a test's memory budget).
        let reps = sample_reps();
        let err = encode_collection_impl(&reps, 2).unwrap_err();
        assert_eq!(err, Error::TooManyRecords { what: "records", count: reps.len(), limit: 2 });
    }

    #[test]
    fn segment_count_overflow_is_an_error_with_a_lowered_limit() {
        let reps = sample_reps();
        let mut out = BytesMut::new();
        // sample_reps()[0] is a 4-segment linear representation.
        let err = encode_representation_impl(&reps[0], &mut out, 3).unwrap_err();
        assert_eq!(err, Error::TooManyRecords { what: "segments", count: 4, limit: 3 });
        // Polynomial coefficient and symbolic symbol counts take the same
        // checked path.
        let mut out = BytesMut::new();
        let err = encode_representation_impl(&reps[2], &mut out, 2).unwrap_err();
        assert_eq!(err, Error::TooManyRecords { what: "coefficients", count: 3, limit: 2 });
        let mut out = BytesMut::new();
        let err = encode_representation_impl(&reps[3], &mut out, 3).unwrap_err();
        assert!(matches!(err, Error::TooManyRecords { .. }));
    }

    #[test]
    fn decode_from_borrowed_slice_and_bytes_cursor_agree() {
        let reps = sample_reps();
        let mut out = BytesMut::new();
        for rep in &reps {
            encode_representation(rep, &mut out).unwrap();
        }
        let blob = out.freeze();
        let mut cursor = blob.clone();
        let mut slice: &[u8] = &blob;
        for rep in &reps {
            assert_eq!(&decode_representation(&mut cursor).unwrap(), rep);
            assert_eq!(&decode_representation(&mut slice).unwrap(), rep);
        }
        assert!(!cursor.has_remaining());
        assert!(!slice.has_remaining());
    }

    /// Deterministic xorshift for the fuzz-style tests (no external rng).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn random_blobs_error_and_never_panic() {
        let mut rng = XorShift(0x5eed_cafe_f00d_d00d);
        for round in 0..500 {
            let len = (rng.next() % 257) as usize;
            let blob: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            // Random bytes essentially never start with the magic; decode
            // must reject them (and must not panic on any of them).
            if !blob.starts_with(MAGIC) {
                assert!(decode_collection(&blob).is_err(), "round {round}");
            } else {
                let _ = decode_collection(&blob);
            }
        }
    }

    #[test]
    fn random_payloads_behind_a_valid_header_never_panic() {
        // Adversarial case: a fully consistent container header (magic,
        // version, endian mark, *correct* payload length), garbage records
        // after — the decoder must walk the records and error out, never
        // panic.
        let mut rng = XorShift(0xbad5_eed5_bad5_eed5);
        for _ in 0..500 {
            let len = (rng.next() % 129) as usize;
            let mut blob = Vec::with_capacity(HEADER_LEN + len);
            blob.extend_from_slice(MAGIC);
            blob.push(VERSION);
            blob.extend_from_slice(&ENDIAN_MARK.to_le_bytes());
            blob.extend_from_slice(&(len as u32).to_le_bytes());
            blob.extend_from_slice(&(rng.next() as u32 % 8).to_le_bytes());
            blob.extend((0..len).map(|_| rng.next() as u8));
            let _ = decode_collection(&blob);
        }
    }

    #[test]
    fn bit_flipped_blobs_never_panic() {
        let blob = encode_collection(&sample_reps()).unwrap().to_vec();
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut flipped = blob.clone();
                flipped[byte] ^= 1 << bit;
                // A flipped payload coefficient may still decode (to other
                // finite/NaN values); structural flips must error. Either
                // way: a clean Result, never a panic.
                match decode_collection(&flipped) {
                    Ok(reps) => assert!(!reps.is_empty()),
                    Err(e) => {
                        let _ = e.to_string();
                    }
                }
            }
        }
    }
}
