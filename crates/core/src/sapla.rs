//! The SAPLA driver: Self-Adaptive Piecewise Linear Approximation
//! (Section 4 of the paper).
//!
//! SAPLA reduces a length-`n` time series to `N = M/3` adaptive-length
//! linear segments `⟨a_i, b_i, r_i⟩` in `O(n(N + log n))` time through
//! three stages: initialization (Algorithm 4.2), split & merge iteration
//! (Algorithm 4.3) and segment endpoint movement (Algorithms 4.4–4.5).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::endpoint_move::{endpoint_move_with, MoveScratch};
use crate::error::{Error, Result};
use crate::init::initialize_into;
use crate::ordf64::OrdF64;
use crate::repr::{LinearSegment, PiecewiseLinear};
use crate::series::{PrefixSums, TimeSeries};
use crate::split_merge::{split_merge_with, SplitMergeScratch};
use crate::work::{Ctx, Seg};

/// How segment upper bounds `β_i` are computed during the iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// The paper's `O(1)` endpoint-difference bounds (Sections 4.1.2,
    /// 4.1.4, 4.3.1, 4.4.1). Conditional (Theorems 4.2/4.3) but fast —
    /// this is SAPLA as published.
    #[default]
    Paper,
    /// Exact per-segment max deviations (`O(l)` per evaluation). The
    /// unconditional bound the paper's conclusion mentions as future work;
    /// exposed for the `ablation_stages` benchmark.
    Exact,
}

/// Tuning knobs for the SAPLA stages. The defaults reproduce the paper's
/// configuration; the stage switches exist for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaplaConfig {
    /// Bound computation mode.
    pub bound_mode: BoundMode,
    /// Run stage 2 (split & merge iteration). Disabling leaves whatever
    /// segment count initialization produced, then merges/splits minimally
    /// to reach `N` without the refinement loop.
    pub refine_split_merge: bool,
    /// Upper bound on refinement rounds in stage 2 (`0` disables just the
    /// refinement loop; the count is always driven to `N`).
    pub max_refine_rounds: usize,
    /// Run stage 3 (segment endpoint movement).
    pub endpoint_movement: bool,
    /// Upper bound on stage-3 passes.
    pub max_move_passes: usize,
    /// How many times to alternate stages 2 and 3 (1 = the paper's single
    /// pass through the Fig. 2 pipeline).
    pub stage_loops: usize,
}

impl Default for SaplaConfig {
    fn default() -> Self {
        SaplaConfig {
            bound_mode: BoundMode::Paper,
            refine_split_merge: true,
            max_refine_rounds: 16,
            endpoint_movement: true,
            max_move_passes: 8,
            stage_loops: 1,
        }
    }
}

/// The SAPLA dimensionality reducer.
///
/// ```
/// use sapla_core::{TimeSeries, sapla::Sapla};
/// let ts = TimeSeries::new((0..64).map(|t| (t as f64 * 0.1).sin()).collect()).unwrap();
/// let repr = Sapla::with_segments(5).reduce(&ts).unwrap();
/// assert_eq!(repr.num_segments(), 5);
/// assert!(repr.max_deviation(&ts).unwrap() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct Sapla {
    n_segments: usize,
    config: SaplaConfig,
}

/// Number of representation coefficients per SAPLA segment
/// (`⟨a_i, b_i, r_i⟩`, Table 1).
pub const COEFFS_PER_SEGMENT: usize = 3;

/// Reusable SAPLA working memory: the prefix sums, the segment buffer,
/// the stage-1 threshold heap and the stage-2/3 scratch (selection heaps,
/// generation stamps, climb memo, visit order).
///
/// ## Reuse contract
///
/// * **Results never depend on scratch history.** Every stage clears or
///   rebuilds the state it reads, so `reduce_with` over a reused scratch
///   is bit-identical to a fresh one — across series of any lengths and
///   segment targets, in any order (property-tested).
/// * **Steady state allocates nothing.** Buffers keep their capacity, so
///   after a warm-up call per workload shape, [`Sapla::reduce_into`]
///   performs zero heap allocations ([`Sapla::reduce_with`] additionally
///   allocates only the returned representation's segment vector).
/// * **Not thread-safe, cheaply `Send`.** A scratch is `&mut` per
///   reduction; give each worker its own (the pattern
///   `sapla-parallel::par_try_map_init` exists for). One scratch per
///   thread is the intended steady state — creating one per call works
///   but forfeits the allocation-free property.
#[derive(Debug, Default)]
pub struct SaplaScratch {
    sums: PrefixSums,
    segs: Vec<Seg>,
    eta: BinaryHeap<Reverse<OrdF64>>,
    sm: SplitMergeScratch,
    mv: MoveScratch,
}

impl SaplaScratch {
    /// A fresh workspace (equivalent to `Default::default()`).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sapla {
    /// Reducer targeting exactly `n_segments` adaptive segments.
    pub fn with_segments(n_segments: usize) -> Self {
        Sapla { n_segments: n_segments.max(1), config: SaplaConfig::default() }
    }

    /// Reducer with a coefficient budget `M`; SAPLA spends three
    /// coefficients per segment, so `N = M / 3` (Table 1).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidCoefficientCount`] if `M` is zero or not a multiple
    /// of three.
    pub fn with_coefficients(m: usize) -> Result<Self> {
        if m == 0 || !m.is_multiple_of(COEFFS_PER_SEGMENT) {
            return Err(Error::InvalidCoefficientCount {
                requested: m,
                reason: "SAPLA needs a positive multiple of 3 (a_i, b_i, r_i per segment)",
            });
        }
        Ok(Self::with_segments(m / COEFFS_PER_SEGMENT))
    }

    /// Override the stage configuration (for ablations).
    pub fn with_config(mut self, config: SaplaConfig) -> Self {
        self.config = config;
        self
    }

    /// The target segment count `N`.
    pub fn num_segments(&self) -> usize {
        self.n_segments
    }

    /// The active configuration.
    pub fn config(&self) -> &SaplaConfig {
        &self.config
    }

    /// Reduce `series` to its SAPLA representation.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSegmentCount`] when the series is shorter than the
    /// requested segment count.
    pub fn reduce(&self, series: &TimeSeries) -> Result<PiecewiseLinear> {
        self.reduce_with(series, &mut SaplaScratch::new())
    }

    /// [`Sapla::reduce`] against a reusable workspace — the steady-state
    /// entry point of every batch path. See [`SaplaScratch`] for the
    /// reuse contract; results are bit-identical to a fresh scratch.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSegmentCount`] when the series is shorter than the
    /// requested segment count.
    pub fn reduce_with(
        &self,
        series: &TimeSeries,
        scratch: &mut SaplaScratch,
    ) -> Result<PiecewiseLinear> {
        let mut segs = Vec::new();
        self.reduce_into(series, scratch, &mut segs)?;
        PiecewiseLinear::new(segs)
    }

    /// [`Sapla::reduce_with`] writing the segments into a caller buffer
    /// (cleared first) — together with a warmed scratch this performs no
    /// heap allocation at all.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSegmentCount`] when the series is shorter than the
    /// requested segment count.
    pub fn reduce_into(
        &self,
        series: &TimeSeries,
        scratch: &mut SaplaScratch,
        out: &mut Vec<LinearSegment>,
    ) -> Result<()> {
        let n = series.len();
        if n < self.n_segments {
            return Err(Error::InvalidSegmentCount { segments: self.n_segments, len: n });
        }
        let _span = sapla_obs::span!("sapla.reduce");
        sapla_obs::counter!("sapla.reduce.calls");
        sapla_obs::counter!("sapla.reduce.points", n as u64);
        // A series of n points supports at most floor(n/1) segments, but
        // the algorithm's l ≥ 2 preference means n/2 is the practical cap;
        // clamp gracefully rather than erroring on small series.
        let target = self.n_segments.min((n / 2).max(1));

        // Lend the workspace's prefix sums to the context for the
        // duration of this reduction.
        let mut sums = std::mem::take(&mut scratch.sums);
        sums.rebuild(series.values());
        let ctx = Ctx::with_sums(series.values(), sums, self.config.bound_mode);
        initialize_into(&ctx, target, &mut scratch.segs, &mut scratch.eta);
        let rounds = if self.config.refine_split_merge { self.config.max_refine_rounds } else { 0 };
        // Stage 2 then stage 3, re-entering stage 2 while the endpoint
        // movement keeps finding improvements (the framework of Fig. 2;
        // stage_loops = 1 is the paper's single pass).
        for _ in 0..self.config.stage_loops.max(1) {
            split_merge_with(&ctx, &mut scratch.segs, &mut scratch.sm, target, rounds);
            if !self.config.endpoint_movement {
                break;
            }
            endpoint_move_with(
                &ctx,
                &mut scratch.segs,
                &mut scratch.mv,
                self.config.max_move_passes,
            );
        }
        #[cfg(feature = "strict-invariants")]
        crate::strict::check_reduction(&ctx, &scratch.segs);
        out.clear();
        out.extend(scratch.segs.iter().map(|s| LinearSegment {
            a: s.fit.a,
            b: s.fit.b,
            r: s.end - 1,
        }));
        scratch.sums = ctx.into_sums();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: [f64; 20] = [
        7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0,
        9.0, 10.0, 10.0,
    ];

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn coefficient_budget_maps_to_segments() {
        assert_eq!(Sapla::with_coefficients(12).unwrap().num_segments(), 4);
        assert_eq!(Sapla::with_coefficients(18).unwrap().num_segments(), 6);
        assert!(Sapla::with_coefficients(0).is_err());
        assert!(Sapla::with_coefficients(10).is_err());
    }

    #[test]
    fn rejects_more_segments_than_points() {
        let s = ts(&[1.0, 2.0, 3.0]);
        assert!(Sapla::with_segments(4).reduce(&s).is_err());
    }

    #[test]
    fn fig1_example_matches_paper_band() {
        // Paper: SAPLA reaches max deviation 9.27 with N = 4 on this
        // series; APCA gets 18.4 and PLA 19.4 with the same M = 12.
        let repr = Sapla::with_coefficients(12).unwrap().reduce(&ts(&FIG1)).unwrap();
        assert_eq!(repr.num_segments(), 4);
        let dev = repr.max_deviation(&ts(&FIG1)).unwrap();
        assert!(dev < 12.0, "SAPLA on Fig.1 example: {dev}");
    }

    #[test]
    fn reduces_long_smooth_series_tightly() {
        let v: Vec<f64> = (0..512).map(|t| (t as f64 * 0.03).sin() * 10.0).collect();
        let s = ts(&v);
        let repr = Sapla::with_segments(8).reduce(&s).unwrap();
        assert_eq!(repr.num_segments(), 8);
        // 8 linear segments over ~4 sine periods of amplitude 10: each
        // segment covers about half a period, whose best-line residual is
        // ≈ 0.22 × amplitude; anything under 4.0 is a sane segmentation.
        assert!(repr.max_deviation(&s).unwrap() < 4.0);
    }

    #[test]
    fn exact_bound_mode_is_at_least_as_tight_on_average() {
        let v: Vec<f64> =
            (0..256).map(|t| (t as f64 * 0.11).sin() * 5.0 + ((t / 40) % 2) as f64 * 8.0).collect();
        let s = ts(&v);
        let paper = Sapla::with_segments(6).reduce(&s).unwrap();
        let exact = Sapla::with_segments(6)
            .with_config(SaplaConfig { bound_mode: BoundMode::Exact, ..Default::default() })
            .reduce(&s)
            .unwrap();
        // Both are valid N-segment representations.
        assert_eq!(paper.num_segments(), 6);
        assert_eq!(exact.num_segments(), 6);
        // Exact bounds may not always win, but both must be sane.
        assert!(paper.max_deviation(&s).unwrap().is_finite());
        assert!(exact.max_deviation(&s).unwrap().is_finite());
    }

    #[test]
    fn stage_ablation_stays_in_quality_band() {
        // The iterations optimise the *upper bound* β, a proxy for the max
        // deviation, so exact deviation is not guaranteed monotone across
        // stages — but every stage combination must stay well inside the
        // paper's quality band for this example (SAPLA 9.27 vs APCA 18.4
        // and PLA 19.4).
        let base = SaplaConfig {
            refine_split_merge: false,
            max_refine_rounds: 0,
            endpoint_movement: false,
            ..Default::default()
        };
        let s = ts(&FIG1);
        let init_only = Sapla::with_segments(4).with_config(base).reduce(&s).unwrap();
        let full = Sapla::with_segments(4).reduce(&s).unwrap();
        let d0 = init_only.max_deviation(&s).unwrap();
        let d2 = full.max_deviation(&s).unwrap();
        assert_eq!(init_only.num_segments(), 4);
        assert!(d0 < 12.0, "init-only deviation {d0}");
        assert!(d2 < 12.0, "full-pipeline deviation {d2}");
    }

    #[test]
    fn handles_degenerate_inputs() {
        // Constant series.
        let s = ts(&vec![5.0; 64]);
        let r = Sapla::with_segments(4).reduce(&s).unwrap();
        assert!(r.max_deviation(&s).unwrap() < 1e-9);
        // Two points.
        let s = ts(&[1.0, 9.0]);
        let r = Sapla::with_segments(1).reduce(&s).unwrap();
        assert!(r.max_deviation(&s).unwrap() < 1e-12);
        // Segment count clamped on short series.
        let s = ts(&[1.0, 9.0, 2.0, 4.0]);
        let r = Sapla::with_segments(4).reduce(&s).unwrap();
        assert!(r.num_segments() <= 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let v: Vec<f64> = (0..200).map(|t| ((t * t) % 97) as f64).collect();
        let s = ts(&v);
        let a = Sapla::with_segments(7).reduce(&s).unwrap();
        let b = Sapla::with_segments(7).reduce(&s).unwrap();
        assert_eq!(a, b);
    }
}
