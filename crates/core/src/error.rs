//! Error type shared by the SAPLA workspace.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the SAPLA core library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A time series was empty where at least one sample is required.
    EmptySeries,
    /// A time series contained a non-finite sample (NaN or ±inf).
    NonFiniteSample {
        /// Index of the offending sample.
        index: usize,
    },
    /// The requested window `[start, end)` is out of range or inverted.
    InvalidWindow {
        /// Window start (inclusive).
        start: usize,
        /// Window end (exclusive).
        end: usize,
        /// Length of the underlying series.
        len: usize,
    },
    /// The requested number of representation coefficients is invalid for
    /// the method (e.g. not a multiple of the per-segment coefficient count,
    /// zero, or larger than the series permits).
    InvalidCoefficientCount {
        /// The requested coefficient budget `M`.
        requested: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The requested segment count cannot be realised on the given series.
    InvalidSegmentCount {
        /// The requested number of segments `N`.
        segments: usize,
        /// Length of the series being reduced.
        len: usize,
    },
    /// Two representations cover a different number of original points and
    /// therefore cannot be compared.
    LengthMismatch {
        /// Length covered by the left operand.
        left: usize,
        /// Length covered by the right operand.
        right: usize,
    },
    /// A representation was structurally invalid (e.g. non-increasing
    /// endpoints, last endpoint not equal to `n - 1`).
    MalformedRepresentation {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// An operation required a representation variant it does not support.
    UnsupportedRepresentation {
        /// The operation that was attempted.
        operation: &'static str,
    },
    /// A reduction-method name did not match any known method (the set is
    /// closed — Table 1).
    UnknownMethod {
        /// The name that failed to resolve.
        name: String,
    },
    /// A thread-count setting (`SAPLA_THREADS` or `--threads`) did not
    /// parse as a non-negative integer. `0` itself is valid and means
    /// "use all hardware threads" — only non-numeric input is rejected.
    InvalidThreads {
        /// The raw value that failed to parse.
        value: String,
    },
    /// A SIMD level setting (`SAPLA_SIMD` or `--no-simd`) named an
    /// unknown level, or one this CPU/build cannot execute.
    InvalidSimd {
        /// The raw value that failed to resolve.
        value: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// An index structural invariant was violated — hulls, cached leaf
    /// blocks, or entry bookkeeping out of sync after mutations. Raised
    /// by integrity validation (e.g. `DbchTree::validate`), never by
    /// normal queries.
    CorruptIndex {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A count (records in a collection, segments or symbols in one
    /// record) exceeds what the codec's fixed-width wire format can
    /// represent. Encoding fails instead of silently truncating the
    /// count — a truncated header would decode to *different* data.
    TooManyRecords {
        /// What overflowed ("records", "segments", "coefficients", ...).
        what: &'static str,
        /// The count that does not fit.
        count: usize,
        /// The largest encodable count.
        limit: usize,
    },
    /// An I/O failure while reading or writing a snapshot file. The
    /// underlying `std::io::Error` is flattened to a message so the
    /// error stays `Clone + Eq` for the test suites.
    Io {
        /// The path involved.
        path: String,
        /// The flattened I/O error message.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptySeries => write!(f, "time series must contain at least one sample"),
            Error::NonFiniteSample { index } => {
                write!(f, "sample at index {index} is not finite")
            }
            Error::InvalidWindow { start, end, len } => {
                write!(f, "window [{start}, {end}) is invalid for series of length {len}")
            }
            Error::InvalidCoefficientCount { requested, reason } => {
                write!(f, "invalid coefficient count {requested}: {reason}")
            }
            Error::InvalidSegmentCount { segments, len } => {
                write!(f, "cannot build {segments} segments over a series of length {len}")
            }
            Error::LengthMismatch { left, right } => {
                write!(f, "operands cover different lengths ({left} vs {right})")
            }
            Error::MalformedRepresentation { reason } => {
                write!(f, "malformed representation: {reason}")
            }
            Error::UnsupportedRepresentation { operation } => {
                write!(f, "representation variant does not support {operation}")
            }
            Error::UnknownMethod { name } => {
                write!(f, "no reduction method named {name:?}")
            }
            Error::InvalidThreads { value } => {
                write!(
                    f,
                    "invalid thread count {value:?}: expected a non-negative \
                     integer (0 = all hardware threads)"
                )
            }
            Error::InvalidSimd { value, reason } => {
                write!(f, "invalid SIMD level {value:?}: {reason}")
            }
            Error::CorruptIndex { reason } => {
                write!(f, "index integrity violation: {reason}")
            }
            Error::TooManyRecords { what, count, limit } => {
                write!(f, "too many {what} for the codec: {count} exceeds the limit {limit}")
            }
            Error::Io { path, message } => {
                write!(f, "i/o error on {path:?}: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidWindow { start: 3, end: 2, len: 10 };
        assert!(e.to_string().contains("[3, 2)"));
        let e = Error::InvalidCoefficientCount { requested: 7, reason: "not a multiple of 3" };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains("multiple of 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
