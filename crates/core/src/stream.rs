//! Streaming SAPLA — an online variant built from the same `O(1)`
//! machinery (an extension; the paper reduces stored series offline but
//! its Eq. 2 increment and merge bounds make the online form natural).
//!
//! [`StreamingSapla`] consumes points one at a time and maintains an
//! adaptive piecewise-linear sketch of everything seen so far:
//!
//! * each new point extends the active segment via [`SegStats::push_right`]
//!   (the paper's Eq. 2) in `O(1)`;
//! * when the point's *Increment Area* (Definition 4.1) exceeds an
//!   adaptive threshold — the running mean area times
//!   [`StreamingSapla::sensitivity`] — a new segment starts;
//! * whenever more than `2·N` segments accumulate, adjacent pairs with the
//!   smallest *Reconstruction Area* (Definition 4.2) are merged back to
//!   `N`, exactly like stage 2 of the offline algorithm.
//!
//! Amortised cost per point is `O(1)` fitting work plus occasional
//! `O(N log N)` heap-driven merge sweeps; memory is `O(N)` — the sketch
//! never stores the raw stream.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::area::{increment_area, reconstruction_area};
use crate::equations::eq3_eq4_merge;
use crate::error::{Error, Result};
use crate::fit::SegStats;
use crate::ordf64::OrdF64;
use crate::repr::{LinearSegment, PiecewiseLinear};

/// One closed segment of the sketch: sufficient statistics plus its
/// global start offset.
#[derive(Debug, Clone, Copy)]
struct StreamSeg {
    start: usize,
    stats: SegStats,
}

impl StreamSeg {
    fn fit(&self) -> crate::fit::LineFit {
        self.stats.fit()
    }
}

/// Reconstruction area of merging the adjacent pair `(i, i+1)`.
fn pair_area(segs: &[StreamSeg], i: usize) -> f64 {
    let l = segs[i].fit();
    let r = segs[i + 1].fit();
    let merged = eq3_eq4_merge(&l, &r);
    reconstruction_area(&l, &r, &merged)
}

/// Reusable merge-sweep state: the same lazy-invalidation pair heap the
/// offline split & merge kernel uses (generation stamps per slot, stale
/// entries dropped on pop). Selection is identical to the full rescan it
/// replaced — `(area, start)` min-keys reproduce the scan's
/// first-strict-minimum tie-break — but each sweep merge costs
/// `O(log N)` plus two requeues instead of an `O(N)` rescan.
#[derive(Debug, Clone, Default)]
struct SweepScratch {
    gens: Vec<u64>,
    next_gen: u64,
    heap: BinaryHeap<Reverse<(OrdF64, usize, u64, u64)>>,
}

impl SweepScratch {
    fn stamp(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }

    fn reset(&mut self, segs: &[StreamSeg]) {
        self.heap.clear();
        self.gens.clear();
        for _ in 0..segs.len() {
            let g = self.stamp();
            self.gens.push(g);
        }
        for i in 0..segs.len() {
            self.push_pair(segs, i);
        }
    }

    fn push_pair(&mut self, segs: &[StreamSeg], i: usize) {
        if i + 1 >= segs.len() {
            return;
        }
        let area = pair_area(segs, i);
        self.heap.push(Reverse((OrdF64::new(area), segs[i].start, self.gens[i], self.gens[i + 1])));
    }

    /// First index minimising the pair area, by pop-until-valid.
    fn query(&mut self, segs: &[StreamSeg]) -> Option<usize> {
        while let Some(&Reverse((_, start, gl, gr))) = self.heap.peek() {
            if let Ok(i) = segs.binary_search_by(|s| s.start.cmp(&start)) {
                if i + 1 < segs.len() && self.gens[i] == gl && self.gens[i + 1] == gr {
                    return Some(i);
                }
            }
            self.heap.pop();
        }
        None
    }
}

/// Merge closed segments down to `target`, cheapest reconstruction-area
/// pairs first (stage-2 machinery, heap-driven).
fn sweep_to_target(sweep: &mut SweepScratch, segs: &mut Vec<StreamSeg>, target: usize) {
    sweep.reset(segs);
    while segs.len() > target {
        // `len > 1` here, so a mergeable pair exists; the `else` arm is
        // unreachable but keeps the loop panic-free.
        let Some(i) = sweep.query(segs) else { break };
        let merged_stats = segs[i].stats.merge_right(&segs[i + 1].stats);
        segs[i].stats = merged_stats;
        segs.remove(i + 1);
        let g = sweep.stamp();
        sweep.gens[i] = g;
        sweep.gens.remove(i + 1);
        if i > 0 {
            sweep.push_pair(segs, i - 1);
        }
        sweep.push_pair(segs, i);
    }
}

/// An online SAPLA sketch over an unbounded stream.
///
/// ```
/// use sapla_core::stream::StreamingSapla;
///
/// let mut sketch = StreamingSapla::new(4);
/// for t in 0..1000 {
///     sketch.push((t as f64 * 0.01).sin() * 5.0);
/// }
/// let repr = sketch.representation().unwrap();
/// assert!(repr.num_segments() <= 8);
/// assert_eq!(repr.series_len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingSapla {
    target: usize,
    sensitivity: f64,
    segs: Vec<StreamSeg>,
    /// The segment currently absorbing points.
    active: Option<StreamSeg>,
    /// Running mean of observed increment areas (the adaptive threshold).
    area_sum: f64,
    area_count: u64,
    len: usize,
    /// Reusable merge-sweep heap state (allocation-free in steady state).
    sweep: SweepScratch,
}

impl StreamingSapla {
    /// A sketch targeting `n_segments` segments (hard cap `2·n_segments`
    /// before a merge sweep runs).
    pub fn new(n_segments: usize) -> StreamingSapla {
        Self::with_sensitivity(n_segments, 4.0)
    }

    /// Control the cut threshold: a new segment starts when a point's
    /// increment area exceeds `sensitivity ×` the running mean area.
    /// Lower values cut more eagerly (more, shorter segments between
    /// merge sweeps).
    pub fn with_sensitivity(n_segments: usize, sensitivity: f64) -> StreamingSapla {
        StreamingSapla {
            target: n_segments.max(1),
            sensitivity: sensitivity.max(1.0),
            segs: Vec::new(),
            active: None,
            area_sum: 0.0,
            area_count: 0,
            len: 0,
            sweep: SweepScratch::default(),
        }
    }

    /// The configured segment target `N`.
    pub fn target_segments(&self) -> usize {
        self.target
    }

    /// The configured cut sensitivity.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Points consumed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` before the first point arrives.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Consume one point.
    pub fn push(&mut self, value: f64) {
        self.len += 1;
        let Some(active) = self.active.as_mut() else {
            self.active = Some(StreamSeg { start: self.len - 1, stats: SegStats::single(value) });
            return;
        };
        if active.stats.len < 2 {
            active.stats = active.stats.push_right(value);
            return;
        }
        let old_fit = active.stats.fit();
        let new_stats = active.stats.push_right(value);
        let area = increment_area(&old_fit, &new_stats.fit());

        let mean = if self.area_count == 0 {
            f64::INFINITY
        } else {
            self.area_sum / self.area_count as f64
        };
        self.area_sum += area;
        self.area_count += 1;

        if area > self.sensitivity * mean && self.area_count > 4 {
            // Close the active segment and start fresh at this point.
            let closed = *active;
            self.segs.push(closed);
            self.active = Some(StreamSeg { start: self.len - 1, stats: SegStats::single(value) });
            if self.segs.len() > 2 * self.target {
                self.merge_sweep();
            }
        } else {
            active.stats = new_stats;
        }
    }

    /// Consume a batch of points.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.push(v);
        }
    }

    /// Merge closed segments down to the target count, cheapest
    /// reconstruction-area pairs first (stage-2 machinery).
    fn merge_sweep(&mut self) {
        sweep_to_target(&mut self.sweep, &mut self.segs, self.target);
    }

    /// The current sketch as a representation covering every point seen.
    ///
    /// # Errors
    ///
    /// [`Error::EmptySeries`] before the first point.
    pub fn representation(&self) -> Result<PiecewiseLinear> {
        if self.len == 0 {
            return Err(Error::EmptySeries);
        }
        let mut segs: Vec<LinearSegment> = Vec::with_capacity(self.segs.len() + 1);
        for s in self.segs.iter().chain(self.active.as_ref()) {
            let fit = s.fit();
            segs.push(LinearSegment { a: fit.a, b: fit.b, r: s.start + s.stats.len - 1 });
        }
        PiecewiseLinear::new(segs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    #[test]
    fn empty_and_single_point() {
        let mut s = StreamingSapla::new(4);
        assert!(s.is_empty());
        assert!(s.representation().is_err());
        s.push(3.0);
        let rep = s.representation().unwrap();
        assert_eq!(rep.series_len(), 1);
        assert_eq!(rep.reconstruct().values(), &[3.0]);
    }

    #[test]
    fn covers_stream_contiguously() {
        let mut s = StreamingSapla::new(5);
        for t in 0..500 {
            s.push(((t as f64) * 0.07).sin() * 3.0 + ((t / 100) as f64) * 2.0);
        }
        let rep = s.representation().unwrap();
        assert_eq!(rep.series_len(), 500);
        assert!(rep.num_segments() <= 2 * 5 + 1);
        // Endpoints strictly increase by construction (PiecewiseLinear::new
        // validated) — reconstruct to double-check coverage.
        assert_eq!(rep.reconstruct().len(), 500);
    }

    #[test]
    fn piecewise_linear_stream_is_sketched_exactly() {
        // Three long linear regimes → the sketch should track them with
        // near-zero deviation.
        let mut values = Vec::new();
        for t in 0..120 {
            values.push(0.5 * t as f64);
        }
        for t in 0..120 {
            values.push(60.0 - 0.8 * t as f64);
        }
        for t in 0..120 {
            values.push(-36.0 + 0.2 * t as f64);
        }
        let mut s = StreamingSapla::new(3);
        s.extend(values.iter().copied());
        let rep = s.representation().unwrap();
        let ts = TimeSeries::new(values).unwrap();
        let dev = rep.max_deviation(&ts).unwrap();
        assert!(dev < 1.0, "streaming sketch deviation {dev}");
    }

    #[test]
    fn segment_budget_is_respected_forever() {
        let mut s = StreamingSapla::new(4);
        for t in 0..5000 {
            // Adversarial: frequent regime changes.
            let v = if (t / 37) % 2 == 0 { (t % 37) as f64 } else { -((t % 37) as f64) };
            s.push(v);
            assert!(s.segs.len() <= 2 * 4 + 1, "unbounded segment growth at t={t}");
        }
        assert_eq!(s.len(), 5000);
        let rep = s.representation().unwrap();
        assert!(rep.num_segments() <= 9);
    }

    #[test]
    fn matches_offline_quality_ballpark() {
        // The online sketch cannot beat offline SAPLA, but it must stay
        // within a small factor on smooth data.
        let values: Vec<f64> = (0..600).map(|t| (t as f64 * 0.02).sin() * 10.0).collect();
        let ts = TimeSeries::new(values.clone()).unwrap();
        let offline = crate::sapla::Sapla::with_segments(6).reduce(&ts).unwrap();
        let mut s = StreamingSapla::new(6);
        s.extend(values);
        let online = s.representation().unwrap();
        let off_dev = offline.max_deviation(&ts).unwrap();
        let on_dev = online.max_deviation(&ts).unwrap();
        assert!(on_dev <= (off_dev * 4.0).max(1.0), "online {on_dev} vs offline {off_dev}");
    }

    /// The scan-driven sweep the heap version replaced: full rescan of
    /// every adjacent pair per merge, first strict minimum wins.
    fn naive_scan_sweep(segs: &mut Vec<StreamSeg>, target: usize) {
        while segs.len() > target {
            let mut best = (f64::INFINITY, 0usize);
            for i in 0..segs.len() - 1 {
                let area = pair_area(segs, i);
                if area < best.0 {
                    best = (area, i);
                }
            }
            let i = best.1;
            let merged_stats = segs[i].stats.merge_right(&segs[i + 1].stats);
            segs[i].stats = merged_stats;
            segs.remove(i + 1);
        }
    }

    #[test]
    fn heap_sweep_matches_scan_sweep_bitwise() {
        // Build closed segments of irregular lengths over a wiggly series,
        // then sweep the same state both ways and compare every field
        // bitwise (including a second run on the reused scratch).
        let lens = [9usize, 17, 5, 23, 11, 8, 31, 6, 14, 20, 12, 25, 19];
        let mut sweep = SweepScratch::default();
        for target in [1usize, 3, 4, 7, 12] {
            let mut segs = Vec::new();
            let mut t = 0usize;
            for &l in &lens {
                let mut stats = SegStats::single((t as f64 * 0.11).sin() * 7.0);
                for u in 1..l {
                    let x = (t + u) as f64;
                    stats = stats.push_right((x * 0.11).sin() * 7.0 + (x * 0.031).cos() * 3.0);
                }
                segs.push(StreamSeg { start: t, stats });
                t += l;
            }
            let mut expect = segs.clone();
            naive_scan_sweep(&mut expect, target);
            sweep_to_target(&mut sweep, &mut segs, target);
            assert_eq!(segs.len(), expect.len());
            for (a, b) in segs.iter().zip(&expect) {
                assert_eq!(a.start, b.start);
                assert_eq!(a.stats.len, b.stats.len);
                assert_eq!(a.stats.sum_c.to_bits(), b.stats.sum_c.to_bits());
                assert_eq!(a.stats.sum_uc.to_bits(), b.stats.sum_uc.to_bits());
            }
        }
    }

    #[test]
    fn sensitivity_controls_cut_rate() {
        let values: Vec<f64> = (0..800)
            .map(|t| (t as f64 * 0.05).sin() * 4.0 + 0.3 * ((t * 7919) % 13) as f64)
            .collect();
        let mut eager = StreamingSapla::with_sensitivity(6, 1.0);
        let mut lazy = StreamingSapla::with_sensitivity(6, 50.0);
        eager.extend(values.iter().copied());
        lazy.extend(values.iter().copied());
        // The lazy sketch cuts less, so it carries fewer closed segments.
        assert!(lazy.segs.len() <= eager.segs.len() + lazy.target);
    }
}
