//! Stage 1 — Initialization (Algorithm 4.2).
//!
//! A single left-to-right scan grows the current segment one point at a
//! time with the `O(1)` increment of Eq. (2). Each increment's
//! *Increment Area* (Definition 4.1) measures how badly the new point fits
//! the current trend; when it exceeds the `(N−1)`-th largest area seen so
//! far (the *increment threshold*, maintained in the priority queue `η`),
//! the segment is closed and a fresh two-point segment begins. The result
//! has roughly `N` segments — the split & merge iteration then makes the
//! count exact.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::area::increment_area;
use crate::bounds::beta_increment;
use crate::fit::SegStats;
use crate::ordf64::OrdF64;
use crate::sapla::BoundMode;
use crate::work::{Ctx, Seg};

/// Run the initialization scan, producing a contiguous segmentation of
/// `ctx.values` with (usually) at least `n_target` segments.
/// (Test-only convenience; the reduce path uses [`initialize_into`].)
#[cfg(test)]
pub(crate) fn initialize(ctx: &Ctx<'_>, n_target: usize) -> Vec<Seg> {
    let mut segs = Vec::new();
    let mut eta = BinaryHeap::new();
    initialize_into(ctx, n_target, &mut segs, &mut eta);
    segs
}

/// [`initialize`] writing into caller buffers: `segs` receives the
/// segmentation, `eta` is the threshold heap `η`. Both are cleared first,
/// so a reused scratch produces exactly what a fresh one would.
pub(crate) fn initialize_into(
    ctx: &Ctx<'_>,
    n_target: usize,
    segs: &mut Vec<Seg>,
    eta: &mut BinaryHeap<Reverse<OrdF64>>,
) {
    let values = ctx.values;
    let n = values.len();
    debug_assert!(n_target >= 1);
    segs.clear();
    eta.clear();

    if n <= 2 {
        segs.push(ctx.make_seg(0, n));
        return;
    }

    // η keeps the N−1 largest increment areas; its minimum is the
    // increment threshold max(ε(Č', Č^e))_{N−1}.
    let eta_cap = n_target.saturating_sub(1);

    // Current segment state: starts with two points (l = 2), as in
    // Algorithm 4.2 line 1: ĉ = ⟨c_1 − c_0, c_0, 1⟩.
    let mut start = 0usize;
    let mut stats = SegStats::single(values[0]).push_right(values[1]);
    let mut fit = stats.fit();
    let mut max_d = 0.0f64;

    let mut t = 2usize;
    while t < n {
        let c_new = values[t];
        let new_stats = stats.push_right(c_new);
        let new_fit = new_stats.fit();
        let area = increment_area(&fit, &new_fit);

        // A cut starts a fresh 2-point segment at t, so it needs two
        // remaining points.
        let can_cut = eta_cap > 0 && t + 2 <= n;
        let cut = if !can_cut {
            false
        } else if eta.len() < eta_cap {
            eta.push(Reverse(OrdF64::new(area)));
            true
        } else if area > eta.peek().map(|Reverse(m)| m.get()).unwrap_or(f64::INFINITY) {
            eta.pop();
            eta.push(Reverse(OrdF64::new(area)));
            true
        } else {
            false
        };

        if cut {
            segs.push(finalize(ctx, start, t, fit, max_d));
            start = t;
            stats = SegStats::single(values[t]).push_right(values[t + 1]);
            fit = stats.fit();
            max_d = 0.0;
            t += 2;
        } else {
            // Absorb the point; fold its endpoint differences into the
            // running max_d used by the initialization β (Section 4.1.2).
            let _ = beta_increment(values[start], values[t - 1], c_new, &fit, &new_fit, &mut max_d);
            stats = new_stats;
            fit = new_fit;
            t += 1;
        }
    }
    segs.push(finalize(ctx, start, n, fit, max_d));
    crate::work::assert_tiling(segs, n);
}

fn finalize(ctx: &Ctx<'_>, start: usize, end: usize, fit: crate::fit::LineFit, max_d: f64) -> Seg {
    let beta = match ctx.mode {
        BoundMode::Paper => max_d * (end - start - 1) as f64,
        BoundMode::Exact => crate::bounds::exact_beta(&ctx.values[start..end], &fit),
    };
    Seg { start, end, fit, beta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::Ctx;

    /// The paper's Figure 1 / Figure 5 worked example.
    const FIG1: [f64; 20] = [
        7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0,
        9.0, 10.0, 10.0,
    ];

    #[test]
    fn covers_series_contiguously() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let segs = initialize(&ctx, 4);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, FIG1.len());
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn produces_at_least_target_segments_on_fig1() {
        // "In general cases, we could get at least N segments after
        // initialization" — the paper's example yields 6 for N = 4.
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let segs = initialize(&ctx, 4);
        assert!(segs.len() >= 4, "got {} segments", segs.len());
    }

    #[test]
    fn single_target_yields_single_segment() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let segs = initialize(&ctx, 1);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].start, segs[0].end), (0, FIG1.len()));
    }

    #[test]
    fn straight_line_never_cuts_beyond_forced_segments() {
        // On an exact line every increment area is 0; only the N−1 "free"
        // cuts from filling η occur.
        let v: Vec<f64> = (0..40).map(|t| 0.5 * t as f64 + 1.0).collect();
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let segs = initialize(&ctx, 5);
        assert!(segs.len() <= 5);
        for s in &segs {
            assert!(s.fit.max_deviation(&v[s.start..s.end]) < 1e-9);
        }
    }

    #[test]
    fn handles_tiny_series() {
        let v = [1.0, 2.0];
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let segs = initialize(&ctx, 3);
        assert_eq!(segs.len(), 1);
        let v = [1.0];
        let ctx = Ctx::new(&v, BoundMode::Paper);
        assert_eq!(initialize(&ctx, 2).len(), 1);
    }

    #[test]
    fn cuts_land_near_regime_changes() {
        // Step function: ...0,0,0,10,10,10... — the big increment area is
        // at the jump, so some segment boundary must fall within ±2 of it.
        let mut v = vec![0.0; 16];
        v.extend(vec![10.0; 16]);
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let segs = initialize(&ctx, 4);
        let boundaries: Vec<usize> = segs.iter().map(|s| s.end).collect();
        assert!(
            boundaries.iter().any(|&b| (b as isize - 16).abs() <= 2),
            "boundaries {boundaries:?} miss the jump at 16"
        );
    }
}
