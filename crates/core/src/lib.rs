//! # sapla-core
//!
//! Core library for **SAPLA** (Self-Adaptive Piecewise Linear Approximation),
//! the adaptive-length time-series dimensionality reduction method of
//! Xue, Yu and Wang, *"An Indexable Time Series Dimensionality Reduction
//! Method for Maximum Deviation Reduction and Similarity Search"*, EDBT 2022.
//!
//! The crate provides:
//!
//! * [`TimeSeries`] — an owned, immutable sequence of `f64` samples with
//!   z-normalisation and prefix sums for `O(1)` window statistics.
//! * [`fit`] — exact least-squares line fitting of any window in `O(1)`.
//! * [`repr`] — the reduced representations shared by SAPLA and the
//!   baseline methods: adaptive piecewise-linear ([`PiecewiseLinear`]),
//!   piecewise-constant ([`PiecewiseConstant`]), polynomial-coefficient and
//!   symbolic forms, each with reconstruction and max-deviation evaluation.
//! * [`equations`] — the paper's closed-form `O(1)` coefficient updates
//!   (Eq. 1–11), property-tested against the prefix-sum fits.
//! * [`area`] — the Increment Area (Definition 4.1) and Reconstruction Area
//!   (Definition 4.2) used to prune redundant computation.
//! * [`bounds`] — the `β` segment upper bounds of Sections 4.1.2–4.4.1.
//! * [`sapla`] — the three-stage SAPLA driver: [`sapla::Sapla`].
//!
//! ## Quick example
//!
//! ```
//! use sapla_core::{TimeSeries, sapla::Sapla};
//!
//! // The worked example from Figure 1 of the paper (n = 20, M = 12).
//! let ts = TimeSeries::new(vec![
//!     7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0,
//!     4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0, 9.0, 10.0, 10.0,
//! ]).unwrap();
//! let repr = Sapla::with_coefficients(12).unwrap().reduce(&ts).unwrap();
//! assert_eq!(repr.num_segments(), 4); // N = M / 3
//! let dev = repr.max_deviation(&ts).unwrap();
//! assert!(dev < 12.0, "max deviation {dev} should beat APCA/PLA (~18-19)");
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod area;
pub mod bounds;
pub mod codec;
pub mod equations;
pub mod error;
pub mod fit;
pub mod metrics;
pub mod ordf64;
pub mod repr;
pub mod sapla;
pub mod series;
pub mod simd;
pub mod stream;

mod endpoint_move;
mod init;
mod split_merge;
mod work;

/// The pre-heap reference kernel, retained to pin the optimised kernel's
/// bit-identity in property tests.
#[cfg(test)]
mod naive;

#[cfg(feature = "strict-invariants")]
mod strict;

pub use bytes::Bytes;
pub use error::{Error, Result};
pub use fit::{LineFit, SegStats};
pub use ordf64::OrdF64;
pub use repr::{
    ConstantSegment, LinearSegment, PiecewiseConstant, PiecewiseLinear, PolyCoeffs, Representation,
    SymbolicWord,
};
pub use series::{PrefixSums, TimeSeries};
pub use simd::SimdLevel;
