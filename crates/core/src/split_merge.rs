//! Stage 2 — Split & Merge iteration (Algorithm 4.3).
//!
//! First the segment count is driven to exactly `N`: while too many
//! segments exist, the adjacent pair with the smallest *Reconstruction
//! Area* (Definition 4.2) is merged; while too few exist, the segment with
//! the largest upper bound `β_i` is split at the point maximising the
//! reconstruction area (Section 4.3.2). Then a refinement loop tries
//! paired split+merge / merge+split moves and keeps them while the sum
//! upper bound `β` strictly decreases.
//!
//! ## Heap-driven selection
//!
//! Both "best pair to merge" and "best segment to split" are served by
//! lazy-invalidation binary heaps (the paper's priority queues `ω^m` and
//! `ω^s`) instead of full rescans: every slot carries a generation stamp
//! that is bumped whenever the slot's segment changes, and heap entries
//! record the stamps they were computed against. A popped entry whose
//! stamps no longer match the live slots is stale and is dropped; the
//! first matching entry is the answer. Candidate evaluation in the
//! refinement phase mutates the one live buffer and undoes the mutation
//! (restoring segments *and* slot stamps bitwise), so no `Vec<Seg>` clone
//! is ever taken and steady-state operation performs no heap allocation.
//!
//! Selection is bit-identical to the scans it replaced: merge entries are
//! keyed `(area, left start)` in a min-heap, so equal areas resolve to the
//! smallest index exactly like the first-strict-minimum scan; split
//! entries are keyed `(β_i, start)` in a max-heap, so equal bounds resolve
//! to the largest index exactly like `max_by`'s last-maximum semantics.
//! (Segment starts are unique and index-ordered in a tiling.)

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::area::reconstruction_area;
use crate::bounds::{beta_merge, beta_split_left, beta_split_right};
use crate::fit::LineFit;
use crate::ordf64::OrdF64;
use crate::sapla::BoundMode;
use crate::work::{total_beta, Ctx, Seg};

/// Reusable split & merge working state: the lazy selection heaps, the
/// per-slot generation stamps and the split-point memo. Reset at every
/// [`split_merge_with`] call, so reuse never changes results; buffers
/// keep their capacity across calls.
#[derive(Debug, Default)]
pub(crate) struct SplitMergeScratch {
    /// Per-slot generation stamps, index-aligned with the segment buffer.
    gens: Vec<u64>,
    /// Monotone stamp source. Never rewound: undo restores the *slot*
    /// stamps it saved, so entries pushed against since-undone temporary
    /// state can never validate again.
    next_gen: u64,
    /// Lazy min-heap of merge candidates `(area, left start, stamps)`.
    merge_heap: BinaryHeap<Reverse<(OrdF64, usize, u64, u64)>>,
    /// Lazy max-heap of split candidates `(β_i, start, stamp)`.
    split_heap: BinaryHeap<(OrdF64, usize, u64)>,
    /// Per-slot split-point memo: the exact segment a cut was computed
    /// for, and that cut. Validated bitwise, so a hit replays what
    /// recomputation would produce.
    split_memo: Vec<Option<(Seg, usize)>>,
    /// How many times a heap was compacted (see
    /// [`SplitMergeScratch::maybe_rebuild`]); mirrored into the
    /// `sapla.refine.heap_rebuilds` counter.
    rebuilds: u64,
}

/// Rebuild threshold (see [`SplitMergeScratch::maybe_rebuild`]): a heap
/// at most this many times larger than its live-entry bound is left to
/// lazy invalidation; past it, stale entries are compacted away.
const REBUILD_FACTOR: usize = 4;
/// Never rebuild below this size — small heaps pop stale entries cheaply.
const REBUILD_MIN: usize = 64;

/// Undo record for one in-place merge.
struct MergeUndo {
    left: Seg,
    right: Seg,
    left_gen: u64,
    right_gen: u64,
    left_memo: Option<(Seg, usize)>,
    right_memo: Option<(Seg, usize)>,
}

/// Undo record for one in-place split.
struct SplitUndo {
    orig: Seg,
    gen: u64,
    memo: Option<(Seg, usize)>,
}

/// The two refinement moves of Algorithm 4.3 lines 12–27. Replaying a
/// plan re-runs the same heap queries that probed it; since undo restored
/// the exact pre-probe state, the replay applies the identical moves.
#[derive(Debug, Clone, Copy)]
enum Plan {
    SplitThenMerge,
    MergeThenSplit,
}

impl SplitMergeScratch {
    fn stamp(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }

    /// Restart for a fresh segmentation: stamp every slot and queue every
    /// candidate once.
    fn reset(&mut self, ctx: &Ctx<'_>, segs: &[Seg]) {
        self.merge_heap.clear();
        self.split_heap.clear();
        self.gens.clear();
        self.split_memo.clear();
        self.split_memo.resize(segs.len(), None);
        for _ in 0..segs.len() {
            let g = self.stamp();
            self.gens.push(g);
        }
        for i in 0..segs.len() {
            self.push_split(segs, i);
            self.push_merge(ctx, segs, i);
        }
    }

    /// Queue the merge candidate for the pair `(i, i+1)` (no-op for the
    /// last slot).
    fn push_merge(&mut self, ctx: &Ctx<'_>, segs: &[Seg], i: usize) {
        if i + 1 >= segs.len() {
            return;
        }
        sapla_obs::counter!("sapla.refine.heap_push");
        let merged = ctx.refit(segs[i].start, segs[i + 1].end);
        let area = reconstruction_area(&segs[i].fit, &segs[i + 1].fit, &merged);
        self.merge_heap.push(Reverse((
            OrdF64::new(area),
            segs[i].start,
            self.gens[i],
            self.gens[i + 1],
        )));
    }

    /// Queue the split candidate for slot `i` (no-op when too short to
    /// split — the stamp check then implies the length check forever).
    fn push_split(&mut self, segs: &[Seg], i: usize) {
        if segs[i].len() >= 2 {
            sapla_obs::counter!("sapla.refine.heap_push");
            self.split_heap.push((OrdF64::new(segs[i].beta), segs[i].start, self.gens[i]));
        }
    }

    /// The slot currently holding the segment that *starts* at `start`,
    /// if any (binary search over the tiled, start-sorted buffer).
    fn slot_of(segs: &[Seg], start: usize) -> Option<usize> {
        segs.binary_search_by(|s| s.start.cmp(&start)).ok()
    }

    /// Compact both heaps once they are dominated by stale entries.
    ///
    /// At most `segs.len()` entries of either heap can be live (one per
    /// slot — every stamp bump strands the slot's older entries), so a
    /// heap beyond `REBUILD_FACTOR`× that bound is ≥ 3/4 stale and every
    /// further probe pays the stale-pop tax (the PR4 profile measured
    /// 92 565 stale pops of 227 424 pushes). One `retain` pass drops
    /// exactly the entries a pop would have discarded — queries are
    /// bit-identical with rebuilds on or off, which
    /// `rebuild_drops_only_stale_entries` pins against the reference
    /// scans.
    // audit: no_alloc — `retain` compacts in place.
    fn maybe_rebuild(&mut self, segs: &[Seg]) {
        let cap = REBUILD_MIN.max(REBUILD_FACTOR * segs.len());
        let gens = &self.gens;
        if self.merge_heap.len() >= cap {
            self.merge_heap.retain(|&Reverse((_, start, gl, gr))| {
                Self::slot_of(segs, start)
                    .is_some_and(|i| i + 1 < segs.len() && gens[i] == gl && gens[i + 1] == gr)
            });
            self.rebuilds += 1;
            sapla_obs::counter!("sapla.refine.heap_rebuilds");
        }
        if self.split_heap.len() >= cap {
            self.split_heap
                .retain(|&(_, start, g)| Self::slot_of(segs, start).is_some_and(|i| gens[i] == g));
            self.rebuilds += 1;
            sapla_obs::counter!("sapla.refine.heap_rebuilds");
        }
    }

    /// First index minimising the pair reconstruction area, or `None`
    /// with fewer than two segments. Stale entries are popped and
    /// dropped; the winning entry stays queued (applying the merge will
    /// bump its stamps, so it goes stale exactly when it should).
    // audit: no_alloc — hot heap-probe loop of stage 2.
    fn query_merge(&mut self, segs: &[Seg]) -> Option<usize> {
        self.maybe_rebuild(segs);
        while let Some(&Reverse((_, start, gl, gr))) = self.merge_heap.peek() {
            if let Some(i) = Self::slot_of(segs, start) {
                if i + 1 < segs.len() && self.gens[i] == gl && self.gens[i + 1] == gr {
                    return Some(i);
                }
            }
            sapla_obs::counter!("sapla.refine.heap_stale");
            self.merge_heap.pop();
        }
        None
    }

    /// Last index maximising `β_i` among splittable segments, or `None`
    /// when nothing is splittable.
    // audit: no_alloc — hot heap-probe loop of stage 2.
    fn query_split(&mut self, segs: &[Seg]) -> Option<usize> {
        self.maybe_rebuild(segs);
        while let Some(&(_, start, g)) = self.split_heap.peek() {
            if let Some(i) = Self::slot_of(segs, start) {
                if self.gens[i] == g {
                    return Some(i);
                }
            }
            sapla_obs::counter!("sapla.refine.heap_stale");
            self.split_heap.pop();
        }
        None
    }

    /// Merge `segs[i]` and `segs[i+1]` in place (the merge-operation `β`
    /// of Section 4.1.4), requeueing the changed neighbourhood.
    fn apply_merge(&mut self, ctx: &Ctx<'_>, segs: &mut Vec<Seg>, i: usize) -> MergeUndo {
        // Probe applications count too: undone work is still work (the
        // matching reversals land in `sapla.refine.undos`).
        sapla_obs::counter!("sapla.refine.merges");
        let (left, right) = (segs[i], segs[i + 1]);
        let undo = MergeUndo {
            left,
            right,
            left_gen: self.gens[i],
            right_gen: self.gens[i + 1],
            left_memo: self.split_memo[i],
            right_memo: self.split_memo[i + 1],
        };
        let fit = ctx.refit(left.start, right.end);
        let beta = merge_beta(ctx, &left, &right, &fit);
        segs[i] = Seg { start: left.start, end: right.end, fit, beta };
        segs.remove(i + 1);
        let g = self.stamp();
        self.gens[i] = g;
        self.gens.remove(i + 1);
        self.split_memo.remove(i + 1);
        self.push_split(segs, i);
        if i > 0 {
            self.push_merge(ctx, segs, i - 1);
        }
        self.push_merge(ctx, segs, i);
        undo
    }

    /// Exactly revert [`SplitMergeScratch::apply_merge`] at `i`. Valid
    /// entries for the restored neighbourhood may have been dropped as
    /// stale while the temporary state was live, so it is requeued.
    fn undo_merge(&mut self, ctx: &Ctx<'_>, segs: &mut Vec<Seg>, i: usize, u: MergeUndo) {
        sapla_obs::counter!("sapla.refine.undos");
        segs[i] = u.left;
        segs.insert(i + 1, u.right);
        self.gens[i] = u.left_gen;
        self.gens.insert(i + 1, u.right_gen);
        self.split_memo[i] = u.left_memo;
        self.split_memo.insert(i + 1, u.right_memo);
        self.push_split(segs, i);
        self.push_split(segs, i + 1);
        if i > 0 {
            self.push_merge(ctx, segs, i - 1);
        }
        self.push_merge(ctx, segs, i);
        self.push_merge(ctx, segs, i + 1);
    }

    /// `find_split_point` through the per-slot memo.
    fn split_point_memo(&mut self, ctx: &Ctx<'_>, segs: &[Seg], i: usize) -> Option<usize> {
        let seg = segs[i];
        if let Some((snap, cut)) = self.split_memo[i] {
            if snap.bits_eq(&seg) {
                sapla_obs::counter!("sapla.refine.split_memo_hits");
                return Some(cut);
            }
        }
        let cut = find_split_point(ctx, &seg)?;
        self.split_memo[i] = Some((seg, cut));
        Some(cut)
    }

    /// Split `segs[i]` at the reconstruction-area peak (Section 4.3.2),
    /// requeueing the changed neighbourhood. `None` when too short.
    fn apply_split(&mut self, ctx: &Ctx<'_>, segs: &mut Vec<Seg>, i: usize) -> Option<SplitUndo> {
        let cut = self.split_point_memo(ctx, segs, i)?;
        sapla_obs::counter!("sapla.refine.splits");
        let orig = segs[i];
        // The memo now holds (orig, cut); saving it post-update means the
        // undo restores a warm memo and the accept-path replay is free.
        let undo = SplitUndo { orig, gen: self.gens[i], memo: self.split_memo[i] };
        let (l, r) = split_at(ctx, &orig, cut);
        segs[i] = l;
        segs.insert(i + 1, r);
        let g = self.stamp();
        self.gens[i] = g;
        let g = self.stamp();
        self.gens.insert(i + 1, g);
        self.split_memo.insert(i + 1, None);
        self.push_split(segs, i);
        self.push_split(segs, i + 1);
        if i > 0 {
            self.push_merge(ctx, segs, i - 1);
        }
        self.push_merge(ctx, segs, i);
        self.push_merge(ctx, segs, i + 1);
        Some(undo)
    }

    /// Exactly revert [`SplitMergeScratch::apply_split`] at `i`.
    fn undo_split(&mut self, ctx: &Ctx<'_>, segs: &mut Vec<Seg>, i: usize, u: SplitUndo) {
        sapla_obs::counter!("sapla.refine.undos");
        segs[i] = u.orig;
        segs.remove(i + 1);
        self.gens[i] = u.gen;
        self.gens.remove(i + 1);
        self.split_memo[i] = u.memo;
        self.split_memo.remove(i + 1);
        self.push_split(segs, i);
        if i > 0 {
            self.push_merge(ctx, segs, i - 1);
        }
        self.push_merge(ctx, segs, i);
    }

    /// Candidate: split the max-β segment, then merge the best pair.
    /// Probes on the live buffer and restores it bitwise.
    fn probe_split_merge(&mut self, ctx: &Ctx<'_>, segs: &mut Vec<Seg>) -> Option<(Plan, f64)> {
        let i = self.query_split(segs)?;
        let su = self.apply_split(ctx, segs, i)?;
        let Some(j) = self.query_merge(segs) else {
            self.undo_split(ctx, segs, i, su);
            return None;
        };
        let mu = self.apply_merge(ctx, segs, j);
        let beta = total_beta(segs);
        self.undo_merge(ctx, segs, j, mu);
        self.undo_split(ctx, segs, i, su);
        Some((Plan::SplitThenMerge, beta))
    }

    /// Candidate: merge the best pair, then split the max-β segment.
    fn probe_merge_split(&mut self, ctx: &Ctx<'_>, segs: &mut Vec<Seg>) -> Option<(Plan, f64)> {
        let j = self.query_merge(segs)?;
        let mu = self.apply_merge(ctx, segs, j);
        let Some(i) = self.query_split(segs) else {
            self.undo_merge(ctx, segs, j, mu);
            return None;
        };
        let Some(su) = self.apply_split(ctx, segs, i) else {
            self.undo_merge(ctx, segs, j, mu);
            return None;
        };
        let beta = total_beta(segs);
        self.undo_split(ctx, segs, i, su);
        self.undo_merge(ctx, segs, j, mu);
        Some((Plan::MergeThenSplit, beta))
    }

    /// Re-run the accepted probe's moves for keeps.
    fn apply_plan(&mut self, ctx: &Ctx<'_>, segs: &mut Vec<Seg>, plan: Plan) {
        match plan {
            Plan::SplitThenMerge => {
                let i = self.query_split(segs).expect("replays the probed split");
                self.apply_split(ctx, segs, i).expect("probed split still applies");
                let j = self.query_merge(segs).expect("replays the probed merge");
                self.apply_merge(ctx, segs, j);
            }
            Plan::MergeThenSplit => {
                let j = self.query_merge(segs).expect("replays the probed merge");
                self.apply_merge(ctx, segs, j);
                let i = self.query_split(segs).expect("replays the probed split");
                self.apply_split(ctx, segs, i).expect("probed split still applies");
            }
        }
    }
}

/// Run the split & merge iteration until the segmentation has exactly
/// `n_target` segments (if possible) and paired moves stop improving `β`.
///
/// Test-only convenience wrapper building a one-shot scratch; the reduce
/// path holds a [`SplitMergeScratch`] and calls [`split_merge_with`].
#[cfg(test)]
pub(crate) fn split_merge(ctx: &Ctx<'_>, segs: &mut Vec<Seg>, n_target: usize, max_rounds: usize) {
    let mut scratch = SplitMergeScratch::default();
    split_merge_with(ctx, segs, &mut scratch, n_target, max_rounds);
}

/// [`split_merge`] against a reusable scratch.
///
/// `max_rounds` caps the refinement loop (the paper labels each segment as
/// split/merged at most once per iteration; a strict-decrease requirement
/// plus this cap guarantees termination). The running `β` across rounds is
/// carried by assignment from each accepted candidate's ordered sum —
/// delta-updating it instead would drift in ulps against the `<`
/// comparisons and break bit-identity with the reference kernel.
pub(crate) fn split_merge_with(
    ctx: &Ctx<'_>,
    segs: &mut Vec<Seg>,
    scratch: &mut SplitMergeScratch,
    n_target: usize,
    max_rounds: usize,
) {
    scratch.reset(ctx, segs);
    // Phase 1: too many segments → merge.
    while segs.len() > n_target {
        // `len > 1` here, so a mergeable pair exists; the `else` arm is
        // unreachable but keeps the loop panic-free.
        let Some(i) = scratch.query_merge(segs) else { break };
        scratch.apply_merge(ctx, segs, i);
    }
    // Phase 2: too few segments → split.
    while segs.len() < n_target {
        let Some(i) = scratch.query_split(segs) else { break };
        if scratch.apply_split(ctx, segs, i).is_none() {
            break; // nothing splittable remains
        }
    }
    crate::work::assert_tiling(segs, ctx.values.len());

    // Phase 3: refinement at constant N — try split-then-merge and
    // merge-then-split, keep the better if it reduces β (Alg. 4.3 l.12-27).
    if segs.len() != n_target || n_target < 2 {
        return;
    }
    let mut beta = total_beta(segs);
    for _ in 0..max_rounds {
        let sm = scratch.probe_split_merge(ctx, segs);
        let ms = scratch.probe_merge_split(ctx, segs);
        let best = match (sm, ms) {
            (Some(a), Some(b)) => Some(if a.1 <= b.1 { a } else { b }),
            (a, b) => a.or(b),
        };
        match best {
            Some((plan, cand_beta)) if cand_beta < beta => {
                scratch.apply_plan(ctx, segs, plan);
                beta = cand_beta;
            }
            _ => break,
        }
    }
    crate::work::assert_tiling(segs, ctx.values.len());
}

/// Index `i` minimising the reconstruction area of merging
/// `segs[i]` with `segs[i+1]` (the merge threshold `ω^m.top`). The
/// reference linear scan the merge heap replaces.
#[cfg(test)]
pub(crate) fn best_merge_index(ctx: &Ctx<'_>, segs: &[Seg]) -> Option<usize> {
    if segs.len() < 2 {
        return None;
    }
    let mut best = (f64::INFINITY, 0usize);
    for i in 0..segs.len() - 1 {
        let merged = ctx.refit(segs[i].start, segs[i + 1].end);
        let area = reconstruction_area(&segs[i].fit, &segs[i + 1].fit, &merged);
        if area < best.0 {
            best = (area, i);
        }
    }
    Some(best.1)
}

/// Index of the segment with the largest `β_i` among those long enough to
/// split (the split threshold `ω^s.top`). The reference scan the split
/// heap replaces.
#[cfg(test)]
pub(crate) fn best_split_index(segs: &[Seg]) -> Option<usize> {
    segs.iter()
        .enumerate()
        .filter(|(_, s)| s.len() >= 2)
        .max_by(|(_, a), (_, b)| a.beta.total_cmp(&b.beta))
        .map(|(i, _)| i)
}

/// Merge `segs[i]` and `segs[i+1]` in place, with the merge-operation `β`
/// of Section 4.1.4 (the reference form; the kernel merges through
/// [`SplitMergeScratch::apply_merge`]).
#[cfg(test)]
pub(crate) fn apply_merge(ctx: &Ctx<'_>, segs: &mut Vec<Seg>, i: usize) {
    let (left, right) = (segs[i], segs[i + 1]);
    let fit = ctx.refit(left.start, right.end);
    let beta = merge_beta(ctx, &left, &right, &fit);
    segs[i] = Seg { start: left.start, end: right.end, fit, beta };
    segs.remove(i + 1);
}

fn merge_beta(ctx: &Ctx<'_>, left: &Seg, right: &Seg, merged: &LineFit) -> f64 {
    sapla_obs::counter!("sapla.refine.beta_recomputed");
    match ctx.mode {
        BoundMode::Paper => {
            beta_merge(&ctx.values[left.start..right.end], &left.fit, &right.fit, merged)
        }
        BoundMode::Exact => crate::bounds::exact_beta(&ctx.values[left.start..right.end], merged),
    }
}

/// Split `segs[i]` at the reconstruction-area peak (the reference form).
/// Returns `false` when the segment is too short to split.
#[cfg(test)]
pub(crate) fn apply_split(ctx: &Ctx<'_>, segs: &mut Vec<Seg>, i: usize) -> bool {
    let seg = segs[i];
    let Some(cut) = find_split_point(ctx, &seg) else { return false };
    let (l, r) = split_at(ctx, &seg, cut);
    segs[i] = l;
    segs.insert(i + 1, r);
    true
}

/// The split point maximising the reconstruction area between the long
/// segment's line and the two candidate sub-fits. Peak finding over all
/// candidate cuts with `O(1)` work per candidate (cf. the paper's
/// `O(n − 2·Ĉ.size)` bound for this step).
fn find_split_point(ctx: &Ctx<'_>, seg: &Seg) -> Option<usize> {
    if seg.len() < 2 {
        return None;
    }
    // Prefer both halves to keep ≥ 2 points (the paper assumes l > 1);
    // fall back to length-1 halves only when the segment is that short.
    let (lo, hi) =
        if seg.len() >= 4 { (seg.start + 2, seg.end - 2) } else { (seg.start + 1, seg.end - 1) };
    let mut best: Option<(f64, usize)> = None;
    for cut in lo..=hi {
        let left = ctx.refit(seg.start, cut);
        let right = ctx.refit(cut, seg.end);
        let area = reconstruction_area(&left, &right, &seg.fit);
        if best.is_none_or(|(b, _)| area > b) {
            best = Some((area, cut));
        }
    }
    best.map(|(_, c)| c)
}

/// Build the two halves of a split with the split-operation `β` of
/// Section 4.3.1.
fn split_at(ctx: &Ctx<'_>, seg: &Seg, cut: usize) -> (Seg, Seg) {
    sapla_obs::counter!("sapla.refine.beta_recomputed", 2);
    let lf = ctx.refit(seg.start, cut);
    let rf = ctx.refit(cut, seg.end);
    let (lb, rb) = match ctx.mode {
        BoundMode::Paper => (
            beta_split_left(ctx.values[seg.start], ctx.values[cut - 1], &seg.fit, &lf),
            beta_split_right(
                ctx.values[cut],
                ctx.values[seg.end - 1],
                &seg.fit,
                &rf,
                cut - seg.start,
            ),
        ),
        BoundMode::Exact => (
            crate::bounds::exact_beta(&ctx.values[seg.start..cut], &lf),
            crate::bounds::exact_beta(&ctx.values[cut..seg.end], &rf),
        ),
    };
    (
        Seg { start: seg.start, end: cut, fit: lf, beta: lb },
        Seg { start: cut, end: seg.end, fit: rf, beta: rb },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::work::to_representation;

    const FIG1: [f64; 20] = [
        7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0,
        9.0, 10.0, 10.0,
    ];

    fn ts(v: &[f64]) -> crate::TimeSeries {
        crate::TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn reaches_exact_target_count() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        for n in 1..=8 {
            let mut segs = initialize(&ctx, n);
            split_merge(&ctx, &mut segs, n, 2 * n);
            assert_eq!(segs.len(), n, "target {n}");
        }
    }

    #[test]
    fn fig1_four_segments_beat_coarse_baselines() {
        // Paper Fig. 6: after split & merge the example reaches N = 4 with
        // max deviation ≈ 10.6 (APCA: 18.4, PLA: 19.4 at the same M).
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 8);
        let repr = to_representation(&segs);
        let dev = repr.max_deviation(&ts(&FIG1)).unwrap();
        assert!(dev < 14.0, "max deviation after split&merge: {dev}");
    }

    #[test]
    fn merging_prefers_collinear_neighbours() {
        // Two perfectly collinear halves plus a corner: the collinear pair
        // must merge first.
        let mut v: Vec<f64> = (0..8).map(|t| t as f64).collect();
        v.extend((0..8).map(|t| 7.0 - t as f64));
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let segs = vec![ctx.make_seg(0, 4), ctx.make_seg(4, 8), ctx.make_seg(8, 16)];
        let i = best_merge_index(&ctx, &segs).unwrap();
        assert_eq!(i, 0);
    }

    #[test]
    fn heap_queries_match_reference_scans() {
        // The lazy heaps must agree with the linear scans on every query,
        // including through a sequence of mutations.
        let v: Vec<f64> = (0..64).map(|t| ((t * 13 + 5) % 17) as f64 - (t as f64 * 0.2)).collect();
        for mode in [BoundMode::Paper, BoundMode::Exact] {
            let ctx = Ctx::new(&v, mode);
            let mut segs = initialize(&ctx, 9);
            let mut scratch = SplitMergeScratch::default();
            scratch.reset(&ctx, &segs);
            for round in 0..6 {
                assert_eq!(
                    scratch.query_merge(&segs),
                    best_merge_index(&ctx, &segs),
                    "merge query, round {round}"
                );
                assert_eq!(
                    scratch.query_split(&segs),
                    best_split_index(&segs),
                    "split query, round {round}"
                );
                // Mutate: alternate merges and splits to shift slots.
                if round % 2 == 0 {
                    let i = scratch.query_merge(&segs).unwrap();
                    scratch.apply_merge(&ctx, &mut segs, i);
                } else {
                    let i = scratch.query_split(&segs).unwrap();
                    scratch.apply_split(&ctx, &mut segs, i).unwrap();
                }
            }
        }
    }

    #[test]
    fn probe_restores_state_bitwise() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 0);
        let before = segs.clone();
        let mut scratch = SplitMergeScratch::default();
        scratch.reset(&ctx, &segs);
        let gens_before = scratch.gens.clone();
        scratch.probe_split_merge(&ctx, &mut segs);
        scratch.probe_merge_split(&ctx, &mut segs);
        assert_eq!(segs.len(), before.len());
        for (a, b) in segs.iter().zip(before.iter()) {
            assert!(a.bits_eq(b), "probe must restore segments bitwise");
        }
        assert_eq!(scratch.gens, gens_before, "probe must restore slot stamps");
    }

    #[test]
    fn rebuild_drops_only_stale_entries() {
        // Churn the heaps with probe pairs (each applies and undoes two
        // moves, stranding the entries those moves queued) until the
        // rebuild threshold trips, then check the queries still agree
        // with the reference scans: compaction must drop exactly what a
        // lazy pop would have dropped.
        let v: Vec<f64> = (0..128).map(|t| ((t * 7 + 3) % 23) as f64 + (t as f64 * 0.1)).collect();
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let mut segs = initialize(&ctx, 8);
        let mut scratch = SplitMergeScratch::default();
        scratch.reset(&ctx, &segs);
        let before = segs.clone();
        for _ in 0..40 {
            scratch.probe_split_merge(&ctx, &mut segs);
            scratch.probe_merge_split(&ctx, &mut segs);
        }
        assert!(scratch.rebuilds > 0, "churn must trigger a heap rebuild");
        for (a, b) in segs.iter().zip(before.iter()) {
            assert!(a.bits_eq(b), "probes must restore segments bitwise across rebuilds");
        }
        assert_eq!(scratch.query_merge(&segs), best_merge_index(&ctx, &segs));
        assert_eq!(scratch.query_split(&segs), best_split_index(&segs));
    }

    #[test]
    fn split_finds_the_corner() {
        let mut v: Vec<f64> = (0..10).map(|t| t as f64).collect();
        v.extend((0..10).map(|t| 9.0 - t as f64));
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let mut segs = vec![ctx.make_seg(0, 20)];
        assert!(apply_split(&ctx, &mut segs, 0));
        assert_eq!(segs.len(), 2);
        let cut = segs[0].end;
        assert!((cut as isize - 10).abs() <= 1, "cut at {cut}, corner at 10");
    }

    #[test]
    fn refinement_never_increases_beta() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 0); // no refinement
        let before = total_beta(&segs);
        let mut refined = segs.clone();
        split_merge(&ctx, &mut refined, 4, 8); // with refinement
        assert!(total_beta(&refined) <= before + 1e-9);
        assert_eq!(refined.len(), 4);
    }

    #[test]
    fn splits_grow_a_single_segment_to_target() {
        // Phase 2 in isolation: start from one segment, reach N by splits.
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = vec![ctx.make_seg(0, FIG1.len())];
        split_merge(&ctx, &mut segs, 5, 0);
        assert_eq!(segs.len(), 5);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, FIG1.len());
    }

    #[test]
    fn unreachable_target_stops_gracefully() {
        // 6 points cannot support 5 length-≥2 segments forever; splitting
        // stops when nothing is splittable and coverage stays intact.
        let v = [1.0, 9.0, 2.0, 8.0, 3.0, 7.0];
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let mut segs = vec![ctx.make_seg(0, 6)];
        split_merge(&ctx, &mut segs, 5, 0);
        assert!(!segs.is_empty() && segs.len() <= 5);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, 6);
    }

    #[test]
    fn exact_mode_also_terminates() {
        let ctx = Ctx::new(&FIG1, BoundMode::Exact);
        let mut segs = initialize(&ctx, 5);
        split_merge(&ctx, &mut segs, 5, 10);
        assert_eq!(segs.len(), 5);
    }
}
