//! Stage 2 — Split & Merge iteration (Algorithm 4.3).
//!
//! First the segment count is driven to exactly `N`: while too many
//! segments exist, the adjacent pair with the smallest *Reconstruction
//! Area* (Definition 4.2) is merged; while too few exist, the segment with
//! the largest upper bound `β_i` is split at the point maximising the
//! reconstruction area (Section 4.3.2). Then a refinement loop tries
//! paired split+merge / merge+split moves and keeps them while the sum
//! upper bound `β` strictly decreases.

use crate::area::reconstruction_area;
use crate::bounds::{beta_merge, beta_split_left, beta_split_right};
use crate::fit::LineFit;
use crate::sapla::BoundMode;
use crate::work::{total_beta, Ctx, Seg};

/// Run the split & merge iteration until the segmentation has exactly
/// `n_target` segments (if possible) and paired moves stop improving `β`.
///
/// `max_rounds` caps the refinement loop (the paper labels each segment as
/// split/merged at most once per iteration; a strict-decrease requirement
/// plus this cap guarantees termination).
pub(crate) fn split_merge(ctx: &Ctx<'_>, segs: &mut Vec<Seg>, n_target: usize, max_rounds: usize) {
    // Phase 1: too many segments → merge.
    while segs.len() > n_target {
        let i = best_merge_index(ctx, segs).expect("len > 1 so a pair exists");
        apply_merge(ctx, segs, i);
    }
    // Phase 2: too few segments → split.
    while segs.len() < n_target {
        let Some(i) = best_split_index(segs) else { break };
        if !apply_split(ctx, segs, i) {
            break; // nothing splittable remains
        }
    }
    crate::work::assert_tiling(segs, ctx.values.len());

    // Phase 3: refinement at constant N — try split-then-merge and
    // merge-then-split, keep the better if it reduces β (Alg. 4.3 l.12-27).
    if segs.len() != n_target || n_target < 2 {
        return;
    }
    let mut beta = total_beta(segs);
    for _ in 0..max_rounds {
        let sm = simulate_split_merge(ctx, segs);
        let ms = simulate_merge_split(ctx, segs);
        let best = match (&sm, &ms) {
            (Some(a), Some(b)) => Some(if a.1 <= b.1 { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        match best {
            Some((candidate, cand_beta)) if *cand_beta < beta => {
                *segs = candidate.clone();
                beta = *cand_beta;
            }
            _ => break,
        }
    }
    crate::work::assert_tiling(segs, ctx.values.len());
}

/// Index `i` minimising the reconstruction area of merging
/// `segs[i]` with `segs[i+1]` (the merge threshold `ω^m.top`).
pub(crate) fn best_merge_index(ctx: &Ctx<'_>, segs: &[Seg]) -> Option<usize> {
    if segs.len() < 2 {
        return None;
    }
    let mut best = (f64::INFINITY, 0usize);
    for i in 0..segs.len() - 1 {
        let merged = ctx.refit(segs[i].start, segs[i + 1].end);
        let area = reconstruction_area(&segs[i].fit, &segs[i + 1].fit, &merged);
        if area < best.0 {
            best = (area, i);
        }
    }
    Some(best.1)
}

/// Index of the segment with the largest `β_i` among those long enough to
/// split (the split threshold `ω^s.top`).
fn best_split_index(segs: &[Seg]) -> Option<usize> {
    segs.iter()
        .enumerate()
        .filter(|(_, s)| s.len() >= 2)
        .max_by(|(_, a), (_, b)| a.beta.total_cmp(&b.beta))
        .map(|(i, _)| i)
}

/// Merge `segs[i]` and `segs[i+1]` in place, with the merge-operation `β`
/// of Section 4.1.4.
pub(crate) fn apply_merge(ctx: &Ctx<'_>, segs: &mut Vec<Seg>, i: usize) {
    let (left, right) = (segs[i], segs[i + 1]);
    let fit = ctx.refit(left.start, right.end);
    let beta = merge_beta(ctx, &left, &right, &fit);
    segs[i] = Seg { start: left.start, end: right.end, fit, beta };
    segs.remove(i + 1);
}

fn merge_beta(ctx: &Ctx<'_>, left: &Seg, right: &Seg, merged: &LineFit) -> f64 {
    match ctx.mode {
        BoundMode::Paper => {
            beta_merge(&ctx.values[left.start..right.end], &left.fit, &right.fit, merged)
        }
        BoundMode::Exact => crate::bounds::exact_beta(&ctx.values[left.start..right.end], merged),
    }
}

/// Split `segs[i]` at the reconstruction-area peak (Section 4.3.2).
/// Returns `false` when the segment is too short to split.
pub(crate) fn apply_split(ctx: &Ctx<'_>, segs: &mut Vec<Seg>, i: usize) -> bool {
    let seg = segs[i];
    let Some(cut) = find_split_point(ctx, &seg) else { return false };
    let (l, r) = split_at(ctx, &seg, cut);
    segs[i] = l;
    segs.insert(i + 1, r);
    true
}

/// The split point maximising the reconstruction area between the long
/// segment's line and the two candidate sub-fits. Peak finding over all
/// candidate cuts with `O(1)` work per candidate (cf. the paper's
/// `O(n − 2·Ĉ.size)` bound for this step).
fn find_split_point(ctx: &Ctx<'_>, seg: &Seg) -> Option<usize> {
    if seg.len() < 2 {
        return None;
    }
    // Prefer both halves to keep ≥ 2 points (the paper assumes l > 1);
    // fall back to length-1 halves only when the segment is that short.
    let (lo, hi) =
        if seg.len() >= 4 { (seg.start + 2, seg.end - 2) } else { (seg.start + 1, seg.end - 1) };
    let mut best: Option<(f64, usize)> = None;
    for cut in lo..=hi {
        let left = ctx.refit(seg.start, cut);
        let right = ctx.refit(cut, seg.end);
        let area = reconstruction_area(&left, &right, &seg.fit);
        if best.is_none_or(|(b, _)| area > b) {
            best = Some((area, cut));
        }
    }
    best.map(|(_, c)| c)
}

/// Build the two halves of a split with the split-operation `β` of
/// Section 4.3.1.
fn split_at(ctx: &Ctx<'_>, seg: &Seg, cut: usize) -> (Seg, Seg) {
    let lf = ctx.refit(seg.start, cut);
    let rf = ctx.refit(cut, seg.end);
    let (lb, rb) = match ctx.mode {
        BoundMode::Paper => (
            beta_split_left(ctx.values[seg.start], ctx.values[cut - 1], &seg.fit, &lf),
            beta_split_right(
                ctx.values[cut],
                ctx.values[seg.end - 1],
                &seg.fit,
                &rf,
                cut - seg.start,
            ),
        ),
        BoundMode::Exact => (
            crate::bounds::exact_beta(&ctx.values[seg.start..cut], &lf),
            crate::bounds::exact_beta(&ctx.values[cut..seg.end], &rf),
        ),
    };
    (
        Seg { start: seg.start, end: cut, fit: lf, beta: lb },
        Seg { start: cut, end: seg.end, fit: rf, beta: rb },
    )
}

/// Candidate: split the max-β segment, then merge the best pair.
fn simulate_split_merge(ctx: &Ctx<'_>, segs: &[Seg]) -> Option<(Vec<Seg>, f64)> {
    let mut c = segs.to_vec();
    let i = best_split_index(&c)?;
    if !apply_split(ctx, &mut c, i) {
        return None;
    }
    let j = best_merge_index(ctx, &c)?;
    apply_merge(ctx, &mut c, j);
    let beta = total_beta(&c);
    Some((c, beta))
}

/// Candidate: merge the best pair, then split the max-β segment.
fn simulate_merge_split(ctx: &Ctx<'_>, segs: &[Seg]) -> Option<(Vec<Seg>, f64)> {
    let mut c = segs.to_vec();
    let j = best_merge_index(ctx, &c)?;
    apply_merge(ctx, &mut c, j);
    let i = best_split_index(&c)?;
    if !apply_split(ctx, &mut c, i) {
        return None;
    }
    let beta = total_beta(&c);
    Some((c, beta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::work::to_representation;

    const FIG1: [f64; 20] = [
        7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0,
        9.0, 10.0, 10.0,
    ];

    fn ts(v: &[f64]) -> crate::TimeSeries {
        crate::TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn reaches_exact_target_count() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        for n in 1..=8 {
            let mut segs = initialize(&ctx, n);
            split_merge(&ctx, &mut segs, n, 2 * n);
            assert_eq!(segs.len(), n, "target {n}");
        }
    }

    #[test]
    fn fig1_four_segments_beat_coarse_baselines() {
        // Paper Fig. 6: after split & merge the example reaches N = 4 with
        // max deviation ≈ 10.6 (APCA: 18.4, PLA: 19.4 at the same M).
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 8);
        let repr = to_representation(&segs);
        let dev = repr.max_deviation(&ts(&FIG1)).unwrap();
        assert!(dev < 14.0, "max deviation after split&merge: {dev}");
    }

    #[test]
    fn merging_prefers_collinear_neighbours() {
        // Two perfectly collinear halves plus a corner: the collinear pair
        // must merge first.
        let mut v: Vec<f64> = (0..8).map(|t| t as f64).collect();
        v.extend((0..8).map(|t| 7.0 - t as f64));
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let segs = vec![ctx.make_seg(0, 4), ctx.make_seg(4, 8), ctx.make_seg(8, 16)];
        let i = best_merge_index(&ctx, &segs).unwrap();
        assert_eq!(i, 0);
    }

    #[test]
    fn split_finds_the_corner() {
        let mut v: Vec<f64> = (0..10).map(|t| t as f64).collect();
        v.extend((0..10).map(|t| 9.0 - t as f64));
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let mut segs = vec![ctx.make_seg(0, 20)];
        assert!(apply_split(&ctx, &mut segs, 0));
        assert_eq!(segs.len(), 2);
        let cut = segs[0].end;
        assert!((cut as isize - 10).abs() <= 1, "cut at {cut}, corner at 10");
    }

    #[test]
    fn refinement_never_increases_beta() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 0); // no refinement
        let before = total_beta(&segs);
        let mut refined = segs.clone();
        split_merge(&ctx, &mut refined, 4, 8); // with refinement
        assert!(total_beta(&refined) <= before + 1e-9);
        assert_eq!(refined.len(), 4);
    }

    #[test]
    fn splits_grow_a_single_segment_to_target() {
        // Phase 2 in isolation: start from one segment, reach N by splits.
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = vec![ctx.make_seg(0, FIG1.len())];
        split_merge(&ctx, &mut segs, 5, 0);
        assert_eq!(segs.len(), 5);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, FIG1.len());
    }

    #[test]
    fn unreachable_target_stops_gracefully() {
        // 6 points cannot support 5 length-≥2 segments forever; splitting
        // stops when nothing is splittable and coverage stays intact.
        let v = [1.0, 9.0, 2.0, 8.0, 3.0, 7.0];
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let mut segs = vec![ctx.make_seg(0, 6)];
        split_merge(&ctx, &mut segs, 5, 0);
        assert!(!segs.is_empty() && segs.len() <= 5);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, 6);
    }

    #[test]
    fn exact_mode_also_terminates() {
        let ctx = Ctx::new(&FIG1, BoundMode::Exact);
        let mut segs = initialize(&ctx, 5);
        split_merge(&ctx, &mut segs, 5, 10);
        assert_eq!(segs.len(), 5);
    }
}
