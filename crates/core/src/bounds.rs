//! Segment upper bounds `β_i` (Definition 3.5, Sections 4.1.2, 4.1.4,
//! 4.3.1 and 4.4.1).
//!
//! `β_i` bounds a segment's max deviation `ε_i` in `O(1)` by looking only
//! at a handful of *endpoint* positions: the paper's `get_max()`
//! (Algorithm 4.1) takes the largest pairwise absolute difference among the
//! original series, the new reconstruction and the previous reconstruction
//! at those positions, and scales it by the segment length. The SAPLA
//! iterations minimise `β = Σ β_i` instead of the exact (O(l)-to-evaluate)
//! deviations.
//!
//! The bound is *conditional* (Theorems 4.2 / 4.3 list the supporting
//! conditions; the paper's conclusion names this as SAPLA's limitation).
//! [`exact_beta`] provides the unconditional alternative used by the
//! `BoundMode::Exact` ablation.

use crate::fit::LineFit;

/// Algorithm 4.1 `get_max()`: largest pairwise absolute difference among
/// three aligned value triples (original, candidate reconstruction,
/// reference reconstruction — one triple per inspected position).
pub fn get_max(triples: &[(f64, f64, f64)]) -> f64 {
    let mut m = 0.0f64;
    for &(c, q, t) in triples {
        m = m.max((c - q).abs()).max((c - t).abs()).max((q - t).abs());
    }
    m
}

/// `β_i` in initialization / endpoint movement (Sections 4.1.2, 4.4.1):
/// inspect positions `{1, l_i, l'_i}` (paper's 1-based order) of the
/// original window, the Increment Segment `Č'_i` and the Extended Segment
/// `Č^e_i`, fold in the running max `max_d`, and scale.
///
/// * `c_first`, `c_prev_last`, `c_new` — original values at the window's
///   first point, previous last point, and the newly appended point.
/// * `old_fit` — the fit before the increment (length `l_i`).
/// * `new_fit` — the fit after the increment (length `l'_i = l_i + 1`).
/// * `max_d` — running maximum of these point differences across the
///   segment's growth; updated in place.
pub fn beta_increment(
    c_first: f64,
    c_prev_last: f64,
    c_new: f64,
    old_fit: &LineFit,
    new_fit: &LineFit,
    max_d: &mut f64,
) -> f64 {
    debug_assert_eq!(new_fit.len, old_fit.len + 1);
    let l = old_fit.len;
    let m = get_max(&[
        (c_first, new_fit.b, old_fit.b),
        (c_prev_last, new_fit.value_at(l - 1), old_fit.value_at(l - 1)),
        (c_new, new_fit.value_at(l), old_fit.extended_value()),
    ]);
    *max_d = max_d.max(m);
    *max_d * (new_fit.len - 1) as f64
}

/// `β'_{i+1}` for a merge operation (Section 4.1.4): inspect positions
/// `{1, l_i, l_i + 1, l'_{i+1}}` of the original combined window, the
/// merged reconstruction `Č'_{i+1}` and the previous two-piece
/// reconstruction `Č_i + Č_{i+1}`, scaled by `l'_{i+1} − 1`.
///
/// `c` is the original combined window (only four positions are read, so
/// the call is `O(1)`).
pub fn beta_merge(c: &[f64], left: &LineFit, right: &LineFit, merged: &LineFit) -> f64 {
    debug_assert_eq!(c.len(), merged.len);
    debug_assert_eq!(merged.len, left.len + right.len);
    let li = left.len;
    let lm = merged.len;
    let m = get_max(&[
        (c[0], merged.b, left.b),
        (c[li - 1], merged.value_at(li - 1), left.value_at(li - 1)),
        (c[li], merged.value_at(li), right.b),
        (c[lm - 1], merged.value_at(lm - 1), right.value_at(right.len - 1)),
    ]);
    m * (lm - 1) as f64
}

/// `β_i` for the **left** product of a split operation (Section 4.3.1):
/// inspect positions `{1, l_i}` of the original left window, the old long
/// segment's reconstruction and the new left reconstruction, scaled by
/// `l_i − 1`.
pub fn beta_split_left(c_first: f64, c_last: f64, merged: &LineFit, left: &LineFit) -> f64 {
    let m = get_max(&[
        (c_first, merged.b, left.b),
        (c_last, merged.value_at(left.len - 1), left.value_at(left.len - 1)),
    ]);
    m * (left.len.saturating_sub(1)) as f64
}

/// `β_{i+1}` for the **right** product of a split operation
/// (Section 4.3.1). `offset` is the right window's start within the long
/// segment (the paper's order transformation `[1 − l_i, …, l'_{i+1} − l_i]`).
pub fn beta_split_right(
    c_first: f64,
    c_last: f64,
    merged: &LineFit,
    right: &LineFit,
    offset: usize,
) -> f64 {
    let m = get_max(&[
        (c_first, merged.value_at(offset), right.b),
        (c_last, merged.value_at(offset + right.len - 1), right.value_at(right.len - 1)),
    ]);
    m * (right.len.saturating_sub(1)) as f64
}

/// The unconditional alternative to `β`: the segment's **exact** max
/// deviation, scaled like the paper's bound so the two modes optimise
/// comparable objectives. `O(l)`.
pub fn exact_beta(window: &[f64], fit: &LineFit) -> f64 {
    fit.max_deviation(window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::{eq1_fit, eq2_increment, eq3_eq4_merge};

    #[test]
    fn get_max_covers_all_pairs() {
        assert_eq!(get_max(&[(0.0, 1.0, 5.0)]), 5.0);
        assert_eq!(get_max(&[(0.0, 0.0, 0.0), (2.0, -1.0, 0.5)]), 3.0);
        assert_eq!(get_max(&[]), 0.0);
    }

    #[test]
    fn beta_increment_bounds_exact_deviation_on_smooth_data() {
        // Theorem 4.2's "general case": β_i ≥ ε_i while growing a segment.
        let v: Vec<f64> = (0..12).map(|t| (t as f64 * 0.4).sin() * 3.0 + t as f64).collect();
        let mut fit = eq1_fit(&v[..2]);
        let mut max_d = 0.0f64;
        for end in 3..=v.len() {
            let new_fit = eq2_increment(&fit, v[end - 1]);
            let beta = beta_increment(v[0], v[end - 2], v[end - 1], &fit, &new_fit, &mut max_d);
            let eps = new_fit.max_deviation(&v[..end]);
            assert!(beta + 1e-9 >= eps, "end={end}: β={beta} < ε={eps}");
            fit = new_fit;
        }
    }

    #[test]
    fn beta_merge_bounds_exact_deviation() {
        let v: Vec<f64> = (0..14).map(|t| if t < 7 { t as f64 } else { 14.0 - t as f64 }).collect();
        let left = eq1_fit(&v[..7]);
        let right = eq1_fit(&v[7..]);
        let merged = eq3_eq4_merge(&left, &right);
        let beta = beta_merge(&v, &left, &right, &merged);
        let eps = merged.max_deviation(&v);
        assert!(beta >= eps, "β={beta} < ε={eps}");
    }

    #[test]
    fn beta_split_sides_are_finite_and_nonnegative() {
        let v: Vec<f64> = (0..10).map(|t| (t * t) as f64 * 0.1).collect();
        let merged = eq1_fit(&v);
        let left = eq1_fit(&v[..4]);
        let right = eq1_fit(&v[4..]);
        let bl = beta_split_left(v[0], v[3], &merged, &left);
        let br = beta_split_right(v[4], v[9], &merged, &right, 4);
        assert!(bl.is_finite() && bl >= 0.0);
        assert!(br.is_finite() && br >= 0.0);
    }

    #[test]
    fn exact_beta_dominates_exact_deviation() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0];
        let fit = eq1_fit(&v);
        assert!(exact_beta(&v, &fit) >= fit.max_deviation(&v));
    }
}
