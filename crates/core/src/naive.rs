//! The reference SAPLA refinement kernel, kept verbatim from before the
//! heap-driven rewrite.
//!
//! Selection here is by full linear rescans, candidate evaluation clones
//! the whole segment buffer, `total_beta` is recomputed from scratch, and
//! relocation in the movement pass is a linear scan — exactly the shapes
//! the optimised kernel replaced. The optimised kernel must produce
//! **bit-identical** representations to this one; the property tests at
//! the bottom of this module (plus the scratch-reuse tests) pin that.

use crate::endpoint_move::{climb, Direction};
use crate::error::{Error, Result};
use crate::init::initialize;
use crate::repr::PiecewiseLinear;
use crate::sapla::Sapla;
use crate::series::TimeSeries;
use crate::split_merge::{apply_merge, apply_split, best_merge_index, best_split_index};
use crate::work::{to_representation, total_beta, Ctx, Seg};

/// The original `Sapla::reduce` driver over the reference stages.
pub(crate) fn naive_reduce(sapla: &Sapla, series: &TimeSeries) -> Result<PiecewiseLinear> {
    let n = series.len();
    let n_segments = sapla.num_segments();
    let config = *sapla.config();
    if n < n_segments {
        return Err(Error::InvalidSegmentCount { segments: n_segments, len: n });
    }
    let target = n_segments.min((n / 2).max(1));

    let ctx = Ctx::new(series.values(), config.bound_mode);
    let mut segs = initialize(&ctx, target);
    let rounds = if config.refine_split_merge { config.max_refine_rounds } else { 0 };
    for _ in 0..config.stage_loops.max(1) {
        naive_split_merge(&ctx, &mut segs, target, rounds);
        if !config.endpoint_movement {
            break;
        }
        naive_endpoint_move(&ctx, &mut segs, config.max_move_passes);
    }
    Ok(to_representation(&segs))
}

/// Stage 2 by rescans and clone-and-compare.
pub(crate) fn naive_split_merge(
    ctx: &Ctx<'_>,
    segs: &mut Vec<Seg>,
    n_target: usize,
    max_rounds: usize,
) {
    while segs.len() > n_target {
        // `len > 1` here, so a mergeable pair exists; the `else` arm is
        // unreachable but keeps the loop panic-free.
        let Some(i) = best_merge_index(ctx, segs) else { break };
        apply_merge(ctx, segs, i);
    }
    while segs.len() < n_target {
        let Some(i) = best_split_index(segs) else { break };
        if !apply_split(ctx, segs, i) {
            break;
        }
    }
    crate::work::assert_tiling(segs, ctx.values.len());

    if segs.len() != n_target || n_target < 2 {
        return;
    }
    let mut beta = total_beta(segs);
    for _ in 0..max_rounds {
        let sm = simulate_split_merge(ctx, segs);
        let ms = simulate_merge_split(ctx, segs);
        let best = match (&sm, &ms) {
            (Some(a), Some(b)) => Some(if a.1 <= b.1 { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        match best {
            Some((candidate, cand_beta)) if *cand_beta < beta => {
                *segs = candidate.clone();
                beta = *cand_beta;
            }
            _ => break,
        }
    }
    crate::work::assert_tiling(segs, ctx.values.len());
}

/// Candidate: split the max-β segment, then merge the best pair.
fn simulate_split_merge(ctx: &Ctx<'_>, segs: &[Seg]) -> Option<(Vec<Seg>, f64)> {
    let mut c = segs.to_vec();
    let i = best_split_index(&c)?;
    if !apply_split(ctx, &mut c, i) {
        return None;
    }
    let j = best_merge_index(ctx, &c)?;
    apply_merge(ctx, &mut c, j);
    let beta = total_beta(&c);
    Some((c, beta))
}

/// Candidate: merge the best pair, then split the max-β segment.
fn simulate_merge_split(ctx: &Ctx<'_>, segs: &[Seg]) -> Option<(Vec<Seg>, f64)> {
    let mut c = segs.to_vec();
    let j = best_merge_index(ctx, &c)?;
    apply_merge(ctx, &mut c, j);
    let i = best_split_index(&c)?;
    if !apply_split(ctx, &mut c, i) {
        return None;
    }
    let beta = total_beta(&c);
    Some((c, beta))
}

/// Stage 3 by stable sorts, linear relocation and unmemoised climbs.
pub(crate) fn naive_endpoint_move(ctx: &Ctx<'_>, segs: &mut [Seg], max_passes: usize) {
    if segs.len() < 2 {
        return;
    }
    for _ in 0..max_passes {
        if !naive_one_pass(ctx, segs) {
            break;
        }
    }
    crate::work::assert_tiling(segs, ctx.values.len());
}

fn naive_one_pass(ctx: &Ctx<'_>, segs: &mut [Seg]) -> bool {
    let mut order: Vec<(f64, usize)> = segs.iter().map(|s| (s.beta, s.start)).collect();
    order.sort_by(|a, b| b.0.total_cmp(&a.0));

    let mut improved = false;
    for (_, start0) in order {
        let i = match segs.iter().position(|s| s.start <= start0 && start0 < s.end) {
            Some(i) => i,
            None => continue,
        };
        improved |= naive_try_moves(ctx, segs, i);
    }
    improved
}

fn naive_try_moves(ctx: &Ctx<'_>, segs: &mut [Seg], i: usize) -> bool {
    let current = total_beta(segs);
    let mut best: Option<(usize, Seg, Seg, f64)> = None;

    let mut consider = |pair_left: usize, cand: Option<(Seg, Seg)>| {
        if let Some((l, r)) = cand {
            let delta = l.beta + r.beta - segs[pair_left].beta - segs[pair_left + 1].beta;
            let beta = current + delta;
            if beta < best.as_ref().map_or(current, |b| b.3) - 1e-12 {
                best = Some((pair_left, l, r, beta));
            }
        }
    };

    if i + 1 < segs.len() {
        consider(i, climb(ctx, &segs[i], &segs[i + 1], Direction::Right));
        consider(i, climb(ctx, &segs[i], &segs[i + 1], Direction::Left));
    }
    if i > 0 {
        consider(i - 1, climb(ctx, &segs[i - 1], &segs[i], Direction::Right));
        consider(i - 1, climb(ctx, &segs[i - 1], &segs[i], Direction::Left));
    }

    if let Some((j, l, r, _)) = best {
        segs[j] = l;
        segs[j + 1] = r;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sapla::{BoundMode, SaplaConfig, SaplaScratch};
    use proptest::prelude::*;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    /// Bitwise representation equality: `PartialEq` on `f64` treats
    /// `-0.0 == 0.0`, so compare coefficient bits explicitly.
    fn repr_bits_eq(a: &PiecewiseLinear, b: &PiecewiseLinear) -> bool {
        a.segments().len() == b.segments().len()
            && a.segments().iter().zip(b.segments()).all(|(x, y)| {
                x.r == y.r && x.a.to_bits() == y.a.to_bits() && x.b.to_bits() == y.b.to_bits()
            })
    }

    fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-100.0f64..100.0, 2..300)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The heap-driven kernel is bit-identical to the reference
        /// kernel on random series, targets and bound modes.
        #[test]
        fn heap_kernel_matches_naive_reference(
            v in series_strategy(),
            target in 1usize..12,
            exact in 0u8..2,
        ) {
            let mode = if exact == 1 { BoundMode::Exact } else { BoundMode::Paper };
            let config = SaplaConfig { bound_mode: mode, ..Default::default() };
            let target = target.min(v.len()); // else both paths error out
            let sapla = Sapla::with_segments(target).with_config(config);
            let series = ts(v);
            let fast = sapla.reduce(&series).unwrap();
            let reference = naive_reduce(&sapla, &series).unwrap();
            prop_assert!(
                repr_bits_eq(&fast, &reference),
                "kernel diverged from reference: {:?} vs {:?}",
                fast,
                reference,
            );
        }

        /// Scratch reuse across series of varying lengths and targets is
        /// bit-identical to a fresh scratch (and hence to the reference).
        #[test]
        fn scratch_reuse_matches_fresh_scratch(
            seeds in proptest::collection::vec((2usize..280, 1usize..10, 0.01f64..0.3), 1..12),
        ) {
            let mut reused = SaplaScratch::new();
            for (len, target, freq) in seeds {
                let v: Vec<f64> = (0..len)
                    .map(|t| (t as f64 * freq).sin() * 10.0 + ((t * 31) % 7) as f64)
                    .collect();
                let series = ts(v);
                let sapla = Sapla::with_segments(target.min(len));
                let with_reused = sapla.reduce_with(&series, &mut reused).unwrap();
                let with_fresh = sapla.reduce_with(&series, &mut SaplaScratch::new()).unwrap();
                let reference = naive_reduce(&sapla, &series).unwrap();
                prop_assert!(repr_bits_eq(&with_reused, &with_fresh));
                prop_assert!(repr_bits_eq(&with_reused, &reference));
            }
        }

        /// Ablation configurations (stage switches, extra stage loops, no
        /// refinement) stay bit-identical too.
        #[test]
        fn config_variants_match_naive_reference(
            v in series_strategy(),
            target in 1usize..9,
            refine in 0u8..2,
            movement in 0u8..2,
            loops in 1usize..3,
        ) {
            let config = SaplaConfig {
                refine_split_merge: refine == 1,
                endpoint_movement: movement == 1,
                stage_loops: loops,
                ..Default::default()
            };
            let sapla = Sapla::with_segments(target.min(v.len())).with_config(config);
            let series = ts(v);
            let fast = sapla.reduce(&series).unwrap();
            let reference = naive_reduce(&sapla, &series).unwrap();
            prop_assert!(repr_bits_eq(&fast, &reference));
        }
    }

    /// Deterministic spot check on the paper's worked example, including
    /// `reduce_into` buffer reuse.
    #[test]
    fn fig1_and_reduce_into_match_reference() {
        let fig1 = vec![
            7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0,
            2.0, 9.0, 10.0, 10.0,
        ];
        let series = ts(fig1);
        let sapla = Sapla::with_segments(4);
        let reference = naive_reduce(&sapla, &series).unwrap();
        let mut scratch = SaplaScratch::new();
        let mut buf = Vec::new();
        for _ in 0..3 {
            sapla.reduce_into(&series, &mut scratch, &mut buf).unwrap();
            let got = PiecewiseLinear::new(buf.clone()).unwrap();
            assert!(repr_bits_eq(&got, &reference));
        }
    }
}
