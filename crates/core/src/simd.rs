//! Runtime-dispatched SIMD kernels (x86-64 SSE2/AVX2, AArch64 NEON).
//!
//! The workspace's hot loops were shaped for vector lanes from the start:
//! the Euclidean kernel accumulates into **four fixed lanes** combined in
//! a **fixed order** (`(l0 + l1) + (l2 + l3)`), so mapping lanes onto
//! hardware vectors changes *which registers* hold the partial sums but
//! not one floating-point operation or its order. IEEE-754 basic
//! operations (add/sub/mul/div) are correctly rounded per lane, so the
//! SSE2 (2×2 lanes), AVX2 (1×4 lanes) and NEON (2×2 lanes) kernels
//! below return results **bit-for-bit identical** to the scalar kernel —
//! including every early-abandon decision, which compares the same
//! combined partial sums against the same bound. No FMA is used
//! anywhere: fusing would skip an intermediate rounding and break the
//! bit-identity contract (and the baseline x86-64 target lowers
//! `f64::mul_add` to a libm call anyway).
//!
//! Dispatch is resolved once and cached: hardware detection by default,
//! overridable with `SAPLA_SIMD=off|sse2|avx2|neon` (validated eagerly by
//! the front-ends via [`init`], exactly like `SAPLA_THREADS`) or
//! programmatically with [`force`] (the CLI `--no-simd` flag, bench A/B
//! runs). Kernels themselves can never fail on a bad override: [`active`]
//! falls back to hardware detection if the environment value is invalid.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU8, Ordering};

use crate::error::{Error, Result};

/// Environment variable overriding SIMD dispatch: `off`, `sse2`, `avx2`
/// or `neon` (case-insensitive). Unknown values — and levels this
/// CPU/build cannot run — are rejected by [`init`] with
/// [`Error::InvalidSimd`].
pub const SIMD_ENV: &str = "SAPLA_SIMD";

/// An instruction-set level the SIMD kernels can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar fallback — always available, and the reference
    /// the vector kernels are pinned bit-identical to.
    Scalar,
    /// x86-64 SSE2 (baseline): two 2-lane `f64` vectors carry the scalar
    /// kernel's four accumulators.
    Sse2,
    /// x86-64 AVX2: one 4-lane `f64` vector carries all four lanes.
    Avx2,
    /// AArch64 NEON (baseline there): two 2-lane `f64` vectors.
    Neon,
}

impl SimdLevel {
    /// `f64` lanes per vector operation (1 for scalar).
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 | SimdLevel::Neon => 2,
            SimdLevel::Avx2 => 4,
        }
    }

    /// The name [`SimdLevel::parse`] accepts (`"off"` for scalar).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "off",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// Parse a `SAPLA_SIMD` / CLI value.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSimd`] for anything other than `off`, `sse2`,
    /// `avx2` or `neon` (case-insensitive).
    pub fn parse(value: &str) -> Result<SimdLevel> {
        let v = value.trim();
        for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2, SimdLevel::Neon] {
            if v.eq_ignore_ascii_case(level.name()) {
                return Ok(level);
            }
        }
        Err(Error::InvalidSimd {
            value: value.to_string(),
            reason: "expected off, sse2, avx2, or neon",
        })
    }

    /// Whether this build, on this CPU, can execute the level's kernels.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => true, // part of the x86-64 baseline
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            SimdLevel::Neon => true, // mandatory on AArch64
            #[allow(unreachable_patterns)] // which arms remain is arch-dependent
            _ => false,
        }
    }
}

/// Best level the current CPU supports (uncached; see [`active`]).
#[must_use]
pub fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if SimdLevel::Avx2.is_supported() {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

const UNSET: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(UNSET);

fn code(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Scalar => 0,
        SimdLevel::Sse2 => 1,
        SimdLevel::Avx2 => 2,
        SimdLevel::Neon => 3,
    }
}

fn from_code(c: u8) -> SimdLevel {
    match c {
        1 => SimdLevel::Sse2,
        2 => SimdLevel::Avx2,
        3 => SimdLevel::Neon,
        _ => SimdLevel::Scalar,
    }
}

fn resolve_env() -> Result<SimdLevel> {
    match std::env::var(SIMD_ENV) {
        Ok(v) => {
            let level = SimdLevel::parse(&v)?;
            if !level.is_supported() {
                return Err(Error::InvalidSimd {
                    value: v,
                    reason: "level is not supported by this CPU/build",
                });
            }
            Ok(level)
        }
        Err(_) => Ok(detect()),
    }
}

/// Resolve `SAPLA_SIMD` (or hardware detection) and cache the dispatch
/// level. Front-ends call this eagerly so a garbage or unsupported value
/// errors out up front, like `SAPLA_THREADS` does.
///
/// # Errors
///
/// [`Error::InvalidSimd`] on an unknown or unsupported `SAPLA_SIMD`.
pub fn init() -> Result<SimdLevel> {
    let level = resolve_env()?;
    ACTIVE.store(code(level), Ordering::Relaxed);
    Ok(level)
}

/// Force a dispatch level (`--no-simd` ⇒ `force(SimdLevel::Scalar)`;
/// bench A/B runs pin each side). Overrides the environment.
///
/// # Errors
///
/// [`Error::InvalidSimd`] when this CPU/build cannot run `level`.
pub fn force(level: SimdLevel) -> Result<()> {
    if !level.is_supported() {
        return Err(Error::InvalidSimd {
            value: level.name().to_string(),
            reason: "level is not supported by this CPU/build",
        });
    }
    ACTIVE.store(code(level), Ordering::Relaxed);
    Ok(())
}

/// The cached dispatch level, resolving it on first use. Unlike
/// [`init`], this cannot fail: an invalid `SAPLA_SIMD` value falls back
/// to hardware detection here, because distance kernels have no error
/// channel for configuration problems — front-ends reject it via
/// [`init`] before any kernel runs.
#[must_use]
pub fn active() -> SimdLevel {
    let c = ACTIVE.load(Ordering::Relaxed);
    if c != UNSET {
        return from_code(c);
    }
    let level = resolve_env().unwrap_or_else(|_| detect());
    ACTIVE.store(code(level), Ordering::Relaxed);
    level
}

/// Block length between early-abandon bound checks: cheap enough to
/// abandon early, rare enough not to disturb the vectorised inner loop.
const BLOCK: usize = 64;

/// The fixed lane-combine order every kernel uses.
#[inline]
fn combine4(acc: &[f64; 4]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Early-abandoning squared Euclidean kernel over raw slices, dispatched
/// over [`active`]: `None` as soon as a block-level partial squared sum
/// exceeds `bound_sq`, otherwise `Some` of the exact squared distance.
/// Every dispatch target is bit-identical to the scalar kernel (see the
/// module docs), so callers can ignore which one ran. Slices must have
/// equal length (callers validate; see
/// [`crate::TimeSeries::euclidean_sq_bounded`]).
#[must_use]
pub fn euclidean_sq_bounded(a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
    euclidean_sq_bounded_with(active(), a, b, bound_sq)
}

/// [`euclidean_sq_bounded`] pinned to one [`SimdLevel`] — the hook the
/// equivalence proptests use to cover every width on one machine. Levels
/// this CPU/build cannot run fall back to scalar (same results by the
/// bit-identity contract).
#[must_use]
pub fn euclidean_sq_bounded_with(
    level: SimdLevel,
    a: &[f64],
    b: &[f64],
    bound_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    sapla_obs::lane_counter!("sapla.simd.lanes", level.lanes(), 1);
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => {
            // SAFETY: SSE2 is part of the x86-64 baseline — always available.
            unsafe { x86::euclid_sse2(a, b, bound_sq) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if SimdLevel::Avx2.is_supported() => {
            // SAFETY: the guard verified AVX2 support at runtime.
            unsafe { x86::euclid_avx2(a, b, bound_sq) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            // SAFETY: NEON is mandatory on AArch64 — always available.
            unsafe { arm::euclid_neon(a, b, bound_sq) }
        }
        _ => euclid_scalar(a, b, bound_sq),
    }
}

/// The portable reference kernel: four independent accumulators break
/// the FP add latency chain, the lane-combine order is fixed, the tail
/// shorter than a lane group goes deterministically into lane 0, and the
/// bound is checked once per [`BLOCK`].
// audit: no_alloc — the refinement hot loop must stay allocation-free.
fn euclid_scalar(a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
    let mut acc = [0.0f64; 4];
    let n = a.len();
    let mut i = 0usize;
    while i < n {
        let end = (i + BLOCK).min(n);
        let lanes_end = i + (end - i) / 4 * 4;
        while i < lanes_end {
            for l in 0..4 {
                let d = a[i + l] - b[i + l];
                acc[l] += d * d;
            }
            i += 4;
        }
        // Tail shorter than a lane group: deterministic lane 0.
        while i < end {
            let d = a[i] - b[i];
            acc[0] += d * d;
            i += 1;
        }
        if combine4(&acc) > bound_sq {
            return None;
        }
    }
    Some(combine4(&acc))
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::BLOCK;
    use std::arch::x86_64::{
        __m128d, __m256d, _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd,
        _mm256_insertf128_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_setzero_pd, _mm256_sub_pd,
        _mm_add_pd, _mm_add_sd, _mm_cvtsd_f64, _mm_loadu_pd, _mm_mul_pd, _mm_set_sd,
        _mm_setzero_pd, _mm_sub_pd, _mm_unpackhi_pd,
    };

    /// `(l0 + l1) + (l2 + l3)` where `lo` holds scalar lanes 0–1 and
    /// `hi` lanes 2–3 — the scalar kernel's fixed combine order.
    ///
    /// SAFETY contract: safe despite `#[target_feature]` because its
    /// `__m128d` arguments can only be produced inside SSE2-enabled
    /// code, so every caller already runs with the feature on.
    #[target_feature(enable = "sse2")]
    fn combine_m128d(lo: __m128d, hi: __m128d) -> f64 {
        let l0 = _mm_cvtsd_f64(lo);
        let l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
        let l2 = _mm_cvtsd_f64(hi);
        let l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
        (l0 + l1) + (l2 + l3)
    }

    /// The scalar kernel with lanes 0–1 in `acc01` and 2–3 in `acc23`:
    /// per lane the operation sequence is exactly the scalar one, so
    /// every partial sum and abandon decision is bit-identical.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn euclid_sse2(a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        // SAFETY: every 2-lane load reads `p.add(j) .. p.add(j + 2)` with
        // `j + 2 ≤ lanes_end ≤ n = a.len() = b.len()` (caller contract),
        // in bounds of both slices; `_mm_loadu_pd` is alignment-free, and
        // the scalar tail reads single elements below `end ≤ n`.
        unsafe {
            let mut acc01 = _mm_setzero_pd();
            let mut acc23 = _mm_setzero_pd();
            let mut i = 0usize;
            while i < n {
                let end = (i + BLOCK).min(n);
                let lanes_end = i + (end - i) / 4 * 4;
                while i < lanes_end {
                    let d0 = _mm_sub_pd(_mm_loadu_pd(ap.add(i)), _mm_loadu_pd(bp.add(i)));
                    let d1 = _mm_sub_pd(_mm_loadu_pd(ap.add(i + 2)), _mm_loadu_pd(bp.add(i + 2)));
                    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d0, d0));
                    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d1, d1));
                    i += 4;
                }
                // Tail shorter than a lane group: deterministic lane 0.
                while i < end {
                    let d = *ap.add(i) - *bp.add(i);
                    acc01 = _mm_add_sd(acc01, _mm_set_sd(d * d));
                    i += 1;
                }
                if combine_m128d(acc01, acc23) > bound_sq {
                    return None;
                }
            }
            Some(combine_m128d(acc01, acc23))
        }
    }

    /// All four scalar lanes in one 256-bit accumulator; lane `l` sees
    /// exactly the scalar lane-`l` operation sequence.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn euclid_avx2(a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        // SAFETY: every 4-lane load reads `p.add(j) .. p.add(j + 4)` with
        // `j + 4 ≤ lanes_end ≤ n = a.len() = b.len()` (caller contract),
        // in bounds of both slices; `_mm256_loadu_pd` is alignment-free,
        // and the scalar tail reads single elements below `end ≤ n`.
        unsafe {
            let mut acc = _mm256_setzero_pd();
            let mut i = 0usize;
            while i < n {
                let end = (i + BLOCK).min(n);
                let lanes_end = i + (end - i) / 4 * 4;
                while i < lanes_end {
                    let d = _mm256_sub_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
                    i += 4;
                }
                // Tail shorter than a lane group: deterministic lane 0.
                while i < end {
                    let d = *ap.add(i) - *bp.add(i);
                    let lo = _mm_add_sd(_mm256_castpd256_pd128(acc), _mm_set_sd(d * d));
                    acc = _mm256_insertf128_pd::<0>(acc, lo);
                    i += 1;
                }
                if combine_m256d(acc) > bound_sq {
                    return None;
                }
            }
            Some(combine_m256d(acc))
        }
    }

    /// SAFETY contract: safe despite `#[target_feature]` because its
    /// `__m256d` argument can only be produced inside AVX2-enabled
    /// code, so every caller already runs with the feature on.
    #[target_feature(enable = "avx2")]
    fn combine_m256d(acc: __m256d) -> f64 {
        combine_m128d(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd::<1>(acc))
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::BLOCK;
    use std::arch::aarch64::{
        float64x2_t, vaddq_f64, vdupq_n_f64, vgetq_lane_f64, vld1q_f64, vmulq_f64, vsetq_lane_f64,
        vsubq_f64,
    };

    /// `(l0 + l1) + (l2 + l3)` — the scalar kernel's fixed combine order.
    ///
    /// SAFETY contract: safe despite `#[target_feature]` because its
    /// `float64x2_t` arguments can only be produced inside NEON-enabled
    /// code, and NEON is mandatory on AArch64 anyway.
    #[target_feature(enable = "neon")]
    fn combine(acc01: float64x2_t, acc23: float64x2_t) -> f64 {
        let l0 = vgetq_lane_f64::<0>(acc01);
        let l1 = vgetq_lane_f64::<1>(acc01);
        let l2 = vgetq_lane_f64::<0>(acc23);
        let l3 = vgetq_lane_f64::<1>(acc23);
        (l0 + l1) + (l2 + l3)
    }

    /// The scalar kernel with lanes 0–1 in `acc01` and 2–3 in `acc23`;
    /// per lane the operation sequence is exactly the scalar one.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn euclid_neon(a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        // SAFETY: every 2-lane load reads `p.add(j) .. p.add(j + 2)` with
        // `j + 2 ≤ lanes_end ≤ n = a.len() = b.len()` (caller contract),
        // in bounds of both slices; `vld1q_f64` is alignment-free, and
        // the scalar tail reads single elements below `end ≤ n`.
        unsafe {
            let mut acc01 = vdupq_n_f64(0.0);
            let mut acc23 = vdupq_n_f64(0.0);
            let mut i = 0usize;
            while i < n {
                let end = (i + BLOCK).min(n);
                let lanes_end = i + (end - i) / 4 * 4;
                while i < lanes_end {
                    let d0 = vsubq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i)));
                    let d1 = vsubq_f64(vld1q_f64(ap.add(i + 2)), vld1q_f64(bp.add(i + 2)));
                    acc01 = vaddq_f64(acc01, vmulq_f64(d0, d0));
                    acc23 = vaddq_f64(acc23, vmulq_f64(d1, d1));
                    i += 4;
                }
                // Tail shorter than a lane group: deterministic lane 0.
                while i < end {
                    let d = *ap.add(i) - *bp.add(i);
                    acc01 = vsetq_lane_f64::<0>(vgetq_lane_f64::<0>(acc01) + d * d, acc01);
                    i += 1;
                }
                if combine(acc01, acc23) > bound_sq {
                    return None;
                }
            }
            Some(combine(acc01, acc23))
        }
    }
}

/// Every level that can execute on this CPU/build — what the equivalence
/// proptests iterate to pin SIMD-vs-scalar bit-identity on one machine.
#[must_use]
pub fn supported_levels() -> Vec<SimdLevel> {
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2, SimdLevel::Neon]
        .into_iter()
        .filter(|l| l.is_supported())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_levels_case_insensitively() {
        assert_eq!(SimdLevel::parse("off").unwrap(), SimdLevel::Scalar);
        assert_eq!(SimdLevel::parse("SSE2").unwrap(), SimdLevel::Sse2);
        assert_eq!(SimdLevel::parse("Avx2").unwrap(), SimdLevel::Avx2);
        assert_eq!(SimdLevel::parse(" neon ").unwrap(), SimdLevel::Neon);
        for garbage in ["", "avx512", "2", "on", "scalar yes"] {
            let err = SimdLevel::parse(garbage).unwrap_err();
            assert!(matches!(err, Error::InvalidSimd { .. }), "{garbage:?}: {err}");
        }
    }

    #[test]
    fn detect_is_supported_and_names_round_trip() {
        let level = detect();
        assert!(level.is_supported());
        assert_eq!(SimdLevel::parse(level.name()).unwrap(), level);
        assert!(SimdLevel::Scalar.is_supported(), "scalar is always available");
        assert!(supported_levels().contains(&SimdLevel::Scalar));
        assert!(supported_levels().contains(&level));
    }

    #[test]
    fn force_and_active_round_trip() {
        // All kernels are bit-identical, so flipping the global level
        // cannot perturb concurrently running tests.
        force(SimdLevel::Scalar).unwrap();
        assert_eq!(active(), SimdLevel::Scalar);
        let best = detect();
        force(best).unwrap();
        assert_eq!(active(), best);
        #[cfg(target_arch = "x86_64")]
        assert!(force(SimdLevel::Neon).is_err(), "NEON must be rejected on x86-64");
    }

    fn series(n: usize, salt: u64) -> Vec<f64> {
        (0..n).map(|t| ((t as f64) * 0.173 + salt as f64 * 0.711).sin() * 3.0).collect()
    }

    #[test]
    fn all_supported_levels_match_scalar_bitwise() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 127, 128, 256, 1000] {
            let a = series(n, 1);
            let b = series(n, 2);
            let reference = euclid_scalar(&a, &b, f64::INFINITY);
            for level in supported_levels() {
                let got = euclidean_sq_bounded_with(level, &a, &b, f64::INFINITY);
                assert_eq!(
                    reference.map(f64::to_bits),
                    got.map(f64::to_bits),
                    "level {} at n = {n}",
                    level.name()
                );
            }
        }
    }

    #[test]
    fn abandon_decisions_match_scalar_on_every_level() {
        let a = series(300, 3);
        let b = series(300, 4);
        let full = euclid_scalar(&a, &b, f64::INFINITY).unwrap();
        // Bounds straddling block partial sums: all levels must agree
        // exactly on None vs Some (and bits when Some).
        for frac in [0.0, 0.1, 0.25, 0.5, 0.9, 0.999, 1.0, 1.001, 2.0] {
            let bound = full * frac;
            let reference = euclid_scalar(&a, &b, bound);
            for level in supported_levels() {
                let got = euclidean_sq_bounded_with(level, &a, &b, bound);
                assert_eq!(
                    reference.map(f64::to_bits),
                    got.map(f64::to_bits),
                    "level {} at bound {bound}",
                    level.name()
                );
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Tier-1 bit-identity pin: every dispatch width returns the
        /// scalar kernel's exact bits — value *and* abandon decision —
        /// on arbitrary inputs, lengths and bounds.
        #[test]
        fn simd_euclid_is_bit_identical_across_widths(
            data in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 0..200),
            frac in 0.0f64..2.0,
        ) {
            let a: Vec<f64> = data.iter().map(|&(x, _)| x).collect();
            let b: Vec<f64> = data.iter().map(|&(_, y)| y).collect();
            let full = euclid_scalar(&a, &b, f64::INFINITY).unwrap_or(0.0);
            for bound in [f64::INFINITY, full * frac] {
                let reference = euclid_scalar(&a, &b, bound);
                for level in supported_levels() {
                    let got = euclidean_sq_bounded_with(level, &a, &b, bound);
                    proptest::prop_assert_eq!(
                        reference.map(f64::to_bits),
                        got.map(f64::to_bits),
                        "level {} bound {}",
                        level.name(),
                        bound
                    );
                }
            }
        }
    }
}
