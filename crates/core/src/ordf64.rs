//! A totally ordered `f64` wrapper for use as a priority-queue / map key.

use std::cmp::Ordering;
use std::fmt;

/// An `f64` with a total order (IEEE-754 `totalOrder` semantics via
/// [`f64::total_cmp`]), usable as a key in `BTreeMap` / `BinaryHeap`.
///
/// The SAPLA iterations keep segments ordered by upper bound `β` and by
/// reconstruction area; both are floating-point quantities, so a total
/// order is required.
///
/// ```
/// use sapla_core::OrdF64;
/// let mut v = vec![OrdF64::new(3.0), OrdF64::new(-1.0), OrdF64::new(2.5)];
/// v.sort();
/// assert_eq!(v[0].get(), -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wrap a raw `f64`.
    #[inline]
    pub fn new(v: f64) -> Self {
        OrdF64(v)
    }

    /// Unwrap to the raw `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

impl From<OrdF64> for f64 {
    #[inline]
    fn from(v: OrdF64) -> Self {
        v.0
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_handles_special_values() {
        let mut v = [
            OrdF64::new(f64::NAN),
            OrdF64::new(f64::INFINITY),
            OrdF64::new(0.0),
            OrdF64::new(-0.0),
            OrdF64::new(f64::NEG_INFINITY),
        ];
        v.sort();
        assert_eq!(v[0].get(), f64::NEG_INFINITY);
        assert!(v[4].get().is_nan());
        // -0.0 sorts before +0.0 under totalOrder.
        assert!(v[1].get().is_sign_negative() && v[1].get() == 0.0);
    }

    #[test]
    fn roundtrip_conversions() {
        let x: OrdF64 = 1.25.into();
        let y: f64 = x.into();
        assert_eq!(y, 1.25);
        assert_eq!(x.to_string(), "1.25");
    }

    #[test]
    fn usable_as_btreemap_key() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(OrdF64::new(2.0), "b");
        m.insert(OrdF64::new(1.0), "a");
        let first = m.iter().next().unwrap();
        assert_eq!(*first.1, "a");
    }
}
