//! The paper's closed-form `O(1)` coefficient-update equations (Eq. 1–11).
//!
//! Each function implements the corresponding numbered equation verbatim and
//! is property-tested (see the tests below and
//! `crates/core/tests` drivers) against the exact sufficient-statistics
//! algebra of [`crate::fit::SegStats`] — both are exact, so they agree to
//! floating-point rounding.
//!
//! One transcription note: Eq. (5) is typographically truncated in our
//! source copy of the paper, so [`eq5_eq6_split_left`] computes the left
//! coefficients through the unique algebraic inverse of the merge equations
//! (Eq. 3–4) — which is what the printed equation necessarily equals —
//! while Eq. (6) (the `b_i` half, printed intact) is also provided verbatim
//! as [`eq6_split_left_b`].

use crate::fit::LineFit;

#[cfg(test)]
use crate::fit::SegStats;

/// Eq. (1): direct least-squares fit of an equal- or adaptive-length
/// segment, `č_u = a·u + b` for window-local `u ∈ [0, l)`.
///
/// `O(l)`; the remaining equations update its result in `O(1)`.
pub fn eq1_fit(window: &[f64]) -> LineFit {
    let l = window.len() as f64;
    if window.len() == 1 {
        return LineFit { a: 0.0, b: window[0], len: 1 };
    }
    // a = 12·Σ(t − (l−1)/2)·c_t / (l(l−1)(l+1))
    let a = 12.0
        * window.iter().enumerate().map(|(t, &c)| (t as f64 - (l - 1.0) / 2.0) * c).sum::<f64>()
        / (l * (l - 1.0) * (l + 1.0));
    // b = 2·Σ(2l−1−3t)·c_t / (l(l+1))
    let b = 2.0
        * window
            .iter()
            .enumerate()
            .map(|(t, &c)| (2.0 * l - 1.0 - 3.0 * t as f64) * c)
            .sum::<f64>()
        / (l * (l + 1.0));
    LineFit { a, b, len: window.len() }
}

/// Eq. (2): the *increment* — append the next original point `c_new`
/// (the paper's `c_{r'_i}`) to a fitted segment of length `l ≥ 2`,
/// producing the fit of length `l + 1` in `O(1)`.
pub fn eq2_increment(fit: &LineFit, c_new: f64) -> LineFit {
    debug_assert!(fit.len >= 2);
    let l = fit.len as f64;
    let (a, b) = (fit.a, fit.b);
    let a1 = ((l - 2.0) * (l - 1.0) * a + 6.0 * (c_new - b)) / ((l + 1.0) * (l + 2.0));
    let b1 = (2.0 * (l - 1.0) * (a * l - c_new) + (l + 5.0) * l * b) / ((l + 1.0) * (l + 2.0));
    LineFit { a: a1, b: b1, len: fit.len + 1 }
}

/// Eq. (3)–(4): merge two adjacent fitted segments into the fit of the
/// combined window in `O(1)`.
///
/// Exact, because a least-squares line is a bijection of the window's first
/// two moments (see [`crate::fit::SegStats`]).
pub fn eq3_eq4_merge(left: &LineFit, right: &LineFit) -> LineFit {
    let li = left.len as f64;
    let lj = right.len as f64;
    let lm = li + lj;
    let (ai, bi) = (left.a, left.b);
    let (aj, bj) = (right.a, right.b);
    let a = (ai * li * (li - 1.0) * (li + 1.0 - 3.0 * lj) - 6.0 * li * lj * bi
        + aj * lj * (lj - 1.0) * (lj + 1.0 + 3.0 * li)
        + 6.0 * li * lj * bj)
        / (lm * (lm - 1.0) * (lm + 1.0));
    let b = (bi * li * (li + 1.0)
        + 2.0 * ai * lj * li * (li - 1.0)
        + 4.0 * li * lj * bi
        + bj * lj * (lj + 1.0)
        - aj * li * lj * (lj - 1.0)
        - 2.0 * li * lj * bj)
        / (lm * (lm + 1.0));
    LineFit { a, b, len: left.len + right.len }
}

/// Eq. (5)–(6): given the merged fit and the **right** part's fit, recover
/// the **left** part's fit in `O(1)` (used when splitting a segment,
/// Section 4.3.2, and when partitioning in `Dist_PAR`, Definition 5.1).
///
/// Computed through the exact inverse of Eq. (3)–(4); see the module note
/// about the printed Eq. (5).
pub fn eq5_eq6_split_left(merged: &LineFit, right: &LineFit) -> LineFit {
    debug_assert!(right.len < merged.len);
    merged.to_stats().split_left(&right.to_stats()).fit()
}

/// Eq. (6) verbatim: the `b_i` (intercept) half of the left-split.
pub fn eq6_split_left_b(merged: &LineFit, right: &LineFit) -> f64 {
    let lm = merged.len as f64;
    let lj = right.len as f64;
    let li = lm - lj;
    let (am, bm) = (merged.a, merged.b);
    let (aj, bj) = (right.a, right.b);
    (bm * lm * (lm + 1.0 - 4.0 * lj)
        + bj * lj * (2.0 * lm + lj - 1.0)
        + aj * (lm + lj) * lj * (lj - 1.0)
        - am * 2.0 * lj * lm * (lm - 1.0))
        / (li * (li + 1.0))
}

/// Eq. (7)–(8): given the merged fit and the **left** part's fit, recover
/// the **right** part's fit in `O(1)`.
///
/// The printed formula divides by `l_{i+1}(l_{i+1}² − 1)`, which is zero
/// for a single-point right part; that case falls back to the exact
/// sufficient-statistics inverse.
pub fn eq7_eq8_split_right(merged: &LineFit, left: &LineFit) -> LineFit {
    debug_assert!(left.len < merged.len);
    if merged.len - left.len == 1 {
        return merged.to_stats().split_right(&left.to_stats()).fit();
    }
    let lm = merged.len as f64;
    let li = left.len as f64;
    let lj = lm - li;
    let (am, bm) = (merged.a, merged.b);
    let (ai, bi) = (left.a, left.b);
    let a = (am * lm * (lm - 1.0) * (lm + 1.0 - 3.0 * li)
        + ai * li * (li - 1.0) * (2.0 * lm + lj - 1.0)
        + 6.0 * li * lm * (bi - bm))
        / (lj * (lj * lj - 1.0));
    let b = (am * li * lm * (lm - 1.0) + bm * lm * (lm + 1.0 + 2.0 * li)
        - ai * li * (li - 1.0) * (lm + lj)
        - bi * li * (3.0 * lm + lj + 1.0))
        / (lj * (lj + 1.0));
    LineFit { a, b, len: merged.len - left.len }
}

/// Eq. (9): *decrease the right endpoint* — drop the segment's last point
/// (whose original value is `c_r`) from a fit of length `l ≥ 3`, in `O(1)`.
pub fn eq9_decrease_right(fit: &LineFit, c_r: f64) -> LineFit {
    debug_assert!(fit.len >= 3);
    let l = fit.len as f64;
    let (a, b) = (fit.a, fit.b);
    let a1 = (l + 4.0) * a / (l - 2.0) + 6.0 * (b - c_r) / ((l - 1.0) * (l - 2.0));
    let b1 = (l - 3.0) * b / (l - 1.0) - 2.0 * a + 2.0 * c_r / (l - 1.0);
    LineFit { a: a1, b: b1, len: fit.len - 1 }
}

/// Eq. (10): *decrease the left endpoint* — prepend the point just left of
/// the segment (the paper's `c_{r_{i−1}}`) to a fit of length `l ≥ 2`,
/// in `O(1)`. Existing points shift to local positions `u + 1`.
pub fn eq10_extend_left(fit: &LineFit, c_prev: f64) -> LineFit {
    debug_assert!(fit.len >= 2);
    let l = fit.len as f64;
    let (a, b) = (fit.a, fit.b);
    let a1 = (a * (l - 1.0) * (l + 4.0) + 6.0 * (b - c_prev)) / ((l + 1.0) * (l + 2.0));
    let b1 = (2.0 * (2.0 * l + 1.0) * c_prev + l * (l - 1.0) * (b - a)) / ((l + 1.0) * (l + 2.0));
    LineFit { a: a1, b: b1, len: fit.len + 1 }
}

/// Eq. (11): *increase the left endpoint* — drop the segment's first point
/// (the paper's `c_{r_{i−1}+1}`) from a fit of length `l ≥ 3`, in `O(1)`.
/// Remaining points shift to local positions `u − 1`.
pub fn eq11_shrink_left(fit: &LineFit, c_first: f64) -> LineFit {
    debug_assert!(fit.len >= 3);
    let l = fit.len as f64;
    let (a, b) = (fit.a, fit.b);
    let a1 = a + 6.0 * (c_first - b) / ((l - 1.0) * (l - 2.0));
    let b1 = a + ((l + 3.0) * b - 4.0 * c_first) / (l - 1.0);
    LineFit { a: a1, b: b1, len: fit.len - 1 }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERIES: [f64; 12] = [7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0];

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-8 * (1.0 + a.abs().max(b.abs()))
    }

    fn fits_eq(x: &LineFit, y: &LineFit) -> bool {
        x.len == y.len && approx(x.a, y.a) && approx(x.b, y.b)
    }

    #[test]
    fn eq1_matches_prefix_sum_fit() {
        for start in 0..SERIES.len() - 1 {
            for end in (start + 1)..=SERIES.len() {
                let direct = eq1_fit(&SERIES[start..end]);
                let reference = LineFit::over_slice(&SERIES[start..end]);
                assert!(fits_eq(&direct, &reference), "[{start},{end})");
            }
        }
    }

    #[test]
    fn eq2_increments_match_refits() {
        for start in 0..SERIES.len() - 2 {
            let mut fit = eq1_fit(&SERIES[start..start + 2]);
            for end in (start + 3)..=SERIES.len() {
                fit = eq2_increment(&fit, SERIES[end - 1]);
                assert!(fits_eq(&fit, &eq1_fit(&SERIES[start..end])), "[{start},{end})");
            }
        }
    }

    #[test]
    fn eq3_eq4_merges_match_refits() {
        for start in 0..SERIES.len() - 3 {
            for mid in (start + 1)..SERIES.len() - 1 {
                for end in (mid + 1)..=SERIES.len() {
                    let left = eq1_fit(&SERIES[start..mid]);
                    let right = eq1_fit(&SERIES[mid..end]);
                    let merged = eq3_eq4_merge(&left, &right);
                    assert!(fits_eq(&merged, &eq1_fit(&SERIES[start..end])));
                }
            }
        }
    }

    #[test]
    fn splits_invert_merges() {
        for mid in 2..SERIES.len() - 2 {
            let left = eq1_fit(&SERIES[..mid]);
            let right = eq1_fit(&SERIES[mid..]);
            let merged = eq1_fit(&SERIES);
            assert!(fits_eq(&eq5_eq6_split_left(&merged, &right), &left), "mid={mid}");
            assert!(fits_eq(&eq7_eq8_split_right(&merged, &left), &right), "mid={mid}");
            // The verbatim Eq. (6) intercept agrees with the inverse algebra.
            assert!(approx(eq6_split_left_b(&merged, &right), left.b), "mid={mid}");
        }
    }

    #[test]
    fn eq9_drops_right_point() {
        for end in 3..=SERIES.len() {
            let fit = eq1_fit(&SERIES[..end]);
            let shrunk = eq9_decrease_right(&fit, SERIES[end - 1]);
            assert!(fits_eq(&shrunk, &eq1_fit(&SERIES[..end - 1])), "end={end}");
        }
    }

    #[test]
    fn eq10_prepends_left_point() {
        for start in (1..SERIES.len() - 1).rev() {
            let fit = eq1_fit(&SERIES[start..]);
            let grown = eq10_extend_left(&fit, SERIES[start - 1]);
            assert!(fits_eq(&grown, &eq1_fit(&SERIES[start - 1..])), "start={start}");
        }
    }

    #[test]
    fn eq11_drops_left_point() {
        for start in 0..SERIES.len() - 3 {
            let fit = eq1_fit(&SERIES[start..]);
            let shrunk = eq11_shrink_left(&fit, SERIES[start]);
            assert!(fits_eq(&shrunk, &eq1_fit(&SERIES[start + 1..])), "start={start}");
        }
    }

    #[test]
    fn updates_agree_with_segstats_algebra() {
        // The paper's equations and the sufficient-statistics algebra are
        // two faces of the same exact update.
        let stats = SegStats {
            len: 4,
            sum_c: SERIES[2..6].iter().sum(),
            sum_uc: SERIES[2..6].iter().enumerate().map(|(u, &c)| u as f64 * c).sum(),
        };
        let fit = stats.fit();
        assert!(fits_eq(&eq2_increment(&fit, SERIES[6]), &stats.push_right(SERIES[6]).fit()));
        assert!(fits_eq(&eq9_decrease_right(&fit, SERIES[5]), &stats.pop_right(SERIES[5]).fit()));
        assert!(fits_eq(&eq10_extend_left(&fit, SERIES[1]), &stats.push_left(SERIES[1]).fit()));
        assert!(fits_eq(&eq11_shrink_left(&fit, SERIES[2]), &stats.pop_left(SERIES[2]).fit()));
    }
}
