//! Increment Area (Definition 4.1) and Reconstruction Area
//! (Definition 4.2).
//!
//! Both are areas between straight reconstruction lines and are used as
//! cheap priorities: the initialization stage cuts segments where the
//! Increment Area spikes, and the split & merge iteration merges the
//! adjacent pair with the smallest Reconstruction Area.
//!
//! Because the two lines of an increment always intersect at most once
//! (Lemma 4.1), each area reduces to one or two triangles; the general
//! helper [`area_between_lines`] integrates `|Δa·u + Δb|` exactly over an
//! interval, which covers the "several triangles or parallelograms" of
//! Definition 4.2 as well.

use crate::fit::LineFit;

/// Exact area between the lines `a1·u + b1` and `a2·u + b2` over the
/// continuous interval `[from, to]`:
/// `∫ |Δa·u + Δb| du` split at the crossing point when one exists.
pub fn area_between_lines(a1: f64, b1: f64, a2: f64, b2: f64, from: f64, to: f64) -> f64 {
    debug_assert!(to >= from);
    let da = a1 - a2;
    let db = b1 - b2;
    // Antiderivative of (Δa·u + Δb).
    let prim = |u: f64| da * u * u / 2.0 + db * u;
    if da == 0.0 {
        return db.abs() * (to - from);
    }
    let cross = -db / da;
    if cross > from && cross < to {
        (prim(cross) - prim(from)).abs() + (prim(to) - prim(cross)).abs()
    } else {
        (prim(to) - prim(from)).abs()
    }
}

/// Increment Area `ε(Č'_i, Č^e_i)` (Definition 4.1): the area between the
/// *Increment Segment* (the refit after appending one point, `new_fit`)
/// and the *Extended Segment* (the previous fit `old_fit` extrapolated one
/// step), over the `old_fit.len + 1` shared positions `u ∈ [0, l_i]`.
///
/// By Lemma 4.1 the two lines intersect exactly once (unless identical),
/// so the area is the two green triangles of the paper's Fig. 3.
pub fn increment_area(old_fit: &LineFit, new_fit: &LineFit) -> f64 {
    debug_assert_eq!(new_fit.len, old_fit.len + 1);
    area_between_lines(new_fit.a, new_fit.b, old_fit.a, old_fit.b, 0.0, old_fit.len as f64)
}

/// Reconstruction Area `ε(Č'_{i+1}, Č_i + Č_{i+1})` (Definition 4.2): the
/// area between the merged segment's line and the two original segments'
/// lines over their own windows (the four green triangles of Fig. 4).
///
/// `merged` must be the fit over the combined window (`left.len +
/// right.len` points); the right segment's line is shifted into merged
/// coordinates before integrating.
pub fn reconstruction_area(left: &LineFit, right: &LineFit, merged: &LineFit) -> f64 {
    debug_assert_eq!(merged.len, left.len + right.len);
    let li = left.len as f64;
    let lm = merged.len as f64;
    // Right segment's line expressed in merged-local coordinates:
    // u_merged = u_right + l_i  ⇒  value = a_r·(u − l_i) + b_r.
    let b_right = right.b - right.a * li;
    area_between_lines(merged.a, merged.b, left.a, left.b, 0.0, li - 1.0)
        + area_between_lines(merged.a, merged.b, right.a, b_right, li, lm - 1.0)
}

/// Convenience: verify Lemma 4.1 — the increment and extended segments of
/// any increment step intersect at most once, with the sign structure of
/// Theorem 4.1 (`d₄ ≥ d₁`, `d₄ ≥ d₂`, `d₅ = d₃ + d₄`).
///
/// Returns the tuple `(d1, d2, d3, d4, d5)` of Theorem 4.1 for diagnostics
/// and tests.
pub fn increment_deviations(old_fit: &LineFit, new_fit: &LineFit, c_new: f64) -> [f64; 5] {
    debug_assert_eq!(new_fit.len, old_fit.len + 1);
    let li = old_fit.len as f64;
    let d1 = (new_fit.b - old_fit.b).abs();
    let d2 = (new_fit.value_at(old_fit.len - 1) - old_fit.value_at(old_fit.len - 1)).abs();
    let d3 = (c_new - new_fit.extended_value_at(li)).abs();
    let d4 = (new_fit.extended_value_at(li) - old_fit.extended_value()).abs();
    let d5 = (old_fit.extended_value() - c_new).abs();
    [d1, d2, d3, d4, d5]
}

impl LineFit {
    /// Value of the fitted line at a (possibly fractional or out-of-window)
    /// local position `u`.
    #[inline]
    pub fn extended_value_at(&self, u: f64) -> f64 {
        self.a * u + self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equations::{eq1_fit, eq2_increment, eq3_eq4_merge};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn parallel_lines_area_is_rectangle() {
        assert!(approx(area_between_lines(1.0, 0.0, 1.0, 2.0, 0.0, 5.0), 10.0));
        assert!(approx(area_between_lines(0.0, 3.0, 0.0, 3.0, 0.0, 9.0), 0.0));
    }

    #[test]
    fn crossing_lines_area_is_two_triangles() {
        // Lines y = u and y = 2 − u cross at u = 1 over [0, 2]:
        // two triangles of area 1 each.
        assert!(approx(area_between_lines(1.0, 0.0, -1.0, 2.0, 0.0, 2.0), 2.0));
    }

    #[test]
    fn crossing_outside_interval_is_trapezoid() {
        // y = u vs y = u/2 over [2, 4]: ∫ u/2 du = (16−4)/4 = 3.
        assert!(approx(area_between_lines(1.0, 0.0, 0.5, 0.0, 2.0, 4.0), 3.0));
    }

    #[test]
    fn area_is_symmetric_and_nonnegative() {
        let a = area_between_lines(0.7, -1.0, -0.2, 3.0, 0.0, 11.0);
        let b = area_between_lines(-0.2, 3.0, 0.7, -1.0, 0.0, 11.0);
        assert!(approx(a, b));
        assert!(a >= 0.0);
    }

    #[test]
    fn increment_area_zero_when_point_on_line() {
        // Appending a point that lies exactly on the fitted line leaves the
        // fit unchanged, so the increment area vanishes.
        let old = eq1_fit(&[1.0, 3.0, 5.0, 7.0]);
        let new = eq2_increment(&old, 9.0);
        assert!(approx(increment_area(&old, &new), 0.0));
    }

    #[test]
    fn increment_area_grows_with_surprise() {
        let old = eq1_fit(&[1.0, 3.0, 5.0, 7.0]);
        let small = increment_area(&old, &eq2_increment(&old, 10.0));
        let large = increment_area(&old, &eq2_increment(&old, 30.0));
        assert!(large > small && small > 0.0);
    }

    #[test]
    fn theorem_4_1_sign_structure() {
        // d₄ ≥ d₁, d₄ ≥ d₂ and d₅ = d₃ + d₄ for arbitrary increments.
        let windows: [&[f64]; 3] =
            [&[7.0, 8.0, 20.0, 15.0], &[1.0, 1.0, 1.0], &[5.0, 3.0, 2.0, 2.5, 9.0]];
        for w in windows {
            let old = eq1_fit(w);
            for c_new in [-4.0, 0.0, 13.0] {
                let new = eq2_increment(&old, c_new);
                let [d1, d2, d3, d4, d5] = increment_deviations(&old, &new, c_new);
                assert!(d4 + 1e-12 >= d1, "d4={d4} d1={d1}");
                assert!(d4 + 1e-12 >= d2, "d4={d4} d2={d2}");
                assert!(approx(d5, d3 + d4), "d5={d5} d3+d4={}", d3 + d4);
            }
        }
    }

    #[test]
    fn reconstruction_area_zero_for_collinear_segments() {
        let v: Vec<f64> = (0..10).map(|u| 0.5 * u as f64 + 2.0).collect();
        let left = eq1_fit(&v[..4]);
        let right = eq1_fit(&v[4..]);
        let merged = eq3_eq4_merge(&left, &right);
        assert!(approx(reconstruction_area(&left, &right, &merged), 0.0));
    }

    #[test]
    fn reconstruction_area_positive_for_a_corner() {
        let mut v: Vec<f64> = (0..6).map(|u| u as f64).collect();
        v.extend((0..6).map(|u| 5.0 - u as f64));
        let left = eq1_fit(&v[..6]);
        let right = eq1_fit(&v[6..]);
        let merged = eq3_eq4_merge(&left, &right);
        assert!(reconstruction_area(&left, &right, &merged) > 1.0);
    }
}
