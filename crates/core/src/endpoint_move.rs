//! Stage 3 — Segment Endpoint Movement iteration (Algorithms 4.4 & 4.5).
//!
//! Taking segments in decreasing order of `β_i`, the stage tries the four
//! boundary moves of Fig. 9 — grow/shrink the right boundary (affecting
//! the right neighbour) and grow/shrink the left boundary (affecting the
//! left neighbour). Each move is hill-climbed one point at a time while
//! the pair's combined `β` keeps falling (Algorithm 4.5), and the best of
//! the four (`β^a..β^d`) is applied when it reduces the sum upper bound.
//!
//! ## Memoised climbs
//!
//! [`climb`] is a pure function of `(left, right, direction)`, and the
//! pass structure re-evaluates the same boundary many times: each
//! boundary is climbed from both of its segments' visits within a pass,
//! and again every following pass until something adjacent moves. A
//! per-boundary memo validated by bitwise segment comparison
//! ([`Seg::bits_eq`]) replays those repeats for free — a hit is
//! indistinguishable from recomputing, so results are bit-identical to
//! the direct implementation. This is the dominant win behind the
//! kernel's speedup: climbing walks `O(l)` points per call, and the
//! final no-progress pass alone used to redo every one of them.

use crate::work::{total_beta, Ctx, Seg};

/// Reusable endpoint-movement state: the pass visit order and the
/// per-boundary climb memo. Reset at every [`endpoint_move_with`] call;
/// buffers keep their capacity across calls, so steady-state passes
/// allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct MoveScratch {
    /// Visit order: `(β_i at pass start, segment start)`.
    order: Vec<(f64, usize)>,
    /// One memo slot per boundary per climb direction.
    memo: Vec<[Option<ClimbMemo>; 2]>,
}

/// A memoised [`climb`] outcome for one boundary: the exact input pair
/// and the result it produced.
#[derive(Debug, Clone, Copy)]
struct ClimbMemo {
    left: Seg,
    right: Seg,
    result: Option<(Seg, Seg)>,
}

/// Run endpoint-movement passes until a pass yields no improvement, up to
/// `max_passes` passes. Test-only convenience wrapper building a one-shot
/// scratch; the reduce path holds a [`MoveScratch`] and calls
/// [`endpoint_move_with`].
#[cfg(test)]
pub(crate) fn endpoint_move(ctx: &Ctx<'_>, segs: &mut [Seg], max_passes: usize) {
    let mut scratch = MoveScratch::default();
    endpoint_move_with(ctx, segs, &mut scratch, max_passes);
}

/// [`endpoint_move`] against a reusable scratch.
pub(crate) fn endpoint_move_with(
    ctx: &Ctx<'_>,
    segs: &mut [Seg],
    scratch: &mut MoveScratch,
    max_passes: usize,
) {
    if segs.len() < 2 {
        return;
    }
    scratch.memo.clear();
    scratch.memo.resize(segs.len() - 1, [None, None]);
    for _ in 0..max_passes {
        if !one_pass(ctx, segs, scratch) {
            break;
        }
    }
    crate::work::assert_tiling(segs, ctx.values.len());
}

/// One pass of Algorithm 4.4: visit every segment once, in decreasing
/// initial `β_i` order (the priority queue `η`). Returns whether any move
/// was applied.
fn one_pass(ctx: &Ctx<'_>, segs: &mut [Seg], scratch: &mut MoveScratch) -> bool {
    // Identify segments by their start position; indices shift as moves
    // are applied, but starts move by at most the hill-climb steps and we
    // re-locate by nearest start. β descending with starts ascending on
    // ties: the pre-sort order is start-ascending, so this unstable sort
    // reproduces what the stable β-only sort produced.
    scratch.order.clear();
    scratch.order.extend(segs.iter().map(|s| (s.beta, s.start)));
    scratch.order.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut improved = false;
    for idx in 0..scratch.order.len() {
        let start0 = scratch.order[idx].1;
        // Binary search the start-sorted tiling for the window containing
        // start0: the last segment starting at or before it.
        let p = segs.partition_point(|s| s.start <= start0);
        if p == 0 {
            continue; // unreachable in a tiling (segs[0].start == 0)
        }
        let i = p - 1;
        debug_assert!(segs[i].start <= start0 && start0 < segs[i].end);
        improved |= try_moves(ctx, segs, i, &mut scratch.memo);
    }
    improved
}

/// Try the four moves for segment `i`; apply the best strictly-improving
/// one. Returns whether a move was applied.
fn try_moves(
    ctx: &Ctx<'_>,
    segs: &mut [Seg],
    i: usize,
    memo: &mut [[Option<ClimbMemo>; 2]],
) -> bool {
    let current = total_beta(segs);
    let mut best: Option<(usize, Seg, Seg, f64)> = None; // (left idx, new left, new right, β)

    // β^a / β^b operate on the pair (i, i+1); β^c / β^d on (i−1, i).
    let mut consider = |pair_left: usize, cand: Option<(Seg, Seg)>| {
        if let Some((l, r)) = cand {
            let delta = l.beta + r.beta - segs[pair_left].beta - segs[pair_left + 1].beta;
            let beta = current + delta;
            if beta < best.as_ref().map_or(current, |b| b.3) - 1e-12 {
                best = Some((pair_left, l, r, beta));
            }
        }
    };

    if i + 1 < segs.len() {
        consider(i, climb_memo(ctx, segs, i, Direction::Right, memo));
        consider(i, climb_memo(ctx, segs, i, Direction::Left, memo));
    }
    if i > 0 {
        consider(i - 1, climb_memo(ctx, segs, i - 1, Direction::Right, memo));
        consider(i - 1, climb_memo(ctx, segs, i - 1, Direction::Left, memo));
    }

    if let Some((j, l, r, _)) = best {
        sapla_obs::counter!("sapla.refine.moves");
        segs[j] = l;
        segs[j + 1] = r;
        true
    } else {
        false
    }
}

#[derive(Clone, Copy)]
pub(crate) enum Direction {
    /// Move the shared boundary rightward (left segment grows).
    Right,
    /// Move the shared boundary leftward (left segment shrinks).
    Left,
}

/// [`climb`] on the boundary between `segs[j]` and `segs[j+1]`, through
/// the memo: a bitwise match of both inputs replays the cached outcome.
fn climb_memo(
    ctx: &Ctx<'_>,
    segs: &[Seg],
    j: usize,
    dir: Direction,
    memo: &mut [[Option<ClimbMemo>; 2]],
) -> Option<(Seg, Seg)> {
    let slot = &mut memo[j][dir as usize];
    if let Some(m) = slot {
        if m.left.bits_eq(&segs[j]) && m.right.bits_eq(&segs[j + 1]) {
            sapla_obs::counter!("sapla.refine.climb_memo_hits");
            return m.result;
        }
    }
    sapla_obs::counter!("sapla.refine.climbs");
    let result = climb(ctx, &segs[j], &segs[j + 1], dir);
    *slot = Some(ClimbMemo { left: segs[j], right: segs[j + 1], result });
    result
}

/// Algorithm 4.5: move the shared boundary of `(left, right)` one point
/// at a time in `dir` while positions remain, keeping the best pair `β`
/// seen. Every step is `O(1)` (prefix-sum refits and endpoint-difference
/// bounds — the roles Eq. 2 and Eq. 9–11 play in the paper), and a
/// segment's boundary can travel its whole span — the paper's complexity
/// analysis budgets `l_i = n − 2N` movements per segment (Section 4.5).
///
/// Returns the best improved pair, or `None` when no position improves.
/// A pure function of its arguments — the property [`climb_memo`] relies
/// on.
pub(crate) fn climb(ctx: &Ctx<'_>, left: &Seg, right: &Seg, dir: Direction) -> Option<(Seg, Seg)> {
    debug_assert_eq!(left.end, right.start);
    let mut best_pair: Option<(Seg, Seg)> = None;
    let mut best_beta = left.beta + right.beta;
    let mut boundary = left.end;

    loop {
        let next = match dir {
            Direction::Right => boundary + 1,
            Direction::Left => boundary.checked_sub(1)?,
        };
        // Both segments must keep at least 2 points (the paper assumes
        // l ≥ 2 throughout; Algorithm 4.5 guards with l'_{i+1} ≥ 2).
        if next < left.start + 2 || next + 2 > right.end {
            break;
        }
        let lf = ctx.refit(left.start, next);
        let rf = ctx.refit(next, right.end);
        // β with the previous reconstruction as the reference line
        // (Section 4.4.1): the old left line covers the left window, the
        // old right line is aligned by its original start offset.
        let lb = ctx.beta(left.start, next, &lf, Some((&left.fit, 0)));
        let rb = ctx.beta(
            next,
            right.end,
            &rf,
            Some((&right.fit, next as isize - right.start as isize)),
        );
        let beta = lb + rb;
        if beta < best_beta - 1e-12 {
            best_beta = beta;
            best_pair = Some((
                Seg { start: left.start, end: next, fit: lf, beta: lb },
                Seg { start: next, end: right.end, fit: rf, beta: rb },
            ));
        }
        boundary = next;
    }
    best_pair
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::sapla::BoundMode;
    use crate::split_merge::split_merge;
    use crate::work::to_representation;

    const FIG1: [f64; 20] = [
        7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0,
        9.0, 10.0, 10.0,
    ];

    fn ts(v: &[f64]) -> crate::TimeSeries {
        crate::TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn keeps_tiling_and_count() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 8);
        endpoint_move(&ctx, &mut segs, 8);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, FIG1.len());
    }

    #[test]
    fn never_increases_total_beta() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 8);
        let before = total_beta(&segs);
        endpoint_move(&ctx, &mut segs, 8);
        assert!(total_beta(&segs) <= before + 1e-9);
    }

    #[test]
    fn moves_boundary_toward_true_corner() {
        // Corner at 12, but the starting segmentation misplaces the
        // boundary at 9 — movement must drag it toward 12.
        let mut v: Vec<f64> = (0..12).map(|t| t as f64).collect();
        v.extend((0..12).map(|t| 11.0 - t as f64));
        let ctx = Ctx::new(&v, BoundMode::Exact);
        let mut segs = vec![ctx.make_seg(0, 9), ctx.make_seg(9, 24)];
        endpoint_move(&ctx, &mut segs, 8);
        let cut = segs[0].end;
        assert!(cut > 9, "boundary should move right from 9, got {cut}");
        assert!((cut as isize - 12).abs() <= 1, "got {cut}, want ≈ 12");
    }

    #[test]
    fn memo_hit_replays_climb_exactly() {
        // Same inputs through a warm memo must return the identical pair.
        let v: Vec<f64> = (0..40).map(|t| ((t * 7) % 11) as f64 - 0.3 * t as f64).collect();
        let ctx = Ctx::new(&v, BoundMode::Paper);
        let segs = vec![ctx.make_seg(0, 13), ctx.make_seg(13, 26), ctx.make_seg(26, 40)];
        let mut memo = vec![[None, None]; 2];
        for j in 0..2 {
            for dir in [Direction::Right, Direction::Left] {
                let cold = climb_memo(&ctx, &segs, j, dir, &mut memo);
                let warm = climb_memo(&ctx, &segs, j, dir, &mut memo);
                let direct = climb(&ctx, &segs[j], &segs[j + 1], dir);
                match (cold, warm, direct) {
                    (None, None, None) => {}
                    (Some(a), Some(b), Some(c)) => {
                        assert!(a.0.bits_eq(&b.0) && a.1.bits_eq(&b.1));
                        assert!(a.0.bits_eq(&c.0) && a.1.bits_eq(&c.1));
                    }
                    other => panic!("memo diverged from direct climb: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn fig8_quality_on_paper_example() {
        // The paper reaches max deviation ≈ 9.27 on the Fig. 1 example
        // after endpoint movement (from ≈ 10.6). Our pipeline must land in
        // the same band and never exceed the split&merge result.
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 8);
        let before = to_representation(&segs).max_deviation(&ts(&FIG1)).unwrap();
        endpoint_move(&ctx, &mut segs, 8);
        let after = to_representation(&segs).max_deviation(&ts(&FIG1)).unwrap();
        assert!(after <= before + 1e-9, "movement worsened deviation: {before} -> {after}");
        assert!(after < 12.0, "final deviation {after}");
    }

    #[test]
    fn single_segment_is_a_noop() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = vec![ctx.make_seg(0, FIG1.len())];
        endpoint_move(&ctx, &mut segs, 4);
        assert_eq!(segs.len(), 1);
    }
}
