//! Stage 3 — Segment Endpoint Movement iteration (Algorithms 4.4 & 4.5).
//!
//! Taking segments in decreasing order of `β_i`, the stage tries the four
//! boundary moves of Fig. 9 — grow/shrink the right boundary (affecting
//! the right neighbour) and grow/shrink the left boundary (affecting the
//! left neighbour). Each move is hill-climbed one point at a time while
//! the pair's combined `β` keeps falling (Algorithm 4.5), and the best of
//! the four (`β^a..β^d`) is applied when it reduces the sum upper bound.

use crate::work::{total_beta, Ctx, Seg};

/// Run endpoint-movement passes until a pass yields no improvement, up to
/// `max_passes` passes.
pub(crate) fn endpoint_move(ctx: &Ctx<'_>, segs: &mut [Seg], max_passes: usize) {
    if segs.len() < 2 {
        return;
    }
    for _ in 0..max_passes {
        if !one_pass(ctx, segs) {
            break;
        }
    }
    crate::work::assert_tiling(segs, ctx.values.len());
}

/// One pass of Algorithm 4.4: visit every segment once, in decreasing
/// initial `β_i` order (the priority queue `η`). Returns whether any move
/// was applied.
fn one_pass(ctx: &Ctx<'_>, segs: &mut [Seg]) -> bool {
    // Identify segments by their start position; indices shift as moves
    // are applied, but starts move by at most the hill-climb steps and we
    // re-locate by nearest start.
    let mut order: Vec<(f64, usize)> = segs.iter().map(|s| (s.beta, s.start)).collect();
    order.sort_by(|a, b| b.0.total_cmp(&a.0));

    let mut improved = false;
    for (_, start0) in order {
        // Re-locate the segment whose window currently contains start0.
        let i = match segs.iter().position(|s| s.start <= start0 && start0 < s.end) {
            Some(i) => i,
            None => continue,
        };
        improved |= try_moves(ctx, segs, i);
    }
    improved
}

/// Try the four moves for segment `i`; apply the best strictly-improving
/// one. Returns whether a move was applied.
fn try_moves(ctx: &Ctx<'_>, segs: &mut [Seg], i: usize) -> bool {
    let current = total_beta(segs);
    let mut best: Option<(usize, Seg, Seg, f64)> = None; // (left idx, new left, new right, β)

    // β^a / β^b operate on the pair (i, i+1); β^c / β^d on (i−1, i).
    let mut consider = |pair_left: usize, cand: Option<(Seg, Seg)>| {
        if let Some((l, r)) = cand {
            let delta = l.beta + r.beta - segs[pair_left].beta - segs[pair_left + 1].beta;
            let beta = current + delta;
            if beta < best.as_ref().map_or(current, |b| b.3) - 1e-12 {
                best = Some((pair_left, l, r, beta));
            }
        }
    };

    if i + 1 < segs.len() {
        consider(i, climb(ctx, &segs[i], &segs[i + 1], Direction::Right));
        consider(i, climb(ctx, &segs[i], &segs[i + 1], Direction::Left));
    }
    if i > 0 {
        consider(i - 1, climb(ctx, &segs[i - 1], &segs[i], Direction::Right));
        consider(i - 1, climb(ctx, &segs[i - 1], &segs[i], Direction::Left));
    }

    if let Some((j, l, r, _)) = best {
        segs[j] = l;
        segs[j + 1] = r;
        true
    } else {
        false
    }
}

#[derive(Clone, Copy)]
enum Direction {
    /// Move the shared boundary rightward (left segment grows).
    Right,
    /// Move the shared boundary leftward (left segment shrinks).
    Left,
}

/// Algorithm 4.5: move the shared boundary of `(left, right)` one point
/// at a time in `dir` while positions remain, keeping the best pair `β`
/// seen. Every step is `O(1)` (prefix-sum refits and endpoint-difference
/// bounds — the roles Eq. 2 and Eq. 9–11 play in the paper), and a
/// segment's boundary can travel its whole span — the paper's complexity
/// analysis budgets `l_i = n − 2N` movements per segment (Section 4.5).
///
/// Returns the best improved pair, or `None` when no position improves.
fn climb(ctx: &Ctx<'_>, left: &Seg, right: &Seg, dir: Direction) -> Option<(Seg, Seg)> {
    debug_assert_eq!(left.end, right.start);
    let mut best_pair: Option<(Seg, Seg)> = None;
    let mut best_beta = left.beta + right.beta;
    let mut boundary = left.end;

    loop {
        let next = match dir {
            Direction::Right => boundary + 1,
            Direction::Left => boundary.checked_sub(1)?,
        };
        // Both segments must keep at least 2 points (the paper assumes
        // l ≥ 2 throughout; Algorithm 4.5 guards with l'_{i+1} ≥ 2).
        if next < left.start + 2 || next + 2 > right.end {
            break;
        }
        let lf = ctx.refit(left.start, next);
        let rf = ctx.refit(next, right.end);
        // β with the previous reconstruction as the reference line
        // (Section 4.4.1): the old left line covers the left window, the
        // old right line is aligned by its original start offset.
        let lb = ctx.beta(left.start, next, &lf, Some((&left.fit, 0)));
        let rb = ctx.beta(
            next,
            right.end,
            &rf,
            Some((&right.fit, next as isize - right.start as isize)),
        );
        let beta = lb + rb;
        if beta < best_beta - 1e-12 {
            best_beta = beta;
            best_pair = Some((
                Seg { start: left.start, end: next, fit: lf, beta: lb },
                Seg { start: next, end: right.end, fit: rf, beta: rb },
            ));
        }
        boundary = next;
    }
    best_pair
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::sapla::BoundMode;
    use crate::split_merge::split_merge;
    use crate::work::to_representation;

    const FIG1: [f64; 20] = [
        7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0,
        9.0, 10.0, 10.0,
    ];

    fn ts(v: &[f64]) -> crate::TimeSeries {
        crate::TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn keeps_tiling_and_count() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 8);
        endpoint_move(&ctx, &mut segs, 8);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, FIG1.len());
    }

    #[test]
    fn never_increases_total_beta() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 8);
        let before = total_beta(&segs);
        endpoint_move(&ctx, &mut segs, 8);
        assert!(total_beta(&segs) <= before + 1e-9);
    }

    #[test]
    fn moves_boundary_toward_true_corner() {
        // Corner at 12, but the starting segmentation misplaces the
        // boundary at 9 — movement must drag it toward 12.
        let mut v: Vec<f64> = (0..12).map(|t| t as f64).collect();
        v.extend((0..12).map(|t| 11.0 - t as f64));
        let ctx = Ctx::new(&v, BoundMode::Exact);
        let mut segs = vec![ctx.make_seg(0, 9), ctx.make_seg(9, 24)];
        endpoint_move(&ctx, &mut segs, 8);
        let cut = segs[0].end;
        assert!(cut > 9, "boundary should move right from 9, got {cut}");
        assert!((cut as isize - 12).abs() <= 1, "got {cut}, want ≈ 12");
    }

    #[test]
    fn fig8_quality_on_paper_example() {
        // The paper reaches max deviation ≈ 9.27 on the Fig. 1 example
        // after endpoint movement (from ≈ 10.6). Our pipeline must land in
        // the same band and never exceed the split&merge result.
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = initialize(&ctx, 4);
        split_merge(&ctx, &mut segs, 4, 8);
        let before = to_representation(&segs).max_deviation(&ts(&FIG1)).unwrap();
        endpoint_move(&ctx, &mut segs, 8);
        let after = to_representation(&segs).max_deviation(&ts(&FIG1)).unwrap();
        assert!(after <= before + 1e-9, "movement worsened deviation: {before} -> {after}");
        assert!(after < 12.0, "final deviation {after}");
    }

    #[test]
    fn single_segment_is_a_noop() {
        let ctx = Ctx::new(&FIG1, BoundMode::Paper);
        let mut segs = vec![ctx.make_seg(0, FIG1.len())];
        endpoint_move(&ctx, &mut segs, 4);
        assert_eq!(segs.len(), 1);
    }
}
