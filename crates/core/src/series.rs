//! Time series container and `O(1)` window statistics.

use crate::error::{Error, Result};

/// An immutable univariate time series `C = {c_0, …, c_{n-1}}`
/// (Definition 3.1 of the paper).
///
/// All samples are finite `f64` values; construction validates this once so
/// the algorithms never need to re-check.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create a time series from raw samples.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptySeries`] if `values` is empty.
    /// * [`Error::NonFiniteSample`] if any sample is NaN or infinite.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptySeries);
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteSample { index });
        }
        Ok(TimeSeries { values })
    }

    /// Number of samples `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff the series has no samples. Always `false` for a
    /// successfully constructed series; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the raw samples.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume the series, returning the raw samples.
    #[inline]
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Sample at position `t` (panics if out of range, like slice indexing).
    #[inline]
    pub fn at(&self, t: usize) -> f64 {
        self.values[t]
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation of the samples.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| {
                let d = v - mean;
                d * d
            })
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }

    /// Z-normalise: subtract the mean and divide by the standard deviation.
    ///
    /// Constant series (σ = 0) normalise to all-zeros rather than dividing
    /// by zero — the convention used by the UCR archive tooling.
    pub fn znormalized(&self) -> TimeSeries {
        let mean = self.mean();
        let sd = self.std_dev();
        let values = if sd > 0.0 {
            self.values.iter().map(|v| (v - mean) / sd).collect()
        } else {
            vec![0.0; self.values.len()]
        };
        TimeSeries { values }
    }

    /// Euclidean distance to another series of the same length.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] if the lengths differ.
    pub fn euclidean(&self, other: &TimeSeries) -> Result<f64> {
        // `bound_sq = +∞` never abandons, so the Some is unconditional.
        Ok(self.euclidean_sq_bounded(other, f64::INFINITY)?.map(f64::sqrt).unwrap_or(0.0))
    }

    /// Squared Euclidean distance with a block-wise early-abandon bound:
    /// `None` as soon as the partial squared sum provably exceeds
    /// `bound_sq`, otherwise `Some` of the exact squared distance.
    ///
    /// This is the **single** exact-refinement kernel: every Euclidean
    /// evaluation in the workspace (full or abandoning, search trees or
    /// linear scans, and [`TimeSeries::euclidean`] itself) runs this
    /// accumulation, so their surviving values are bit-for-bit identical
    /// by construction. Four independent accumulators break the FP add
    /// latency chain; the lane-combine order is fixed, and lanes only
    /// grow, so block-level partial sums are monotone — an abandoned
    /// candidate's true squared distance is provably above `bound_sq`.
    /// The accumulation runs in [`crate::simd`], dispatched at runtime
    /// over SSE2/AVX2/NEON vector kernels pinned **bit-identical** to
    /// the scalar lanes (see the module docs there), so which ISA ran is
    /// unobservable in the results.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] if the lengths differ.
    pub fn euclidean_sq_bounded(&self, other: &TimeSeries, bound_sq: f64) -> Result<Option<f64>> {
        if self.len() != other.len() {
            return Err(Error::LengthMismatch { left: self.len(), right: other.len() });
        }
        Ok(crate::simd::euclidean_sq_bounded(&self.values, &other.values, bound_sq))
    }

    /// Maximum absolute pointwise difference to another series of the same
    /// length (the paper's max deviation `ε` when `other` is a
    /// reconstruction; Definition 3.4).
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] if the lengths differ.
    pub fn max_abs_diff(&self, other: &TimeSeries) -> Result<f64> {
        if self.len() != other.len() {
            return Err(Error::LengthMismatch { left: self.len(), right: other.len() });
        }
        Ok(self
            .values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Build the prefix sums needed for `O(1)` window fits.
    pub fn prefix_sums(&self) -> PrefixSums {
        PrefixSums::new(&self.values)
    }
}

impl AsRef<[f64]> for TimeSeries {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

/// Prefix sums of a series enabling `O(1)` least-squares line fits over any
/// window (see [`crate::fit::LineFit::over_window`]).
///
/// Stores, for every prefix length `i`:
///
/// * `s1[i] = Σ_{t<i} c_t`
/// * `st[i] = Σ_{t<i} t·c_t`
/// * `s2[i] = Σ_{t<i} c_t²` (used by `O(1)` window SSE / distance bounds)
#[derive(Debug, Clone)]
pub struct PrefixSums {
    s1: Vec<f64>,
    st: Vec<f64>,
    s2: Vec<f64>,
}

impl Default for PrefixSums {
    /// Allocation-free placeholder (the state a scratch workspace starts
    /// in, and what `mem::take` leaves behind while sums are lent out);
    /// [`PrefixSums::rebuild`] readies it for real data.
    fn default() -> Self {
        PrefixSums { s1: Vec::new(), st: Vec::new(), s2: Vec::new() }
    }
}

impl PrefixSums {
    /// Build prefix sums for `values`.
    pub fn new(values: &[f64]) -> Self {
        let mut sums = PrefixSums { s1: Vec::new(), st: Vec::new(), s2: Vec::new() };
        sums.rebuild(values);
        sums
    }

    /// Rebuild in place for `values`, reusing the existing buffers (no
    /// allocation once they are large enough). The result is bit-for-bit
    /// what [`PrefixSums::new`] produces: the accumulation order is the
    /// same left-to-right scan.
    pub fn rebuild(&mut self, values: &[f64]) {
        let n = values.len();
        self.s1.clear();
        self.st.clear();
        self.s2.clear();
        self.s1.reserve(n + 1);
        self.st.reserve(n + 1);
        self.s2.reserve(n + 1);
        self.s1.push(0.0);
        self.st.push(0.0);
        self.s2.push(0.0);
        let (mut a1, mut at, mut a2) = (0.0f64, 0.0f64, 0.0f64);
        for (t, &v) in values.iter().enumerate() {
            a1 += v;
            at += t as f64 * v;
            a2 += v * v;
            self.s1.push(a1);
            self.st.push(at);
            self.s2.push(a2);
        }
    }

    /// Number of samples covered (zero for a default placeholder).
    #[inline]
    pub fn len(&self) -> usize {
        self.s1.len().saturating_sub(1)
    }

    /// `true` iff no samples are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `Σ c_t` over the half-open window `[start, end)`.
    #[inline]
    pub fn sum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end && end < self.s1.len());
        self.s1[end] - self.s1[start]
    }

    /// `Σ t·c_t` over `[start, end)` with **global** indices `t`.
    #[inline]
    pub fn sum_t(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end && end < self.st.len());
        self.st[end] - self.st[start]
    }

    /// `Σ u·c_{start+u}` over `[start, end)` with **window-local** indices
    /// `u = t − start` (the form the paper's equations use).
    #[inline]
    pub fn sum_local_t(&self, start: usize, end: usize) -> f64 {
        self.sum_t(start, end) - start as f64 * self.sum(start, end)
    }

    /// `Σ c_t²` over `[start, end)`.
    #[inline]
    pub fn sum_sq(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end && end < self.s2.len());
        self.s2[end] - self.s2[start]
    }

    /// Validate a half-open window against the covered length.
    pub fn check_window(&self, start: usize, end: usize) -> Result<()> {
        if start >= end || end > self.len() {
            return Err(Error::InvalidWindow { start, end, len: self.len() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert_eq!(TimeSeries::new(vec![]), Err(Error::EmptySeries));
        assert_eq!(TimeSeries::new(vec![1.0, f64::NAN]), Err(Error::NonFiniteSample { index: 1 }));
        assert_eq!(TimeSeries::new(vec![f64::INFINITY]), Err(Error::NonFiniteSample { index: 0 }));
    }

    #[test]
    fn mean_and_std() {
        let s = ts(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn znormalized_has_zero_mean_unit_variance() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0, 10.0]);
        let z = s.znormalized();
        assert!(z.mean().abs() < 1e-12);
        assert!((z.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znormalized_constant_series_is_zero() {
        let s = ts(&[3.0, 3.0, 3.0]);
        assert_eq!(s.znormalized().values(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = ts(&[0.0, 3.0]);
        let b = ts(&[4.0, 3.0]);
        assert!((a.euclidean(&b).unwrap() - 4.0).abs() < 1e-12);
        assert!(a.euclidean(&ts(&[1.0])).is_err());
    }

    #[test]
    fn max_abs_diff_matches_hand_computation() {
        let a = ts(&[0.0, 3.0, -2.0]);
        let b = ts(&[1.0, 1.0, -2.0]);
        assert!((a.max_abs_diff(&b).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_sums_windows() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0]);
        let p = s.prefix_sums();
        assert_eq!(p.len(), 4);
        assert_eq!(p.sum(0, 4), 10.0);
        assert_eq!(p.sum(1, 3), 5.0);
        // global t-weighted: 1*2 + 2*3 = 8
        assert_eq!(p.sum_t(1, 3), 8.0);
        // local u-weighted over [1,3): 0*2 + 1*3 = 3
        assert_eq!(p.sum_local_t(1, 3), 3.0);
        assert_eq!(p.sum_sq(0, 2), 5.0);
    }

    #[test]
    fn window_validation() {
        let s = ts(&[1.0, 2.0]);
        let p = s.prefix_sums();
        assert!(p.check_window(0, 2).is_ok());
        assert!(p.check_window(1, 1).is_err());
        assert!(p.check_window(0, 3).is_err());
    }
}
