//! Reduced time-series representations.
//!
//! The adaptive-length piecewise forms live here because the SAPLA driver
//! produces them; the symbolic/polynomial variants are thin data carriers
//! shared with the baseline methods (`sapla-baselines` implements their
//! construction and reconstruction details).

use crate::error::{Error, Result};
use crate::fit::LineFit;
use crate::series::TimeSeries;

/// One adaptive-length linear segment `ĉ_i = ⟨a_i, b_i, r_i⟩`
/// (Definition 3.2): the line `a·u + b` over window-local `u`, ending at
/// the **inclusive** global right endpoint `r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSegment {
    /// Slope `a_i`.
    pub a: f64,
    /// Y-intercept `b_i` (value at the segment's first point).
    pub b: f64,
    /// Inclusive global index of the segment's last point `r_i`.
    pub r: usize,
}

/// One adaptive-length constant segment `⟨v_i, r_i⟩` (APCA-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantSegment {
    /// Constant value `v_i`.
    pub v: f64,
    /// Inclusive global index of the segment's last point `r_i`.
    pub r: usize,
}

/// An adaptive-length piecewise-linear representation
/// `Ĉ = {⟨a_0, b_0, r_0⟩, …, ⟨a_{N−1}, b_{N−1}, r_{N−1}⟩}`.
///
/// Produced by SAPLA and APLA (and by PLA with equal-length segments).
/// Segment `i` covers global indices `[r_{i−1}+1, r_i]` with `r_{−1} = −1`.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    segs: Vec<LinearSegment>,
}

impl PiecewiseLinear {
    /// Build a representation from segments, validating that endpoints are
    /// strictly increasing.
    ///
    /// # Errors
    ///
    /// [`Error::MalformedRepresentation`] on empty input or non-increasing
    /// endpoints.
    pub fn new(segs: Vec<LinearSegment>) -> Result<Self> {
        if segs.is_empty() {
            return Err(Error::MalformedRepresentation { reason: "no segments" });
        }
        for w in segs.windows(2) {
            if w[1].r <= w[0].r {
                return Err(Error::MalformedRepresentation {
                    reason: "segment endpoints must be strictly increasing",
                });
            }
        }
        Ok(PiecewiseLinear { segs })
    }

    /// The segments.
    #[inline]
    pub fn segments(&self) -> &[LinearSegment] {
        &self.segs
    }

    /// Number of segments `N`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segs.len()
    }

    /// Length `n` of the original series this representation covers.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.segs.last().map_or(0, |s| s.r + 1)
    }

    /// First global index covered by segment `i`.
    #[inline]
    pub fn start(&self, i: usize) -> usize {
        if i == 0 {
            0
        } else {
            self.segs[i - 1].r + 1
        }
    }

    /// Number of points in segment `i`.
    #[inline]
    pub fn seg_len(&self, i: usize) -> usize {
        self.segs[i].r + 1 - self.start(i)
    }

    /// The inclusive right endpoints `r_0 < r_1 < … < r_{N−1}`.
    pub fn endpoints(&self) -> Vec<usize> {
        self.segs.iter().map(|s| s.r).collect()
    }

    /// Reconstructed value `č_t` at global index `t`.
    ///
    /// Uses binary search over the endpoints: `O(log N)`.
    pub fn value_at(&self, t: usize) -> f64 {
        let i = self.segs.partition_point(|s| s.r < t);
        let i = i.min(self.segs.len() - 1);
        let u = t - self.start(i);
        self.segs[i].a * u as f64 + self.segs[i].b
    }

    /// Reconstruct the full series `Č` (Definition 3.3).
    pub fn reconstruct(&self) -> TimeSeries {
        let n = self.series_len();
        let mut out = Vec::with_capacity(n);
        let mut start = 0usize;
        for seg in &self.segs {
            for u in 0..=(seg.r - start) {
                out.push(seg.a * u as f64 + seg.b);
            }
            start = seg.r + 1;
        }
        TimeSeries::new(out).expect("reconstruction of a valid representation is non-empty")
    }

    /// Max deviation `ε` between the original series and the reconstruction
    /// (Definition 3.4).
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] if `original` has a different length.
    pub fn max_deviation(&self, original: &TimeSeries) -> Result<f64> {
        if original.len() != self.series_len() {
            return Err(Error::LengthMismatch { left: original.len(), right: self.series_len() });
        }
        let mut max = 0.0f64;
        let mut start = 0usize;
        let values = original.values();
        for seg in &self.segs {
            for u in 0..=(seg.r - start) {
                let d = (values[start + u] - (seg.a * u as f64 + seg.b)).abs();
                max = max.max(d);
            }
            start = seg.r + 1;
        }
        Ok(max)
    }

    /// Per-segment max deviations `ε_i`.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] if `original` has a different length.
    pub fn segment_deviations(&self, original: &TimeSeries) -> Result<Vec<f64>> {
        if original.len() != self.series_len() {
            return Err(Error::LengthMismatch { left: original.len(), right: self.series_len() });
        }
        let values = original.values();
        let mut out = Vec::with_capacity(self.segs.len());
        let mut start = 0usize;
        for seg in &self.segs {
            let fit = LineFit { a: seg.a, b: seg.b, len: seg.r + 1 - start };
            out.push(fit.max_deviation(&values[start..=seg.r]));
            start = seg.r + 1;
        }
        Ok(out)
    }

    /// Restrict the representation's reconstructed curve to new endpoints
    /// `cuts` (a superset of this representation's own endpoints is typical).
    ///
    /// Each produced segment keeps the covering segment's slope and shifts
    /// the intercept (`b' = a·offset + b`), so the reconstructed curve is
    /// unchanged — the property `Dist_PAR`'s partition step (Definition 5.1)
    /// relies on.
    ///
    /// # Errors
    ///
    /// [`Error::MalformedRepresentation`] if `cuts` is not a strictly
    /// increasing sequence ending at `series_len() − 1` and containing this
    /// representation's endpoints.
    pub fn partition(&self, cuts: &[usize]) -> Result<PiecewiseLinear> {
        if cuts.last().copied() != Some(self.series_len() - 1) {
            return Err(Error::MalformedRepresentation {
                reason: "partition must end at the series' last index",
            });
        }
        let mut segs = Vec::with_capacity(cuts.len());
        let mut own = 0usize; // index of the covering original segment
        let mut prev_end: isize = -1;
        for &cut in cuts {
            if cut as isize <= prev_end {
                return Err(Error::MalformedRepresentation {
                    reason: "partition endpoints must be strictly increasing",
                });
            }
            while self.segs[own].r < cut {
                own += 1;
            }
            let seg = self.segs[own];
            let own_start = self.start(own);
            let new_start = (prev_end + 1) as usize;
            if new_start < own_start {
                return Err(Error::MalformedRepresentation {
                    reason: "partition must contain the representation's own endpoints",
                });
            }
            let offset = (new_start - own_start) as f64;
            segs.push(LinearSegment { a: seg.a, b: seg.a * offset + seg.b, r: cut });
            prev_end = cut as isize;
        }
        PiecewiseLinear::new(segs)
    }
}

/// An adaptive-length piecewise-constant representation (APCA / PAA form).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseConstant {
    segs: Vec<ConstantSegment>,
}

impl PiecewiseConstant {
    /// Build a representation from segments, validating endpoints.
    ///
    /// # Errors
    ///
    /// [`Error::MalformedRepresentation`] on empty input or non-increasing
    /// endpoints.
    pub fn new(segs: Vec<ConstantSegment>) -> Result<Self> {
        if segs.is_empty() {
            return Err(Error::MalformedRepresentation { reason: "no segments" });
        }
        for w in segs.windows(2) {
            if w[1].r <= w[0].r {
                return Err(Error::MalformedRepresentation {
                    reason: "segment endpoints must be strictly increasing",
                });
            }
        }
        Ok(PiecewiseConstant { segs })
    }

    /// The segments.
    #[inline]
    pub fn segments(&self) -> &[ConstantSegment] {
        &self.segs
    }

    /// Number of segments `N`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segs.len()
    }

    /// Length `n` of the original series this representation covers.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.segs.last().map_or(0, |s| s.r + 1)
    }

    /// View as a piecewise-linear representation with zero slopes
    /// (constants are the `a = 0` special case — this is how `Dist_PAR`
    /// applies to APCA/PAA representations).
    pub fn to_linear(&self) -> PiecewiseLinear {
        PiecewiseLinear {
            segs: self.segs.iter().map(|s| LinearSegment { a: 0.0, b: s.v, r: s.r }).collect(),
        }
    }

    /// Reconstruct the full series.
    pub fn reconstruct(&self) -> TimeSeries {
        let n = self.series_len();
        let mut out = Vec::with_capacity(n);
        let mut start = 0usize;
        for seg in &self.segs {
            out.extend(std::iter::repeat_n(seg.v, seg.r + 1 - start));
            start = seg.r + 1;
        }
        TimeSeries::new(out).expect("reconstruction of a valid representation is non-empty")
    }

    /// Max deviation against the original series.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] if `original` has a different length.
    pub fn max_deviation(&self, original: &TimeSeries) -> Result<f64> {
        if original.len() != self.series_len() {
            return Err(Error::LengthMismatch { left: original.len(), right: self.series_len() });
        }
        let values = original.values();
        let mut max = 0.0f64;
        let mut start = 0usize;
        for seg in &self.segs {
            for &v in &values[start..=seg.r] {
                max = max.max((v - seg.v).abs());
            }
            start = seg.r + 1;
        }
        Ok(max)
    }
}

/// Polynomial-coefficient representation (CHEBY-style): coefficients with
/// respect to an orthonormal polynomial basis over `n` sample points.
///
/// Construction and reconstruction live in `sapla-baselines::cheby`.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyCoeffs {
    /// Basis coefficients (degree 0, 1, …).
    pub coeffs: Vec<f64>,
    /// Length of the original series.
    pub n: usize,
}

/// Symbolic representation (SAX-style): one alphabet symbol per equal-length
/// segment.
///
/// Construction, reconstruction and MINDIST live in
/// `sapla-baselines::sax` / `sapla-distance::sax`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicWord {
    /// Symbol indices, one per segment, each `< alphabet_size`.
    pub symbols: Vec<u8>,
    /// Size of the discretisation alphabet.
    pub alphabet_size: usize,
    /// Length of the original series.
    pub n: usize,
}

/// A reduced representation produced by any of the implemented methods.
#[derive(Debug, Clone, PartialEq)]
pub enum Representation {
    /// Adaptive or equal-length piecewise linear (SAPLA, APLA, PLA).
    Linear(PiecewiseLinear),
    /// Adaptive or equal-length piecewise constant (APCA, PAA, PAALM).
    Constant(PiecewiseConstant),
    /// Polynomial coefficients (CHEBY).
    Polynomial(PolyCoeffs),
    /// Symbolic word (SAX).
    Symbolic(SymbolicWord),
}

impl Representation {
    /// Length of the original series this representation covers.
    pub fn series_len(&self) -> usize {
        match self {
            Representation::Linear(r) => r.series_len(),
            Representation::Constant(r) => r.series_len(),
            Representation::Polynomial(r) => r.n,
            Representation::Symbolic(r) => r.n,
        }
    }

    /// Number of segments (polynomials count one "segment" per coefficient).
    pub fn num_segments(&self) -> usize {
        match self {
            Representation::Linear(r) => r.num_segments(),
            Representation::Constant(r) => r.num_segments(),
            Representation::Polynomial(r) => r.coeffs.len(),
            Representation::Symbolic(r) => r.symbols.len(),
        }
    }

    /// Borrow the linear form, if this is a linear representation.
    pub fn as_linear(&self) -> Option<&PiecewiseLinear> {
        match self {
            Representation::Linear(r) => Some(r),
            _ => None,
        }
    }

    /// Borrow the constant form, if this is a constant representation.
    pub fn as_constant(&self) -> Option<&PiecewiseConstant> {
        match self {
            Representation::Constant(r) => Some(r),
            _ => None,
        }
    }

    /// A piecewise-linear view of the representation, if one exists
    /// (constants are promoted with zero slope).
    pub fn linear_view(&self) -> Option<PiecewiseLinear> {
        match self {
            Representation::Linear(r) => Some(r.clone()),
            Representation::Constant(r) => Some(r.to_linear()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    fn pl(segs: &[(f64, f64, usize)]) -> PiecewiseLinear {
        PiecewiseLinear::new(segs.iter().map(|&(a, b, r)| LinearSegment { a, b, r }).collect())
            .unwrap()
    }

    #[test]
    fn rejects_malformed_segments() {
        assert!(PiecewiseLinear::new(vec![]).is_err());
        assert!(PiecewiseLinear::new(vec![
            LinearSegment { a: 0.0, b: 0.0, r: 3 },
            LinearSegment { a: 0.0, b: 0.0, r: 3 },
        ])
        .is_err());
        assert!(PiecewiseConstant::new(vec![
            ConstantSegment { v: 0.0, r: 5 },
            ConstantSegment { v: 0.0, r: 2 },
        ])
        .is_err());
    }

    #[test]
    fn geometry_helpers() {
        let r = pl(&[(1.0, 0.0, 2), (0.0, 5.0, 5)]);
        assert_eq!(r.num_segments(), 2);
        assert_eq!(r.series_len(), 6);
        assert_eq!(r.start(0), 0);
        assert_eq!(r.start(1), 3);
        assert_eq!(r.seg_len(0), 3);
        assert_eq!(r.seg_len(1), 3);
        assert_eq!(r.endpoints(), vec![2, 5]);
    }

    #[test]
    fn reconstruct_and_value_at_agree() {
        let r = pl(&[(1.0, 0.0, 2), (-2.0, 10.0, 5)]);
        let rec = r.reconstruct();
        assert_eq!(rec.values(), &[0.0, 1.0, 2.0, 10.0, 8.0, 6.0]);
        for t in 0..6 {
            assert_eq!(r.value_at(t), rec.at(t));
        }
    }

    #[test]
    fn max_deviation_exact() {
        let r = pl(&[(0.0, 1.0, 3)]);
        let orig = ts(&[1.0, 2.0, 1.0, -1.5]);
        assert!((r.max_deviation(&orig).unwrap() - 2.5).abs() < 1e-12);
        assert!(r.max_deviation(&ts(&[1.0])).is_err());
        let per = r.segment_deviations(&orig).unwrap();
        assert_eq!(per.len(), 1);
        assert!((per[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn partition_preserves_reconstruction() {
        let r = pl(&[(1.0, 0.0, 3), (-1.0, 7.0, 7)]);
        let p = r.partition(&[1, 3, 5, 7]).unwrap();
        assert_eq!(p.num_segments(), 4);
        assert_eq!(p.reconstruct().values(), r.reconstruct().values());
    }

    #[test]
    fn partition_validates_input() {
        let r = pl(&[(1.0, 0.0, 3), (-1.0, 7.0, 7)]);
        assert!(r.partition(&[1, 3, 5]).is_err()); // does not end at n-1
        assert!(r.partition(&[3, 3, 7]).is_err()); // not strictly increasing
        assert!(r.partition(&[5, 7]).is_err()); // misses own endpoint 3
    }

    #[test]
    fn constant_roundtrip_and_linear_view() {
        let c = PiecewiseConstant::new(vec![
            ConstantSegment { v: 2.0, r: 1 },
            ConstantSegment { v: -1.0, r: 4 },
        ])
        .unwrap();
        assert_eq!(c.reconstruct().values(), &[2.0, 2.0, -1.0, -1.0, -1.0]);
        let lin = c.to_linear();
        assert_eq!(lin.reconstruct().values(), c.reconstruct().values());
        let orig = ts(&[2.0, 3.0, -1.0, -1.0, 0.0]);
        assert!((c.max_deviation(&orig).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn representation_enum_accessors() {
        let lin = Representation::Linear(pl(&[(0.0, 0.0, 4)]));
        assert_eq!(lin.series_len(), 5);
        assert_eq!(lin.num_segments(), 1);
        assert!(lin.as_linear().is_some());
        assert!(lin.as_constant().is_none());
        let con = Representation::Constant(
            PiecewiseConstant::new(vec![ConstantSegment { v: 1.0, r: 2 }]).unwrap(),
        );
        assert!(con.linear_view().is_some());
        let poly = Representation::Polynomial(PolyCoeffs { coeffs: vec![1.0, 2.0], n: 8 });
        assert_eq!(poly.num_segments(), 2);
        assert!(poly.linear_view().is_none());
        let sym = Representation::Symbolic(SymbolicWord {
            symbols: vec![0, 1, 2],
            alphabet_size: 4,
            n: 9,
        });
        assert_eq!(sym.series_len(), 9);
    }
}
