//! Property tests that only exist under `--features strict-invariants`:
//! every reduction below runs with the runtime invariant layer armed
//! (`src/strict.rs`), so a passing case certifies tiling, finite fits,
//! well-formed `β` and — in Exact mode — that each `β_i` covers an
//! independently recomputed per-segment deviation.
#![cfg(feature = "strict-invariants")]

use proptest::prelude::*;
use sapla_core::sapla::{BoundMode, Sapla, SaplaConfig, SaplaScratch};
use sapla_core::TimeSeries;

fn series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50.0f64..50.0, 8..96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random series, segment budgets and both bound modes all pass the
    /// armed invariant checks end to end.
    #[test]
    fn reductions_satisfy_strict_invariants(v in series(), n in 2usize..8) {
        let ts = TimeSeries::new(v).unwrap();
        let mut scratch = SaplaScratch::new();
        for mode in [BoundMode::Paper, BoundMode::Exact] {
            let config = SaplaConfig { bound_mode: mode, ..SaplaConfig::default() };
            let repr = Sapla::with_segments(n)
                .with_config(config)
                .reduce_with(&ts, &mut scratch)
                .unwrap();
            prop_assert!(repr.num_segments() >= 1);
        }
    }

    /// Ablation configs (stages toggled off) still produce output that
    /// passes the invariant layer — the checks hold for every stage
    /// combination, not just the full pipeline.
    #[test]
    fn ablated_pipelines_satisfy_strict_invariants(v in series(), stages in 0u8..4) {
        let ts = TimeSeries::new(v).unwrap();
        let config = SaplaConfig {
            bound_mode: BoundMode::Exact,
            refine_split_merge: stages & 1 != 0,
            endpoint_movement: stages & 2 != 0,
            ..SaplaConfig::default()
        };
        let repr = Sapla::with_segments(4).with_config(config).reduce(&ts).unwrap();
        prop_assert!(repr.num_segments() >= 1);
    }
}
