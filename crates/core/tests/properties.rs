//! Property-based tests over the core fitting / equation / SAPLA
//! machinery.

use proptest::prelude::*;
use sapla_core::area::{area_between_lines, increment_area, reconstruction_area};
use sapla_core::equations::*;
use sapla_core::sapla::{BoundMode, Sapla, SaplaConfig};
use sapla_core::{LineFit, SegStats, TimeSeries};

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

fn window() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 3..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. 1 equals the prefix-sum fit on any window.
    #[test]
    fn eq1_equals_reference_fit(v in window()) {
        let a = eq1_fit(&v);
        let b = LineFit::over_slice(&v);
        prop_assert!(approx(a.a, b.a) && approx(a.b, b.b));
    }

    /// The closed-form increments/decrements equal direct refits.
    #[test]
    fn incremental_equations_are_exact(v in window()) {
        let n = v.len();
        let fit = LineFit::over_slice(&v[..n - 1]);
        prop_assert!(fits_eq(&eq2_increment(&fit, v[n - 1]), &LineFit::over_slice(&v)));
        let full = LineFit::over_slice(&v);
        prop_assert!(fits_eq(&eq9_decrease_right(&full, v[n - 1]),
                             &LineFit::over_slice(&v[..n - 1])));
        prop_assert!(fits_eq(&eq11_shrink_left(&full, v[0]),
                             &LineFit::over_slice(&v[1..])));
        let tail = LineFit::over_slice(&v[1..]);
        prop_assert!(fits_eq(&eq10_extend_left(&tail, v[0]), &full));
    }

    /// Merge/split closed forms invert each other at any cut.
    #[test]
    fn merge_split_roundtrip(v in window(), cut_frac in 0.2f64..0.8) {
        let cut = ((v.len() as f64 * cut_frac) as usize).clamp(1, v.len() - 1);
        let left = LineFit::over_slice(&v[..cut]);
        let right = LineFit::over_slice(&v[cut..]);
        let merged = eq3_eq4_merge(&left, &right);
        prop_assert!(fits_eq(&merged, &LineFit::over_slice(&v)));
        if cut >= 1 && v.len() - cut >= 1 {
            prop_assert!(fits_eq(&eq5_eq6_split_left(&merged, &right), &left));
            prop_assert!(fits_eq(&eq7_eq8_split_right(&merged, &left), &right));
        }
    }

    /// SegStats edits commute with direct fits under composition.
    #[test]
    fn segstats_composition(v in window()) {
        let mut stats = SegStats::single(v[0]);
        for &x in &v[1..] {
            stats = stats.push_right(x);
        }
        prop_assert!(fits_eq(&stats.fit(), &LineFit::over_slice(&v)));
        // Pop everything back off the left.
        let mut stats2 = stats;
        for &x in &v[..v.len() - 1] {
            if stats2.len >= 2 {
                stats2 = stats2.pop_left(x);
            }
        }
        prop_assert!(approx(stats2.sum_c, *v.last().unwrap()));
    }

    /// Areas are non-negative and zero only for identical lines.
    #[test]
    fn areas_are_nonnegative(
        a1 in -5.0f64..5.0, b1 in -50.0f64..50.0,
        a2 in -5.0f64..5.0, b2 in -50.0f64..50.0,
        span in 1.0f64..60.0,
    ) {
        let area = area_between_lines(a1, b1, a2, b2, 0.0, span);
        prop_assert!(area >= 0.0);
        prop_assert!(approx(area_between_lines(a1, b1, a1, b1, 0.0, span), 0.0));
        // Symmetry.
        prop_assert!(approx(area, area_between_lines(a2, b2, a1, b1, 0.0, span)));
    }

    /// Increment area is zero iff the new point lies on the fitted line.
    #[test]
    fn increment_area_zero_iff_collinear(v in window()) {
        let fit = LineFit::over_slice(&v);
        let on_line = fit.extended_value();
        let new = eq2_increment(&fit, on_line);
        prop_assert!(increment_area(&fit, &new).abs() < 1e-6);
        let off = eq2_increment(&fit, on_line + 10.0);
        prop_assert!(increment_area(&fit, &off) > 1e-6);
    }

    /// Reconstruction area of collinear halves is zero.
    #[test]
    fn reconstruction_area_collinear(a in -3.0f64..3.0, b in -20.0f64..20.0,
                                     len in 6usize..40, cut_frac in 0.3f64..0.7) {
        let v: Vec<f64> = (0..len).map(|u| a * u as f64 + b).collect();
        let cut = ((len as f64 * cut_frac) as usize).clamp(2, len - 2);
        let left = LineFit::over_slice(&v[..cut]);
        let right = LineFit::over_slice(&v[cut..]);
        let merged = eq3_eq4_merge(&left, &right);
        prop_assert!(reconstruction_area(&left, &right, &merged).abs() < 1e-6);
    }

    /// SAPLA output invariants on arbitrary series: exact segment count,
    /// contiguous coverage, finite deviation, determinism.
    #[test]
    fn sapla_invariants(v in proptest::collection::vec(-50.0f64..50.0, 24..200),
                        n_segs in 1usize..8) {
        let ts = TimeSeries::new(v).unwrap();
        let reducer = Sapla::with_segments(n_segs);
        let rep = reducer.reduce(&ts).unwrap();
        prop_assert_eq!(rep.num_segments(), n_segs.min(ts.len() / 2).max(1));
        prop_assert_eq!(rep.series_len(), ts.len());
        let dev = rep.max_deviation(&ts).unwrap();
        prop_assert!(dev.is_finite() && dev >= 0.0);
        prop_assert_eq!(rep, reducer.reduce(&ts).unwrap());
    }

    /// Exact-bound mode shares the invariants.
    #[test]
    fn sapla_exact_mode_invariants(v in proptest::collection::vec(-50.0f64..50.0, 24..120)) {
        let ts = TimeSeries::new(v).unwrap();
        let cfg = SaplaConfig { bound_mode: BoundMode::Exact, ..SaplaConfig::default() };
        let rep = Sapla::with_segments(4).with_config(cfg).reduce(&ts).unwrap();
        prop_assert_eq!(rep.num_segments(), 4);
        prop_assert!(rep.max_deviation(&ts).unwrap().is_finite());
    }

    /// Partition onto a refinement never changes the reconstruction.
    #[test]
    fn partition_preserves_curve(v in proptest::collection::vec(-50.0f64..50.0, 24..120),
                                 extra in proptest::collection::vec(1usize..119, 1..6)) {
        let ts = TimeSeries::new(v).unwrap();
        let rep = Sapla::with_segments(3).reduce(&ts).unwrap();
        let mut cuts: Vec<usize> = rep.endpoints();
        for e in extra {
            if e < ts.len() - 1 {
                cuts.push(e);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        let part = rep.partition(&cuts).unwrap();
        let a = rep.reconstruct();
        let b = part.reconstruct();
        for (x, y) in a.values().iter().zip(b.values()) {
            prop_assert!(approx(*x, *y));
        }
    }
}

fn fits_eq(a: &LineFit, b: &LineFit) -> bool {
    a.len == b.len && approx(a.a, b.a) && approx(a.b, b.b)
}
