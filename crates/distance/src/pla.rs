//! `Dist_PLA` — Chen et al.'s lower bound for equal-length linear
//! representations: the per-segment Eq. 12 sum over identical windows.

use sapla_core::{Error, PiecewiseLinear, Result};

use crate::dist_s::dist_s_sq;

/// `Dist_PLA` between two linear representations with identical segment
/// endpoints (the equal-length PLA case; also the aligned-window primitive
/// `Dist_PAR` reduces to after partitioning).
///
/// # Errors
///
/// [`Error::LengthMismatch`] on different series lengths and
/// [`Error::MalformedRepresentation`] on mismatched endpoints.
pub fn dist_pla(q: &PiecewiseLinear, c: &PiecewiseLinear) -> Result<f64> {
    if q.series_len() != c.series_len() {
        return Err(Error::LengthMismatch { left: q.series_len(), right: c.series_len() });
    }
    if q.num_segments() != c.num_segments() {
        return Err(Error::MalformedRepresentation {
            reason: "Dist_PLA requires identical segmentations",
        });
    }
    let mut sum = 0.0;
    let mut start = 0usize;
    for (qs, cs) in q.segments().iter().zip(c.segments()) {
        if qs.r != cs.r {
            return Err(Error::MalformedRepresentation {
                reason: "Dist_PLA requires identical segmentations",
            });
        }
        sum += dist_s_sq(qs.a, qs.b, cs.a, cs.b, qs.r + 1 - start);
        start = qs.r + 1;
    }
    Ok(sum.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::Pla;
    use sapla_core::TimeSeries;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    #[test]
    fn lower_bounds_euclidean() {
        let q = ts((0..60).map(|t| (t as f64 * 0.21).sin() * 2.0 + 0.05 * t as f64).collect());
        let c = ts((0..60).map(|t| (t as f64 * 0.19).cos() * 2.0).collect());
        for k in [3usize, 6, 10] {
            let qr = Pla.reduce_to_segments(&q, k).unwrap();
            let cr = Pla.reduce_to_segments(&c, k).unwrap();
            let lb = dist_pla(&qr, &cr).unwrap();
            let exact = q.euclidean(&c).unwrap();
            assert!(lb <= exact + 1e-9, "k={k}: {lb} > {exact}");
        }
    }

    #[test]
    fn agrees_with_dist_par_on_aligned_reps() {
        let q = ts((0..40).map(|t| ((t * 5) % 17) as f64).collect());
        let c = ts((0..40).map(|t| ((t * 3) % 13) as f64).collect());
        let qr = Pla.reduce_to_segments(&q, 5).unwrap();
        let cr = Pla.reduce_to_segments(&c, 5).unwrap();
        let a = dist_pla(&qr, &cr).unwrap();
        let b = crate::dist_par(&qr, &cr).unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn exact_on_truly_linear_pieces() {
        let q = ts((0..10).map(|t| t as f64).collect());
        let c = ts((0..10).map(|t| 2.0 * t as f64 + 1.0).collect());
        let qr = Pla.reduce_to_segments(&q, 2).unwrap();
        let cr = Pla.reduce_to_segments(&c, 2).unwrap();
        let lb = dist_pla(&qr, &cr).unwrap();
        let exact = q.euclidean(&c).unwrap();
        assert!((lb - exact).abs() < 1e-9);
    }
}
