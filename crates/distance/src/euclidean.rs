//! Exact Euclidean distances over raw series.
//!
//! All three entry points delegate to the blocked multi-accumulator
//! kernel [`TimeSeries::euclidean_sq_bounded`], so full and abandoning
//! evaluations — and [`TimeSeries::euclidean`] itself — agree
//! bit-for-bit on every survivor.

use sapla_core::{Result, TimeSeries};

/// Squared Euclidean distance between two equal-length series.
///
/// # Errors
///
/// [`sapla_core::Error::LengthMismatch`] when the lengths differ.
pub fn euclidean_sq(a: &TimeSeries, b: &TimeSeries) -> Result<f64> {
    Ok(a.euclidean_sq_bounded(b, f64::INFINITY)?.unwrap_or(0.0))
}

/// Euclidean distance between two equal-length series.
///
/// # Errors
///
/// [`sapla_core::Error::LengthMismatch`] when the lengths differ.
pub fn euclidean(a: &TimeSeries, b: &TimeSeries) -> Result<f64> {
    euclidean_sq(a, b).map(f64::sqrt)
}

/// Early-abandoning Euclidean distance: returns `None` as soon as the
/// block-level partial squared sum exceeds `best_sq` (the
/// kth-nearest-so-far bound in a k-NN refinement loop), otherwise the
/// exact distance — bit-identical to [`euclidean`] on survivors.
///
/// # Errors
///
/// [`sapla_core::Error::LengthMismatch`] when the lengths differ.
pub fn euclidean_early_abandon(
    a: &TimeSeries,
    b: &TimeSeries,
    best_sq: f64,
) -> Result<Option<f64>> {
    Ok(a.euclidean_sq_bounded(b, best_sq)?.map(f64::sqrt))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn matches_hand_computation() {
        let a = ts(&[0.0, 0.0, 3.0]);
        let b = ts(&[0.0, 4.0, 3.0]);
        assert_eq!(euclidean_sq(&a, &b).unwrap(), 16.0);
        assert_eq!(euclidean(&a, &b).unwrap(), 4.0);
    }

    #[test]
    fn rejects_length_mismatch() {
        let a = ts(&[1.0]);
        let b = ts(&[1.0, 2.0]);
        assert!(euclidean(&a, &b).is_err());
        assert!(euclidean_early_abandon(&a, &b, 1.0).is_err());
    }

    #[test]
    fn early_abandon_triggers_and_matches() {
        let a = ts(&[0.0; 8]);
        let b = ts(&[2.0; 8]);
        // Full distance² = 32.
        assert_eq!(euclidean_early_abandon(&a, &b, 10.0).unwrap(), None);
        let exact = euclidean_early_abandon(&a, &b, 100.0).unwrap().unwrap();
        assert!((exact - 32f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_for_identical_series() {
        let a = ts(&[1.5, -2.5, 3.0]);
        assert_eq!(euclidean(&a, &a).unwrap(), 0.0);
        assert_eq!(euclidean_early_abandon(&a, &a, 0.0).unwrap(), Some(0.0));
    }
}
