//! Coefficient-space distance for polynomial (CHEBY) representations.
//!
//! The basis is orthonormal, so by Parseval the Euclidean distance of the
//! coefficient vectors lower-bounds the Euclidean distance of the original
//! series (Cai & Ng's `Dist_CHEBY` plays the same role).

use sapla_core::PolyCoeffs;

/// `Dist_CHEBY`: Euclidean distance between coefficient vectors (shorter
/// vectors are implicitly zero-padded).
pub fn dist_cheby(q: &PolyCoeffs, c: &PolyCoeffs) -> f64 {
    let n = q.coeffs.len().max(c.coeffs.len());
    let get = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
    (0..n)
        .map(|i| {
            let d = get(&q.coeffs, i) - get(&c.coeffs, i);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::Cheby;
    use sapla_core::TimeSeries;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    #[test]
    fn lower_bounds_euclidean() {
        let q = ts((0..100).map(|t| (t as f64 * 0.13).sin() * 2.0 + 0.01 * t as f64).collect());
        let c = ts((0..100).map(|t| (t as f64 * 0.11).cos() * 2.5).collect());
        for k in [4usize, 10, 20] {
            let qc = Cheby.reduce_to_coeffs(&q, k).unwrap();
            let cc = Cheby.reduce_to_coeffs(&c, k).unwrap();
            let lb = dist_cheby(&qc, &cc);
            let exact = q.euclidean(&c).unwrap();
            assert!(lb <= exact + 1e-9, "k={k}: {lb} > {exact}");
        }
    }

    #[test]
    fn converges_to_exact_with_full_basis() {
        let q = ts((0..16).map(|t| ((t * 7) % 5) as f64).collect());
        let c = ts((0..16).map(|t| ((t * 3) % 7) as f64).collect());
        let qc = Cheby.reduce_to_coeffs(&q, 16).unwrap();
        let cc = Cheby.reduce_to_coeffs(&c, 16).unwrap();
        let lb = dist_cheby(&qc, &cc);
        let exact = q.euclidean(&c).unwrap();
        assert!((lb - exact).abs() < 1e-7, "{lb} vs {exact}");
    }

    #[test]
    fn pads_shorter_vectors() {
        let a = PolyCoeffs { coeffs: vec![3.0, 4.0], n: 8 };
        let b = PolyCoeffs { coeffs: vec![3.0], n: 8 };
        assert_eq!(dist_cheby(&a, &b), 4.0);
    }
}
