//! `Dist_AE` — APCA's tight (but non-lower-bounding) approximation:
//! the Euclidean distance between the raw query and the candidate's
//! reconstruction. `O(n)`.

use sapla_core::{Error, PiecewiseLinear, Result, TimeSeries};

/// `Dist_AE(Q, Ĉ)`: Euclidean distance between the raw query and the
/// reconstruction of `Ĉ`. Tight, but may exceed `Dist(Q, C)` — the paper's
/// Fig. 10 example has `Dist_AE = 20 > Dist = 17`.
///
/// # Errors
///
/// [`Error::LengthMismatch`] when the lengths differ.
pub fn dist_ae(query: &TimeSeries, c: &PiecewiseLinear) -> Result<f64> {
    if query.len() != c.series_len() {
        return Err(Error::LengthMismatch { left: query.len(), right: c.series_len() });
    }
    let mut sum = 0.0f64;
    let mut start = 0usize;
    let values = query.values();
    for seg in c.segments() {
        for u in 0..=(seg.r - start) {
            let d = values[start + u] - (seg.a * u as f64 + seg.b);
            sum += d * d;
        }
        start = seg.r + 1;
    }
    Ok(sum.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_core::sapla::Sapla;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    #[test]
    fn equals_euclid_to_reconstruction() {
        let c = ts((0..36).map(|t| ((t * 7) % 13) as f64).collect());
        let rep = Sapla::with_segments(4).reduce(&c).unwrap();
        let q = ts((0..36).map(|t| (t as f64 * 0.3).cos() * 2.0).collect());
        let ae = dist_ae(&q, &rep).unwrap();
        let brute = q.euclidean(&rep.reconstruct()).unwrap();
        assert!((ae - brute).abs() < 1e-9);
    }

    #[test]
    fn can_exceed_true_distance() {
        // Construct the paper's Fig. 10 situation: the candidate's
        // reconstruction overshoots the original, so Dist_AE overshoots
        // the Euclidean distance for a query equal to the original.
        let c = ts(vec![0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0]);
        let rep = Sapla::with_segments(1).reduce(&c).unwrap();
        let ae = dist_ae(&c, &rep).unwrap();
        // Dist(Q, C) with Q = C is zero; AE is clearly positive.
        assert!(ae > 1.0, "AE {ae} must break the lower-bound lemma here");
    }

    #[test]
    fn tighter_than_lb_for_typical_pairs() {
        let q = ts((0..48).map(|t| (t as f64 * 0.2).sin() * 4.0).collect());
        let c = ts((0..48).map(|t| (t as f64 * 0.2 + 0.7).sin() * 4.0).collect());
        let rep = Sapla::with_segments(5).reduce(&c).unwrap();
        let ae = dist_ae(&q, &rep).unwrap();
        let lb = crate::dist_lb(&q.prefix_sums(), &rep).unwrap();
        let exact = q.euclidean(&c).unwrap();
        assert!(lb <= exact + 1e-9);
        assert!((ae - exact).abs() <= (lb - exact).abs() + 1e-9, "AE should be tighter");
    }

    #[test]
    fn rejects_length_mismatch() {
        let rep = Sapla::with_segments(2).reduce(&ts((0..10).map(|t| t as f64).collect())).unwrap();
        assert!(dist_ae(&ts(vec![0.0; 12]), &rep).is_err());
    }
}
