//! SIMD evaluation of the Eq. 12 window terms, four windows at a time.
//!
//! The fused `Dist_PAR` merge-walk is sequentially data-dependent (the
//! next window depends on which endpoint list advances), but the
//! *arithmetic* per window — [`crate::dist_s::dist_s_sq_terms`] over
//! `(Δa, Δb, l)` — is independent across windows. The planned kernel
//! therefore stages up to four windows' deltas and evaluates their terms
//! with one packed pass here, then **accumulates them sequentially** in
//! walk order with the abandon check after every term, exactly as the
//! scalar walk does.
//!
//! Bit-identity: each vector lane executes the scalar term's operation
//! sequence — `(((lf·(lf−1))·(2lf−1))/6·Δa)·Δa + ((lf·(lf−1))·Δa)·Δb +
//! (lf·Δb)·Δb`, summed `(t1 + t2) + t3` — with correctly rounded IEEE-754
//! ops and no FMA, so every lane equals the scalar term bitwise. The
//! final `max(0.0)` guard is applied *scalar*, per lane, after
//! extraction: `_mm_max_pd`/`vmaxq_f64` have different NaN/signed-zero
//! semantics than `f64::max`, and the guard is exactly where a signed
//! zero can appear.
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(test)]
use sapla_core::simd::SimdLevel;

#[cfg(test)]
use crate::dist_s::dist_s_sq_terms;

#[cfg(target_arch = "aarch64")]
pub(crate) use arm::terms_neon;
#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{terms_avx2, terms_sse2};

/// Evaluate four Eq. 12 terms at once: `out[k] = dist_s_sq_terms(da[k],
/// db[k], lf[k])`, bitwise, whichever level runs (levels this CPU/build
/// cannot execute fall back to scalar). The production walk dispatches
/// whole-walk wrappers instead (`crate::plan`) so the kernels inline;
/// this level-switched form is the harness the bit-identity tests sweep.
#[cfg(test)]
pub(crate) fn dist_s_sq_terms_x4(
    level: SimdLevel,
    da: &[f64; 4],
    db: &[f64; 4],
    lf: &[f64; 4],
    out: &mut [f64; 4],
) {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse2 => {
            // SAFETY: SSE2 is part of the x86-64 baseline — always available.
            unsafe { x86::terms_sse2(da, db, lf, out) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if SimdLevel::Avx2.is_supported() => {
            // SAFETY: the guard verified AVX2 support at runtime.
            unsafe { x86::terms_avx2(da, db, lf, out) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => {
            // SAFETY: NEON is mandatory on AArch64 — always available.
            unsafe { arm::terms_neon(da, db, lf, out) }
        }
        _ => {
            for k in 0..4 {
                out[k] = dist_s_sq_terms(da[k], db[k], lf[k]);
            }
        }
    }
}

/// The scalar `max(0.0)` guard applied to every lane after extraction —
/// shared by all vector paths so the guard semantics cannot diverge from
/// [`dist_s_sq_terms`].
#[inline]
fn guard4(out: &mut [f64; 4]) {
    for v in out.iter_mut() {
        *v = v.max(0.0);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_storeu_pd, _mm256_sub_pd, _mm_add_pd, _mm_div_pd, _mm_loadu_pd, _mm_mul_pd,
        _mm_set1_pd, _mm_storeu_pd, _mm_sub_pd,
    };

    /// Two 2-lane passes over the Eq. 12 term body (see module docs).
    #[inline]
    #[target_feature(enable = "sse2")]
    pub(crate) unsafe fn terms_sse2(
        da: &[f64; 4],
        db: &[f64; 4],
        lf: &[f64; 4],
        out: &mut [f64; 4],
    ) {
        // SAFETY: all loads/stores cover `ptr .. ptr + 2` within the
        // fixed-size `[f64; 4]` arrays (offsets 0 and 2); unaligned
        // load/store intrinsics have no alignment requirement.
        unsafe {
            let one = _mm_set1_pd(1.0);
            let two = _mm_set1_pd(2.0);
            let six = _mm_set1_pd(6.0);
            for half in [0usize, 2] {
                let vlf = _mm_loadu_pd(lf.as_ptr().add(half));
                let vda = _mm_loadu_pd(da.as_ptr().add(half));
                let vdb = _mm_loadu_pd(db.as_ptr().add(half));
                let p = _mm_mul_pd(vlf, _mm_sub_pd(vlf, one)); // lf·(lf−1)
                let q = _mm_sub_pd(_mm_mul_pd(two, vlf), one); // 2lf−1
                let t1 = _mm_mul_pd(_mm_mul_pd(_mm_div_pd(_mm_mul_pd(p, q), six), vda), vda);
                let t2 = _mm_mul_pd(_mm_mul_pd(p, vda), vdb);
                let t3 = _mm_mul_pd(_mm_mul_pd(vlf, vdb), vdb);
                let s = _mm_add_pd(_mm_add_pd(t1, t2), t3);
                _mm_storeu_pd(out.as_mut_ptr().add(half), s);
            }
        }
        super::guard4(out);
    }

    /// One 4-lane pass over the Eq. 12 term body (see module docs).
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn terms_avx2(
        da: &[f64; 4],
        db: &[f64; 4],
        lf: &[f64; 4],
        out: &mut [f64; 4],
    ) {
        // SAFETY: loads/stores cover exactly the four elements of the
        // fixed-size `[f64; 4]` arrays; unaligned intrinsics have no
        // alignment requirement.
        unsafe {
            let one = _mm256_set1_pd(1.0);
            let vlf = _mm256_loadu_pd(lf.as_ptr());
            let vda = _mm256_loadu_pd(da.as_ptr());
            let vdb = _mm256_loadu_pd(db.as_ptr());
            let p = _mm256_mul_pd(vlf, _mm256_sub_pd(vlf, one)); // lf·(lf−1)
            let q = _mm256_sub_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), vlf), one); // 2lf−1
            let t1 = _mm256_mul_pd(
                _mm256_mul_pd(_mm256_div_pd(_mm256_mul_pd(p, q), _mm256_set1_pd(6.0)), vda),
                vda,
            );
            let t2 = _mm256_mul_pd(_mm256_mul_pd(p, vda), vdb);
            let t3 = _mm256_mul_pd(_mm256_mul_pd(vlf, vdb), vdb);
            let s = _mm256_add_pd(_mm256_add_pd(t1, t2), t3);
            _mm256_storeu_pd(out.as_mut_ptr(), s);
        }
        super::guard4(out);
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use std::arch::aarch64::{
        vaddq_f64, vdivq_f64, vdupq_n_f64, vld1q_f64, vmulq_f64, vst1q_f64, vsubq_f64,
    };

    /// Two 2-lane passes over the Eq. 12 term body (see module docs).
    #[inline]
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn terms_neon(
        da: &[f64; 4],
        db: &[f64; 4],
        lf: &[f64; 4],
        out: &mut [f64; 4],
    ) {
        // SAFETY: all loads/stores cover `ptr .. ptr + 2` within the
        // fixed-size `[f64; 4]` arrays (offsets 0 and 2).
        unsafe {
            let one = vdupq_n_f64(1.0);
            let two = vdupq_n_f64(2.0);
            let six = vdupq_n_f64(6.0);
            for half in [0usize, 2] {
                let vlf = vld1q_f64(lf.as_ptr().add(half));
                let vda = vld1q_f64(da.as_ptr().add(half));
                let vdb = vld1q_f64(db.as_ptr().add(half));
                let p = vmulq_f64(vlf, vsubq_f64(vlf, one)); // lf·(lf−1)
                let q = vsubq_f64(vmulq_f64(two, vlf), one); // 2lf−1
                let t1 = vmulq_f64(vmulq_f64(vdivq_f64(vmulq_f64(p, q), six), vda), vda);
                let t2 = vmulq_f64(vmulq_f64(p, vda), vdb);
                let t3 = vmulq_f64(vmulq_f64(vlf, vdb), vdb);
                let s = vaddq_f64(vaddq_f64(t1, t2), t3);
                vst1q_f64(out.as_mut_ptr().add(half), s);
            }
        }
        super::guard4(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_core::simd::supported_levels;

    #[test]
    fn all_levels_match_scalar_terms_bitwise() {
        let cases: [([f64; 4], [f64; 4], [f64; 4]); 3] = [
            ([0.5, -1.25, 2.0, 0.0], [1.0, -3.0, 0.25, 7.5], [1.0, 2.0, 9.0, 31.0]),
            ([1e-8, -1e8, 3.7, -0.1], [-1e-8, 1e8, -3.7, 0.1], [2.0, 5.0, 7.0, 64.0]),
            ([0.0, 0.0, 0.0, 0.0], [0.0, -0.0, 1.0, -1.0], [1.0, 1.0, 3.0, 3.0]),
        ];
        for (da, db, lf) in cases {
            let mut want = [0.0f64; 4];
            for k in 0..4 {
                want[k] = dist_s_sq_terms(da[k], db[k], lf[k]);
            }
            for level in supported_levels() {
                let mut got = [0.0f64; 4];
                dist_s_sq_terms_x4(level, &da, &db, &lf, &mut got);
                assert_eq!(want.map(f64::to_bits), got.map(f64::to_bits), "level {}", level.name());
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// Tier-1 pin: each vector lane equals the scalar Eq. 12 term
        /// bitwise on arbitrary deltas and window lengths.
        #[test]
        fn term_lanes_are_bit_identical(
            da_v in proptest::collection::vec(-1e4f64..1e4, 4),
            db_v in proptest::collection::vec(-1e4f64..1e4, 4),
            l_v in proptest::collection::vec(1.0f64..10_000.0, 4),
        ) {
            let da: [f64; 4] = [da_v[0], da_v[1], da_v[2], da_v[3]];
            let db: [f64; 4] = [db_v[0], db_v[1], db_v[2], db_v[3]];
            let lf: [f64; 4] = [l_v[0].trunc(), l_v[1].trunc(), l_v[2].trunc(), l_v[3].trunc()];
            let mut want = [0.0f64; 4];
            for k in 0..4 {
                want[k] = dist_s_sq_terms(da[k], db[k], lf[k]);
            }
            for level in supported_levels() {
                let mut got = [0.0f64; 4];
                dist_s_sq_terms_x4(level, &da, &db, &lf, &mut got);
                proptest::prop_assert_eq!(
                    want.map(f64::to_bits),
                    got.map(f64::to_bits),
                    "level {}",
                    level.name()
                );
            }
        }
    }
}
