//! `Dist_LB` — APCA's guaranteed lower bound, adapted to linear segments.
//!
//! The query's **raw data** is projected onto the candidate's segment
//! windows (an orthogonal projection onto the candidate's piecewise-linear
//! function space, `O(N)` with the query's prefix sums), after which the
//! aligned windows compare with Eq. 12. Because both operands are now
//! least-squares fits over the *same* windows, the projection argument of
//! Appendix A.5 applies unconditionally:
//! `Dist_LB(Q, Ĉ) ≤ Dist(Q, C)` for any series `C` with representation
//! `Ĉ`.

use sapla_core::{Error, LineFit, PiecewiseLinear, PrefixSums, Result};

use crate::dist_s::dist_s_sq;

/// `Dist_LB(Q, Ĉ)` given the raw query's prefix sums.
///
/// # Errors
///
/// [`Error::LengthMismatch`] when the query and representation cover
/// different lengths.
pub fn dist_lb(query_sums: &PrefixSums, c: &PiecewiseLinear) -> Result<f64> {
    dist_lb_sq(query_sums, c).map(f64::sqrt)
}

/// Squared [`dist_lb`].
///
/// # Errors
///
/// [`Error::LengthMismatch`] when the query and representation cover
/// different lengths.
pub fn dist_lb_sq(query_sums: &PrefixSums, c: &PiecewiseLinear) -> Result<f64> {
    if query_sums.len() != c.series_len() {
        return Err(Error::LengthMismatch { left: query_sums.len(), right: c.series_len() });
    }
    let mut sum = 0.0;
    let mut start = 0usize;
    for seg in c.segments() {
        let end = seg.r + 1;
        let q = LineFit::over_window(query_sums, start, end)?;
        let term = dist_s_sq(q.a, q.b, seg.a, seg.b, end - start);
        #[cfg(feature = "strict-invariants")]
        assert!(
            term.is_finite() && term >= 0.0,
            "strict-invariants: Dist_S² over [{start}, {end}) must be finite and non-negative, \
             got {term}"
        );
        sum += term;
        start = end;
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_core::sapla::Sapla;
    use sapla_core::TimeSeries;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    #[test]
    fn lower_bounds_euclidean_always() {
        // The projection argument is unconditional: check on a grid of
        // series pairs and segment counts.
        let shapes: Vec<Vec<f64>> = vec![
            (0..40).map(|t| (t as f64 * 0.3).sin() * 4.0).collect(),
            (0..40).map(|t| 0.2 * t as f64).collect(),
            (0..40).map(|t| ((t * 13) % 11) as f64).collect(),
            (0..40).map(|t| if t % 9 < 4 { 3.0 } else { -3.0 }).collect(),
        ];
        for (i, qv) in shapes.iter().enumerate() {
            for (j, cv) in shapes.iter().enumerate() {
                let q = ts(qv.clone());
                let c = ts(cv.clone());
                for n in [2usize, 4, 6] {
                    let c_rep = Sapla::with_segments(n).reduce(&c).unwrap();
                    let lb = dist_lb(&q.prefix_sums(), &c_rep).unwrap();
                    let exact = q.euclidean(&c).unwrap();
                    assert!(lb <= exact + 1e-9, "pair ({i},{j}), N={n}: lb {lb} > exact {exact}");
                }
            }
        }
    }

    #[test]
    fn zero_for_query_equal_to_reconstruction() {
        let c_rep = Sapla::with_segments(3)
            .reduce(&ts((0..30).map(|t| (t as f64 * 0.2).sin()).collect()))
            .unwrap();
        let rec = c_rep.reconstruct();
        let lb = dist_lb(&rec.prefix_sums(), &c_rep).unwrap();
        assert!(lb < 1e-9);
    }

    #[test]
    fn rejects_length_mismatch() {
        let c_rep =
            Sapla::with_segments(2).reduce(&ts((0..10).map(|t| t as f64).collect())).unwrap();
        let q = ts((0..12).map(|t| t as f64).collect());
        assert!(dist_lb(&q.prefix_sums(), &c_rep).is_err());
    }

    #[test]
    fn less_tight_than_dist_par_on_average() {
        // The paper's claim Dist_LB ≤ Dist_PAR (A.6). Verify on average
        // over a few pairs (pointwise the partition detail can differ).
        let mk =
            |phase: f64| ts((0..48).map(|t| ((t as f64 * 0.25) + phase).sin() * 5.0).collect());
        let (mut lb_sum, mut par_sum) = (0.0, 0.0);
        for k in 0..6 {
            let q = mk(0.0);
            let c = mk(0.4 + 0.3 * k as f64);
            let qr = Sapla::with_segments(5).reduce(&q).unwrap();
            let cr = Sapla::with_segments(5).reduce(&c).unwrap();
            lb_sum += dist_lb(&q.prefix_sums(), &cr).unwrap();
            par_sum += crate::dist_par(&qr, &cr).unwrap();
        }
        assert!(lb_sum <= par_sum * 1.05, "lb {lb_sum} vs par {par_sum}");
    }
}
