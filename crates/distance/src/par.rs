//! `Dist_PAR` — the paper's lower-bounding distance for adaptive-length
//! representations (Definition 5.1).
//!
//! Both representations are *partitioned* onto the union of their segment
//! endpoints `R = Q̂_R ∪ Ĉ_R` (each sub-segment keeps its covering line, so
//! the reconstructions are unchanged), after which the windows align and
//! the squared distances of Eq. 12 sum directly. The result is tighter
//! than `Dist_LB` and, unlike `Dist_AE`, respects the lower-bounding lemma
//! (Appendices A.5–A.6; the guarantee is conditional on the two
//! segmentations — see DESIGN.md — which the integration tests measure).
//!
//! Complexity: `O(N_Q + N_C)` — strictly cheaper than the `O(n)` of
//! `Dist_LB`/`Dist_AE`.

use sapla_core::{Error, LinearSegment, PiecewiseLinear, Result};

use crate::dist_s::dist_s_sq;

/// `Dist_PAR(Q̂, Ĉ)` between two adaptive-length linear representations of
/// equal-length series.
///
/// ```
/// use sapla_core::{TimeSeries, sapla::Sapla};
/// use sapla_distance::dist_par;
///
/// let q = TimeSeries::new((0..64).map(|t| (t as f64 * 0.1).sin()).collect())?;
/// let c = TimeSeries::new((0..64).map(|t| (t as f64 * 0.1).cos()).collect())?;
/// let qr = Sapla::with_segments(4).reduce(&q)?;
/// let cr = Sapla::with_segments(4).reduce(&c)?;
/// let approx = dist_par(&qr, &cr)?;          // O(N), not O(n)
/// let exact = q.euclidean(&c)?;
/// assert!((approx - exact).abs() / exact < 0.2, "tight estimate");
/// # Ok::<(), sapla_core::Error>(())
/// ```
///
/// # Errors
///
/// [`Error::LengthMismatch`] when the two representations cover different
/// series lengths.
pub fn dist_par(q: &PiecewiseLinear, c: &PiecewiseLinear) -> Result<f64> {
    dist_par_sq(q, c).map(f64::sqrt)
}

/// Squared [`dist_par`] (avoids the square root inside search loops).
///
/// # Errors
///
/// [`Error::LengthMismatch`] when the two representations cover different
/// series lengths.
pub fn dist_par_sq(q: &PiecewiseLinear, c: &PiecewiseLinear) -> Result<f64> {
    sapla_obs::counter!("dist.par.evals");
    let mut sum = 0.0f64;
    let mut _windows = 0u64;
    for_each_window(q, c, |w| {
        sum += dist_s_sq(w.qa, w.qb, w.ca, w.cb, w.len);
        _windows += 1;
    })?;
    sapla_obs::hist!("dist.par.windows", _windows);
    Ok(sum)
}

/// One aligned window of the endpoint-union partition `R = Q̂_R ∪ Ĉ_R`:
/// both lines restricted to the same `len` points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignedWindow {
    /// Query line slope over this window.
    pub qa: f64,
    /// Query line value at the window's first point.
    pub qb: f64,
    /// Candidate line slope over this window.
    pub ca: f64,
    /// Candidate line value at the window's first point.
    pub cb: f64,
    /// Window length in points.
    pub len: usize,
}

/// Reusable buffer for the materialised partition, for callers that
/// evaluate many candidate distances in a row (e.g. per-worker scratch
/// in parallel k-NN): the window `Vec` keeps its capacity across calls,
/// so steady-state distance evaluation allocates nothing. (The planned
/// kernel in [`crate::plan`] fuses accumulation into the walk and needs
/// no buffering at all; it takes the scratch only so every `Dist_PAR`
/// entry point shares one calling convention.)
#[derive(Debug, Clone, Default)]
pub struct ParScratch {
    windows: Vec<AlignedWindow>,
}

impl ParScratch {
    /// The partition materialised by the last [`dist_par_sq_with`] call.
    pub fn windows(&self) -> &[AlignedWindow] {
        &self.windows
    }
}

/// Contiguous struct-of-arrays view of a linear segmentation: parallel
/// `slopes`/`intercepts`/`endpoints` slices, one element per segment.
/// This is the candidate-side layout of the SoA leaf blocks in
/// `sapla-index` — leaf refinement walks cache-linear coefficient arrays
/// instead of pointer-hopping per-entry [`PiecewiseLinear`] structs.
#[derive(Debug, Clone, Copy)]
pub struct SoaSegs<'a> {
    slopes: &'a [f64],
    intercepts: &'a [f64],
    endpoints: &'a [usize],
}

impl<'a> SoaSegs<'a> {
    /// Wrap three parallel coefficient slices as a segmentation view.
    ///
    /// # Errors
    ///
    /// [`Error::MalformedRepresentation`] when the slices are empty or
    /// their lengths disagree. (Endpoint monotonicity is the producer's
    /// contract, as it is for [`PiecewiseLinear::new`]'s inputs; the SoA
    /// blocks in `sapla-index` are flattened from already-validated
    /// representations.)
    pub fn new(slopes: &'a [f64], intercepts: &'a [f64], endpoints: &'a [usize]) -> Result<Self> {
        if slopes.is_empty() || slopes.len() != intercepts.len() || slopes.len() != endpoints.len()
        {
            return Err(Error::MalformedRepresentation {
                reason: "SoA segmentation view needs equal-length non-empty coefficient slices",
            });
        }
        Ok(SoaSegs { slopes, intercepts, endpoints })
    }

    /// Number of segments in the view.
    pub fn num_segments(&self) -> usize {
        self.slopes.len()
    }

    /// Number of original points the segmentation covers.
    pub fn series_len(&self) -> usize {
        self.endpoints[self.endpoints.len() - 1] + 1
    }

    /// The `i`-th segment as `(slope, intercept, endpoint)` — lets index
    /// integrity checks compare a SoA view against stored segments.
    pub fn seg(&self, i: usize) -> (f64, f64, usize) {
        (self.slopes[i], self.intercepts[i], self.endpoints[i])
    }
}

/// Accessor abstraction over a linear segmentation for the endpoint-union
/// walk: implemented for `&[LinearSegment]` (the stored AoS layout), for
/// [`SoaSegs`] (contiguous leaf blocks), and for the query side of a
/// [`crate::plan::QueryPlan`]. Every `Dist_PAR` entry point walks windows
/// through [`walk_windows`] over this trait, so the window sequence —
/// and therefore the summation order — cannot diverge between layouts.
pub(crate) trait SegSource: Copy {
    fn count(self) -> usize;
    fn a(self, i: usize) -> f64;
    fn b(self, i: usize) -> f64;
    fn r(self, i: usize) -> usize;
}

impl SegSource for &[LinearSegment] {
    fn count(self) -> usize {
        self.len()
    }
    fn a(self, i: usize) -> f64 {
        self[i].a
    }
    fn b(self, i: usize) -> f64 {
        self[i].b
    }
    fn r(self, i: usize) -> usize {
        self[i].r
    }
}

impl SegSource for SoaSegs<'_> {
    fn count(self) -> usize {
        self.slopes.len()
    }
    fn a(self, i: usize) -> f64 {
        self.slopes[i]
    }
    fn b(self, i: usize) -> f64 {
        self.intercepts[i]
    }
    fn r(self, i: usize) -> usize {
        self.endpoints[i]
    }
}

/// [`dist_par_sq`] materialising the partition into `scratch` instead of
/// streaming it. Returns a value **bit-for-bit identical** to
/// [`dist_par_sq`]: the windows and the summation order are the same,
/// only the buffering differs — which is what lets the parallel search
/// engine reuse per-worker buffers without perturbing results.
///
/// # Errors
///
/// [`Error::LengthMismatch`] when the two representations cover different
/// series lengths.
// audit: no_alloc — per-worker scratch absorbs all buffering.
pub fn dist_par_sq_with(
    scratch: &mut ParScratch,
    q: &PiecewiseLinear,
    c: &PiecewiseLinear,
) -> Result<f64> {
    sapla_obs::counter!("dist.par.evals");
    scratch.windows.clear();
    for_each_window(q, c, |w| scratch.windows.push(w))?;
    sapla_obs::hist!("dist.par.windows", scratch.windows.len() as u64);
    let mut sum = 0.0f64;
    for w in &scratch.windows {
        sum += dist_s_sq(w.qa, w.qb, w.ca, w.cb, w.len);
    }
    Ok(sum)
}

/// Entry-point wrapper over [`walk_windows`] for two stored
/// representations. Every `Dist_PAR` variant ([`dist_par_sq`],
/// [`dist_par_sq_with`], and the planned kernels in [`crate::plan`]) goes
/// through the same generic walker, so their window sequences cannot
/// diverge.
// audit: no_alloc — the window walk must stay allocation-free.
fn for_each_window(
    q: &PiecewiseLinear,
    c: &PiecewiseLinear,
    visit: impl FnMut(AlignedWindow),
) -> Result<()> {
    if q.series_len() != c.series_len() {
        return Err(Error::LengthMismatch { left: q.series_len(), right: c.series_len() });
    }
    walk_windows(q.segments(), c.segments(), visit);
    Ok(())
}

/// The single implementation of the endpoint-union walk (Definition 5.1):
/// visits every aligned window in order without allocating, generic over
/// the segment layout of either side (AoS slices, SoA blocks, query
/// plans). Callers must have checked that both sides cover the same
/// number of points.
// audit: no_alloc — the window walk must stay allocation-free.
pub(crate) fn walk_windows<Q: SegSource, C: SegSource>(
    qs: Q,
    cs: C,
    mut visit: impl FnMut(AlignedWindow),
) {
    walk_windows_until(qs, cs, |w| {
        visit(w);
        true
    });
}

/// [`walk_windows`] with an early exit: the walk stops as soon as `visit`
/// returns `false`. This is the core walker — the windows visited up to
/// the exit are exactly the prefix of the full walk, which is what lets
/// the planned kernel's early abandoning stay decision-identical to the
/// complete evaluation.
// audit: no_alloc — the window walk must stay allocation-free.
// `inline(always)`: the planned kernel's level-specialised wrappers need
// the walker collapsed into their `#[target_feature]` frame so the packed
// term kernel inlines (see `crate::plan::staged_walk`).
#[inline(always)]
pub(crate) fn walk_windows_until<Q: SegSource, C: SegSource>(
    qs: Q,
    cs: C,
    mut visit: impl FnMut(AlignedWindow) -> bool,
) {
    // Walk the union of endpoints: window [start, end] is the largest
    // aligned window below both current endpoints.
    let (mut qi, mut ci) = (0usize, 0usize);
    let mut start = 0usize;
    let (mut q_start, mut c_start) = (0usize, 0usize);
    loop {
        let qe = qs.r(qi);
        let ce = cs.r(ci);
        let end = qe.min(ce);
        let l = end + 1 - start;
        // Lines restricted to [start, end]: slope unchanged, intercept
        // shifted to the window's first point.
        let qa = qs.a(qi);
        let qb = qs.b(qi) + qa * (start - q_start) as f64;
        let ca = cs.a(ci);
        let cb = cs.b(ci) + ca * (start - c_start) as f64;
        if !visit(AlignedWindow { qa, qb, ca, cb, len: l }) {
            break;
        }

        if qe == ce && qi + 1 == qs.count() {
            break;
        }
        if qe == end {
            qi += 1;
            q_start = qe + 1;
        }
        if ce == end {
            ci += 1;
            c_start = ce + 1;
        }
        start = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_core::{LinearSegment, TimeSeries};

    fn pl(segs: &[(f64, f64, usize)]) -> PiecewiseLinear {
        PiecewiseLinear::new(segs.iter().map(|&(a, b, r)| LinearSegment { a, b, r }).collect())
            .unwrap()
    }

    /// Reference implementation: reconstruct both and take the Euclidean
    /// distance — identical because partitioning preserves reconstructions.
    fn brute(q: &PiecewiseLinear, c: &PiecewiseLinear) -> f64 {
        let qr = q.reconstruct();
        let cr = c.reconstruct();
        qr.euclidean(&cr).unwrap()
    }

    #[test]
    fn equals_reconstruction_distance() {
        let q = pl(&[(1.0, 0.0, 4), (-0.5, 5.0, 9)]);
        let c = pl(&[(0.0, 2.0, 2), (2.0, 1.0, 6), (0.0, 0.0, 9)]);
        let d = dist_par(&q, &c).unwrap();
        assert!((d - brute(&q, &c)).abs() < 1e-9, "{d} vs {}", brute(&q, &c));
    }

    #[test]
    fn identical_representations_have_zero_distance() {
        let q = pl(&[(0.3, -1.0, 3), (0.0, 2.0, 7)]);
        assert!(dist_par(&q, &q).unwrap() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let q = pl(&[(1.0, 0.0, 5), (0.0, 5.0, 11)]);
        let c = pl(&[(0.5, 1.0, 2), (-1.0, 4.0, 8), (0.0, -2.0, 11)]);
        let ab = dist_par(&q, &c).unwrap();
        let ba = dist_par(&c, &q).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn rejects_length_mismatch() {
        let q = pl(&[(0.0, 0.0, 3)]);
        let c = pl(&[(0.0, 0.0, 4)]);
        assert!(dist_par(&q, &c).is_err());
    }

    #[test]
    fn many_segment_alignment() {
        // Exercise the endpoint-union walker with interleaved endpoints.
        let q = pl(&[(1.0, 0.0, 1), (0.0, 2.0, 6), (2.0, 2.0, 9), (0.0, 8.0, 15)]);
        let c = pl(&[(0.0, 1.0, 3), (1.0, 1.0, 10), (-1.0, 8.0, 15)]);
        let d = dist_par(&q, &c).unwrap();
        assert!((d - brute(&q, &c)).abs() < 1e-9);
    }

    #[test]
    fn scratch_variant_is_bit_identical_and_reusable() {
        let q = pl(&[(1.0, 0.0, 1), (0.0, 2.0, 6), (2.0, 2.0, 9), (0.0, 8.0, 15)]);
        let c = pl(&[(0.0, 1.0, 3), (1.0, 1.0, 10), (-1.0, 8.0, 15)]);
        let mut scratch = ParScratch::default();
        // Same scratch reused across calls and operand orders.
        for _ in 0..3 {
            let streaming = dist_par_sq(&q, &c).unwrap();
            let buffered = dist_par_sq_with(&mut scratch, &q, &c).unwrap();
            assert_eq!(streaming.to_bits(), buffered.to_bits());
            assert!(!scratch.windows().is_empty());
            let swapped = dist_par_sq_with(&mut scratch, &c, &q).unwrap();
            assert_eq!(dist_par_sq(&c, &q).unwrap().to_bits(), swapped.to_bits());
        }
        // Windows tile the series exactly.
        let total: usize = scratch.windows().iter().map(|w| w.len).sum();
        assert_eq!(total, q.series_len());
    }

    /// Build a representation covering exactly `len` points from cyclic
    /// gap/coefficient pools — random *interleaved* segmentations.
    fn build_pl(len: usize, gaps: &[usize], coeffs: &[(f64, f64)]) -> PiecewiseLinear {
        let mut segs = Vec::new();
        let mut end = 0usize;
        let mut i = 0usize;
        while end < len {
            let gap = gaps[i % gaps.len()].max(1);
            end = (end + gap).min(len);
            let (a, b) = coeffs[i % coeffs.len()];
            segs.push(LinearSegment { a, b, r: end - 1 });
            i += 1;
        }
        PiecewiseLinear::new(segs).unwrap()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Definition 5.1's partition preserves both reconstructions, so
        /// Dist_PAR must equal reconstruct-then-Euclidean on *any* pair of
        /// segmentations of the same length — however their endpoints
        /// interleave.
        #[test]
        fn dist_par_equals_reconstruction_distance(
            len in 16usize..96,
            q_gaps in proptest::collection::vec(1usize..7, 24),
            c_gaps in proptest::collection::vec(1usize..7, 24),
            q_coeffs in proptest::collection::vec((-2.0f64..2.0, -5.0f64..5.0), 24),
            c_coeffs in proptest::collection::vec((-2.0f64..2.0, -5.0f64..5.0), 24),
        ) {
            let q = build_pl(len, &q_gaps, &q_coeffs);
            let c = build_pl(len, &c_gaps, &c_coeffs);
            let d = dist_par(&q, &c).unwrap();
            let reference = brute(&q, &c);
            proptest::prop_assert!(
                (d - reference).abs() <= 1e-6 * (1.0 + reference),
                "dist_par {} vs reconstruction {} (len {}, {} vs {} segments)",
                d, reference, len, q.num_segments(), c.num_segments()
            );
            // The scratch-buffered variant is bit-for-bit the streaming one.
            let mut scratch = ParScratch::default();
            let buffered = dist_par_sq_with(&mut scratch, &q, &c).unwrap();
            proptest::prop_assert!(
                buffered.to_bits() == dist_par_sq(&q, &c).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn paper_example_relation_to_euclid() {
        // Dist_PAR is a *tight, conditionally lower-bounding* estimate
        // (the paper's Fig. 10 shows Dist_LB ≤ Dist_PAR ≤ Dist for its
        // example; Appendix A.5's guarantee assumes compatible
        // segmentations — see DESIGN.md). On this sin/cos pair with
        // independently chosen segmentations the estimate lands within a
        // fraction of a percent of the Euclidean distance, far tighter
        // than Dist_LB; the integration suite measures violation rates
        // over the whole catalogue.
        let qv: Vec<f64> = (0..32).map(|t| (t as f64 * 0.4).sin() * 3.0).collect();
        let cv: Vec<f64> = (0..32).map(|t| (t as f64 * 0.4).cos() * 3.0).collect();
        let qts = TimeSeries::new(qv).unwrap();
        let cts = TimeSeries::new(cv).unwrap();
        let reduce = |s: &TimeSeries| sapla_core::sapla::Sapla::with_segments(4).reduce(s).unwrap();
        let d_par = dist_par(&reduce(&qts), &reduce(&cts)).unwrap();
        let d_euc = qts.euclidean(&cts).unwrap();
        assert!(d_par <= 1.02 * d_euc, "Dist_PAR {d_par} vs Euclid {d_euc}");
        assert!(d_par > 0.8 * d_euc, "Dist_PAR should be a tight estimate");
    }
}
