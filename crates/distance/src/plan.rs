//! Query-compiled `Dist_PAR` plans.
//!
//! Definition 5.1 partitions *both* representations onto the union of
//! their endpoints, but in k-NN/range search the query side is fixed
//! while thousands of candidates stream past. A [`QueryPlan`] compiles
//! the query half once — its endpoint list and per-segment line
//! coefficients in contiguous struct-of-arrays form — so per-candidate
//! evaluation is a single merge-walk of the candidate's endpoints into
//! the plan: no re-partitioning of the query, no per-call allocation
//! (accumulation is fused into the walk, nothing is buffered), and an
//! optional early-abandon bound that stops the walk once the partial sum
//! provably exceeds the current k-th-best (or range) threshold.
//!
//! Bit-identity contract: without abandoning (bound = `+∞`) the planned
//! kernels return values **bit-for-bit identical** to
//! [`crate::dist_par_sq`] — same generic endpoint-union walker, same
//! Eq. 12 term arithmetic, same left-to-right summation order. When a
//! SIMD level is active ([`sapla_core::simd::active`]), the walk stages
//! up to four windows' deltas in fixed stack arrays and evaluates their
//! terms with one packed pass (`simd_terms`), then adds them to the
//! running sum **sequentially in walk order** with the abandon check
//! after every term — each lane replays the scalar term's operation
//! sequence, so sums, abandon decisions, and therefore results stay
//! bitwise identical across all dispatch widths. See DESIGN.md §"SIMD
//! dispatch & query-major batching".

use sapla_core::{Error, PiecewiseLinear, Result};

use crate::dist_s::dist_s_sq_terms;
use crate::par::{walk_windows_until, ParScratch, SegSource, SoaSegs};

/// A query's half of the `Dist_PAR` endpoint-union partition, compiled
/// once per query: per-segment slopes/intercepts/endpoints plus segment
/// start offsets, laid out contiguously. Built by `Query` preparation in
/// `sapla-index` and threaded through tree refinement, linear scan, and
/// the parallel k-NN engine's per-worker scratch.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    slopes: Vec<f64>,
    intercepts: Vec<f64>,
    endpoints: Vec<usize>,
    series_len: usize,
}

impl QueryPlan {
    /// Compile a plan from the query's linear representation.
    pub fn new(q: &PiecewiseLinear) -> QueryPlan {
        let segs = q.segments();
        QueryPlan {
            slopes: segs.iter().map(|s| s.a).collect(),
            intercepts: segs.iter().map(|s| s.b).collect(),
            endpoints: segs.iter().map(|s| s.r).collect(),
            series_len: q.series_len(),
        }
    }

    /// Number of original points the plan's query covers.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Number of query segments in the plan.
    pub fn num_segments(&self) -> usize {
        self.slopes.len()
    }
}

impl SegSource for &QueryPlan {
    fn count(self) -> usize {
        self.slopes.len()
    }
    fn a(self, i: usize) -> f64 {
        self.slopes[i]
    }
    fn b(self, i: usize) -> f64 {
        self.intercepts[i]
    }
    fn r(self, i: usize) -> usize {
        self.endpoints[i]
    }
}

/// Squared early-abandon bound for a *distance-domain* threshold `t`:
/// abandoning when a partial squared sum `s` satisfies
/// `s > safe_sq_bound(t)` guarantees the reference comparison
/// `total.sqrt() <= t` would also fail.
///
/// Why the slack: partial sums of the (non-negative, `max(0)`-guarded)
/// Eq. 12 terms are monotone non-decreasing even in floating point
/// (`fl(s + x) ≥ s` for `x ≥ 0`), so `partial > B ⇒ total > B`. With
/// `B = nextup(nextup(t²))`, `total > B` implies `total.sqrt() > t`: two
/// ulps of head-room dominate the one rounding of `t*t` and the
/// correctly-rounded `sqrt`. Non-finite `t²` (including `t = +∞`, the
/// "no threshold yet" state, and NaN) maps to `+∞` — never abandon.
pub fn safe_sq_bound(threshold: f64) -> f64 {
    let sq = threshold * threshold;
    if !sq.is_finite() {
        return f64::INFINITY;
    }
    f64::from_bits(sq.to_bits() + 2)
}

/// Planned `Dist_PAR²` against a stored candidate representation.
///
/// With `abandon_sq = f64::INFINITY` the result is bit-identical to
/// [`crate::dist_par_sq`]`(query, cand)`. With a finite bound (from
/// [`safe_sq_bound`]), returns `f64::INFINITY` as the *abandoned*
/// sentinel as soon as the partial window sum exceeds the bound — the
/// caller treats it as "pruned", which [`safe_sq_bound`] proves agrees
/// with the non-abandoning comparison.
///
/// # Errors
///
/// [`Error::LengthMismatch`] when plan and candidate cover different
/// series lengths.
// audit: no_alloc — a fused walk, nothing buffered.
pub fn dist_par_sq_planned(
    plan: &QueryPlan,
    cand: &PiecewiseLinear,
    scratch: &mut ParScratch,
    abandon_sq: f64,
) -> Result<f64> {
    if plan.series_len() != cand.series_len() {
        return Err(Error::LengthMismatch { left: plan.series_len(), right: cand.series_len() });
    }
    Ok(planned_eval(plan, cand.segments(), scratch, abandon_sq))
}

/// [`dist_par_sq_planned`] over an SoA candidate view (leaf blocks).
///
/// # Errors
///
/// [`Error::LengthMismatch`] when plan and candidate cover different
/// series lengths.
// audit: no_alloc — a fused walk, nothing buffered.
pub fn dist_par_sq_planned_soa(
    plan: &QueryPlan,
    cand: SoaSegs<'_>,
    scratch: &mut ParScratch,
    abandon_sq: f64,
) -> Result<f64> {
    if plan.series_len() != cand.series_len() {
        return Err(Error::LengthMismatch { left: plan.series_len(), right: cand.series_len() });
    }
    Ok(planned_eval(plan, cand, scratch, abandon_sq))
}

/// The merge-walk behind both planned entry points, dispatching on the
/// process-wide SIMD level (cached in [`sapla_core::simd::active`]).
// audit: no_alloc — a fused walk over fixed stack arrays.
fn planned_eval<C: SegSource>(
    plan: &QueryPlan,
    cand: C,
    scratch: &mut ParScratch,
    abandon_sq: f64,
) -> f64 {
    planned_eval_with(sapla_core::simd::active(), plan, cand, scratch, abandon_sq)
}

/// Windows staged per packed term evaluation. Matches the widest vector
/// width (AVX2: four f64 lanes); narrower levels run the same group as
/// two 2-lane passes so the staging pattern — and thus the abandon
/// schedule — is identical at every level.
const GROUP: usize = 4;

/// [`planned_eval`] with the SIMD level pinned — the hook width-sweeping
/// bit-identity tests drive.
///
/// `Scalar` runs the original fused walk: one pass over the endpoint
/// union, per-window Eq. 12 term added to a single running sum in walk
/// order, the walk cut short the moment the partial sum exceeds
/// `abandon_sq`. (The obvious `f64::mul_add` formulation of the term is
/// *slower* here: the baseline x86-64 target has no FMA, so `mul_add`
/// lowers to a libm call per term.)
///
/// SIMD levels stage up to [`GROUP`] windows' `(Δa, Δb, l)` in stack
/// arrays, evaluate the group's terms with one packed pass
/// ([`crate::simd_terms`], bit-identical per lane), then accumulate
/// them sequentially with the abandon check after every term; the tail
/// group flushes through the scalar term. Same adds in the same order ⇒
/// same sum bits and the same abandon decision as the scalar walk — the
/// only divergence is that the walk itself may advance up to `GROUP − 1`
/// windows past the abandon point before the group boundary notices,
/// which is invisible in the result (the abandoned sentinel is `+∞`
/// either way; only the observability window counters shift).
// audit: no_alloc — a fused walk over fixed stack arrays.
pub(crate) fn planned_eval_with<C: SegSource>(
    level: sapla_core::SimdLevel,
    plan: &QueryPlan,
    cand: C,
    scratch: &mut ParScratch,
    abandon_sq: f64,
) -> f64 {
    let _ = scratch;
    sapla_obs::counter!("dist.par.evals");
    sapla_obs::counter!("dist.par.plan_hits");
    // Each arm is a whole-walk function compiled under its own target
    // feature so the packed term kernel inlines into the walk (a
    // per-group call into a `#[target_feature]` function costs more than
    // the packed pass saves at typical union sizes).
    let (sum, abandoned, _windows) = match level {
        #[cfg(target_arch = "x86_64")]
        sapla_core::SimdLevel::Sse2 => {
            // SAFETY: SSE2 is part of the x86-64 baseline — always available.
            unsafe { staged_walk_sse2(plan, cand, abandon_sq) }
        }
        #[cfg(target_arch = "x86_64")]
        sapla_core::SimdLevel::Avx2 if sapla_core::SimdLevel::Avx2.is_supported() => {
            // SAFETY: the guard verified AVX2 support at runtime.
            unsafe { staged_walk_avx2(plan, cand, abandon_sq) }
        }
        #[cfg(target_arch = "aarch64")]
        sapla_core::SimdLevel::Neon => {
            // SAFETY: NEON is mandatory on AArch64 — always available.
            unsafe { staged_walk_neon(plan, cand, abandon_sq) }
        }
        // Scalar, and SIMD levels this CPU/build cannot run: the fused
        // reference walk (same bits by the bit-identity contract).
        _ => scalar_walk(plan, cand, abandon_sq),
    };
    sapla_obs::counter!("dist.s.evals", _windows);
    sapla_obs::hist!("dist.par.windows", _windows);
    if abandoned {
        sapla_obs::counter!("dist.par.abandoned");
        f64::INFINITY
    } else {
        sum
    }
}

/// The original fused reference walk: per-window Eq. 12 term added to a
/// single running sum in walk order, cut short the moment the partial
/// sum exceeds `abandon_sq`. Returns `(sum, abandoned, windows)`.
// audit: no_alloc — a single fused walk, nothing staged.
fn scalar_walk<C: SegSource>(plan: &QueryPlan, cand: C, abandon_sq: f64) -> (f64, bool, u64) {
    let mut sum = 0.0f64;
    let mut abandoned = false;
    let mut windows = 0u64;
    walk_windows_until(plan, cand, |w| {
        sum += dist_s_sq_terms(w.qa - w.ca, w.qb - w.cb, w.len as f64);
        windows += 1;
        abandoned = sum > abandon_sq;
        !abandoned
    });
    (sum, abandoned, windows)
}

/// The staged walk body shared by every vector level: group windows in
/// stack arrays, evaluate each full group with `terms4` (a packed pass),
/// accumulate sequentially with the abandon check after every term, and
/// flush the tail group through the scalar term. Must stay
/// `#[inline(always)]` — the level wrappers below rely on the whole body
/// (walker included) collapsing into their `#[target_feature]` frame so
/// the packed kernel inlines.
// audit: no_alloc — a fused walk over fixed stack arrays.
#[inline(always)]
fn staged_walk<C: SegSource>(
    plan: &QueryPlan,
    cand: C,
    abandon_sq: f64,
    mut terms4: impl FnMut(&[f64; GROUP], &[f64; GROUP], &[f64; GROUP], &mut [f64; GROUP]),
) -> (f64, bool, u64) {
    let mut sum = 0.0f64;
    let mut abandoned = false;
    let mut windows = 0u64;
    let mut da = [0.0f64; GROUP];
    let mut db = [0.0f64; GROUP];
    let mut lf = [0.0f64; GROUP];
    let mut terms = [0.0f64; GROUP];
    let mut fill = 0usize;
    walk_windows_until(plan, cand, |w| {
        da[fill] = w.qa - w.ca;
        db[fill] = w.qb - w.cb;
        lf[fill] = w.len as f64;
        fill += 1;
        windows += 1;
        if fill < GROUP {
            return true;
        }
        fill = 0;
        terms4(&da, &db, &lf, &mut terms);
        for &t in &terms {
            sum += t;
            if sum > abandon_sq {
                abandoned = true;
                return false;
            }
        }
        true
    });
    if !abandoned {
        for k in 0..fill {
            sum += dist_s_sq_terms(da[k], db[k], lf[k]);
            if sum > abandon_sq {
                abandoned = true;
                break;
            }
        }
    }
    (sum, abandoned, windows)
}

// SAFETY contract: safe despite `#[target_feature]` — callers outside
// SSE2 code must (and do, in `planned_eval_with`) verify SSE2 before
// the call; the body has no other requirement.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
fn staged_walk_sse2<C: SegSource>(plan: &QueryPlan, cand: C, abandon_sq: f64) -> (f64, bool, u64) {
    // The closure inherits this function's target feature, so the packed
    // kernel call inlines instead of going through a cross-feature call.
    staged_walk(plan, cand, abandon_sq, |da, db, lf, out| {
        // SAFETY: this wrapper (and thus the closure) runs with SSE2
        // enabled — the kernel's only requirement.
        unsafe { crate::simd_terms::terms_sse2(da, db, lf, out) }
    })
}

// SAFETY contract: safe despite `#[target_feature]` — callers outside
// AVX2 code must (and do, in `planned_eval_with`) verify AVX2 before
// the call; the body has no other requirement.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn staged_walk_avx2<C: SegSource>(plan: &QueryPlan, cand: C, abandon_sq: f64) -> (f64, bool, u64) {
    staged_walk(plan, cand, abandon_sq, |da, db, lf, out| {
        // SAFETY: this wrapper (and thus the closure) runs with AVX2
        // enabled — the kernel's only requirement.
        unsafe { crate::simd_terms::terms_avx2(da, db, lf, out) }
    })
}

// SAFETY contract: safe despite `#[target_feature]` — NEON is
// mandatory on AArch64, so any caller on this target already has it.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
fn staged_walk_neon<C: SegSource>(plan: &QueryPlan, cand: C, abandon_sq: f64) -> (f64, bool, u64) {
    staged_walk(plan, cand, abandon_sq, |da, db, lf, out| {
        // SAFETY: this wrapper (and thus the closure) runs with NEON
        // enabled — the kernel's only requirement.
        unsafe { crate::simd_terms::terms_neon(da, db, lf, out) }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::{dist_par_sq, dist_par_sq_with};
    use sapla_core::LinearSegment;

    fn pl(segs: &[(f64, f64, usize)]) -> PiecewiseLinear {
        PiecewiseLinear::new(segs.iter().map(|&(a, b, r)| LinearSegment { a, b, r }).collect())
            .unwrap()
    }

    #[test]
    fn planned_matches_streaming_bitwise() {
        let q = pl(&[(1.0, 0.0, 1), (0.0, 2.0, 6), (2.0, 2.0, 9), (0.0, 8.0, 15)]);
        let c = pl(&[(0.0, 1.0, 3), (1.0, 1.0, 10), (-1.0, 8.0, 15)]);
        let plan = QueryPlan::new(&q);
        let mut scratch = ParScratch::default();
        for _ in 0..3 {
            let reference = dist_par_sq(&q, &c).unwrap();
            let planned = dist_par_sq_planned(&plan, &c, &mut scratch, f64::INFINITY).unwrap();
            assert_eq!(reference.to_bits(), planned.to_bits());
        }
    }

    #[test]
    fn soa_view_matches_aos_bitwise() {
        let q = pl(&[(0.3, -1.0, 4), (-0.2, 2.0, 11), (0.0, 0.5, 15)]);
        let c = pl(&[(0.0, 1.0, 3), (1.0, 1.0, 10), (-1.0, 8.0, 15)]);
        let plan = QueryPlan::new(&q);
        let slopes: Vec<f64> = c.segments().iter().map(|s| s.a).collect();
        let intercepts: Vec<f64> = c.segments().iter().map(|s| s.b).collect();
        let endpoints: Vec<usize> = c.segments().iter().map(|s| s.r).collect();
        let view = SoaSegs::new(&slopes, &intercepts, &endpoints).unwrap();
        let mut scratch = ParScratch::default();
        let aos = dist_par_sq_planned(&plan, &c, &mut scratch, f64::INFINITY).unwrap();
        let soa = dist_par_sq_planned_soa(&plan, view, &mut scratch, f64::INFINITY).unwrap();
        assert_eq!(aos.to_bits(), soa.to_bits());
        assert_eq!(aos.to_bits(), dist_par_sq(&q, &c).unwrap().to_bits());
    }

    #[test]
    fn abandon_sentinel_only_on_provably_pruned() {
        let q = pl(&[(1.0, 0.0, 7), (0.0, 8.0, 15)]);
        let c = pl(&[(0.0, 3.0, 15)]);
        let plan = QueryPlan::new(&q);
        let mut scratch = ParScratch::default();
        let full = dist_par_sq_planned(&plan, &c, &mut scratch, f64::INFINITY).unwrap();
        let d = full.sqrt();
        // Threshold below the true distance: abandoned or naturally
        // above-threshold — either way the caller prunes, as the
        // reference would.
        let tight = d * 0.5;
        let sq = dist_par_sq_planned(&plan, &c, &mut scratch, safe_sq_bound(tight)).unwrap();
        assert!(sq.is_infinite() || sq.sqrt() > tight);
        // Threshold above the true distance: must not abandon, and must
        // return the exact bit pattern.
        let loose = d * 2.0;
        let sq = dist_par_sq_planned(&plan, &c, &mut scratch, safe_sq_bound(loose)).unwrap();
        assert_eq!(sq.to_bits(), full.to_bits());
    }

    #[test]
    fn safe_sq_bound_edge_cases() {
        assert!(safe_sq_bound(f64::INFINITY).is_infinite());
        assert!(safe_sq_bound(f64::NAN).is_infinite());
        assert!(safe_sq_bound(1e200).is_infinite()); // t² overflows
        let b = safe_sq_bound(3.0);
        assert!(b > 9.0 && b < 9.0 + 1e-9);
        assert!(safe_sq_bound(0.0) > 0.0);
    }

    #[test]
    fn planned_rejects_length_mismatch() {
        let plan = QueryPlan::new(&pl(&[(0.0, 0.0, 3)]));
        let c = pl(&[(0.0, 0.0, 4)]);
        let mut scratch = ParScratch::default();
        assert!(dist_par_sq_planned(&plan, &c, &mut scratch, f64::INFINITY).is_err());
    }

    /// Build a representation covering exactly `len` points from cyclic
    /// gap/coefficient pools — random *interleaved* segmentations.
    fn build_pl(len: usize, gaps: &[usize], coeffs: &[(f64, f64)]) -> PiecewiseLinear {
        let mut segs = Vec::new();
        let mut end = 0usize;
        let mut i = 0usize;
        while end < len {
            let gap = gaps[i % gaps.len()].max(1);
            end = (end + gap).min(len);
            let (a, b) = coeffs[i % coeffs.len()];
            segs.push(LinearSegment { a, b, r: end - 1 });
            i += 1;
        }
        PiecewiseLinear::new(segs).unwrap()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Tier-1 bit-identity pin: the planned kernels (AoS and SoA
        /// candidate layouts, no abandoning) return the same bits as the
        /// unplanned streaming and scratch-buffered paths on arbitrary
        /// interleaved segmentations; with an abandon bound, survivors
        /// keep the exact bits and abandoned candidates are exactly the
        /// ones the reference comparison would prune.
        #[test]
        fn planned_paths_are_bit_identical_and_abandon_safely(
            len in 16usize..96,
            q_gaps in proptest::collection::vec(1usize..7, 24),
            c_gaps in proptest::collection::vec(1usize..7, 24),
            q_coeffs in proptest::collection::vec((-2.0f64..2.0, -5.0f64..5.0), 24),
            c_coeffs in proptest::collection::vec((-2.0f64..2.0, -5.0f64..5.0), 24),
            frac in 0.0f64..2.0,
        ) {
            let q = build_pl(len, &q_gaps, &q_coeffs);
            let c = build_pl(len, &c_gaps, &c_coeffs);
            let plan = QueryPlan::new(&q);
            let mut scratch = ParScratch::default();

            let reference = dist_par_sq(&q, &c).unwrap();
            let buffered = dist_par_sq_with(&mut scratch, &q, &c).unwrap();
            let planned =
                dist_par_sq_planned(&plan, &c, &mut scratch, f64::INFINITY).unwrap();
            let slopes: Vec<f64> = c.segments().iter().map(|s| s.a).collect();
            let intercepts: Vec<f64> = c.segments().iter().map(|s| s.b).collect();
            let endpoints: Vec<usize> = c.segments().iter().map(|s| s.r).collect();
            let view = SoaSegs::new(&slopes, &intercepts, &endpoints).unwrap();
            let soa =
                dist_par_sq_planned_soa(&plan, view, &mut scratch, f64::INFINITY).unwrap();
            proptest::prop_assert!(reference.to_bits() == buffered.to_bits());
            proptest::prop_assert!(reference.to_bits() == planned.to_bits());
            proptest::prop_assert!(reference.to_bits() == soa.to_bits());

            // Abandoning agreement: prune iff the reference would prune.
            let threshold = reference.sqrt() * frac;
            let bounded =
                dist_par_sq_planned(&plan, &c, &mut scratch, safe_sq_bound(threshold)).unwrap();
            let ref_keep = reference.sqrt() <= threshold;
            if bounded.is_finite() {
                proptest::prop_assert!(bounded.to_bits() == reference.to_bits());
                proptest::prop_assert!((bounded.sqrt() <= threshold) == ref_keep);
            } else {
                // Abandoned: the reference must prune this candidate too.
                proptest::prop_assert!(!ref_keep);
            }
        }

        /// Tier-1 SIMD pin: every supported dispatch width returns the
        /// scalar walk's exact bits — with and without an abandon bound,
        /// and with the same abandon decision — on arbitrary interleaved
        /// segmentations.
        #[test]
        fn planned_eval_is_bit_identical_across_simd_widths(
            len in 16usize..96,
            q_gaps in proptest::collection::vec(1usize..7, 24),
            c_gaps in proptest::collection::vec(1usize..7, 24),
            q_coeffs in proptest::collection::vec((-2.0f64..2.0, -5.0f64..5.0), 24),
            c_coeffs in proptest::collection::vec((-2.0f64..2.0, -5.0f64..5.0), 24),
            frac in 0.0f64..2.0,
        ) {
            use sapla_core::simd::{supported_levels, SimdLevel};

            let q = build_pl(len, &q_gaps, &q_coeffs);
            let c = build_pl(len, &c_gaps, &c_coeffs);
            let plan = QueryPlan::new(&q);
            let mut scratch = ParScratch::default();
            let scalar = planned_eval_with(
                SimdLevel::Scalar, &plan, c.segments(), &mut scratch, f64::INFINITY);
            let bound = safe_sq_bound(scalar.sqrt() * frac);
            let scalar_bounded = planned_eval_with(
                SimdLevel::Scalar, &plan, c.segments(), &mut scratch, bound);
            for level in supported_levels() {
                let full = planned_eval_with(
                    level, &plan, c.segments(), &mut scratch, f64::INFINITY);
                proptest::prop_assert_eq!(
                    scalar.to_bits(), full.to_bits(), "full, level {}", level.name());
                let bounded = planned_eval_with(
                    level, &plan, c.segments(), &mut scratch, bound);
                proptest::prop_assert_eq!(
                    scalar_bounded.to_bits(),
                    bounded.to_bits(),
                    "bounded, level {}",
                    level.name()
                );
            }
        }
    }
}
