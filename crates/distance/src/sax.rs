//! SAX MINDIST (Lin et al., DMKD 2007): a lower bound on the Euclidean
//! distance between the original (z-normalised) series from their symbolic
//! words alone.

use sapla_baselines::sax::gaussian_breakpoints;
use sapla_core::{Error, Result, SymbolicWord};

/// Per-symbol-pair distance `cell(r, c)`: zero for adjacent symbols,
/// otherwise the gap between the separating breakpoints.
fn cell(breakpoints: &[f64], a: u8, b: u8) -> f64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    // audit: cast_ok — u8 → i16 widens losslessly (both casts).
    if hi as i16 - lo as i16 <= 1 {
        0.0
    } else {
        breakpoints[hi as usize - 1] - breakpoints[lo as usize]
    }
}

/// `MINDIST(Q̂, Ĉ) = √(n/w) · √(Σ cell(q_i, c_i)²)` for two words of the
/// same length `w` over series of length `n`.
///
/// # Errors
///
/// [`Error::LengthMismatch`] / [`Error::MalformedRepresentation`] when the
/// words are incompatible.
pub fn mindist(q: &SymbolicWord, c: &SymbolicWord) -> Result<f64> {
    if q.n != c.n {
        return Err(Error::LengthMismatch { left: q.n, right: c.n });
    }
    if q.symbols.len() != c.symbols.len() || q.alphabet_size != c.alphabet_size {
        return Err(Error::MalformedRepresentation {
            reason: "MINDIST requires equal word length and alphabet",
        });
    }
    let bp = gaussian_breakpoints(q.alphabet_size);
    let sum: f64 = q
        .symbols
        .iter()
        .zip(&c.symbols)
        .map(|(&a, &b)| {
            let d = cell(&bp, a, b);
            d * d
        })
        .sum();
    let w = q.symbols.len() as f64;
    Ok((q.n as f64 / w).sqrt() * sum.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::Sax;
    use sapla_core::TimeSeries;

    fn znorm(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap().znormalized()
    }

    #[test]
    fn adjacent_symbols_cost_zero() {
        let bp = gaussian_breakpoints(8);
        for a in 0u8..8 {
            for b in 0u8..8 {
                let d = cell(&bp, a, b);
                if (a as i16 - b as i16).abs() <= 1 {
                    assert_eq!(d, 0.0);
                } else {
                    assert!(d > 0.0);
                }
            }
        }
    }

    #[test]
    fn symmetric_and_zero_on_self() {
        let s = znorm((0..64).map(|t| (t as f64 * 0.2).sin()).collect());
        let w1 = Sax::default().reduce_to_word(&s, 8).unwrap();
        assert_eq!(mindist(&w1, &w1).unwrap(), 0.0);
        let s2 = znorm((0..64).map(|t| (t as f64 * 0.2).cos() * 2.0).collect());
        let w2 = Sax::default().reduce_to_word(&s2, 8).unwrap();
        let ab = mindist(&w1, &w2).unwrap();
        let ba = mindist(&w2, &w1).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn lower_bounds_euclidean_on_znormalised_series() {
        let mk =
            |f: f64, ph: f64| znorm((0..128).map(|t| (t as f64 * f + ph).sin() * 3.0).collect());
        let pairs = [
            (mk(0.1, 0.0), mk(0.1, 1.5)),
            (mk(0.05, 0.0), mk(0.2, 0.0)),
            (mk(0.3, 0.2), mk(0.07, 2.0)),
        ];
        for (q, c) in pairs {
            let qw = Sax::default().reduce_to_word(&q, 16).unwrap();
            let cw = Sax::default().reduce_to_word(&c, 16).unwrap();
            let lb = mindist(&qw, &cw).unwrap();
            let exact = q.euclidean(&c).unwrap();
            assert!(lb <= exact + 1e-9, "{lb} > {exact}");
        }
    }

    #[test]
    fn rejects_incompatible_words() {
        let s = znorm((0..32).map(|t| t as f64).collect());
        let w8 = Sax::default().reduce_to_word(&s, 8).unwrap();
        let w4 = Sax::default().reduce_to_word(&s, 4).unwrap();
        assert!(mindist(&w8, &w4).is_err());
        let wa4 = Sax::with_alphabet(4).reduce_to_word(&s, 8).unwrap();
        assert!(mindist(&w8, &wa4).is_err());
    }
}
