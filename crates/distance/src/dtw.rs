//! Dynamic Time Warping with a Sakoe–Chiba band, plus the LB_Keogh lower
//! bound (Rakthanmanon et al., KDD 2012 — the paper's reference \[20\]).
//!
//! The paper's evaluation is Euclidean, but any credible similarity-search
//! library for the UCR archive needs DTW; it composes with the reduction
//! machinery the same way (filter with a cheap lower bound, refine with
//! the expensive measure).

use sapla_core::{Error, Result, TimeSeries};

/// DTW distance between two equal-length series under a Sakoe–Chiba band
/// of half-width `band` (`band >= n − 1` degenerates to unconstrained
/// DTW; `band = 0` degenerates to the Euclidean distance).
///
/// `O(n · band)` time, `O(n)` memory (two-row dynamic program).
///
/// ```
/// use sapla_core::TimeSeries;
/// use sapla_distance::dtw;
///
/// let a = TimeSeries::new(vec![0.0, 1.0, 5.0, 1.0, 0.0, 0.0])?;
/// let b = TimeSeries::new(vec![0.0, 0.0, 1.0, 5.0, 1.0, 0.0])?; // shifted by one
/// assert!(dtw(&a, &b, 2)? < 1e-9, "warping absorbs the shift");
/// # Ok::<(), sapla_core::Error>(())
/// ```
///
/// # Errors
///
/// [`Error::LengthMismatch`] when lengths differ.
pub fn dtw(a: &TimeSeries, b: &TimeSeries, band: usize) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::LengthMismatch { left: a.len(), right: b.len() });
    }
    let x = a.values();
    let y = b.values();
    let n = x.len();
    let w = band;

    let mut prev = vec![f64::INFINITY; n + 1];
    let mut cur = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(n);
        for j in lo..=hi {
            let d = x[i - 1] - y[j - 1];
            let cost = d * d;
            let best = prev[j].min(cur[j - 1]).min(prev[j - 1]);
            cur[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    Ok(prev[n].sqrt())
}

/// The LB_Keogh envelope of a series under band half-width `band`:
/// per-position `(lower, upper)` running min/max.
pub fn keogh_envelope(series: &TimeSeries, band: usize) -> (Vec<f64>, Vec<f64>) {
    let v = series.values();
    let n = v.len();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n - 1);
        let window = &v[lo..=hi];
        lower.push(window.iter().cloned().fold(f64::INFINITY, f64::min));
        upper.push(window.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }
    (lower, upper)
}

/// LB_Keogh: a cheap lower bound on [`dtw`] with the same band — the
/// distance from the query to the candidate's envelope.
///
/// # Errors
///
/// [`Error::LengthMismatch`] when lengths differ.
pub fn lb_keogh(query: &TimeSeries, candidate: &TimeSeries, band: usize) -> Result<f64> {
    if query.len() != candidate.len() {
        return Err(Error::LengthMismatch { left: query.len(), right: candidate.len() });
    }
    let (lower, upper) = keogh_envelope(candidate, band);
    let sum: f64 = query
        .values()
        .iter()
        .zip(lower.iter().zip(&upper))
        .map(|(&q, (&lo, &hi))| {
            let d = if q > hi {
                q - hi
            } else if q < lo {
                lo - q
            } else {
                0.0
            };
            d * d
        })
        .sum();
    Ok(sum.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn zero_band_equals_euclidean() {
        let a = ts(&[1.0, 2.0, 3.0, 4.0]);
        let b = ts(&[2.0, 2.0, 5.0, 4.0]);
        let d = dtw(&a, &b, 0).unwrap();
        let e = a.euclidean(&b).unwrap();
        assert!((d - e).abs() < 1e-12);
    }

    #[test]
    fn dtw_absorbs_time_shifts() {
        // A unit shift that Euclidean punishes but DTW warps away.
        let a = ts(&[0.0, 0.0, 1.0, 5.0, 1.0, 0.0, 0.0, 0.0]);
        let b = ts(&[0.0, 0.0, 0.0, 1.0, 5.0, 1.0, 0.0, 0.0]);
        let euclid = a.euclidean(&b).unwrap();
        let warped = dtw(&a, &b, 2).unwrap();
        assert!(warped < 1e-9, "dtw {warped}");
        assert!(euclid > 5.0, "euclid {euclid}");
    }

    #[test]
    fn dtw_is_symmetric_and_zero_on_self() {
        let a = ts(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0]);
        let b = ts(&[2.0, 7.0, 1.0, 8.0, 2.0, 8.0]);
        assert_eq!(dtw(&a, &a, 3).unwrap(), 0.0);
        let ab = dtw(&a, &b, 3).unwrap();
        let ba = dtw(&b, &a, 3).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn wider_bands_never_increase_distance() {
        let a = ts(&(0..32).map(|t| (t as f64 * 0.3).sin()).collect::<Vec<_>>());
        let b = ts(&(0..32).map(|t| (t as f64 * 0.3 + 1.0).sin()).collect::<Vec<_>>());
        let mut last = f64::INFINITY;
        for band in [0usize, 1, 2, 4, 8, 31] {
            let d = dtw(&a, &b, band).unwrap();
            assert!(d <= last + 1e-12, "band {band}: {d} > {last}");
            last = d;
        }
    }

    #[test]
    fn lb_keogh_lower_bounds_dtw() {
        let mk =
            |p: f64| ts(&(0..64).map(|t| ((t as f64) * 0.2 + p).sin() * 3.0).collect::<Vec<_>>());
        for (i, j) in [(0, 1), (0, 3), (2, 5)] {
            let q = mk(i as f64 * 0.7);
            let c = mk(j as f64 * 0.7);
            for band in [1usize, 3, 8] {
                let lb = lb_keogh(&q, &c, band).unwrap();
                let d = dtw(&q, &c, band).unwrap();
                assert!(lb <= d + 1e-9, "band {band}: lb {lb} > dtw {d}");
            }
        }
    }

    #[test]
    fn envelope_sandwiches_the_series() {
        let s = ts(&[1.0, 5.0, 2.0, 8.0, 0.0]);
        let (lo, hi) = keogh_envelope(&s, 1);
        for (i, &v) in s.values().iter().enumerate() {
            assert!(lo[i] <= v && v <= hi[i]);
        }
        // Band 1 window of index 0 covers {1, 5}.
        assert_eq!((lo[0], hi[0]), (1.0, 5.0));
    }

    #[test]
    fn rejects_length_mismatch() {
        let a = ts(&[1.0, 2.0]);
        let b = ts(&[1.0, 2.0, 3.0]);
        assert!(dtw(&a, &b, 1).is_err());
        assert!(lb_keogh(&a, &b, 1).is_err());
    }
}
