//! `Dist_S` — the closed-form squared distance between two reconstruction
//! lines over an aligned window (Eq. 12 of the paper).

/// Squared distance between the lines `qa·u + qb` and `ca·u + cb` sampled
/// at `u = 0 … l−1` (Eq. 12):
///
/// ```text
/// Σ (q̌_u − č_u)² = l(l−1)(2l−1)/6 · Δa² + l(l−1) · Δa·Δb + l · Δb²
/// ```
pub fn dist_s_sq(qa: f64, qb: f64, ca: f64, cb: f64, l: usize) -> f64 {
    sapla_obs::counter!("dist.s.evals");
    dist_s_sq_terms(qa - ca, qb - cb, l as f64)
}

/// The Eq. 12 polynomial over the line *deltas* `Δa = qa − ca`,
/// `Δb = qb − cb` and the window length as a float. This is the **single**
/// arithmetic body shared by every `Dist_S` evaluation path — the scalar
/// [`dist_s_sq`], the streaming/buffered `Dist_PAR` walks, and the
/// query-planned SoA kernel — so their results are bit-for-bit identical
/// by construction (same expression, same operation order, no fused
/// multiply-adds: `f64::mul_add` lowers to a libm call on the baseline
/// x86-64 target, while this form autovectorises to packed multiplies).
#[inline]
pub(crate) fn dist_s_sq_terms(da: f64, db: f64, lf: f64) -> f64 {
    let s = lf * (lf - 1.0) * (2.0 * lf - 1.0) / 6.0 * da * da
        + lf * (lf - 1.0) * da * db
        + lf * db * db;
    // Guard tiny negative rounding when da·db < 0 and the terms cancel.
    // Keeping every term non-negative is also what makes partial window
    // sums monotone — the property early-abandoning refinement relies on.
    s.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(qa: f64, qb: f64, ca: f64, cb: f64, l: usize) -> f64 {
        (0..l)
            .map(|u| {
                let d = (qa - ca) * u as f64 + (qb - cb);
                d * d
            })
            .sum()
    }

    #[test]
    fn matches_brute_force() {
        let cases = [
            (1.0, 0.0, 0.5, 2.0, 7),
            (0.0, 0.0, 0.0, 0.0, 5),
            (-2.0, 3.0, 1.0, -1.0, 12),
            (0.3, -0.7, 0.3, 0.7, 1),
        ];
        for (qa, qb, ca, cb, l) in cases {
            let fast = dist_s_sq(qa, qb, ca, cb, l);
            let slow = brute(qa, qb, ca, cb, l);
            assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
        }
    }

    #[test]
    fn is_nonnegative_and_symmetric() {
        let d1 = dist_s_sq(1.3, -2.0, -0.8, 4.0, 9);
        let d2 = dist_s_sq(-0.8, 4.0, 1.3, -2.0, 9);
        assert!(d1 >= 0.0);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn single_point_window_uses_intercept_only() {
        assert_eq!(dist_s_sq(5.0, 1.0, -5.0, 3.0, 1), 4.0);
    }
}
