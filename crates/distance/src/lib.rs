//! # sapla-distance
//!
//! Distance measures over raw and reduced time series, as evaluated by the
//! SAPLA paper (Section 5):
//!
//! * [`mod@euclidean`] — exact distances over raw series, with the
//!   early-abandoning variant k-NN refinement uses.
//! * [`dist_s`] — the closed-form per-segment distance between two lines
//!   over an aligned window (Eq. 12).
//! * [`par`] — **`Dist_PAR`** (Definition 5.1): partition two
//!   adaptive-length linear representations onto the union of their
//!   endpoints, then sum `Dist_S`. Tight *and* (conditionally)
//!   lower-bounding; the measure the DBCH-tree is built on.
//! * [`plan`] — **query-compiled `Dist_PAR`**: a [`QueryPlan`] fixes the
//!   query half of the Definition 5.1 partition once per query, and the
//!   planned kernels evaluate candidates (AoS or SoA layout) with a
//!   single merge-walk, optional early abandoning, and no per-call
//!   allocation.
//! * [`lb`] — **`Dist_LB`** (APCA-style): project the *query's raw data*
//!   onto the candidate's segment windows; an unconditional lower bound.
//! * [`ae`] — **`Dist_AE`** (APCA-style): Euclidean distance between the
//!   raw query and the candidate's reconstruction; tight but not a lower
//!   bound.
//! * [`paa`], [`pla`], [`sax`], [`cheby`] — the classic per-method lower
//!   bounds (`Dist_PAA`, `Dist_PLA`, SAX MINDIST, coefficient-space
//!   distance).
//! * [`mod@dtw`] — Dynamic Time Warping with a Sakoe–Chiba band and the
//!   LB_Keogh lower bound (an extension beyond the paper's Euclidean
//!   protocol).
//! * [`rep_distance`] — representation-to-representation dispatch used for
//!   DBCH convex hulls.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ae;
pub mod cheby;
pub mod dist_s;
pub mod dtw;
pub mod euclidean;
pub mod lb;
pub mod paa;
pub mod par;
pub mod pla;
pub mod plan;
pub mod sax;

mod simd_terms;

pub use ae::dist_ae;
pub use cheby::dist_cheby;
pub use dist_s::dist_s_sq;
pub use dtw::{dtw, keogh_envelope, lb_keogh};
pub use euclidean::{euclidean, euclidean_early_abandon, euclidean_sq};
pub use lb::dist_lb;
pub use paa::dist_paa;
pub use par::{dist_par, dist_par_sq, dist_par_sq_with, AlignedWindow, ParScratch, SoaSegs};
pub use pla::dist_pla;
pub use plan::{dist_par_sq_planned, dist_par_sq_planned_soa, safe_sq_bound, QueryPlan};
pub use sax::mindist;

use sapla_core::{Error, Representation, Result};

/// Distance between two representations of the **same method** (used for
/// DBCH convex-hull construction and node volumes):
///
/// * linear / constant → [`dist_par`] (constants are zero-slope lines),
/// * polynomial → [`dist_cheby`],
/// * symbolic → [`mindist`].
///
/// # Errors
///
/// [`Error::UnsupportedRepresentation`] when the variants differ, and any
/// length-mismatch error from the underlying measure.
pub fn rep_distance(a: &Representation, b: &Representation) -> Result<f64> {
    match (a, b) {
        (Representation::Linear(x), Representation::Linear(y)) => dist_par(x, y),
        (Representation::Constant(x), Representation::Constant(y)) => {
            dist_par(&x.to_linear(), &y.to_linear())
        }
        (Representation::Linear(x), Representation::Constant(y)) => dist_par(x, &y.to_linear()),
        (Representation::Constant(x), Representation::Linear(y)) => dist_par(&x.to_linear(), y),
        (Representation::Polynomial(x), Representation::Polynomial(y)) => Ok(dist_cheby(x, y)),
        (Representation::Symbolic(x), Representation::Symbolic(y)) => mindist(x, y),
        _ => Err(Error::UnsupportedRepresentation { operation: "rep_distance" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_core::{ConstantSegment, LinearSegment, PiecewiseConstant, PiecewiseLinear};

    #[test]
    fn rep_distance_dispatches_across_variants() {
        let lin = Representation::Linear(
            PiecewiseLinear::new(vec![LinearSegment { a: 0.0, b: 1.0, r: 3 }]).unwrap(),
        );
        let con = Representation::Constant(
            PiecewiseConstant::new(vec![ConstantSegment { v: 2.0, r: 3 }]).unwrap(),
        );
        // |1 - 2| per point over 4 points → √4 = 2.
        let d = rep_distance(&lin, &con).unwrap();
        assert!((d - 2.0).abs() < 1e-12);
        let d = rep_distance(&con, &lin).unwrap();
        assert!((d - 2.0).abs() < 1e-12);
        let poly = Representation::Polynomial(sapla_core::PolyCoeffs { coeffs: vec![1.0], n: 4 });
        assert!(rep_distance(&lin, &poly).is_err());
    }
}
