//! `Dist_PAA` — Keogh's lower bound for equal-length constant
//! representations: `√(Σ l_i (q̄_i − c̄_i)²)`.

use sapla_core::{Error, PiecewiseConstant, Result};

/// `Dist_PAA` between two constant representations with identical segment
/// endpoints (the equal-length PAA case).
///
/// # Errors
///
/// [`Error::LengthMismatch`] on different series lengths and
/// [`Error::MalformedRepresentation`] on mismatched endpoints.
pub fn dist_paa(q: &PiecewiseConstant, c: &PiecewiseConstant) -> Result<f64> {
    if q.series_len() != c.series_len() {
        return Err(Error::LengthMismatch { left: q.series_len(), right: c.series_len() });
    }
    if q.num_segments() != c.num_segments() {
        return Err(Error::MalformedRepresentation {
            reason: "Dist_PAA requires identical segmentations",
        });
    }
    let mut sum = 0.0;
    let mut start = 0usize;
    for (qs, cs) in q.segments().iter().zip(c.segments()) {
        if qs.r != cs.r {
            return Err(Error::MalformedRepresentation {
                reason: "Dist_PAA requires identical segmentations",
            });
        }
        let l = (qs.r + 1 - start) as f64;
        let d = qs.v - cs.v;
        sum += l * d * d;
        start = qs.r + 1;
    }
    Ok(sum.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapla_baselines::Paa;
    use sapla_core::TimeSeries;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    #[test]
    fn lower_bounds_euclidean() {
        let q = ts((0..64).map(|t| (t as f64 * 0.17).sin() * 3.0).collect());
        let c = ts((0..64).map(|t| ((t as f64) * 0.17 + 1.0).sin() * 3.0).collect());
        for k in [4usize, 8, 16] {
            let qr = Paa.reduce_to_segments(&q, k).unwrap();
            let cr = Paa.reduce_to_segments(&c, k).unwrap();
            let lb = dist_paa(&qr, &cr).unwrap();
            let exact = q.euclidean(&c).unwrap();
            assert!(lb <= exact + 1e-9, "k={k}: {lb} > {exact}");
        }
    }

    #[test]
    fn exact_when_series_are_piecewise_constant() {
        let q = ts(vec![2.0, 2.0, -1.0, -1.0]);
        let c = ts(vec![0.0, 0.0, 3.0, 3.0]);
        let qr = Paa.reduce_to_segments(&q, 2).unwrap();
        let cr = Paa.reduce_to_segments(&c, 2).unwrap();
        let lb = dist_paa(&qr, &cr).unwrap();
        let exact = q.euclidean(&c).unwrap();
        assert!((lb - exact).abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_segmentations() {
        let a = ts((0..12).map(|t| t as f64).collect());
        let q = Paa.reduce_to_segments(&a, 3).unwrap();
        let c = Paa.reduce_to_segments(&a, 4).unwrap();
        assert!(dist_paa(&q, &c).is_err());
    }
}
