//! End-to-end tests of the `sapla` binary (spawned as a subprocess).

use std::io::{BufRead as _, BufReader, Write as _};
use std::process::{Command, Stdio};

fn sapla() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sapla"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = sapla().args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (ok, _, err) = run(&[]);
    assert!(!ok);
    assert!(err.contains("usage"));
}

#[test]
fn demo_prints_all_methods() {
    let (ok, out, _) = run(&["demo"]);
    assert!(ok);
    for m in ["SAPLA", "APLA", "APCA", "PLA", "PAA", "PAALM", "CHEBY"] {
        assert!(out.contains(m), "missing {m} in demo output");
    }
}

#[test]
fn catalogue_lists_117_datasets() {
    let (ok, out, _) = run(&["catalogue"]);
    assert!(ok);
    assert_eq!(out.lines().count(), 117);
    assert!(out.contains("Burst_00"));
}

#[test]
fn reduce_from_stdin() {
    let mut child = sapla()
        .args(["reduce", "-", "--coeffs", "3"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child.stdin.as_mut().unwrap().write_all(b"1\n2\n3\n4\n5\n6\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("segments: 1"));
    assert!(text.contains("max deviation: 0.000000"), "line fits exactly:\n{text}");
}

#[test]
fn reduce_rejects_garbage_input() {
    let mut child = sapla()
        .args(["reduce", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child.stdin.as_mut().unwrap().write_all(b"not a number\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn knn_reports_metrics() {
    let (ok, out, err) = run(&["knn", "Burst_00", "--k", "3"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("pruning power"));
    assert!(out.contains("accuracy"));
}

#[test]
fn knn_unknown_dataset_fails_cleanly() {
    let (ok, _, err) = run(&["knn", "NoSuchDataset"]);
    assert!(!ok);
    assert!(err.contains("unknown dataset"));
}

#[test]
fn mine_subcommands_run() {
    for task in ["discord", "motif", "segment", "cluster"] {
        let (ok, out, err) = run(&["mine", task, "SmoothPeriodic_00", "--k", "2"]);
        assert!(ok, "mine {task} failed: {err}");
        assert!(!out.is_empty());
    }
}

#[test]
fn mine_unknown_task_fails() {
    let (ok, _, err) = run(&["mine", "teleport", "Burst_00"]);
    assert!(!ok);
    assert!(err.contains("unknown mine task") || err.contains("unknown dataset"));
}

#[test]
fn sapla_threads_zero_means_all_hardware_threads() {
    let out = sapla()
        .args(["knn", "Burst_00", "--k", "2"])
        .env("SAPLA_THREADS", "0")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn sapla_threads_garbage_is_an_error_not_a_silent_fallback() {
    for garbage in ["lots", "-1", "2.5", ""] {
        let out = sapla()
            .args(["knn", "Burst_00", "--k", "2"])
            .env("SAPLA_THREADS", garbage)
            .output()
            .expect("binary runs");
        assert!(!out.status.success(), "SAPLA_THREADS={garbage:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("SAPLA_THREADS"), "SAPLA_THREADS={garbage:?}: stderr: {err}");
        assert!(err.contains("invalid thread count"), "SAPLA_THREADS={garbage:?}: stderr: {err}");
    }
}

#[test]
fn explicit_threads_flag_beats_garbage_env() {
    let out = sapla()
        .args(["knn", "Burst_00", "--k", "2", "--threads", "2"])
        .env("SAPLA_THREADS", "garbage")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn profile_prints_pipeline_counters() {
    let (ok, out, err) = run(&["knn", "Burst_00", "--k", "3", "--profile"]);
    assert!(ok, "stderr: {err}");
    // The normal report must survive the extra flag.
    assert!(out.contains("pruning power"), "missing report:\n{out}");
    if !cfg!(feature = "obs") {
        assert!(out.contains("observability disabled"), "missing hint:\n{out}");
        return;
    }
    for key in [
        "sapla.refine",
        "sapla.reduce.calls",
        "dist.par.evals",
        "index.knn.nodes_visited",
        "index.knn.entries_pruned",
        "parallel.tasks",
        "parallel.steal.attempts",
    ] {
        assert!(out.contains(key), "missing {key} in profile:\n{out}");
    }
}

/// Minimal JSON sanity checker (the CI bench-smoke gate, satellite 5):
/// balanced braces/brackets outside strings and no trailing garbage.
/// Not a full parser — just enough to catch broken hand-rolled output.
fn assert_balanced_json(text: &str) {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
        } else {
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in:\n{text}");
                }
                _ => {}
            }
        }
    }
    assert!(!in_string, "unterminated string in:\n{text}");
    assert_eq!(depth, 0, "unbalanced JSON:\n{text}");
}

#[test]
fn profile_json_writes_a_valid_snapshot() {
    let dir = std::env::temp_dir().join(format!("sapla-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile.json");
    let out = sapla()
        .args(["knn", "Burst_00", "--k", "3", "--profile-json"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&path).expect("profile written");
    std::fs::remove_dir_all(&dir).ok();
    assert_balanced_json(&text);
    for section in ["\"enabled\"", "\"counters\"", "\"gauges\"", "\"lanes\"", "\"histograms\""] {
        assert!(text.contains(section), "missing {section} in:\n{text}");
    }
    if cfg!(feature = "obs") {
        assert!(text.contains("\"enabled\": true"), "wrong enabled flag:\n{text}");
        for key in ["sapla.reduce.calls", "dist.par.evals", "index.knn.queries", "parallel.tasks"] {
            assert!(text.contains(&format!("\"{key}\"")), "missing {key} in:\n{text}");
        }
    } else {
        assert!(text.contains("\"enabled\": false"), "wrong enabled flag:\n{text}");
    }
}

#[test]
fn profile_json_without_path_fails_with_usage_error() {
    let (ok, _, err) = run(&["knn", "Burst_00", "--profile-json"]);
    assert!(!ok);
    assert!(err.contains("--profile-json"), "stderr: {err}");
}

#[test]
fn knn_rtree_answers_the_whole_query_set_with_threads() {
    // The R-tree path goes through the same Engine as the DBCH path
    // now: it must honour --threads and report batch statistics for
    // the full query set (Protocol::quick() ships 3 queries).
    let (ok, out, err) = run(&["knn", "Burst_00", "--k", "3", "--tree", "rtree", "--threads", "2"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("SAPLA / rtree"), "tree name in report:\n{out}");
    assert!(out.contains("batch: 3 queries answered"), "whole query set:\n{out}");
    assert!(out.contains("pruning power"));
}

#[test]
fn knn_rejects_unknown_tree_kind() {
    let (ok, _, err) = run(&["knn", "Burst_00", "--tree", "btree"]);
    assert!(!ok);
    assert!(err.contains("--tree"), "stderr: {err}");
}

#[test]
fn knn_sharded_engine_runs() {
    let (ok, out, err) = run(&["knn", "Burst_00", "--k", "3", "--shards", "3"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("shards: 3"), "shard count in report:\n{out}");
    assert!(out.contains("accuracy"));
}

/// End-to-end daemon test: spawn `sapla serve` on an ephemeral port,
/// talk to it over the wire, and check its answers against `sapla knn`
/// ground truth semantics (hits sorted by distance, self-match first).
#[test]
fn serve_answers_wire_queries_and_shuts_down() {
    let mut child = sapla()
        .args(["serve", "Burst_00", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().expect("banner line").expect("utf8");
    assert!(banner.contains("serving Burst_00"), "banner: {banner}");
    assert!(banner.contains("length 256"), "banner: {banner}");
    let listen = lines.next().expect("listen line").expect("utf8");
    let addr = listen.strip_prefix("listening on ").unwrap_or_default().to_string();
    assert!(!addr.is_empty(), "listen line: {listen}");

    let mut client = sapla_serve::Client::connect(&addr).expect("connect");
    // Two easy queries of the advertised length; hits must come back
    // sorted by distance with k entries each.
    let queries: Vec<Vec<f64>> =
        (0..2).map(|q| (0..256).map(|t| ((t + q * 31) as f64 * 0.1).sin()).collect()).collect();
    let got = client.knn(&queries, 3).expect("knn over the wire");
    assert_eq!(got.per_query.len(), 2);
    for r in &got.per_query {
        assert_eq!(r.hits.len(), 3);
        assert!(r.hits.windows(2).all(|w| w[0].1 <= w[1].1), "sorted by distance");
        assert!(r.measured >= 3, "at least k exact refinements");
    }
    // A wrong-length query is an error response, not a hang or a crash.
    assert!(client.knn(&[vec![1.0, 2.0, 3.0]], 2).is_err());

    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"tree\": \"dbch\""), "stats: {stats}");
    assert!(stats.contains("\"indexed\": 24"), "stats: {stats}");

    client.shutdown().expect("shutdown");
    // The banner reader still owns stdout; drain it for the farewell
    // line, then reap the process.
    let tail: Vec<String> = lines.map_while(Result::ok).collect();
    let status = child.wait().expect("exit");
    assert!(status.success(), "serve exited with {status}");
    assert!(tail.iter().any(|l| l.contains("shut down")), "tail: {tail:?}");
}

#[test]
fn stats_subcommand_fetches_metrics_from_a_running_server() {
    let mut child = sapla()
        .args(["serve", "Burst_00", "--addr", "127.0.0.1:0", "--threads", "2", "--slow-ms", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let _banner = lines.next().expect("banner line").expect("utf8");
    let listen = lines.next().expect("listen line").expect("utf8");
    let addr = listen.strip_prefix("listening on ").unwrap_or_default().to_string();
    assert!(!addr.is_empty(), "listen line: {listen}");

    // Give the metrics something to report.
    let mut client = sapla_serve::Client::connect(&addr).expect("connect");
    let queries: Vec<Vec<f64>> =
        (0..2).map(|q| (0..256).map(|t| ((t + q * 17) as f64 * 0.1).cos()).collect()).collect();
    client.knn(&queries, 3).expect("knn over the wire");

    // Plain stats document.
    let (ok, out, err) = run(&["stats", "--addr", &addr]);
    assert!(ok, "stats failed: {err}");
    assert!(out.contains("\"server\""), "stats: {out}");

    // Prometheus-style text exposition.
    let (ok, out, err) = run(&["stats", "--addr", &addr, "--metrics"]);
    assert!(ok, "stats --metrics failed: {err}");
    assert!(out.contains("# TYPE sapla_server counter"), "text exposition: {out}");
    assert!(out.contains("sapla_server{name=\"requests\"}"), "text exposition: {out}");
    assert!(out.contains("sapla_slow_threshold_ns 0"), "slow threshold: {out}");

    // Extended JSON with latency and trace sections.
    let (ok, out, err) = run(&["stats", "--addr", &addr, "--metrics-json"]);
    assert!(ok, "stats --metrics-json failed: {err}");
    for key in ["\"latency\"", "\"trace\"", "\"slow_threshold_ns\": 0"] {
        assert!(out.contains(key), "metrics json missing {key}: {out}");
    }

    // Asking for both formats at once is rejected client-side.
    let (ok, _, err) = run(&["stats", "--addr", &addr, "--metrics", "--metrics-json"]);
    assert!(!ok);
    assert!(err.contains("at most one"), "stderr: {err}");

    client.shutdown().expect("shutdown");
    let _ = lines.map_while(Result::ok).count();
    assert!(child.wait().expect("exit").success());
}

#[test]
fn reduce_with_unknown_method_fails() {
    let mut child = sapla()
        .args(["reduce", "-", "--method", "FFT"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    // The child rejects the method before reading stdin, so it may
    // already have exited and closed the pipe — a BrokenPipe here is
    // expected, not a failure.
    let _ = child.stdin.as_mut().unwrap().write_all(b"1\n2\n");
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown method"));
}
