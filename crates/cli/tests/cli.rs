//! End-to-end tests of the `sapla` binary (spawned as a subprocess).

use std::io::Write as _;
use std::process::{Command, Stdio};

fn sapla() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sapla"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = sapla().args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (ok, _, err) = run(&[]);
    assert!(!ok);
    assert!(err.contains("usage"));
}

#[test]
fn demo_prints_all_methods() {
    let (ok, out, _) = run(&["demo"]);
    assert!(ok);
    for m in ["SAPLA", "APLA", "APCA", "PLA", "PAA", "PAALM", "CHEBY"] {
        assert!(out.contains(m), "missing {m} in demo output");
    }
}

#[test]
fn catalogue_lists_117_datasets() {
    let (ok, out, _) = run(&["catalogue"]);
    assert!(ok);
    assert_eq!(out.lines().count(), 117);
    assert!(out.contains("Burst_00"));
}

#[test]
fn reduce_from_stdin() {
    let mut child = sapla()
        .args(["reduce", "-", "--coeffs", "3"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child.stdin.as_mut().unwrap().write_all(b"1\n2\n3\n4\n5\n6\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("segments: 1"));
    assert!(text.contains("max deviation: 0.000000"), "line fits exactly:\n{text}");
}

#[test]
fn reduce_rejects_garbage_input() {
    let mut child = sapla()
        .args(["reduce", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child.stdin.as_mut().unwrap().write_all(b"not a number\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn knn_reports_metrics() {
    let (ok, out, err) = run(&["knn", "Burst_00", "--k", "3"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("pruning power"));
    assert!(out.contains("accuracy"));
}

#[test]
fn knn_unknown_dataset_fails_cleanly() {
    let (ok, _, err) = run(&["knn", "NoSuchDataset"]);
    assert!(!ok);
    assert!(err.contains("unknown dataset"));
}

#[test]
fn mine_subcommands_run() {
    for task in ["discord", "motif", "segment", "cluster"] {
        let (ok, out, err) = run(&["mine", task, "SmoothPeriodic_00", "--k", "2"]);
        assert!(ok, "mine {task} failed: {err}");
        assert!(!out.is_empty());
    }
}

#[test]
fn mine_unknown_task_fails() {
    let (ok, _, err) = run(&["mine", "teleport", "Burst_00"]);
    assert!(!ok);
    assert!(err.contains("unknown mine task") || err.contains("unknown dataset"));
}

#[test]
fn reduce_with_unknown_method_fails() {
    let mut child = sapla()
        .args(["reduce", "-", "--method", "FFT"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child.stdin.as_mut().unwrap().write_all(b"1\n2\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown method"));
}
