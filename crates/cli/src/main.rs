//! `sapla` — command-line front end for the SAPLA workspace.
//!
//! ```text
//! sapla reduce <file|-> [files...] [--method SAPLA] [--coeffs 12] [--threads 0]
//! sapla knn <dataset> [--k 4] [--method SAPLA] [--tree dbch|rtree] [--threads 0]
//! sapla build-index <dataset> --index-file PATH [--quantize EPS]    persist a snapshot
//! sapla catalogue                                        list the 117 synthetic datasets
//! sapla demo                                             the paper's Fig. 1 walkthrough
//! ```
//!
//! `build-index` builds the index once and writes it as a `sapla-store`
//! snapshot; `knn --index-file PATH` and `serve --index-file PATH` then
//! cold-start by loading that file (O(file size) I/O, no rebuild). When
//! the file does not exist yet they build from the dataset flags and
//! write it, so the second invocation is the fast one. A daemon started
//! with `--index-file` also re-reads the file on an empty-blob reload,
//! letting an operator republish the index out-of-band.
//!
//! `--threads 0` (the default) uses every hardware thread; any other value
//! pins the worker count. When `--threads` is absent the `SAPLA_THREADS`
//! environment variable is consulted (same semantics; non-numeric values
//! are an error, never a silent fallback). Results are identical at every
//! thread count.
//!
//! Every subcommand also accepts `--profile` (print the observability
//! snapshot as a table after the run) and `--profile-json PATH` (write it
//! as JSON). Both need the binary built with `--features obs` (the
//! default build) to report non-empty numbers.
//!
//! `--no-simd` forces the portable scalar kernels; otherwise dispatch is
//! auto-detected, overridable with `SAPLA_SIMD=off|sse2|avx2|neon`
//! (validated up front — a garbage value is an error, never a silent
//! fallback). Answers are bit-identical at every level.

use std::io::Read as _;
use std::process::ExitCode;

use sapla_baselines::{all_reducers, reduce_batch, reduce_batch_parallel, Reducer};
use sapla_core::TimeSeries;
use sapla_data::{catalogue, Dataset, Protocol};
use sapla_index::{Engine, EngineConfig, TreeKind};
use sapla_serve::{Client, MetricsFormat, Server, ServerConfig};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Profiling flags are global and must be stripped before dispatch:
    // `positionals` assumes every `--flag` carries a value, so a bare
    // `--profile` left in place would swallow the next positional.
    let profile = take_flag(&mut args, "--profile");
    let profile_json = match take_value_flag(&mut args, "--profile-json") {
        Ok(path) => path,
        Err(e) => {
            eprintln!("sapla: {e}");
            return ExitCode::from(2);
        }
    };
    // Resolve SIMD dispatch before any kernel runs: `--no-simd` forces
    // scalar, otherwise `SAPLA_SIMD` is validated eagerly so a garbage
    // value errors out up front (same contract as `SAPLA_THREADS`).
    let simd_result = if take_flag(&mut args, "--no-simd") {
        sapla_core::simd::force(sapla_core::simd::SimdLevel::Scalar)
    } else {
        sapla_core::simd::init().map(|_| ())
    };
    if let Err(e) = simd_result {
        eprintln!("sapla: {e}");
        return ExitCode::from(2);
    }
    let result = match args.first().map(String::as_str) {
        Some("reduce") => cmd_reduce(&args[1..]),
        Some("knn") => cmd_knn(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("build-index") => cmd_build_index(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("catalogue") => cmd_catalogue(),
        Some("demo") => cmd_demo(),
        Some("mine") => cmd_mine(&args[1..]),
        _ => {
            eprintln!(
                "usage: sapla <reduce|knn|serve|build-index|mine|catalogue|demo> [options]\n\
                 \n\
                 reduce <file|-> [files...] [--method NAME] [--coeffs M] [--threads T]\n\
                 knn <dataset>    [--k K] [--method NAME] [--tree dbch|rtree] [--coeffs M] [--shards S] [--threads T] [--index-file PATH]\n\
                 serve <dataset>  [--addr HOST:PORT] [--method NAME] [--tree dbch|rtree] [--coeffs M] [--shards S] [--threads T] [--slow-ms N] [--index-file PATH]\n\
                 build-index <dataset> --index-file PATH [--method NAME] [--tree dbch|rtree] [--coeffs M] [--shards S] [--threads T] [--quantize EPS]\n\
                 stats            [--addr HOST:PORT] [--metrics | --metrics-json]\n\
                 mine <discord|motif|segment|forecast|cluster> <dataset> [--k K] [--coeffs M] [--horizon H] [--changes C]\n\
                 catalogue\n\
                 demo\n\
                 \n\
                 global: --profile (print metrics table), --profile-json PATH (write metrics JSON),\n\
                 \x20       --no-simd (force scalar kernels)"
            );
            return ExitCode::from(2);
        }
    };
    let result = result.and_then(|()| {
        let snapshot = sapla_obs::Snapshot::capture();
        if profile {
            print!("{}", snapshot.render_table());
        }
        if let Some(path) = profile_json {
            std::fs::write(&path, snapshot.to_json()).map_err(|e| format!("{path}: {e}"))?;
        }
        Ok(())
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sapla: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Remove a bare `--flag` from `args`, reporting whether it was present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Remove a `--flag VALUE` pair from `args`, returning the value.
fn take_value_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{name}: missing value"));
            }
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        None => Ok(None),
    }
}

fn flag(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Arguments that are not `--flag value` pairs, in order.
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            out.push(args[i].clone());
            i += 1;
        }
    }
    out
}

/// Worker-thread count: an explicit `--threads` wins, otherwise the
/// `SAPLA_THREADS` environment variable is consulted. Either source must
/// parse as a non-negative integer (`0` = all hardware threads) — a
/// garbage value is an error, not a silent fall-back to the default.
fn threads_flag(args: &[String]) -> Result<usize, String> {
    if args.iter().any(|a| a == "--threads") {
        return flag(args, "--threads", "0").parse().map_err(|_| "bad --threads".to_string());
    }
    match std::env::var("SAPLA_THREADS") {
        Ok(raw) => raw.trim().parse().map_err(|_| {
            format!("SAPLA_THREADS: {}", sapla_core::Error::InvalidThreads { value: raw.clone() })
        }),
        Err(_) => Ok(0),
    }
}

fn reducer_by_name(name: &str) -> Result<Box<dyn Reducer>, String> {
    all_reducers().into_iter().find(|r| r.name().eq_ignore_ascii_case(name)).ok_or_else(|| {
        format!("unknown method {name:?} (try SAPLA, APLA, APCA, PLA, PAA, PAALM, CHEBY, SAX)")
    })
}

fn read_series(path: &str) -> Result<TimeSeries, String> {
    let mut text = String::new();
    if path == "-" {
        std::io::stdin().read_to_string(&mut text).map_err(|e| e.to_string())?;
    } else {
        text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    }
    let values: Result<Vec<f64>, _> = text
        .split([',', '\n', '\t', ' '])
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::parse::<f64>)
        .collect();
    let values = values.map_err(|e| format!("parse error: {e}"))?;
    TimeSeries::new(values).map_err(|e| e.to_string())
}

fn cmd_reduce(args: &[String]) -> Result<(), String> {
    let paths = positionals(args);
    if paths.is_empty() {
        return Err("reduce: missing input file (or '-')".to_string());
    }
    let method = flag(args, "--method", "SAPLA");
    let m: usize = flag(args, "--coeffs", "12").parse().map_err(|_| "bad --coeffs".to_string())?;
    let threads = threads_flag(args)?;
    let reducer = reducer_by_name(&method)?;
    let series: Result<Vec<_>, _> = paths.iter().map(|p| read_series(p)).collect();
    let series = series?;
    let reps =
        reduce_batch_parallel(reducer.as_ref(), &series, m, threads).map_err(|e| e.to_string())?;
    for ((path, series), rep) in paths.iter().zip(&series).zip(&reps) {
        if paths.len() > 1 {
            println!("== {path} ==");
        }
        println!("method: {}", reducer.name());
        println!("series length: {}", series.len());
        println!("segments: {}", rep.num_segments());
        match rep {
            sapla_core::Representation::Linear(l) => {
                for (i, s) in l.segments().iter().enumerate() {
                    println!("  seg {i}: a = {:.6}, b = {:.6}, r = {}", s.a, s.b, s.r);
                }
            }
            sapla_core::Representation::Constant(c) => {
                for (i, s) in c.segments().iter().enumerate() {
                    println!("  seg {i}: v = {:.6}, r = {}", s.v, s.r);
                }
            }
            sapla_core::Representation::Polynomial(p) => {
                println!("  coefficients: {:?}", p.coeffs);
            }
            sapla_core::Representation::Symbolic(w) => {
                println!("  word: {:?} (alphabet {})", w.symbols, w.alphabet_size);
            }
        }
        let dev = reducer.max_deviation(series, rep).map_err(|e| e.to_string())?;
        println!("max deviation: {dev:.6}");
    }
    Ok(())
}

fn load_dataset(name: &str) -> Result<Dataset, String> {
    let spec = catalogue()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset {name:?}"))?;
    Ok(spec.load(&Protocol::quick()))
}

/// `--quantize EPS`: write ε-quantized leaves into the snapshot. The
/// engine validates the step (finite, positive, DBCH-only).
fn quantize_flag(args: &[String]) -> Result<Option<f64>, String> {
    if args.iter().any(|a| a == "--quantize") {
        let step: f64 =
            flag(args, "--quantize", "0").parse().map_err(|_| "bad --quantize".to_string())?;
        Ok(Some(step))
    } else {
        Ok(None)
    }
}

/// Shared by `knn` and `serve`: load the dataset and build the engine
/// the flags describe. Returns the dataset alongside the engine (the
/// engine clones the series it indexes).
fn engine_from_flags(name: &str, args: &[String]) -> Result<(Dataset, Engine), String> {
    let m: usize = flag(args, "--coeffs", "12").parse().map_err(|_| "bad --coeffs".to_string())?;
    let method = flag(args, "--method", "SAPLA");
    let tree = TreeKind::parse(&flag(args, "--tree", "dbch"))
        .map_err(|_| "bad --tree (expected dbch or rtree)".to_string())?;
    let shards: usize =
        flag(args, "--shards", "1").parse().map_err(|_| "bad --shards".to_string())?;
    if shards == 0 {
        return Err("bad --shards (must be at least 1)".to_string());
    }
    let threads = threads_flag(args)?;
    let reducer = reducer_by_name(&method)?;
    let ds = load_dataset(name)?;
    let cfg = EngineConfig { tree, m, shards, ..EngineConfig::default() };
    let engine =
        Engine::build(cfg, reducer, ds.series.clone(), threads).map_err(|e| e.to_string())?;
    Ok((ds, engine))
}

/// `--index-file PATH` handling shared by `knn` and `serve`: when the
/// snapshot exists, cold-start from it (O(file size) load, the build
/// flags are ignored — the file is authoritative); otherwise build from
/// the dataset flags and persist the snapshot so the *next* start is
/// the fast one. Returns the path alongside the pair so `serve` can
/// hand it to the daemon for reload-from-file.
fn engine_via_index_file(
    name: &str,
    args: &[String],
) -> Result<(Dataset, Engine, Option<std::path::PathBuf>), String> {
    let Some(raw) = take_path(args) else {
        let (ds, engine) = engine_from_flags(name, args)?;
        return Ok((ds, engine, None));
    };
    let path = std::path::PathBuf::from(raw);
    if path.exists() {
        let ds = load_dataset(name)?;
        let engine = Engine::from_snapshot_file(&path).map_err(|e| e.to_string())?;
        println!("loaded index snapshot {} ({} series)", path.display(), engine.len());
        Ok((ds, engine, Some(path)))
    } else {
        let (ds, engine) = engine_from_flags(name, args)?;
        let quantize = quantize_flag(args)?;
        let bytes =
            engine.write_snapshot_file(&path, quantize).map_err(|e| e.to_string())?;
        println!("wrote index snapshot {} ({bytes} bytes)", path.display());
        // A quantized snapshot serves from perturbed leaf reps; reload
        // from the file just written so this first (cold) invocation
        // answers exactly like every later start that loads the file.
        let engine = if quantize.is_some() {
            Engine::from_snapshot_file(&path).map_err(|e| e.to_string())?
        } else {
            engine
        };
        Ok((ds, engine, Some(path)))
    }
}

fn take_path(args: &[String]) -> Option<String> {
    args.iter().position(|a| a == "--index-file").and_then(|i| args.get(i + 1)).cloned()
}

fn cmd_build_index(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("build-index: missing dataset name (see `sapla catalogue`)")?;
    let path = take_path(args)
        .ok_or("build-index: missing --index-file PATH (where to write the snapshot)")?;
    let quantize = quantize_flag(args)?;
    let (ds, engine) = engine_from_flags(name, &args[1..])?;
    let started = std::time::Instant::now();
    let bytes = engine
        .write_snapshot_file(std::path::Path::new(&path), quantize)
        .map_err(|e| e.to_string())?;
    println!(
        "indexed {}: {} series, method {} / {}, {} shard(s)",
        ds.name,
        engine.len(),
        engine.method(),
        engine.config().tree.name(),
        engine.shard_count()
    );
    println!(
        "wrote {path}: {bytes} bytes{} in {:.1} ms",
        if quantize.is_some() { " (quantized leaves)" } else { "" },
        started.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn cmd_knn(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("knn: missing dataset name (see `sapla catalogue`)")?;
    let k: usize = flag(args, "--k", "4").parse().map_err(|_| "bad --k".to_string())?;
    let threads = threads_flag(args)?;
    let (ds, engine, _) = engine_via_index_file(name, &args[1..])?;
    // Both tree kinds answer the whole query set through the engine;
    // `--threads` governs reduction, query preparation, and search.
    let queries = engine.prepare(&ds.queries, threads).map_err(|e| e.to_string())?;
    let (mut per_query, batch) = engine.knn(&queries, k, threads).map_err(|e| e.to_string())?;
    let stats = per_query.swap_remove(0);
    let truth = ds.exact_knn(&ds.queries[0], k);
    println!("dataset: {} ({} series)", ds.name, ds.series.len());
    println!("method: {} / {}", engine.method(), engine.config().tree.name());
    if engine.shard_count() > 1 {
        println!("shards: {}", engine.shard_count());
    }
    println!("retrieved: {:?}", stats.retrieved);
    println!("exact kNN: {truth:?}");
    println!("pruning power: {:.3}", stats.pruning_power());
    println!("accuracy: {:.3}", stats.accuracy(&truth));
    if batch.queries > 1 {
        println!(
            "batch: {} queries answered, pruning power {:.3}",
            batch.queries,
            batch.pruning_power()
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("serve: missing dataset name (see `sapla catalogue`)")?;
    let addr = flag(args, "--addr", "127.0.0.1:7878");
    let threads = threads_flag(args)?;
    // `--slow-ms N`: copy the stage trace of any request slower than N
    // milliseconds into the slow-query log (served back by OP_METRICS).
    let slow_ms = if args.iter().any(|a| a == "--slow-ms") {
        Some(flag(args, "--slow-ms", "0").parse().map_err(|_| "bad --slow-ms".to_string())?)
    } else {
        None
    };
    let (ds, engine, index_file) = engine_via_index_file(name, &args[1..])?;
    println!(
        "serving {}: {} series of length {}, tree {}, {} shard(s)",
        ds.name,
        engine.len(),
        ds.series_len(),
        engine.config().tree.name(),
        engine.shard_count()
    );
    let cfg = ServerConfig { threads, slow_ms, index_file, ..ServerConfig::default() };
    let server = Server::start(engine, addr.as_str(), cfg).map_err(|e| e.to_string())?;
    // Tests (and scripts) bind --addr 127.0.0.1:0 and read the real
    // port from this line.
    println!("listening on {}", server.addr());
    server.join();
    println!("shut down");
    Ok(())
}

/// Query a running daemon for its stats document (default), its
/// Prometheus-style text exposition (`--metrics`), or the extended
/// metrics JSON with `latency` and `trace` sections (`--metrics-json`).
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr", "127.0.0.1:7878");
    let want_text = args.iter().any(|a| a == "--metrics");
    let want_json = args.iter().any(|a| a == "--metrics-json");
    if want_text && want_json {
        return Err("stats: pass at most one of --metrics / --metrics-json".to_string());
    }
    let mut client = Client::connect(addr.as_str()).map_err(|e| format!("{addr}: {e}"))?;
    let doc = if want_text {
        client.metrics(MetricsFormat::Text)
    } else if want_json {
        client.metrics(MetricsFormat::Json)
    } else {
        client.stats()
    }
    .map_err(|e| e.to_string())?;
    print!("{doc}");
    if !doc.ends_with('\n') {
        println!();
    }
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let task = args.first().ok_or("mine: missing task (discord|motif|segment|forecast|cluster)")?;
    let name = args.get(1).ok_or("mine: missing dataset name (see `sapla catalogue`)")?;
    let m: usize = flag(args, "--coeffs", "12").parse().map_err(|_| "bad --coeffs".to_string())?;
    let k: usize = flag(args, "--k", "3").parse().map_err(|_| "bad --k".to_string())?;
    let spec = catalogue()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let ds = spec.load(&Protocol::quick());
    let reducer = sapla_baselines::SaplaReducer::new();
    let reps = reduce_batch(&reducer, &ds.series, m).map_err(|e| e.to_string())?;

    match task.as_str() {
        "discord" => {
            let top = sapla_mining::top_discords(&reps, k).map_err(|e| e.to_string())?;
            let scores = sapla_mining::discord_scores(&reps).map_err(|e| e.to_string())?;
            println!("top-{k} discords of {} ({} series):", ds.name, ds.series.len());
            for id in top {
                println!("  series {id:3}  1-NN Dist_PAR = {:.4}", scores[id]);
            }
        }
        "motif" => {
            let motif =
                sapla_mining::find_motif(&ds.series, &reps, 1.0).map_err(|e| e.to_string())?;
            println!(
                "closest pair in {}: series {} and {} at Euclidean distance {:.4}",
                ds.name, motif.a, motif.b, motif.distance
            );
            println!(
                "({} of {} pairs needed exact refinement)",
                motif.refined_pairs,
                ds.series.len() * (ds.series.len() - 1) / 2
            );
        }
        "segment" => {
            let changes: usize =
                flag(args, "--changes", "3").parse().map_err(|_| "bad --changes".to_string())?;
            let cps =
                sapla_mining::change_points(&ds.series[0], changes).map_err(|e| e.to_string())?;
            println!("change points of {}[0] (n = {}): {cps:?}", ds.name, ds.series_len());
        }
        "forecast" => {
            let horizon: usize =
                flag(args, "--horizon", "10").parse().map_err(|_| "bad --horizon".to_string())?;
            let lin = reps[0].as_linear().ok_or("forecast requires a linear representation")?;
            let fc = sapla_mining::extrapolate(lin, horizon).map_err(|e| e.to_string())?;
            println!("{horizon}-step trend forecast of {}[0]:", ds.name);
            println!("  {fc:?}");
        }
        "cluster" => {
            let c = sapla_mining::k_medoids(&reps, k, 10).map_err(|e| e.to_string())?;
            println!("k-medoids (k = {k}) over {}:", ds.name);
            for (ci, &medoid) in c.medoids.iter().enumerate() {
                println!("  cluster {ci}: medoid series {medoid}, members {:?}", c.members(ci));
            }
        }
        other => return Err(format!("unknown mine task {other:?}")),
    }
    Ok(())
}

fn cmd_catalogue() -> Result<(), String> {
    for spec in catalogue() {
        println!("{}", spec.name);
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let fig1 = TimeSeries::new(vec![
        7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0,
        9.0, 10.0, 10.0,
    ])
    .map_err(|e| e.to_string())?;
    println!("The paper's Fig. 1 example series (n = 20, M = 12):\n");
    for reducer in all_reducers() {
        if reducer.name() == "SAX" {
            continue;
        }
        let rep = reducer.reduce(&fig1, 12).map_err(|e| e.to_string())?;
        let dev = reducer.max_deviation(&fig1, &rep).map_err(|e| e.to_string())?;
        println!(
            "  {:6}  N = {:2}   max deviation = {:.4}",
            reducer.name(),
            rep.num_segments(),
            dev
        );
    }
    Ok(())
}
