//! # sapla-parallel
//!
//! A small work-stealing parallel engine for the workspace's two hot
//! paths (batch ingest and multi-query k-NN), built on scoped threads
//! from `std` — no external dependencies.
//!
//! ## Guarantees
//!
//! - **Deterministic output order**: [`par_try_map`] writes each result
//!   into the slot of its input index, so the output `Vec` is
//!   bit-for-bit identical to the sequential map regardless of thread
//!   count or scheduling.
//! - **First-error-by-input-order**: on failure the returned error is
//!   the one the *sequential* loop would have hit first (the failing
//!   item with the smallest index among all processed), not whichever
//!   worker errored first in wall time. Workers stop claiming items
//!   beyond the earliest known failure, so the engine also short-
//!   circuits like the sequential loop does.
//! - **Panic safety**: a panicking closure never aborts the process via
//!   a `join().expect(..)`. The payload is captured, the pool drains,
//!   and the panic resumes on the calling thread — observable with
//!   `std::panic::catch_unwind` exactly like a sequential panic. When a
//!   panic and an `Err` race, the one at the smaller input index wins,
//!   again matching sequential semantics.
//!
//! ## Scheduling
//!
//! Each worker owns a [`RangeDeque`]: a contiguous range of input
//! indices packed into one atomic word (an [`AtomicCell`], a transparent
//! `AtomicU64` in normal builds). Owners pop small blocks from the
//! front; idle workers steal the back half of the largest remaining
//! deque. This is classic split-range work stealing: contention is one
//! CAS per block, and imbalanced workloads (e.g. APLA's `O(N n²)`
//! reductions mixed with cheap PAA ones) rebalance automatically.
//!
//! Under the `audit-model` feature the cell routes through a controlled
//! scheduler ([`model`]) and `sapla-audit` exhaustively enumerates
//! owner-pop vs. steal interleavings of this exact protocol, asserting
//! that no index is lost, duplicated, or claimed twice on any schedule.

pub mod cell;
pub mod deque;
#[cfg(feature = "audit-model")]
pub mod model;

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use cell::AtomicCell;
pub use deque::RangeDeque;

/// Hardware parallelism, used when callers pass `threads = 0`.
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Worker count actually used for `items` inputs: `requested` (or the
/// hardware count when `requested == 0`), clamped to the item count.
pub fn effective_threads(requested: usize, items: usize) -> usize {
    let t = if requested == 0 { max_threads() } else { requested };
    t.clamp(1, items.max(1))
}

/// Write-once result slots shared across the scope. Each input index is
/// claimed by exactly one worker (the deques partition the index space),
/// so unsynchronised writes to distinct slots are race-free; the scope
/// join publishes them to the caller.
struct Slots<'a, T> {
    cells: &'a [UnsafeCell<Option<T>>],
}

// SAFETY: sharing `Slots` across worker threads is sound because the
// claim protocol guarantees disjoint-index writes: the initial deques
// partition `0..n`, `RangeDeque::pop_front`/`steal_half` CAS the whole
// range word so a claim and a steal can never both take the same index,
// and `install` only republishes a range a steal already removed from
// its victim. Every index is therefore claimed by exactly one worker,
// each `UnsafeCell` is written by at most one thread (checked by the
// `debug_assert!` in [`Slots::write`]), and the caller only reads the
// cells after the scope joins, which synchronises-with every worker.
// `T: Send` is required because values written on a worker thread are
// handed to the calling thread. (This partitioning is what the
// `sapla-audit` interleaving explorer checks across every schedule of
// the owner-pop vs. steal race.)
unsafe impl<T: Send> Sync for Slots<'_, T> {}

impl<T> Slots<'_, T> {
    fn write(&self, index: usize, value: T) {
        // SAFETY: `index` was claimed from a deque exactly once (see the
        // `Sync` justification above), so no other thread holds a
        // reference to this cell and the write cannot race.
        unsafe {
            let cell = &mut *self.cells[index].get();
            debug_assert!(cell.is_none(), "slot {index} written twice: claim protocol violated");
            *cell = Some(value);
        }
    }
}

/// Shared failure state: the earliest failing input index (error or
/// panic) and the first panic payload by input order.
struct Failures {
    /// Items with an index above this are skipped (sequential
    /// short-circuit semantics). `usize::MAX` while everything is fine.
    bound: AtomicUsize,
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

impl Failures {
    fn new() -> Failures {
        Failures { bound: AtomicUsize::new(usize::MAX), panic: Mutex::new(None) }
    }

    fn record_error(&self, index: usize) {
        self.bound.fetch_min(index, Ordering::AcqRel);
    }

    fn record_panic(&self, index: usize, payload: Box<dyn Any + Send>) {
        self.bound.fetch_min(index, Ordering::AcqRel);
        let mut slot = self.panic.lock().unwrap_or_else(|p| p.into_inner());
        match &*slot {
            Some((prev, _)) if *prev <= index => {}
            _ => *slot = Some((index, payload)),
        }
    }

    fn skip(&self, index: usize) -> bool {
        index > self.bound.load(Ordering::Acquire)
    }
}

/// Parallel fallible map with per-worker state.
///
/// Maps `f` over `items` on up to `threads` workers (`0` = hardware
/// count). `init` runs once per worker and its value is passed mutably
/// to every call that worker makes — reusable scratch (buffers, heaps)
/// without locks. Output order, error choice, and panic behaviour match
/// the sequential loop exactly (see the crate docs).
///
/// # Errors
///
/// The error of the failing item with the smallest input index, as the
/// sequential loop would return.
pub fn par_try_map_init<T, U, E, S, I, F>(
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> Result<U, E> + Sync,
{
    let n = items.len();
    let threads = effective_threads(threads, n);
    if threads <= 1 {
        // Register the engine counters even on the sequential fast path so
        // single-core profiles still show the rows (at their true zeros).
        sapla_obs::lane_counter!("parallel.tasks", 0, n as u64);
        sapla_obs::lane_counter!("parallel.steal.attempts", 0, 0);
        sapla_obs::lane_counter!("parallel.steal.ok", 0, 0);
        let mut scratch = init();
        return items.iter().enumerate().map(|(i, t)| f(&mut scratch, i, t)).collect();
    }
    assert!(n < u32::MAX as usize, "par_try_map_init supports < 2^32 items");

    let cells: Vec<UnsafeCell<Option<Result<U, E>>>> =
        (0..n).map(|_| UnsafeCell::new(None)).collect();
    let slots = Slots { cells: &cells };
    let failures = Failures::new();
    // Initial even partition; stealing rebalances from here.
    let deques: Vec<RangeDeque> =
        (0..threads).map(|w| RangeDeque::new(w * n / threads, (w + 1) * n / threads)).collect();
    // Small claim blocks: cheap enough to amortise the CAS, small enough
    // to keep stealing effective on skewed workloads.
    let block = (n / (threads * 8)).max(1);
    // Register the steal rows up front so a profile always shows them,
    // even when a run finishes without a single steal attempt.
    sapla_obs::lane_counter!("parallel.steal.attempts", 0, 0);
    sapla_obs::lane_counter!("parallel.steal.ok", 0, 0);

    std::thread::scope(|scope| {
        let worker = |wid: usize| {
            let _obs_worker = sapla_obs::worker::enter(wid);
            sapla_obs::gauge_max!("parallel.queue.hwm", deques[wid].remaining() as u64);
            let mut scratch = init();
            let me = &deques[wid];
            loop {
                while let Some(range) = me.pop_front(block) {
                    sapla_obs::lane_counter!("parallel.tasks", wid, range.len() as u64);
                    for i in range {
                        if failures.skip(i) {
                            continue;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&mut scratch, i, &items[i]))) {
                            Ok(Ok(value)) => slots.write(i, Ok(value)),
                            Ok(Err(err)) => {
                                failures.record_error(i);
                                slots.write(i, Err(err));
                            }
                            Err(payload) => failures.record_panic(i, payload),
                        }
                    }
                }
                // Own deque is dry: steal the back half of the fullest
                // victim. A failed race retries; an empty scan exits
                // (any in-flight stolen range is the thief's problem).
                let victim = (0..deques.len())
                    .filter(|&v| v != wid)
                    .max_by_key(|&v| deques[v].remaining())
                    .filter(|&v| deques[v].remaining() > 0);
                match victim {
                    Some(v) => {
                        sapla_obs::lane_counter!("parallel.steal.attempts", wid, 1);
                        if let Some(range) = deques[v].steal_half() {
                            sapla_obs::lane_counter!("parallel.steal.ok", wid, 1);
                            me.install(&range);
                            sapla_obs::gauge_max!("parallel.queue.hwm", me.remaining() as u64);
                        }
                    }
                    None => break,
                }
            }
        };
        // The calling thread doubles as worker 0.
        let handles: Vec<_> = (1..threads).map(|wid| scope.spawn(move || worker(wid))).collect();
        worker(0);
        // Scoped threads cannot outlive the scope; collecting the joins
        // here keeps panics funnelled through `failures`, not `join`.
        for h in handles {
            // Worker closures catch their own unwinds, so join only
            // fails if the runtime itself misbehaves.
            let _ = h.join();
        }
    });

    let mut out = Vec::with_capacity(n);
    let panic = failures.panic.lock().unwrap_or_else(|p| p.into_inner()).take();
    for (i, cell) in cells.into_iter().enumerate() {
        match cell.into_inner() {
            Some(Ok(value)) => out.push(value),
            Some(Err(err)) => {
                // An earlier panic outranks this error in input order.
                if let Some((pi, payload)) = panic {
                    if pi < i {
                        std::panic::resume_unwind(payload);
                    }
                }
                return Err(err);
            }
            // Skipped past the first failure: resolve what that was.
            None => {
                if let Some((pi, payload)) = panic {
                    if pi == i {
                        std::panic::resume_unwind(payload);
                    }
                }
                unreachable!("slot {i} empty without a recorded failure");
            }
        }
    }
    if let Some((_, payload)) = panic {
        std::panic::resume_unwind(payload);
    }
    Ok(out)
}

/// [`par_try_map_init`] without per-worker state.
///
/// # Errors
///
/// The error of the failing item with the smallest input index.
pub fn par_try_map<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    par_try_map_init(items, threads, || (), |(), i, t| f(i, t))
}

/// Infallible parallel map with deterministic output order.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    match par_try_map(items, threads, |i, t| Ok::<U, std::convert::Infallible>(f(i, t))) {
        Ok(out) => out,
        Err(never) => match never {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn matches_sequential_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 4, 7, 16, 64] {
            let par = par_map(&items, threads, |_, x| x * x + 1);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |_, x| x + 1), vec![6]);
    }

    #[test]
    fn first_error_is_by_input_order() {
        // Errors at many indices; index 3 must win on every schedule.
        let items: Vec<usize> = (0..400).collect();
        for threads in [2, 4, 7] {
            for _ in 0..16 {
                let got: Result<Vec<usize>, String> = par_try_map(&items, threads, |_, &x| {
                    if x == 3 || x >= 5 {
                        Err(format!("fail {x}"))
                    } else {
                        Ok(x)
                    }
                });
                assert_eq!(got.unwrap_err(), "fail 3", "threads = {threads}");
            }
        }
    }

    #[test]
    fn short_circuits_after_an_early_error() {
        let processed = AtomicUsize::new(0);
        let items: Vec<usize> = (0..10_000).collect();
        let got: Result<Vec<usize>, &str> = par_try_map(&items, 4, |_, &x| {
            processed.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                Err("boom")
            } else {
                std::thread::yield_now();
                Ok(x)
            }
        });
        assert_eq!(got.unwrap_err(), "boom");
        // Not a hard guarantee of an exact count, but the skip bound must
        // have pruned the overwhelming majority of the input.
        assert!(processed.load(Ordering::Relaxed) < items.len(), "no short-circuit happened");
    }

    #[test]
    fn worker_panics_resume_on_the_caller() {
        let items: Vec<usize> = (0..100).collect();
        let outcome = std::panic::catch_unwind(|| {
            let _ = par_map(&items, 4, |_, &x| {
                if x == 41 {
                    panic!("worker panic at {x}");
                }
                x
            });
        });
        let payload = outcome.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("worker panic at 41"), "payload: {msg}");
    }

    #[test]
    fn earlier_error_beats_later_panic() {
        let items: Vec<usize> = (0..100).collect();
        let got = std::panic::catch_unwind(|| {
            par_try_map(&items, 4, |_, &x| {
                if x == 90 {
                    panic!("late panic");
                }
                if x == 2 {
                    return Err("early error");
                }
                Ok(x)
            })
        });
        // The index-2 error precedes the index-90 panic in input order,
        // so the call returns Err rather than unwinding.
        assert_eq!(got.expect("no unwind"), Err("early error"));
    }

    #[test]
    fn earlier_panic_beats_later_error() {
        let items: Vec<usize> = (0..100).collect();
        let got = std::panic::catch_unwind(|| {
            par_try_map(&items, 4, |_, &x| {
                if x == 2 {
                    panic!("early panic");
                }
                if x == 90 {
                    return Err("late error");
                }
                Ok(x)
            })
        });
        assert!(got.is_err(), "the index-2 panic must win over the index-90 error");
    }

    #[test]
    fn per_worker_scratch_is_reused_not_shared() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..5_000).collect();
        let out: Result<Vec<usize>, std::convert::Infallible> = par_try_map_init(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, _, &x| {
                scratch.push(x);
                Ok(scratch.len())
            },
        );
        assert_eq!(out.unwrap().len(), items.len());
        let created = inits.load(Ordering::Relaxed);
        assert!(created <= 4, "scratch created per worker, got {created}");
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // One pathological item at the front; with static striping the
        // first worker would serialise everything behind it.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 4, |i, &x| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x + 1
        });
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(1, 100), 1);
        assert_eq!(effective_threads(0, 0), 1);
        assert!(effective_threads(0, 1_000) >= 1);
    }
}
