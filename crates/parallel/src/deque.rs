//! The split-range work-stealing deque: one worker's claimable range of
//! input indices, packed as `start << 32 | end` in a single atomic word.
//!
//! This is the whole synchronisation protocol of the parallel engine —
//! owners pop small blocks from the front, idle workers steal the back
//! half — so it is kept in its own module, generic over nothing, built
//! on [`AtomicCell`] so `sapla-audit`'s interleaving explorer can
//! enumerate every owner-pop vs. steal schedule against the exact code
//! the engine runs in production.
//!
//! ## Protocol invariants
//!
//! The claim protocol partitions the initial index space: every index is
//! claimed by exactly one successful `pop_front` on exactly one deque.
//!
//! * `pop_front` and `steal_half` both CAS the whole word, so a claim
//!   and a steal that overlap can never both succeed on the same state —
//!   the loser observes the new word and retries against it.
//! * `steal_half` leaves the front half with the victim and takes the
//!   back half; the two halves are disjoint, so a concurrent `pop_front`
//!   that wins against the steal claims indices the steal no longer
//!   covers (and vice versa).
//! * `install` is a plain store, sound only because a worker installs
//!   exclusively into its *own* deque while that deque is empty and no
//!   other thread ever writes it: thieves only ever *shrink* a victim's
//!   range via CAS, and an empty range (`start >= end`) makes every
//!   concurrent `pop_front`/`steal_half` return `None` rather than CAS.
//!
//! These are exactly the invariants the `sapla-audit` model tests assert
//! across every enumerated schedule: no index lost, no index claimed
//! twice, termination.

use crate::cell::AtomicCell;
use std::ops::Range;
use std::sync::atomic::Ordering;

/// One worker's claimable range of input indices (half-open, `< 2^32`).
#[derive(Debug)]
pub struct RangeDeque(AtomicCell);

impl RangeDeque {
    /// A deque owning the half-open range `start..end`.
    pub fn new(start: usize, end: usize) -> RangeDeque {
        RangeDeque(AtomicCell::new(Self::pack(start as u64, end as u64)))
    }

    fn pack(start: u64, end: u64) -> u64 {
        (start << 32) | end
    }

    fn unpack(word: u64) -> (u64, u64) {
        (word >> 32, word & 0xFFFF_FFFF)
    }

    /// How many indices remain claimable (a racy snapshot, used only as
    /// a victim-selection heuristic).
    pub fn remaining(&self) -> usize {
        let (s, e) = Self::unpack(self.0.load(Ordering::Relaxed));
        e.saturating_sub(s) as usize
    }

    /// Owner side: claim up to `block` indices from the front.
    // audit: no_alloc — claim path runs per input index.
    pub fn pop_front(&self, block: usize) -> Option<Range<usize>> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (s, e) = Self::unpack(cur);
            if s >= e {
                return None;
            }
            let take = (e - s).min(block as u64);
            let next = Self::pack(s + take, e);
            match self.0.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(s as usize..(s + take) as usize),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Thief side: split off the back half of the victim's range.
    // audit: no_alloc — steal path runs on every idle worker spin.
    pub fn steal_half(&self) -> Option<Range<usize>> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (s, e) = Self::unpack(cur);
            if s >= e {
                return None;
            }
            // Victim keeps the front half (rounded up) for locality.
            let mid = s + (e - s).div_ceil(2);
            if mid >= e {
                return None;
            }
            let next = Self::pack(s, mid);
            match self.0.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(mid as usize..e as usize),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Publish a freshly stolen range as this worker's own deque. Only
    /// called by the owning worker while its deque is empty, so
    /// concurrent thieves cannot observe a partially installed range
    /// (an empty range refuses both `pop_front` and `steal_half`).
    // audit: no_alloc
    pub fn install(&self, range: &Range<usize>) {
        self.0.store(Self::pack(range.start as u64, range.end as u64), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_claims_from_the_front_in_blocks() {
        let d = RangeDeque::new(0, 10);
        assert_eq!(d.pop_front(3), Some(0..3));
        assert_eq!(d.pop_front(3), Some(3..6));
        assert_eq!(d.remaining(), 4);
        assert_eq!(d.pop_front(100), Some(6..10));
        assert_eq!(d.pop_front(1), None);
    }

    #[test]
    fn steal_takes_the_back_half() {
        let d = RangeDeque::new(0, 10);
        assert_eq!(d.steal_half(), Some(5..10));
        assert_eq!(d.steal_half(), Some(3..5));
        assert_eq!(d.steal_half(), Some(2..3));
        // A single remaining index is the owner's; stealing refuses.
        assert_eq!(d.steal_half(), Some(1..2));
        assert_eq!(d.remaining(), 1);
        assert_eq!(d.steal_half(), None);
        assert_eq!(d.pop_front(1), Some(0..1));
    }

    #[test]
    fn install_publishes_a_new_range() {
        let d = RangeDeque::new(0, 0);
        assert_eq!(d.pop_front(1), None);
        d.install(&(7..11));
        assert_eq!(d.remaining(), 4);
        assert_eq!(d.pop_front(2), Some(7..9));
    }
}
