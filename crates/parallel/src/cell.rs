//! [`AtomicCell`] — the one atomic word the work-stealing protocol runs on.
//!
//! In normal builds this is a transparent wrapper around
//! [`std::sync::atomic::AtomicU64`]: every method inlines to the
//! corresponding intrinsic and the type adds zero overhead.
//!
//! Under the `audit-model` feature every operation first passes through
//! [`crate::model::yield_point`], which hands control to the audit
//! scheduler when (and only when) the current thread is registered with
//! one. That turns each atomic access into an explicit scheduling point,
//! letting `sapla-audit`'s interleaving explorer enumerate every order in
//! which concurrent owners and thieves can touch the word. Unregistered
//! threads (everything outside a model run) pay one thread-local read and
//! otherwise behave identically.
//!
//! Under the model, `compare_exchange_weak` is strengthened to the
//! non-spurious `compare_exchange` so that a schedule fully determines
//! the execution — spurious failures would make replay nondeterministic.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `u64` cell with atomic access, instrumentable for model checking.
#[derive(Debug)]
pub struct AtomicCell(AtomicU64);

impl AtomicCell {
    /// A new cell holding `value`.
    pub const fn new(value: u64) -> AtomicCell {
        AtomicCell(AtomicU64::new(value))
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        #[cfg(feature = "audit-model")]
        crate::model::yield_point();
        self.0.load(order)
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, value: u64, order: Ordering) {
        #[cfg(feature = "audit-model")]
        crate::model::yield_point();
        self.0.store(value, order);
    }

    /// Atomic weak compare-exchange (strong and therefore non-spurious
    /// under `audit-model`, so schedules replay deterministically).
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        #[cfg(feature = "audit-model")]
        {
            crate::model::yield_point();
            self.0.compare_exchange(current, new, success, failure)
        }
        #[cfg(not(feature = "audit-model"))]
        self.0.compare_exchange_weak(current, new, success, failure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_an_atomic_u64() {
        let c = AtomicCell::new(7);
        assert_eq!(c.load(Ordering::Acquire), 7);
        c.store(9, Ordering::Release);
        assert_eq!(c.load(Ordering::Acquire), 9);
        // A weak CAS may fail spuriously; retry like every call site does.
        let mut cur = 9;
        loop {
            match c.compare_exchange_weak(cur, 11, Ordering::AcqRel, Ordering::Acquire) {
                Ok(prev) => {
                    assert_eq!(prev, 9);
                    break;
                }
                Err(actual) => cur = actual,
            }
        }
        assert_eq!(c.load(Ordering::Acquire), 11);
        assert_eq!(
            c.compare_exchange_weak(5, 1, Ordering::AcqRel, Ordering::Acquire),
            Err(11),
            "a CAS from a stale value must fail with the current one"
        );
    }
}
