//! A controlled scheduler for deterministic interleaving exploration
//! (compiled only under the `audit-model` feature).
//!
//! The parallel engine's entire synchronisation protocol runs on
//! [`crate::cell::AtomicCell`]. Under `audit-model` every cell operation
//! calls [`yield_point`], which parks the calling thread until a
//! coordinator grants it one step. Because at most one virtual thread
//! runs between grants, an execution is fully determined by the sequence
//! of grant decisions — a **schedule** — and the coordinator can replay,
//! randomise, or exhaustively enumerate schedules:
//!
//! * [`run_schedule`] executes one schedule (a replay prefix + a policy
//!   for the suffix) and returns the full decision trace.
//! * [`explore`] drives a depth-first enumeration of all schedules of a
//!   harness up to a preemption bound, the classic CHESS-style coverage
//!   guarantee: every behaviour reachable with ≤ `preemption_bound`
//!   forced context switches is visited exactly once.
//!
//! Threads not registered with a controller (i.e. everything outside a
//! model run, even in a build with the feature enabled) pass through
//! [`yield_point`] with a single thread-local read.
//!
//! ## Blocking primitives
//!
//! [`Mutex`] and [`Condvar`] are model-aware drop-ins for their
//! `std::sync` namesakes (plain pass-throughs outside a model run):
//!
//! * `Mutex::lock` is one scheduling step; a contended lock parks the
//!   thread as *blocked* — blocked threads are not runnable, so the
//!   explorer never wastes schedules spinning on them, and unlocking
//!   re-enables every thread blocked on that mutex.
//! * `Condvar::wait` yields once *while still holding the mutex* and
//!   then releases-and-blocks in a single atomic transition, exactly
//!   std's contract: a notifier that holds the mutex can never land
//!   between the caller's last predicate check and the block (it is
//!   blocked on the mutex itself), while a notifier that does *not*
//!   hold the mutex can — which is precisely the lost-wakeup window
//!   the serve admission-queue model checks for.
//! * `notify_one` is modelled as `notify_all`. Waking more threads
//!   than std would is sound: any extra wakeup is indistinguishable
//!   from a spurious wakeup, which std permits at any time.
//! * [`run_schedule_spurious`] grants a *spurious-wakeup budget*: a
//!   thread blocked on a condvar counts as runnable while budget
//!   remains, and granting it a step wakes it with no notification —
//!   the explorer then enumerates spurious-wakeup interleavings too.
//! * If every unfinished thread is blocked and no spurious budget
//!   remains, the run is a **deadlock**: the blocked threads abort
//!   with a `model deadlock` panic and the failing schedule id is
//!   reported like any other failure.
//!
//! ## What the model does and does not cover
//!
//! Operations execute one at a time, so the exploration is sound for
//! **sequentially consistent** outcomes of the protocol: lost updates,
//! double claims, ABA-style races and livelocks at the granularity of
//! atomic operations. It does not model weak-memory reordering — the
//! protocol's orderings (`Acquire`/`Release`/`AcqRel` on a single word)
//! are the standard message-passing pattern whose SC approximation is
//! exact for single-variable protocols. Guard-protected data is not
//! instrumented (mutual exclusion already serialises it); scheduling
//! points are atomic-cell operations, lock acquisitions, the
//! pre-release instant of `wait`, and notifies.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// One scheduling decision: which thread was granted the step, and which
/// threads were runnable when the decision was taken (ascending ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Choice {
    /// The thread that received the step.
    pub chosen: usize,
    /// Every thread that was runnable at this point.
    pub enabled: Vec<usize>,
}

/// The outcome of one controlled execution.
#[derive(Debug)]
pub struct RunTrace {
    /// Every decision taken, in order (forced single-thread steps included).
    pub choices: Vec<Choice>,
    /// True if the execution hit the step budget and was released to run
    /// freely — a livelock suspect; the invariants of the harness still
    /// hold (the free run completes) but the schedule must be reported.
    pub exceeded_budget: bool,
    /// True if the replay prefix named a thread that was not runnable at
    /// that point (the caller's schedule diverged from this program).
    pub replay_diverged: bool,
}

impl RunTrace {
    /// A compact replayable name for this schedule: the granted thread id
    /// at every step, as a digit string (model runs use ≤ 10 threads).
    pub fn schedule_id(&self) -> String {
        // audit: cast_ok — `chosen` indexes ≤ 10 model threads.
        self.choices.iter().map(|c| char::from(b'0' + (c.chosen as u8 % 10))).collect()
    }
}

/// Parse a schedule id produced by [`RunTrace::schedule_id`] back into a
/// replay prefix for [`run_schedule`]. Non-digit characters are ignored,
/// so ids can be copied with surrounding punctuation.
pub fn parse_schedule_id(id: &str) -> Vec<usize> {
    id.chars().filter_map(|c| c.to_digit(10)).map(|d| d as usize).collect()
}

/// How the coordinator chooses once the replay prefix is exhausted.
#[derive(Debug, Clone, Copy)]
pub enum Policy {
    /// Keep running the previously granted thread while it stays
    /// runnable, else the lowest runnable id. Produces zero preemptions
    /// beyond the replay prefix — the DFS baseline.
    Continue,
    /// Choose uniformly among runnable threads with a deterministic
    /// xorshift64* stream seeded by the given value.
    Random(u64),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Running,
    Waiting,
    /// Parked on a contended [`Mutex`]; not runnable until its holder
    /// unlocks. The payload is the mutex's model id.
    BlockedMutex(u64),
    /// Parked in [`Condvar::wait`]; runnable only via a notify or (while
    /// spurious budget remains) a spurious grant. The payload is the
    /// condvar's model id.
    BlockedCondvar(u64),
    Finished,
}

struct State {
    current: Option<usize>,
    status: Vec<Status>,
    /// When set, yield points stop parking: the run was aborted (budget
    /// or panic) and the remaining threads drain at full speed. Threads
    /// blocked on model primitives abort instead (they may never be
    /// woken once scheduling stops).
    free_run: bool,
    /// Set by the coordinator when no thread is runnable but some are
    /// still blocked: the schedule deadlocked. Blocked threads observe
    /// the flag and panic so the run terminates and reports.
    deadlock: bool,
    /// Remaining spurious wakeups the coordinator may inject (granting a
    /// step to a condvar-blocked thread with no notify).
    spurious_left: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Inner {
    state: StdMutex<State>,
    cv: StdCondvar,
}

thread_local! {
    static REGISTRATION: RefCell<Option<(usize, Arc<Inner>)>> = const { RefCell::new(None) };
}

fn lock(inner: &Inner) -> StdMutexGuard<'_, State> {
    inner.state.lock().unwrap_or_else(|p| p.into_inner())
}

/// The instrumentation hook called by every [`crate::cell::AtomicCell`]
/// operation. A no-op unless the calling thread is registered with a
/// model run, in which case it parks until the coordinator grants a step.
pub fn yield_point() {
    let reg = REGISTRATION.with(|r| r.borrow().clone());
    let Some((tid, inner)) = reg else { return };
    let mut st = lock(&inner);
    if st.free_run {
        return;
    }
    st.status[tid] = Status::Waiting;
    inner.cv.notify_all();
    while st.current != Some(tid) && !st.free_run {
        st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
    }
    if !st.free_run {
        st.current = None;
        st.status[tid] = Status::Running;
    }
}

struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        // xorshift64*; the zero state is mapped away at construction.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Execute `body(tid)` on `n_threads` virtual threads under a controlled
/// schedule: the first `replay.len()` decisions follow `replay`, the
/// rest follow `policy`. Returns the complete decision trace.
///
/// Every thread runs real code on a real OS thread; the coordinator
/// (this thread) serialises them at [`yield_point`]s, so the trace fully
/// determines the execution. A body that panics has its payload resumed
/// on the caller after the schedule id is printed to stderr.
///
/// # Panics
///
/// Panics if `n_threads` is 0 or greater than 10 (schedule ids are digit
/// strings), and resumes any panic raised by a `body`.
pub fn run_schedule<F>(
    n_threads: usize,
    replay: &[usize],
    policy: Policy,
    max_steps: usize,
    body: F,
) -> RunTrace
where
    F: Fn(usize) + Sync,
{
    run_schedule_spurious(n_threads, replay, policy, max_steps, 0, body)
}

/// [`run_schedule`] with a spurious-wakeup budget: up to
/// `spurious_budget` times per run, the coordinator may grant a step to
/// a thread blocked in [`Condvar::wait`] with no notify having occurred
/// — the wakeup std's contract allows at any time. With a budget of 0
/// (the [`run_schedule`] default) condvar waiters wake only on notifies.
pub fn run_schedule_spurious<F>(
    n_threads: usize,
    replay: &[usize],
    policy: Policy,
    max_steps: usize,
    spurious_budget: usize,
    body: F,
) -> RunTrace
where
    F: Fn(usize) + Sync,
{
    assert!((1..=10).contains(&n_threads), "model runs use 1..=10 threads");
    let inner = Arc::new(Inner {
        state: StdMutex::new(State {
            current: None,
            status: vec![Status::Running; n_threads],
            free_run: false,
            deadlock: false,
            spurious_left: spurious_budget,
            panic: None,
        }),
        cv: StdCondvar::new(),
    });
    let mut choices: Vec<Choice> = Vec::new();
    let mut exceeded_budget = false;
    let mut replay_diverged = false;
    let mut rng = match policy {
        Policy::Random(seed) => Some(Xorshift(seed | 1)),
        Policy::Continue => None,
    };

    std::thread::scope(|scope| {
        for tid in 0..n_threads {
            let inner = Arc::clone(&inner);
            let body = &body;
            scope.spawn(move || {
                REGISTRATION.with(|r| *r.borrow_mut() = Some((tid, Arc::clone(&inner))));
                let outcome = catch_unwind(AssertUnwindSafe(|| body(tid)));
                REGISTRATION.with(|r| *r.borrow_mut() = None);
                let mut st = lock(&inner);
                st.status[tid] = Status::Finished;
                if let Err(payload) = outcome {
                    // First panic wins; free-run so every thread drains.
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                    st.free_run = true;
                }
                inner.cv.notify_all();
            });
        }

        // Coordinator: grant one step at a time until every thread
        // finishes. A decision is taken only when each unfinished thread
        // is parked, so the enabled set is deterministic.
        let mut st = lock(&inner);
        loop {
            if st.status.iter().all(|&s| s == Status::Finished) {
                break;
            }
            if st.free_run {
                st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let all_parked = st.status.iter().all(|&s| !matches!(s, Status::Running));
            if !all_parked {
                st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let enabled: Vec<usize> = (0..n_threads)
                .filter(|&t| match st.status[t] {
                    Status::Waiting => true,
                    Status::BlockedCondvar(_) => st.spurious_left > 0,
                    _ => false,
                })
                .collect();
            if enabled.is_empty() {
                // Every unfinished thread is blocked on a mutex or
                // condvar and no spurious budget remains: deadlock.
                // Blocked threads observe the flag and abort-panic, so
                // the scope joins and the schedule id is reported.
                st.deadlock = true;
                inner.cv.notify_all();
                st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let step = choices.len();
            let chosen = if let Some(&want) = replay.get(step) {
                if enabled.contains(&want) {
                    want
                } else {
                    replay_diverged = true;
                    enabled[0]
                }
            } else {
                match (&mut rng, choices.last()) {
                    (Some(r), _) => enabled[(r.next() % enabled.len() as u64) as usize],
                    (None, Some(last)) if enabled.contains(&last.chosen) => last.chosen,
                    (None, _) => enabled[0],
                }
            };
            if step >= max_steps {
                exceeded_budget = true;
                st.free_run = true;
                inner.cv.notify_all();
                continue;
            }
            choices.push(Choice { chosen, enabled });
            if matches!(st.status[chosen], Status::BlockedCondvar(_)) {
                // Granting a condvar-blocked thread with no notify is a
                // spurious wakeup; spend one unit of budget.
                st.spurious_left -= 1;
            }
            // Grant the step and wait for the thread to consume it.
            st.current = Some(chosen);
            inner.cv.notify_all();
            while st.current.is_some() && !st.free_run {
                st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
    });

    let trace = RunTrace { choices, exceeded_budget, replay_diverged };
    let payload = lock(&inner).panic.take();
    if let Some(payload) = payload {
        eprintln!("model run panicked under schedule {:?}", trace.schedule_id());
        resume_unwind(payload);
    }
    trace
}

/// Result of a depth-first schedule enumeration.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// How many distinct complete schedules were executed.
    pub schedules: usize,
    /// True when the enumeration stopped at `max_schedules` with
    /// unexplored branches remaining.
    pub capped: bool,
}

struct Frame {
    enabled: Vec<usize>,
    chosen: usize,
    tried: Vec<usize>,
    /// Preemptions spent strictly before this decision.
    pre_before: usize,
}

/// Exhaustively enumerate schedules of a harness, depth-first, visiting
/// every schedule with at most `preemption_bound` preemptions (a
/// *preemption* switches away from a thread that is still runnable).
///
/// `run` executes one schedule: it must call [`run_schedule`] with the
/// given replay prefix and [`Policy::Continue`], assert its invariants,
/// and return the trace. Each invocation receives a distinct schedule.
pub fn explore<H>(preemption_bound: usize, max_schedules: usize, mut run: H) -> ExploreOutcome
where
    H: FnMut(&[usize]) -> RunTrace,
{
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let replay: Vec<usize> = stack.iter().map(|f| f.chosen).collect();
        let trace = run(&replay);
        schedules += 1;
        debug_assert!(!trace.replay_diverged, "DFS replay prefixes never diverge");
        if schedules >= max_schedules {
            return ExploreOutcome { schedules, capped: true };
        }
        // Extend the stack with the decisions the default policy took
        // beyond the replayed prefix. A preemption at step j means step
        // j's choice switched away from step j-1's thread while it was
        // still runnable; the Continue policy never does that, so the
        // appended frames only inherit the preemption spent by the frame
        // directly above them (which may be a replayed alternative).
        for choice in trace.choices.iter().skip(stack.len()) {
            let pre_before = match stack.len() {
                0 => 0,
                depth => {
                    let top = &stack[depth - 1];
                    let top_preempted = depth >= 2 && {
                        let prev = stack[depth - 2].chosen;
                        top.chosen != prev && top.enabled.contains(&prev)
                    };
                    top.pre_before + usize::from(top_preempted)
                }
            };
            stack.push(Frame {
                enabled: choice.enabled.clone(),
                chosen: choice.chosen,
                tried: vec![choice.chosen],
                pre_before,
            });
        }
        // Backtrack to the deepest frame with an untried alternative
        // that stays within the preemption bound.
        let mut advanced = false;
        while !stack.is_empty() {
            let depth = stack.len() - 1;
            let prev_chosen = if depth == 0 { None } else { Some(stack[depth - 1].chosen) };
            let top = &mut stack[depth];
            let candidate = top.enabled.iter().copied().find(|c| {
                if top.tried.contains(c) {
                    return false;
                }
                let pre = match prev_chosen {
                    Some(p) if *c != p && top.enabled.contains(&p) => top.pre_before + 1,
                    _ => top.pre_before,
                };
                pre <= preemption_bound
            });
            match candidate {
                Some(c) => {
                    top.chosen = c;
                    top.tried.push(c);
                    advanced = true;
                    break;
                }
                None => {
                    stack.pop();
                }
            }
        }
        if !advanced {
            return ExploreOutcome { schedules, capped: false };
        }
    }
}

static NEXT_SYNC_ID: AtomicU64 = AtomicU64::new(1);

fn plain_lock<T>(m: &StdMutex<T>) -> StdMutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn try_acquire<'a, T>(m: &'a StdMutex<T>) -> Option<StdMutexGuard<'a, T>> {
    match m.try_lock() {
        Ok(g) => Some(g),
        Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
        Err(std::sync::TryLockError::WouldBlock) => None,
    }
}

/// Abort the current model thread: the run can no longer schedule it
/// (deadlock, or a free-run drain while it was blocked — once
/// scheduling stops, a blocked thread may never be woken). The panic
/// unwinds through the harness body, so the thread scope joins and the
/// coordinator reports the failing schedule id like any other failure.
fn abort_model_thread(why: &str) -> ! {
    panic!("model thread aborted: {why}")
}

/// Why a blocked park ended.
enum Park {
    /// The coordinator granted this thread a step (its blocked status
    /// was already consumed back to `Running`).
    Granted,
    /// The run stopped scheduling (step budget or a panicking peer);
    /// the thread was flipped back to `Running` and must finish on its
    /// own.
    FreeRun,
}

/// Park the calling thread until the coordinator grants it a step.
/// The caller has already recorded a `Blocked*` status for `tid` and
/// woken the coordinator. Panics (aborting the run) on deadlock.
fn park_blocked(tid: usize, inner: &Inner, mut st: StdMutexGuard<'_, State>) -> Park {
    loop {
        if st.deadlock {
            drop(st);
            abort_model_thread("deadlock: every unfinished thread is blocked");
        }
        if st.free_run {
            st.status[tid] = Status::Running;
            return Park::FreeRun;
        }
        if st.current == Some(tid) {
            st.current = None;
            st.status[tid] = Status::Running;
            return Park::Granted;
        }
        st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
    }
}

/// Flip every thread parked with the given blocked status back to
/// `Waiting` (runnable) and wake the parked threads so they observe it.
fn wake_blocked(st: &mut State, inner: &Inner, which: Status) {
    for s in &mut st.status {
        if *s == which {
            *s = Status::Waiting;
        }
    }
    inner.cv.notify_all();
}

/// A model-aware drop-in for `std::sync::Mutex` (see the module docs):
/// inside a model run, `lock` is one scheduling step and contention
/// parks the thread as blocked — not runnable, so the explorer never
/// burns schedules spinning on a held lock. Outside a model run every
/// operation passes straight through to `std`. Poisoning is absorbed
/// with `into_inner`: model harnesses report failures by panicking, and
/// a poisoned lock must not cascade secondary failures into the drain.
#[derive(Debug)]
pub struct Mutex<T> {
    id: u64,
    raw: StdMutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// Wrap `value` in a model-aware mutex.
    pub fn new(value: T) -> Self {
        Self { id: NEXT_SYNC_ID.fetch_add(1, Ordering::Relaxed), raw: StdMutex::new(value) }
    }

    /// Acquire the lock, parking as blocked while it is contended.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let reg = REGISTRATION.with(|r| r.borrow().clone());
        let Some((tid, inner)) = reg else {
            return MutexGuard { mutex: self, raw: Some(plain_lock(&self.raw)) };
        };
        // The acquire attempt is one scheduling step.
        yield_point();
        loop {
            if let Some(g) = try_acquire(&self.raw) {
                return MutexGuard { mutex: self, raw: Some(g) };
            }
            let mut st = lock(&inner);
            if st.free_run {
                // Scheduling has stopped but the holder is draining
                // freely and will unlock; a plain blocking lock is the
                // correct fallback.
                drop(st);
                return MutexGuard { mutex: self, raw: Some(plain_lock(&self.raw)) };
            }
            st.status[tid] = Status::BlockedMutex(self.id);
            inner.cv.notify_all();
            match park_blocked(tid, &inner, st) {
                // Granted after an unlock: re-try. Another granted
                // thread may have re-acquired first, in which case we
                // block again — a legal std behaviour.
                Park::Granted => {}
                Park::FreeRun => {
                    return MutexGuard { mutex: self, raw: Some(plain_lock(&self.raw)) }
                }
            }
        }
    }
}

/// RAII guard for [`Mutex`]; unlocking re-enables every thread blocked
/// on the mutex. Unlocking is deliberately *not* a scheduling step: it
/// is observable only through a later acquisition, and every
/// acquisition yields first, so no interleaving is lost by merging the
/// unlock into the holder's next step.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    /// `Some` until dropped or consumed by [`Condvar::wait`]; an
    /// `Option` so both paths can release first and notify after.
    raw: Option<StdMutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.raw {
            Some(g) => g,
            // Invariant: `raw` is consumed only by drop and by
            // Condvar::wait, both of which take `self` out of reach.
            None => unreachable!(),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.raw {
            Some(g) => g,
            None => unreachable!(),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let Some(g) = self.raw.take() else { return };
        drop(g);
        let reg = REGISTRATION.with(|r| r.borrow().clone());
        let Some((_tid, inner)) = reg else { return };
        let mut st = lock(&inner);
        wake_blocked(&mut st, &inner, Status::BlockedMutex(self.mutex.id));
    }
}

/// A model-aware drop-in for `std::sync::Condvar` (see the module
/// docs). `wait` yields once while still holding the mutex — the
/// lost-wakeup window for notifiers that do not hold it — and then
/// releases-and-blocks in one atomic transition; `notify_one` is
/// modelled as `notify_all` (extra wakeups are legal spurious
/// wakeups).
#[derive(Debug)]
pub struct Condvar {
    id: u64,
    raw: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// A fresh model-aware condition variable.
    pub fn new() -> Self {
        Self { id: NEXT_SYNC_ID.fetch_add(1, Ordering::Relaxed), raw: StdCondvar::new() }
    }

    /// Release `guard`'s mutex and block until notified (or spuriously
    /// woken, when the run carries a spurious budget), then re-acquire.
    /// Callers must re-check their predicate in a loop, exactly as with
    /// `std`.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        let Some(raw_guard) = guard.raw.take() else {
            // Guard invariant: `raw` is always Some here; defensive.
            return mutex.lock();
        };
        let reg = REGISTRATION.with(|r| r.borrow().clone());
        let Some((tid, inner)) = reg else {
            let g = self.raw.wait(raw_guard).unwrap_or_else(|p| p.into_inner());
            return MutexGuard { mutex, raw: Some(g) };
        };
        // The last instant before the atomic release-and-block is a
        // scheduling point taken *while still holding the mutex*: a
        // notifier that does not hold the mutex may interleave here and
        // its notification is lost (no one is blocked yet) — the
        // classic lost-wakeup window. A notifier that holds the mutex
        // cannot reach its notify until we release, which is std's
        // atomicity guarantee.
        yield_point();
        {
            let mut st = lock(&inner);
            if st.free_run {
                // Scheduling stopped before we blocked; with no
                // coordinator there may never be a wakeup to drain us.
                drop(raw_guard);
                drop(st);
                abort_model_thread("free-run drain reached Condvar::wait");
            }
            // Atomic release-and-block: flip to blocked and drop the
            // guard under the coordinator lock, then re-enable any
            // thread blocked on the mutex we just released.
            st.status[tid] = Status::BlockedCondvar(self.id);
            drop(raw_guard);
            wake_blocked(&mut st, &inner, Status::BlockedMutex(mutex.id));
            match park_blocked(tid, &inner, st) {
                Park::Granted => {}
                Park::FreeRun => abort_model_thread("free-run drain reached Condvar::wait"),
            }
        }
        // Woken (notified or spurious): re-acquire. A fresh scheduling
        // step that may itself block on the mutex.
        mutex.lock()
    }

    /// Wake every thread blocked on this condvar. One scheduling step.
    pub fn notify_all(&self) {
        let reg = REGISTRATION.with(|r| r.borrow().clone());
        let Some((_tid, inner)) = reg else {
            self.raw.notify_all();
            return;
        };
        yield_point();
        let mut st = lock(&inner);
        wake_blocked(&mut st, &inner, Status::BlockedCondvar(self.id));
    }

    /// Modelled as [`Condvar::notify_all`]: waking more threads than
    /// `std` would is indistinguishable from spurious wakeups, which
    /// are legal at any time, so every real behaviour is preserved.
    pub fn notify_one(&self) {
        let reg = REGISTRATION.with(|r| r.borrow().clone());
        let Some((_tid, _inner)) = reg else {
            self.raw.notify_one();
            return;
        };
        self.notify_all();
    }
}
