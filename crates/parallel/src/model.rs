//! A controlled scheduler for deterministic interleaving exploration
//! (compiled only under the `audit-model` feature).
//!
//! The parallel engine's entire synchronisation protocol runs on
//! [`crate::cell::AtomicCell`]. Under `audit-model` every cell operation
//! calls [`yield_point`], which parks the calling thread until a
//! coordinator grants it one step. Because at most one virtual thread
//! runs between grants, an execution is fully determined by the sequence
//! of grant decisions — a **schedule** — and the coordinator can replay,
//! randomise, or exhaustively enumerate schedules:
//!
//! * [`run_schedule`] executes one schedule (a replay prefix + a policy
//!   for the suffix) and returns the full decision trace.
//! * [`explore`] drives a depth-first enumeration of all schedules of a
//!   harness up to a preemption bound, the classic CHESS-style coverage
//!   guarantee: every behaviour reachable with ≤ `preemption_bound`
//!   forced context switches is visited exactly once.
//!
//! Threads not registered with a controller (i.e. everything outside a
//! model run, even in a build with the feature enabled) pass through
//! [`yield_point`] with a single thread-local read.
//!
//! ## What the model does and does not cover
//!
//! Operations execute one at a time, so the exploration is sound for
//! **sequentially consistent** outcomes of the protocol: lost updates,
//! double claims, ABA-style races and livelocks at the granularity of
//! atomic operations. It does not model weak-memory reordering — the
//! protocol's orderings (`Acquire`/`Release`/`AcqRel` on a single word)
//! are the standard message-passing pattern whose SC approximation is
//! exact for single-variable protocols.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// One scheduling decision: which thread was granted the step, and which
/// threads were runnable when the decision was taken (ascending ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Choice {
    /// The thread that received the step.
    pub chosen: usize,
    /// Every thread that was runnable at this point.
    pub enabled: Vec<usize>,
}

/// The outcome of one controlled execution.
#[derive(Debug)]
pub struct RunTrace {
    /// Every decision taken, in order (forced single-thread steps included).
    pub choices: Vec<Choice>,
    /// True if the execution hit the step budget and was released to run
    /// freely — a livelock suspect; the invariants of the harness still
    /// hold (the free run completes) but the schedule must be reported.
    pub exceeded_budget: bool,
    /// True if the replay prefix named a thread that was not runnable at
    /// that point (the caller's schedule diverged from this program).
    pub replay_diverged: bool,
}

impl RunTrace {
    /// A compact replayable name for this schedule: the granted thread id
    /// at every step, as a digit string (model runs use ≤ 10 threads).
    pub fn schedule_id(&self) -> String {
        self.choices.iter().map(|c| char::from(b'0' + (c.chosen as u8 % 10))).collect()
    }
}

/// Parse a schedule id produced by [`RunTrace::schedule_id`] back into a
/// replay prefix for [`run_schedule`]. Non-digit characters are ignored,
/// so ids can be copied with surrounding punctuation.
pub fn parse_schedule_id(id: &str) -> Vec<usize> {
    id.chars().filter_map(|c| c.to_digit(10)).map(|d| d as usize).collect()
}

/// How the coordinator chooses once the replay prefix is exhausted.
#[derive(Debug, Clone, Copy)]
pub enum Policy {
    /// Keep running the previously granted thread while it stays
    /// runnable, else the lowest runnable id. Produces zero preemptions
    /// beyond the replay prefix — the DFS baseline.
    Continue,
    /// Choose uniformly among runnable threads with a deterministic
    /// xorshift64* stream seeded by the given value.
    Random(u64),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    Running,
    Waiting,
    Finished,
}

struct State {
    current: Option<usize>,
    status: Vec<Status>,
    /// When set, yield points stop parking: the run was aborted (budget)
    /// and the remaining threads drain at full speed.
    free_run: bool,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static REGISTRATION: RefCell<Option<(usize, Arc<Inner>)>> = const { RefCell::new(None) };
}

fn lock(inner: &Inner) -> std::sync::MutexGuard<'_, State> {
    inner.state.lock().unwrap_or_else(|p| p.into_inner())
}

/// The instrumentation hook called by every [`crate::cell::AtomicCell`]
/// operation. A no-op unless the calling thread is registered with a
/// model run, in which case it parks until the coordinator grants a step.
pub fn yield_point() {
    let reg = REGISTRATION.with(|r| r.borrow().clone());
    let Some((tid, inner)) = reg else { return };
    let mut st = lock(&inner);
    if st.free_run {
        return;
    }
    st.status[tid] = Status::Waiting;
    inner.cv.notify_all();
    while st.current != Some(tid) && !st.free_run {
        st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
    }
    if !st.free_run {
        st.current = None;
        st.status[tid] = Status::Running;
    }
}

struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        // xorshift64*; the zero state is mapped away at construction.
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Execute `body(tid)` on `n_threads` virtual threads under a controlled
/// schedule: the first `replay.len()` decisions follow `replay`, the
/// rest follow `policy`. Returns the complete decision trace.
///
/// Every thread runs real code on a real OS thread; the coordinator
/// (this thread) serialises them at [`yield_point`]s, so the trace fully
/// determines the execution. A body that panics has its payload resumed
/// on the caller after the schedule id is printed to stderr.
///
/// # Panics
///
/// Panics if `n_threads` is 0 or greater than 10 (schedule ids are digit
/// strings), and resumes any panic raised by a `body`.
pub fn run_schedule<F>(
    n_threads: usize,
    replay: &[usize],
    policy: Policy,
    max_steps: usize,
    body: F,
) -> RunTrace
where
    F: Fn(usize) + Sync,
{
    assert!((1..=10).contains(&n_threads), "model runs use 1..=10 threads");
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            current: None,
            status: vec![Status::Running; n_threads],
            free_run: false,
            panic: None,
        }),
        cv: Condvar::new(),
    });
    let mut choices: Vec<Choice> = Vec::new();
    let mut exceeded_budget = false;
    let mut replay_diverged = false;
    let mut rng = match policy {
        Policy::Random(seed) => Some(Xorshift(seed | 1)),
        Policy::Continue => None,
    };

    std::thread::scope(|scope| {
        for tid in 0..n_threads {
            let inner = Arc::clone(&inner);
            let body = &body;
            scope.spawn(move || {
                REGISTRATION.with(|r| *r.borrow_mut() = Some((tid, Arc::clone(&inner))));
                let outcome = catch_unwind(AssertUnwindSafe(|| body(tid)));
                REGISTRATION.with(|r| *r.borrow_mut() = None);
                let mut st = lock(&inner);
                st.status[tid] = Status::Finished;
                if let Err(payload) = outcome {
                    // First panic wins; free-run so every thread drains.
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                    st.free_run = true;
                }
                inner.cv.notify_all();
            });
        }

        // Coordinator: grant one step at a time until every thread
        // finishes. A decision is taken only when each unfinished thread
        // is parked, so the enabled set is deterministic.
        let mut st = lock(&inner);
        loop {
            if st.status.iter().all(|&s| s == Status::Finished) {
                break;
            }
            if st.free_run {
                st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let all_parked =
                st.status.iter().all(|&s| matches!(s, Status::Waiting | Status::Finished));
            if !all_parked {
                st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let enabled: Vec<usize> =
                (0..n_threads).filter(|&t| st.status[t] == Status::Waiting).collect();
            debug_assert!(!enabled.is_empty(), "all parked but none waiting");
            let step = choices.len();
            let chosen = if let Some(&want) = replay.get(step) {
                if enabled.contains(&want) {
                    want
                } else {
                    replay_diverged = true;
                    enabled[0]
                }
            } else {
                match (&mut rng, choices.last()) {
                    (Some(r), _) => enabled[(r.next() % enabled.len() as u64) as usize],
                    (None, Some(last)) if enabled.contains(&last.chosen) => last.chosen,
                    (None, _) => enabled[0],
                }
            };
            if step >= max_steps {
                exceeded_budget = true;
                st.free_run = true;
                inner.cv.notify_all();
                continue;
            }
            choices.push(Choice { chosen, enabled });
            // Grant the step and wait for the thread to consume it.
            st.current = Some(chosen);
            inner.cv.notify_all();
            while st.current.is_some() && !st.free_run {
                st = inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
    });

    let trace = RunTrace { choices, exceeded_budget, replay_diverged };
    let payload = lock(&inner).panic.take();
    if let Some(payload) = payload {
        eprintln!("model run panicked under schedule {:?}", trace.schedule_id());
        resume_unwind(payload);
    }
    trace
}

/// Result of a depth-first schedule enumeration.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// How many distinct complete schedules were executed.
    pub schedules: usize,
    /// True when the enumeration stopped at `max_schedules` with
    /// unexplored branches remaining.
    pub capped: bool,
}

struct Frame {
    enabled: Vec<usize>,
    chosen: usize,
    tried: Vec<usize>,
    /// Preemptions spent strictly before this decision.
    pre_before: usize,
}

/// Exhaustively enumerate schedules of a harness, depth-first, visiting
/// every schedule with at most `preemption_bound` preemptions (a
/// *preemption* switches away from a thread that is still runnable).
///
/// `run` executes one schedule: it must call [`run_schedule`] with the
/// given replay prefix and [`Policy::Continue`], assert its invariants,
/// and return the trace. Each invocation receives a distinct schedule.
pub fn explore<H>(preemption_bound: usize, max_schedules: usize, mut run: H) -> ExploreOutcome
where
    H: FnMut(&[usize]) -> RunTrace,
{
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let replay: Vec<usize> = stack.iter().map(|f| f.chosen).collect();
        let trace = run(&replay);
        schedules += 1;
        debug_assert!(!trace.replay_diverged, "DFS replay prefixes never diverge");
        if schedules >= max_schedules {
            return ExploreOutcome { schedules, capped: true };
        }
        // Extend the stack with the decisions the default policy took
        // beyond the replayed prefix. A preemption at step j means step
        // j's choice switched away from step j-1's thread while it was
        // still runnable; the Continue policy never does that, so the
        // appended frames only inherit the preemption spent by the frame
        // directly above them (which may be a replayed alternative).
        for choice in trace.choices.iter().skip(stack.len()) {
            let pre_before = match stack.len() {
                0 => 0,
                depth => {
                    let top = &stack[depth - 1];
                    let top_preempted = depth >= 2 && {
                        let prev = stack[depth - 2].chosen;
                        top.chosen != prev && top.enabled.contains(&prev)
                    };
                    top.pre_before + usize::from(top_preempted)
                }
            };
            stack.push(Frame {
                enabled: choice.enabled.clone(),
                chosen: choice.chosen,
                tried: vec![choice.chosen],
                pre_before,
            });
        }
        // Backtrack to the deepest frame with an untried alternative
        // that stays within the preemption bound.
        let mut advanced = false;
        while !stack.is_empty() {
            let depth = stack.len() - 1;
            let prev_chosen = if depth == 0 { None } else { Some(stack[depth - 1].chosen) };
            let top = &mut stack[depth];
            let candidate = top.enabled.iter().copied().find(|c| {
                if top.tried.contains(c) {
                    return false;
                }
                let pre = match prev_chosen {
                    Some(p) if *c != p && top.enabled.contains(&p) => top.pre_before + 1,
                    _ => top.pre_before,
                };
                pre <= preemption_bound
            });
            match candidate {
                Some(c) => {
                    top.chosen = c;
                    top.tried.push(c);
                    advanced = true;
                    break;
                }
                None => {
                    stack.pop();
                }
            }
        }
        if !advanced {
            return ExploreOutcome { schedules, capped: false };
        }
    }
}
