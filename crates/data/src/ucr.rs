//! Loader for the real UCR-2018 archive (tab-separated, one series per
//! line, first column the class label).
//!
//! Point `SAPLA_UCR_DIR` at an extracted archive and the bench harness
//! swaps the synthetic catalogue for the real datasets without code
//! changes.

use std::io::{self, BufRead};
use std::path::{Path, PathBuf};

use sapla_core::TimeSeries;

use crate::dataset::Dataset;

/// The directory named by `SAPLA_UCR_DIR`, if set and existing.
pub fn ucr_dir() -> Option<PathBuf> {
    let dir = std::env::var_os("SAPLA_UCR_DIR")?;
    let path = PathBuf::from(dir);
    path.is_dir().then_some(path)
}

/// Parse one UCR tsv file into z-normalised series (labels are dropped —
/// the paper's evaluation is label-free similarity search).
pub fn parse_tsv(reader: impl BufRead) -> io::Result<Vec<TimeSeries>> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut values = Vec::new();
        for (col, tok) in line.split(['\t', ',']).enumerate() {
            if col == 0 {
                continue; // class label
            }
            let tok = tok.trim();
            if tok.is_empty() || tok == "NaN" {
                continue;
            }
            let v: f64 = tok.parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad value {tok:?}: {e}", lineno + 1),
                )
            })?;
            values.push(v);
        }
        if values.is_empty() {
            continue;
        }
        let ts = TimeSeries::new(values).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", lineno + 1))
        })?;
        out.push(ts.znormalized());
    }
    Ok(out)
}

/// Load one UCR dataset directory (`<dir>/<name>/<name>_TRAIN.tsv` plus
/// the `_TEST.tsv` pool for queries), truncating/filtering to the paper's
/// protocol sizes.
pub fn load_dataset(
    dir: &Path,
    name: &str,
    series_per_dataset: usize,
    queries_per_dataset: usize,
) -> io::Result<Dataset> {
    let base = dir.join(name);
    let train = std::fs::File::open(base.join(format!("{name}_TRAIN.tsv")))?;
    let mut series = parse_tsv(io::BufReader::new(train))?;
    let test = std::fs::File::open(base.join(format!("{name}_TEST.tsv")))?;
    let mut queries = parse_tsv(io::BufReader::new(test))?;

    // Keep only the dominant length so the dataset is equal-length.
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for s in &series {
        *counts.entry(s.len()).or_insert(0) += 1;
    }
    if let Some((&len, _)) = counts.iter().max_by_key(|&(_, &c)| c) {
        series.retain(|s| s.len() == len);
        queries.retain(|s| s.len() == len);
    }

    series.truncate(series_per_dataset);
    queries.truncate(queries_per_dataset);
    Ok(Dataset { name: name.to_string(), series, queries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tabs_and_commas_and_drops_labels() {
        let data = "1\t0.0\t1.0\t2.0\n2,3.0,4.0,5.0\n\n";
        let out = parse_tsv(io::Cursor::new(data)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 3);
        // z-normalised: mean 0.
        assert!(out[0].mean().abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        let data = "1\t0.0\tnot_a_number\n";
        assert!(parse_tsv(io::Cursor::new(data)).is_err());
    }

    #[test]
    fn skips_nans_and_empty_lines() {
        let data = "1\t0.0\tNaN\t2.0\n   \n";
        let out = parse_tsv(io::Cursor::new(data)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 2);
    }

    #[test]
    fn env_dir_absent_is_none() {
        // The test environment does not ship the archive.
        if std::env::var_os("SAPLA_UCR_DIR").is_none() {
            assert!(ucr_dir().is_none());
        }
    }
}
