//! Seeded synthetic time-series generators covering the UCR-2018 regimes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sapla_core::TimeSeries;

/// The eight signal families of the synthetic catalogue (see crate docs
/// and DESIGN.md for the mapping onto UCR regimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Clean sinusoid with slowly varying amplitude (sensor-like).
    SmoothPeriodic,
    /// Sinusoid plus substantial white noise (device measurements).
    NoisyPeriodic,
    /// Integrated white noise (stock/sensor-drift-like).
    RandomWalk,
    /// Random plateaus with abrupt switches (power/device states).
    PiecewiseConstant,
    /// Linear trend plus seasonality and noise.
    RampTrend,
    /// Regularly changing slopes with random turning points — the paper's
    /// "EOG-like" stress case for adaptive segmentation.
    Burst,
    /// Sparse large spikes on a quiet baseline (ECG-like).
    SpikeTrain,
    /// Sum of several incommensurate harmonics.
    MixedHarmonic,
}

impl Family {
    /// All families, in catalogue order.
    pub const ALL: [Family; 8] = [
        Family::SmoothPeriodic,
        Family::NoisyPeriodic,
        Family::RandomWalk,
        Family::PiecewiseConstant,
        Family::RampTrend,
        Family::Burst,
        Family::SpikeTrain,
        Family::MixedHarmonic,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::SmoothPeriodic => "SmoothPeriodic",
            Family::NoisyPeriodic => "NoisyPeriodic",
            Family::RandomWalk => "RandomWalk",
            Family::PiecewiseConstant => "PiecewiseConstant",
            Family::RampTrend => "RampTrend",
            Family::Burst => "Burst",
            Family::SpikeTrain => "SpikeTrain",
            Family::MixedHarmonic => "MixedHarmonic",
        }
    }
}

/// Standard-normal sample via Box–Muller (rand's core crate has no normal
/// distribution; this keeps the dependency list minimal).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate one **z-normalised** series of length `n`.
///
/// `variant` selects the dataset-level parameters (frequency, noise level,
/// switching rate, …) and `seed` the per-series randomness; the same
/// `(family, variant, seed, n)` always produces the same series.
pub fn generate(family: Family, variant: u64, seed: u64, n: usize) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(
        0x5A91_u64
            .wrapping_mul(1_000_003)
            .wrapping_add(variant)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed),
    );
    let values = match family {
        Family::SmoothPeriodic => smooth_periodic(&mut rng, variant, n),
        Family::NoisyPeriodic => noisy_periodic(&mut rng, variant, n),
        Family::RandomWalk => random_walk(&mut rng, n),
        Family::PiecewiseConstant => piecewise_constant(&mut rng, variant, n),
        Family::RampTrend => ramp_trend(&mut rng, variant, n),
        Family::Burst => burst(&mut rng, variant, n),
        Family::SpikeTrain => spike_train(&mut rng, variant, n),
        Family::MixedHarmonic => mixed_harmonic(&mut rng, variant, n),
    };
    TimeSeries::new(values).expect("generators produce finite samples").znormalized()
}

fn smooth_periodic(rng: &mut StdRng, variant: u64, n: usize) -> Vec<f64> {
    let freq = 2.0 * std::f64::consts::PI * (1.5 + variant as f64 * 0.7) / n as f64;
    let phase: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let amp_mod = rng.random_range(0.1..0.4);
    (0..n)
        .map(|t| {
            let x = t as f64;
            (freq * x + phase).sin() * (1.0 + amp_mod * (freq * 0.23 * x).sin())
        })
        .collect()
}

fn noisy_periodic(rng: &mut StdRng, variant: u64, n: usize) -> Vec<f64> {
    let clean = smooth_periodic(rng, variant, n);
    let noise = 0.15 + 0.05 * (variant % 5) as f64;
    clean.into_iter().map(|v| v + noise * normal(rng)).collect()
}

fn random_walk(rng: &mut StdRng, n: usize) -> Vec<f64> {
    let mut acc = 0.0f64;
    (0..n)
        .map(|_| {
            acc += normal(rng);
            acc
        })
        .collect()
}

fn piecewise_constant(rng: &mut StdRng, variant: u64, n: usize) -> Vec<f64> {
    let mean_len = (n / (6 + (variant % 7) as usize)).max(4);
    let mut out = Vec::with_capacity(n);
    let mut level = normal(rng) * 2.0;
    let mut remaining = 0usize;
    for _ in 0..n {
        if remaining == 0 {
            remaining = rng.random_range(mean_len / 2..=mean_len * 3 / 2).max(2);
            level = normal(rng) * 2.0;
        }
        out.push(level + 0.02 * normal(rng));
        remaining -= 1;
    }
    out
}

fn ramp_trend(rng: &mut StdRng, variant: u64, n: usize) -> Vec<f64> {
    let slope = (0.5 + (variant % 4) as f64) / n as f64 * 8.0;
    let freq = 2.0 * std::f64::consts::PI * (2.0 + (variant % 3) as f64) / n as f64;
    let noise = 0.1;
    (0..n)
        .map(|t| {
            let x = t as f64;
            slope * x + 0.6 * (freq * x).sin() + noise * normal(rng)
        })
        .collect()
}

fn burst(rng: &mut StdRng, variant: u64, n: usize) -> Vec<f64> {
    // EOG-like: straight runs whose slope re-randomises at random turning
    // points — "regularly changed time series" in the paper's words.
    let mean_run = (n / (10 + (variant % 8) as usize)).max(3);
    let mut out = Vec::with_capacity(n);
    let mut value = 0.0f64;
    let mut slope = normal(rng) * 0.3;
    let mut remaining = 0usize;
    for _ in 0..n {
        if remaining == 0 {
            remaining = rng.random_range(mean_run / 2..=mean_run * 3 / 2).max(2);
            slope = normal(rng) * 0.3;
        }
        value += slope;
        out.push(value + 0.01 * normal(rng));
        remaining -= 1;
    }
    out
}

fn spike_train(rng: &mut StdRng, variant: u64, n: usize) -> Vec<f64> {
    let period = (n / (8 + (variant % 6) as usize)).max(8);
    let mut out = vec![0.0f64; n];
    for v in out.iter_mut() {
        *v = 0.05 * normal(rng);
    }
    let mut t = rng.random_range(0..period);
    while t + 4 < n {
        let amp = 3.0 + normal(rng).abs();
        // A sharp QRS-like spike: up, peak, undershoot.
        out[t] += amp * 0.3;
        out[t + 1] += amp;
        out[t + 2] += amp * 0.2;
        out[t + 3] -= amp * 0.4;
        t += rng.random_range(period * 3 / 4..=period * 5 / 4).max(5);
    }
    out
}

fn mixed_harmonic(rng: &mut StdRng, variant: u64, n: usize) -> Vec<f64> {
    let base = 2.0 * std::f64::consts::PI / n as f64;
    let f1 = base * (1.0 + (variant % 4) as f64);
    let f2 = base * (3.7 + (variant % 3) as f64);
    let f3 = base * 9.1;
    let (p1, p2, p3) = (
        rng.random_range(0.0..std::f64::consts::TAU),
        rng.random_range(0.0..std::f64::consts::TAU),
        rng.random_range(0.0..std::f64::consts::TAU),
    );
    (0..n)
        .map(|t| {
            let x = t as f64;
            (f1 * x + p1).sin() + 0.5 * (f2 * x + p2).sin() + 0.25 * (f3 * x + p3).sin()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        for family in Family::ALL {
            let a = generate(family, 3, 17, 256);
            let b = generate(family, 3, 17, 256);
            assert_eq!(a, b, "{} not deterministic", family.name());
        }
    }

    #[test]
    fn distinct_across_seeds_and_variants() {
        for family in Family::ALL {
            let a = generate(family, 1, 1, 128);
            let b = generate(family, 1, 2, 128);
            let c = generate(family, 2, 1, 128);
            assert_ne!(a, b, "{}", family.name());
            assert_ne!(a, c, "{}", family.name());
        }
    }

    #[test]
    fn output_is_znormalised() {
        for family in Family::ALL {
            let s = generate(family, 5, 9, 512);
            assert_eq!(s.len(), 512);
            assert!(s.mean().abs() < 1e-9, "{} mean", family.name());
            assert!((s.std_dev() - 1.0).abs() < 1e-9, "{} std", family.name());
        }
    }

    #[test]
    fn families_have_distinct_character() {
        // Cheap signature: lag-1 autocorrelation separates smooth families
        // from noisy/spiky ones.
        let ac1 = |s: &TimeSeries| -> f64 {
            let v = s.values();
            v.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (v.len() - 1) as f64
        };
        let smooth = ac1(&generate(Family::SmoothPeriodic, 0, 0, 1024));
        let spiky = ac1(&generate(Family::SpikeTrain, 0, 0, 1024));
        assert!(smooth > 0.95, "smooth ac1 {smooth}");
        assert!(spiky < 0.8, "spiky ac1 {spiky}");
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
