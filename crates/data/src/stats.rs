//! Signal statistics used to profile the synthetic catalogue — the
//! quantitative backing for the UCR-2018 substitution argument in
//! DESIGN.md (the families must *span distinct regimes*, not just differ
//! by seed).

use sapla_core::TimeSeries;

/// Summary statistics of one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesProfile {
    /// Lag-1 autocorrelation (z-normalised input ⇒ plain lagged product).
    /// Near 1 for smooth signals, low for noisy/spiky ones.
    pub autocorr1: f64,
    /// Mean absolute first difference (step-to-step activity).
    pub mean_abs_diff: f64,
    /// Number of direction changes per sample (turning-point rate):
    /// high for noise, low for trends.
    pub turning_rate: f64,
    /// Excess kurtosis of the samples: large for spike trains.
    pub kurtosis: f64,
}

/// Profile a (z-normalised) series.
pub fn profile(series: &TimeSeries) -> SeriesProfile {
    let v = series.values();
    let n = v.len();
    let mean = series.mean();
    let var = {
        let s: f64 = v.iter().map(|x| (x - mean) * (x - mean)).sum();
        (s / n as f64).max(f64::MIN_POSITIVE)
    };

    let autocorr1 =
        v.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>() / ((n - 1) as f64 * var);

    let mean_abs_diff = v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (n - 1) as f64;

    let turns = v.windows(3).filter(|w| (w[1] - w[0]) * (w[2] - w[1]) < 0.0).count();
    let turning_rate = turns as f64 / (n - 2) as f64;

    let m4 = v.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n as f64;
    let kurtosis = m4 / (var * var) - 3.0;

    SeriesProfile { autocorr1, mean_abs_diff, turning_rate, kurtosis }
}

/// Mean profile over several series.
pub fn mean_profile(series: &[TimeSeries]) -> SeriesProfile {
    let mut acc =
        SeriesProfile { autocorr1: 0.0, mean_abs_diff: 0.0, turning_rate: 0.0, kurtosis: 0.0 };
    for s in series {
        let p = profile(s);
        acc.autocorr1 += p.autocorr1;
        acc.mean_abs_diff += p.mean_abs_diff;
        acc.turning_rate += p.turning_rate;
        acc.kurtosis += p.kurtosis;
    }
    let c = series.len().max(1) as f64;
    SeriesProfile {
        autocorr1: acc.autocorr1 / c,
        mean_abs_diff: acc.mean_abs_diff / c,
        turning_rate: acc.turning_rate / c,
        kurtosis: acc.kurtosis / c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate, Family};

    #[test]
    fn smooth_signals_have_high_autocorrelation() {
        let s = generate(Family::SmoothPeriodic, 0, 1, 512);
        let p = profile(&s);
        assert!(p.autocorr1 > 0.95, "ac1 {}", p.autocorr1);
        assert!(p.turning_rate < 0.3, "turning {}", p.turning_rate);
    }

    #[test]
    fn spike_trains_have_heavy_tails() {
        let spikes = profile(&generate(Family::SpikeTrain, 0, 1, 1024));
        let smooth = profile(&generate(Family::SmoothPeriodic, 0, 1, 1024));
        assert!(
            spikes.kurtosis > smooth.kurtosis + 3.0,
            "spikes {} vs smooth {}",
            spikes.kurtosis,
            smooth.kurtosis
        );
    }

    #[test]
    fn noisy_signals_turn_more_often() {
        let noisy = profile(&generate(Family::NoisyPeriodic, 0, 1, 512));
        let smooth = profile(&generate(Family::SmoothPeriodic, 0, 1, 512));
        assert!(noisy.turning_rate > smooth.turning_rate);
    }

    #[test]
    fn families_are_pairwise_distinguishable() {
        // Every pair of families must differ noticeably in at least one
        // statistic — the substitution's "spans regimes" requirement.
        let profiles: Vec<(Family, SeriesProfile)> = Family::ALL
            .iter()
            .map(|&f| {
                let series: Vec<_> = (0..4).map(|i| generate(f, 0, i, 512)).collect();
                (f, mean_profile(&series))
            })
            .collect();
        for (i, (fa, pa)) in profiles.iter().enumerate() {
            for (fb, pb) in &profiles[i + 1..] {
                let sep = (pa.autocorr1 - pb.autocorr1).abs() / 0.05
                    + (pa.mean_abs_diff - pb.mean_abs_diff).abs() / 0.05
                    + (pa.turning_rate - pb.turning_rate).abs() / 0.05
                    + (pa.kurtosis - pb.kurtosis).abs() / 1.0;
                // Neighbouring smooth families (SmoothPeriodic / Burst at
                // low variants) sit close on these four statistics, so
                // require moderate rather than strict separation.
                assert!(
                    sep > 0.5,
                    "{} and {} are statistically indistinguishable ({sep:.2})",
                    fa.name(),
                    fb.name()
                );
            }
        }
    }

    #[test]
    fn mean_profile_of_empty_is_zero() {
        let p = mean_profile(&[]);
        assert_eq!(p.autocorr1, 0.0);
    }
}
