//! The 117-dataset synthetic catalogue standing in for UCR-2018.

use crate::dataset::{Dataset, Protocol};
use crate::generators::{generate, Family};

/// Number of datasets in the catalogue — the count of equal-length UCR-2018
/// datasets the paper evaluates.
pub const CATALOGUE_SIZE: usize = 117;

/// One named dataset specification: a generator family, a parameter
/// variant and a base seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Stable dataset name, e.g. `"Burst_07"`.
    pub name: String,
    /// Generator family.
    pub family: Family,
    /// Dataset-level parameter variant.
    pub variant: u64,
    /// Base seed; series `i` of the dataset uses `base_seed + i`.
    pub base_seed: u64,
}

impl DatasetSpec {
    /// Materialise the dataset under an evaluation protocol.
    pub fn load(&self, protocol: &Protocol) -> Dataset {
        let mut series = Vec::with_capacity(protocol.series_per_dataset);
        for i in 0..protocol.series_per_dataset {
            series.push(generate(
                self.family,
                self.variant,
                self.base_seed + i as u64,
                protocol.series_len,
            ));
        }
        let mut queries = Vec::with_capacity(protocol.queries_per_dataset);
        for i in 0..protocol.queries_per_dataset {
            queries.push(generate(
                self.family,
                self.variant,
                self.base_seed + 1_000_000 + i as u64,
                protocol.series_len,
            ));
        }
        Dataset { name: self.name.clone(), series, queries }
    }
}

/// The full 117-dataset catalogue: families are interleaved (round-robin)
/// with increasing parameter variants, so any prefix of the catalogue is
/// family-balanced — `SAPLA_DATASETS=24` still sees all eight regimes.
pub fn catalogue() -> Vec<DatasetSpec> {
    let mut out = Vec::with_capacity(CATALOGUE_SIZE);
    let mut counters = [0u64; 8];
    for i in 0..CATALOGUE_SIZE {
        let fi = i % Family::ALL.len();
        let family = Family::ALL[fi];
        let variant = counters[fi];
        counters[fi] += 1;
        out.push(DatasetSpec {
            name: format!("{}_{:02}", family.name(), variant),
            family,
            variant,
            base_seed: (i as u64 + 1) * 7919,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_117_unique_names() {
        let cat = catalogue();
        assert_eq!(cat.len(), 117);
        let mut names: Vec<&str> = cat.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 117);
    }

    #[test]
    fn any_prefix_is_family_balanced() {
        let cat = catalogue();
        let prefix = &cat[..24];
        for family in Family::ALL {
            let count = prefix.iter().filter(|d| d.family == family).count();
            assert_eq!(count, 3, "{} appears {count} times in prefix", family.name());
        }
    }

    #[test]
    fn load_respects_protocol() {
        let spec = &catalogue()[5];
        let protocol = Protocol { series_len: 128, series_per_dataset: 7, queries_per_dataset: 2 };
        let ds = spec.load(&protocol);
        assert_eq!(ds.series.len(), 7);
        assert_eq!(ds.queries.len(), 2);
        assert!(ds.series.iter().all(|s| s.len() == 128));
        // Queries are distinct from the database series.
        assert!(ds.series.iter().all(|s| s != &ds.queries[0]));
    }

    #[test]
    fn loads_are_deterministic() {
        let spec = &catalogue()[40];
        let p = Protocol { series_len: 64, series_per_dataset: 3, queries_per_dataset: 1 };
        assert_eq!(spec.load(&p).series, spec.load(&p).series);
    }
}
