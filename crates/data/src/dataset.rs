//! Materialised datasets and the paper's evaluation protocol.

use sapla_core::TimeSeries;

/// The evaluation protocol of Section 6: series length, database size and
/// query count per dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protocol {
    /// Length `n` of every series (paper: 1024).
    pub series_len: usize,
    /// Database series per dataset (paper: 100).
    pub series_per_dataset: usize,
    /// Query series per dataset (paper: 5).
    pub queries_per_dataset: usize,
}

impl Protocol {
    /// The paper's full protocol: `n = 1024`, 100 series, 5 queries.
    pub fn paper() -> Self {
        Protocol { series_len: 1024, series_per_dataset: 100, queries_per_dataset: 5 }
    }

    /// A scaled-down protocol for quick runs and CI.
    pub fn quick() -> Self {
        Protocol { series_len: 256, series_per_dataset: 24, queries_per_dataset: 3 }
    }
}

/// A materialised dataset: database series plus query series, all
/// z-normalised and equal-length.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (catalogue name or UCR directory name).
    pub name: String,
    /// Database series.
    pub series: Vec<TimeSeries>,
    /// Query series (never members of `series`).
    pub queries: Vec<TimeSeries>,
}

impl Dataset {
    /// Length `n` of the series in this dataset.
    pub fn series_len(&self) -> usize {
        self.series.first().map_or(0, TimeSeries::len)
    }

    /// Exact k-nearest-neighbour ids of `query` under Euclidean distance
    /// (the ground truth for the accuracy metric, Eq. 15).
    pub fn exact_knn(&self, query: &TimeSeries, k: usize) -> Vec<usize> {
        let mut dists: Vec<(f64, usize)> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| (query.euclidean(s).expect("protocol guarantees equal length"), i))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        dists.into_iter().take(k).map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::catalogue;

    #[test]
    fn protocols() {
        let p = Protocol::paper();
        assert_eq!((p.series_len, p.series_per_dataset, p.queries_per_dataset), (1024, 100, 5));
        assert!(Protocol::quick().series_len < p.series_len);
    }

    #[test]
    fn exact_knn_orders_by_distance() {
        let spec = &catalogue()[0];
        let ds =
            spec.load(&Protocol { series_len: 64, series_per_dataset: 12, queries_per_dataset: 1 });
        let knn = ds.exact_knn(&ds.queries[0], 4);
        assert_eq!(knn.len(), 4);
        let d = |i: usize| ds.queries[0].euclidean(&ds.series[i]).unwrap();
        for w in knn.windows(2) {
            assert!(d(w[0]) <= d(w[1]));
        }
        // The 4th neighbour is at most as close as any non-neighbour.
        let worst = d(knn[3]);
        for i in 0..ds.series.len() {
            if !knn.contains(&i) {
                assert!(d(i) >= worst - 1e-12);
            }
        }
    }

    #[test]
    fn self_query_is_its_own_nearest_neighbour() {
        let spec = &catalogue()[9];
        let mut ds =
            spec.load(&Protocol { series_len: 32, series_per_dataset: 6, queries_per_dataset: 1 });
        ds.queries[0] = ds.series[3].clone();
        assert_eq!(ds.exact_knn(&ds.queries[0], 1), vec![3]);
    }
}
