//! # sapla-data
//!
//! Workload substrate for the SAPLA evaluation: a synthetic stand-in for
//! the UCR-2018 archive plus a loader for the real archive when present.
//!
//! The paper evaluates the 117 equal-length datasets of UCR-2018 with
//! `n = 1024`, 100 series per dataset and 5 query series. The archive is
//! not redistributable here, so [`catalog`] defines **117 named, seeded
//! synthetic datasets** drawn from the eight signal families of
//! [`generators::Family`], chosen to span the archive's regimes (smooth
//! sensors, noisy devices, random-walk-like, plateaued switches, drifting
//! trends, regularly-changing EOG-like bursts, ECG-like spike trains and
//! mixed harmonics). Generation is fully deterministic.
//!
//! Set `SAPLA_UCR_DIR` to a real UCR-2018 directory and [`ucr`] will load
//! it instead — the evaluation protocol is unchanged.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod catalog;
pub mod dataset;
pub mod generators;
pub mod stats;
pub mod ucr;

pub use catalog::{catalogue, DatasetSpec};
pub use dataset::{Dataset, Protocol};
pub use generators::Family;
pub use stats::{mean_profile, profile, SeriesProfile};
