//! FIG1 — the worked example of Figs. 1, 5, 6 and 8.

use sapla_bench::experiments::example::{fig1_table, stages_table};

fn main() {
    fig1_table().print();
    stages_table().print();
}
