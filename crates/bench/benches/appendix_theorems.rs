//! Appendix A — empirical validation of Theorems 4.2/4.3: how often do
//! the O(1) bounds fail to dominate the exact deviations?

use sapla_bench::experiments::theorems::theorems_table;
use sapla_bench::RunConfig;

fn main() {
    theorems_table(&RunConfig::from_env()).print();
}
