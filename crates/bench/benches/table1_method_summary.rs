//! TAB1 — Table 1: measured reduction-time scaling per method.

use sapla_bench::experiments::reduction::scaling_table;
use sapla_bench::RunConfig;

fn main() {
    scaling_table(&RunConfig::from_env()).print();
}
