//! FIG13 (K sweep) — SAPLA pruning power and accuracy across the paper's
//! K ∈ {4, 8, 16, 32, 64} parameter range, R-tree vs DBCH-tree.

use sapla_bench::experiments::indexing::k_sweep_table;
use sapla_bench::RunConfig;

fn main() {
    k_sweep_table(&RunConfig::from_env()).print();
}
