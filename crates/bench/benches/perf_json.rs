//! Machine-readable perf trajectory emitter.
//!
//! ```text
//! cargo bench -p sapla-bench --bench perf_json -- [--quick] [--no-plan] [--no-simd] [--json <path>]
//! ```
//!
//! Runs the `(n, segments)` reduce-throughput and ingest/k-NN grid of
//! `sapla_bench::perf` and prints a human summary; with `--json <path>`
//! the full report is also written as JSON (the format committed as
//! `BENCH_PR2.json`). `--quick` switches to the tiny CI grid;
//! `--no-plan` strips the precompiled query plans so searches take the
//! stock re-partitioning `Dist_PAR` path (the baseline side of the
//! planned-kernel comparison in `BENCH_PR5.json`); `--no-simd` pins the
//! whole run to the scalar kernels and skips the scalar-vs-dispatched
//! A/B section.

use sapla_bench::perf::{run, PerfGrid};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_plan = args.iter().any(|a| a == "--no-plan");
    let no_simd = args.iter().any(|a| a == "--no-simd");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();

    let mut grid = if quick { PerfGrid::quick() } else { PerfGrid::full() };
    grid.use_plan = !no_plan;
    if no_simd {
        sapla_core::simd::force(sapla_core::simd::SimdLevel::Scalar)
            .expect("scalar is always supported");
        grid.simd_compare = false;
    } else if let Err(e) = sapla_core::simd::init() {
        eprintln!("perf_json: {e}");
        std::process::exit(2);
    }
    let report = run(&grid);

    println!("reduce throughput (threads = {}):", report.threads);
    for p in &report.reduce {
        println!(
            "  n = {:5}  N = {:2}  {:>12.0} ns/series  {:>10.0} series/s",
            p.n, p.segments, p.ns_per_series, p.series_per_sec
        );
    }
    println!(
        "ingest + kNN (DBCH-tree, k = 4, plans {}, simd {}):",
        if report.use_plan { "on" } else { "off" },
        sapla_core::simd::active().name(),
    );
    for (p, kp) in report.index.iter().zip(&report.knn) {
        println!(
            "  n = {:5}  N = {:2}  db = {:3}  ingest {:>12.0} ns  knn {:>12.0} ns/query  \
             {:>8.1} ns/cand  abandon {:.1}%",
            p.n,
            p.segments,
            p.db,
            p.ingest_ns,
            p.knn_ns_per_query,
            kp.refine_ns_per_candidate,
            kp.abandon_rate * 100.0
        );
    }

    if !report.simd.is_empty() {
        println!("simd A/B (planned batch kNN, k = 4):");
        for p in &report.simd {
            let speedup = p.scalar_ns_per_query / p.simd_ns_per_query;
            print!(
                "  n = {:5}  scalar {:>10.0} ns/query  {} {:>10.0} ns/query  ({speedup:.2}x)  blocks:",
                p.n, p.scalar_ns_per_query, p.level, p.simd_ns_per_query
            );
            for (qb, ns) in &p.blocks {
                print!("  {qb}->{ns:.0}ns");
            }
            println!();
        }
    }

    if !report.serve.is_empty() {
        println!("loopback daemon (one client, k = 4):");
        for p in &report.serve {
            println!(
                "  n = {:5}  batch = {:3}  {:>12.0} ns/query  {:>10.0} queries/s",
                p.n, p.batch, p.ns_per_query, p.queries_per_sec
            );
        }
    }

    if !report.obs_overhead.is_empty() {
        println!("flight recorder on/off A/B (loopback, k = 4):");
        for p in &report.obs_overhead {
            println!(
                "  n = {:5}  batch = {:3}  armed {:>10.0} q/s  disarmed {:>10.0} q/s  \
                 overhead {:+.2}%",
                p.n, p.batch, p.recorder_on_qps, p.recorder_off_qps, p.overhead_pct
            );
        }
    }

    if !report.cold_start.is_empty() {
        println!("cold start (in-memory rebuild vs snapshot load):");
        for p in &report.cold_start {
            println!(
                "  n = {:5}  db = {:5}  build {:>12.0} ns  load {:>12.0} ns  ({:.1}x)  \
                 {:>9} bytes  {:>8.1} MiB/s",
                p.n, p.db, p.build_ns, p.load_ns, p.speedup, p.file_bytes, p.load_mb_per_s
            );
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("perf_json: cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
