//! FIG15/FIG16 — tree shape: internal/leaf/total node counts and height.

use sapla_bench::experiments::indexing::{fig15_16_tables, run_indexing};
use sapla_bench::RunConfig;

fn main() {
    let cfg = RunConfig::from_env();
    let (outcomes, _) = run_indexing(&cfg, false);
    let (a, b, c, d) = fig15_16_tables(&outcomes);
    a.print();
    b.print();
    c.print();
    d.print();
}
