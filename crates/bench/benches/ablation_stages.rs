//! ABL1 — SAPLA stage ablation (init / split&merge / endpoint movement /
//! exact bounds).

use sapla_bench::experiments::reduction::ablation_stages_table;
use sapla_bench::RunConfig;

fn main() {
    ablation_stages_table(&RunConfig::from_env()).print();
}
