//! FIG10-11 — distance tightness and lower-bound violation rates.

use sapla_bench::experiments::tightness::tightness_table;
use sapla_bench::RunConfig;

fn main() {
    tightness_table(&RunConfig::from_env()).print();
}
