//! FIG12a — mean max deviation per method and budget, plus the
//! APLA head-to-head under both deviation metrics.

use sapla_bench::experiments::reduction::{
    max_deviation_apla_table, max_deviation_by_family_table, max_deviation_table,
};
use sapla_bench::RunConfig;

fn main() {
    let cfg = RunConfig::from_env();
    max_deviation_table(&cfg).print();
    max_deviation_apla_table(&cfg).print();
    max_deviation_by_family_table(&cfg).print();
}
