//! Criterion micro-benchmarks: dimensionality-reduction throughput per
//! method (the statistical companion to Fig. 12b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sapla_baselines::{all_reducers, Reducer};
use sapla_data::{catalogue, Protocol};

fn bench_reduction(c: &mut Criterion) {
    let protocol = Protocol { series_len: 1024, series_per_dataset: 1, queries_per_dataset: 1 };
    let ds = catalogue()[5].load(&protocol); // a Burst (EOG-like) dataset
    let series = &ds.series[0];
    let m = 12;

    let mut group = c.benchmark_group("reduce_n1024_m12");
    group.sample_size(10);
    for reducer in all_reducers() {
        if reducer.name() == "APLA" {
            continue; // benchmarked separately at a smaller n below
        }
        group.bench_with_input(BenchmarkId::from_parameter(reducer.name()), series, |b, s| {
            b.iter(|| reducer.reduce(std::hint::black_box(s), m).unwrap())
        });
    }
    group.finish();

    // APLA is O(N n²); a 256-point series keeps criterion's sampling
    // affordable while still showing the gap.
    let small = Protocol { series_len: 256, series_per_dataset: 1, queries_per_dataset: 1 };
    let ds_small = catalogue()[5].load(&small);
    let mut group = c.benchmark_group("reduce_n256_m12");
    group.sample_size(10);
    for reducer in all_reducers() {
        if reducer.name() != "APLA" && reducer.name() != "SAPLA" {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(reducer.name()),
            &ds_small.series[0],
            |b, s| b.iter(|| reducer.reduce(std::hint::black_box(s), m).unwrap()),
        );
    }
    group.finish();

    // SAPLA scaling across n (the O(n(N + log n)) claim).
    let mut group = c.benchmark_group("sapla_scaling");
    group.sample_size(20);
    for n in [128usize, 256, 512, 1024, 2048] {
        let p = Protocol { series_len: n, series_per_dataset: 1, queries_per_dataset: 1 };
        let ds = catalogue()[0].load(&p);
        let sapla = sapla_baselines::SaplaReducer::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds.series[0], |b, s| {
            b.iter(|| sapla.reduce(std::hint::black_box(s), m).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
