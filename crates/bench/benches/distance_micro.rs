//! Criterion micro-benchmarks: distance-measure costs — `Dist_PAR`'s
//! `O(N)` vs the `O(n)` of `Dist_LB` / `Dist_AE` / raw Euclidean.

use criterion::{criterion_group, criterion_main, Criterion};
use sapla_baselines::{Reducer, SaplaReducer};
use sapla_data::{catalogue, Protocol};
use sapla_distance::{dist_ae, dist_lb, dist_par, euclidean};

fn bench_distances(c: &mut Criterion) {
    let protocol = Protocol { series_len: 1024, series_per_dataset: 2, queries_per_dataset: 1 };
    let ds = catalogue()[0].load(&protocol);
    let (q, s) = (&ds.queries[0], &ds.series[0]);
    let reducer = SaplaReducer::new();
    let q_rep = reducer.reduce(q, 12).unwrap();
    let s_rep = reducer.reduce(s, 12).unwrap();
    let q_lin = q_rep.as_linear().unwrap().clone();
    let s_lin = s_rep.as_linear().unwrap().clone();
    let q_sums = q.prefix_sums();

    let mut group = c.benchmark_group("distance_n1024");
    group.bench_function("euclidean", |b| {
        b.iter(|| euclidean(std::hint::black_box(q), std::hint::black_box(s)).unwrap())
    });
    group.bench_function("dist_par", |b| {
        b.iter(|| dist_par(std::hint::black_box(&q_lin), std::hint::black_box(&s_lin)).unwrap())
    });
    group.bench_function("dist_lb", |b| {
        b.iter(|| dist_lb(std::hint::black_box(&q_sums), std::hint::black_box(&s_lin)).unwrap())
    });
    group.bench_function("dist_ae", |b| {
        b.iter(|| dist_ae(std::hint::black_box(q), std::hint::black_box(&s_lin)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
