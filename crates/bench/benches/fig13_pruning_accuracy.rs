//! FIG13 — pruning power (Eq. 14) and accuracy (Eq. 15), R-tree vs
//! DBCH-tree.

use sapla_bench::experiments::indexing::{fig13_tables, run_indexing};
use sapla_bench::RunConfig;

fn main() {
    let cfg = RunConfig::from_env();
    let (outcomes, _) = run_indexing(&cfg, true);
    let (a, b) = fig13_tables(&outcomes);
    a.print();
    b.print();
}
