//! FIG12b — mean dimensionality-reduction time per series.

use sapla_bench::experiments::reduction::reduction_time_table;
use sapla_bench::RunConfig;

fn main() {
    reduction_time_table(&RunConfig::from_env()).print();
}
