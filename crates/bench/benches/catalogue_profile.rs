//! Substrate documentation: per-family signal statistics of the synthetic
//! catalogue (the quantitative backing for the UCR-2018 substitution —
//! families must span distinct signal regimes), followed by the parallel
//! engine's thread sweep on this catalogue profile.

use sapla_bench::experiments::parallel::{default_thread_grid, thread_sweep, thread_sweep_table};
use sapla_bench::{load_datasets, RunConfig, Table};
use sapla_data::{mean_profile, Protocol};

fn main() {
    let cfg = RunConfig::from_env();
    let protocol = Protocol { series_len: 512, series_per_dataset: 6, queries_per_dataset: 1 };
    let datasets = load_datasets(cfg.datasets, &protocol);

    // Group by family prefix.
    let mut families: Vec<String> =
        datasets.iter().map(|d| d.name.split('_').next().unwrap_or(&d.name).to_string()).collect();
    families.sort();
    families.dedup();

    let mut table = Table::new(
        "Catalogue profile — per-family signal statistics",
        &["family", "lag-1 autocorr", "mean |diff|", "turning rate", "kurtosis"],
    );
    for family in &families {
        let series: Vec<_> = datasets
            .iter()
            .filter(|d| d.name.starts_with(family.as_str()))
            .flat_map(|d| d.series.iter().cloned())
            .collect();
        let p = mean_profile(&series);
        table.row(vec![
            family.clone(),
            format!("{:.3}", p.autocorr1),
            format!("{:.3}", p.mean_abs_diff),
            format!("{:.3}", p.turning_rate),
            format!("{:.2}", p.kurtosis),
        ]);
    }
    table.print();

    // Parallel ingest + multi-query k-NN sweep on the same catalogue.
    let k = cfg.effective_ks().first().copied().unwrap_or(4);
    let grid = default_thread_grid();
    let points = thread_sweep(&cfg, &grid, k);
    thread_sweep_table(&points).print();
    if grid.len() == 1 {
        println!("(one hardware thread visible — multi-thread sweep points skipped)");
    }
}
