//! ABL2 — DBCH node-distance rule ablation (paper rule vs triangle
//! inequality).

use sapla_bench::experiments::indexing::ablation_dbch_table;
use sapla_bench::RunConfig;

fn main() {
    ablation_dbch_table(&RunConfig::from_env()).print();
}
