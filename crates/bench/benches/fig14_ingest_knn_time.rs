//! FIG14 — data ingest time and k-NN CPU time (incl. linear scan).

use sapla_bench::experiments::indexing::{fig14_tables, run_indexing};
use sapla_bench::RunConfig;

fn main() {
    let cfg = RunConfig::from_env();
    let (outcomes, scan) = run_indexing(&cfg, true);
    let (a, b) = fig14_tables(&outcomes, scan);
    a.print();
    b.print();
}
