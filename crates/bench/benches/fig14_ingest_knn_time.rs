//! FIG14 — data ingest time and k-NN CPU time (incl. linear scan), plus
//! the parallel-engine thread sweep (ingest and multi-query k-NN wall
//! time at 1, 2, 4, … workers, with results checked against the
//! single-threaded baseline).

use sapla_bench::experiments::indexing::{fig14_tables, run_indexing};
use sapla_bench::experiments::parallel::{default_thread_grid, thread_sweep, thread_sweep_table};
use sapla_bench::RunConfig;

fn main() {
    let cfg = RunConfig::from_env();
    let (outcomes, scan) = run_indexing(&cfg, true);
    let (a, b) = fig14_tables(&outcomes, scan);
    a.print();
    b.print();

    let k = cfg.effective_ks().first().copied().unwrap_or(4);
    let grid = default_thread_grid();
    let points = thread_sweep(&cfg, &grid, k);
    thread_sweep_table(&points).print();
    if grid.len() == 1 {
        println!("(one hardware thread visible — multi-thread sweep points skipped)");
    }
}
