//! Reduction-quality experiments: Fig. 12a (max deviation), Fig. 12b
//! (dimensionality-reduction time), Table 1 (time scaling vs `n`) and the
//! stage ablation (ABL1).

use std::time::Duration;

use sapla_baselines::{all_reducers, Reducer, SaplaReducer};
use sapla_core::sapla::{BoundMode, SaplaConfig};
use sapla_data::Protocol;

use crate::harness::{load_datasets, time_it, RunConfig};
use crate::table::{dur, f, Table};

/// Should `method` run on dataset `index` / series `series_idx` under the
/// APLA affordability caps?
fn apla_allowed(cfg: &RunConfig, name: &str, dataset_idx: usize, series_idx: usize) -> bool {
    name != "APLA" || (dataset_idx < cfg.apla_dataset_cap && series_idx < cfg.apla_series_cap)
}

/// Fig. 12a: mean max deviation per method and coefficient budget `M`,
/// averaged over the catalogue. SAX is excluded (the paper compares PAA in
/// its place — symbol→number reconstruction is strictly coarser), and APLA
/// is reported by the head-to-head companion [`max_deviation_apla_table`]
/// so every cell here averages the identical full sample.
pub fn max_deviation_table(cfg: &RunConfig) -> Table {
    let datasets = load_datasets(cfg.datasets, &cfg.reduction_protocol);
    let reducers = all_reducers();
    let m_headers: Vec<String> = cfg.ms.iter().map(|m| format!("M={m}")).collect();
    let mut headers: Vec<&str> = vec!["method"];
    headers.extend(m_headers.iter().map(String::as_str));
    let mut table = Table::new("Fig. 12a — mean max deviation (lower is better)", &headers);
    for reducer in &reducers {
        if matches!(reducer.name(), "SAX" | "APLA") {
            continue;
        }
        let mut cells = vec![reducer.name().to_string()];
        for &m in &cfg.ms {
            let mut sum = 0.0;
            let mut count = 0usize;
            for ds in &datasets {
                for series in &ds.series {
                    let rep = reducer
                        .reduce(series, m)
                        .expect("protocol budgets are valid for every method");
                    sum += reducer.max_deviation(series, &rep).expect("same length");
                    count += 1;
                }
            }
            cells.push(if count == 0 { "-".into() } else { f(sum / count as f64) });
        }
        table.row(cells);
    }
    table
}

/// Fig. 12a companion: head-to-head on the APLA-affordable sample, under
/// both deviation metrics the paper uses — the plain series max deviation
/// (Definition 3.4 applied to the whole series) and the *sum of
/// per-segment max deviations* (the quantity Fig. 1 labels "Max
/// Deviation", for which APLA's dynamic program is provably optimal).
pub fn max_deviation_apla_table(cfg: &RunConfig) -> Table {
    let datasets = load_datasets(cfg.datasets, &cfg.reduction_protocol);
    let m = cfg.ms[0];
    let mut table = Table::new(
        &format!(
            "Fig. 12a (head-to-head, {} datasets x {} series, M = {m})",
            cfg.apla_dataset_cap, cfg.apla_series_cap
        ),
        &["method", "max dev", "sum seg dev"],
    );
    for reducer in all_reducers() {
        if reducer.name() == "SAX" {
            continue;
        }
        let mut max_sum = 0.0;
        let mut seg_sum = 0.0;
        let mut seg_count = 0usize;
        let mut count = 0usize;
        for ds in datasets.iter().take(cfg.apla_dataset_cap) {
            for series in ds.series.iter().take(cfg.apla_series_cap) {
                let rep = reducer.reduce(series, m).expect("valid budget");
                max_sum += reducer.max_deviation(series, &rep).expect("same length");
                count += 1;
                if let Some(lin) = rep.linear_view() {
                    seg_sum +=
                        lin.segment_deviations(series).expect("same length").iter().sum::<f64>();
                    seg_count += 1;
                }
            }
        }
        table.row(vec![
            reducer.name().to_string(),
            f(max_sum / count.max(1) as f64),
            if seg_count == 0 { "-".into() } else { f(seg_sum / seg_count as f64) },
        ]);
    }
    table
}

/// Fig. 12b: mean dimensionality-reduction time per series (M = first
/// configured budget).
pub fn reduction_time_table(cfg: &RunConfig) -> Table {
    let datasets = load_datasets(cfg.datasets, &cfg.reduction_protocol);
    let m = cfg.ms[0];
    let mut table = Table::new(
        &format!(
            "Fig. 12b — mean reduction time per series (n = {}, M = {m})",
            cfg.reduction_protocol.series_len
        ),
        &["method", "time/series", "vs SAPLA"],
    );
    let reducers = all_reducers();
    let mut rows: Vec<(String, f64)> = Vec::new();
    for reducer in &reducers {
        let mut total = Duration::ZERO;
        let mut count = 0usize;
        for (di, ds) in datasets.iter().enumerate() {
            for (si, series) in ds.series.iter().enumerate() {
                if !apla_allowed(cfg, reducer.name(), di, si) {
                    continue;
                }
                let (_, t) = time_it(|| reducer.reduce(series, m).expect("valid budget"));
                total += t;
                count += 1;
            }
        }
        if count > 0 {
            rows.push((reducer.name().to_string(), total.as_secs_f64() / count as f64));
        }
    }
    let sapla_time = rows.iter().find(|(n, _)| n == "SAPLA").map(|&(_, t)| t).unwrap_or(f64::NAN);
    for (name, t) in rows {
        table.row(vec![name, dur(Duration::from_secs_f64(t)), format!("{:.2}x", t / sapla_time)]);
    }
    table
}

/// Table 1 companion: measured reduction time as `n` grows, demonstrating
/// each method's complexity class (APLA's quadratic blow-up vs SAPLA's
/// near-linear growth).
pub fn scaling_table(cfg: &RunConfig) -> Table {
    let lens = [128usize, 256, 512, 1024];
    let m = cfg.ms[0];
    let mut table = Table::new(
        "Table 1 — reduction time vs series length n (one series per cell)",
        &["method", "n=128", "n=256", "n=512", "n=1024", "t(1024)/t(128)"],
    );
    for reducer in all_reducers() {
        let mut cells = vec![reducer.name().to_string()];
        let mut times = Vec::new();
        for &n in &lens {
            let protocol =
                Protocol { series_len: n, series_per_dataset: 1, queries_per_dataset: 1 };
            let ds = load_datasets(1, &protocol);
            let series = &ds[0].series[0];
            // Median of 3 runs to damp jitter for the fast methods.
            let mut samples: Vec<f64> = (0..3)
                .map(|_| {
                    time_it(|| reducer.reduce(series, m).expect("valid budget")).1.as_secs_f64()
                })
                .collect();
            samples.sort_by(f64::total_cmp);
            let t = samples[1];
            times.push(t);
            cells.push(dur(Duration::from_secs_f64(t)));
        }
        cells.push(format!("{:.1}x", times[3] / times[0].max(1e-9)));
        table.row(cells);
    }
    table
}

/// Fig. 12a per-family breakdown (the paper's technical report drills
/// per-dataset; we group by generator family): mean max deviation per
/// method and family at the first budget.
pub fn max_deviation_by_family_table(cfg: &RunConfig) -> Table {
    let datasets = load_datasets(cfg.datasets, &cfg.reduction_protocol);
    let m = cfg.ms[0];
    let families: Vec<String> = {
        let mut f: Vec<String> = datasets
            .iter()
            .map(|d| d.name.split('_').next().unwrap_or(&d.name).to_string())
            .collect();
        f.sort();
        f.dedup();
        f
    };
    let mut headers: Vec<&str> = vec!["method"];
    headers.extend(families.iter().map(String::as_str));
    let mut table =
        Table::new(&format!("Fig. 12a by family — mean max deviation (M = {m})"), &headers);
    for reducer in all_reducers() {
        if matches!(reducer.name(), "SAX" | "APLA") {
            continue;
        }
        let mut cells = vec![reducer.name().to_string()];
        for family in &families {
            let mut sum = 0.0;
            let mut count = 0usize;
            for ds in datasets.iter().filter(|d| d.name.starts_with(family.as_str())) {
                for series in &ds.series {
                    let rep = reducer.reduce(series, m).expect("valid budget");
                    sum += reducer.max_deviation(series, &rep).expect("same length");
                    count += 1;
                }
            }
            cells.push(if count == 0 { "-".into() } else { f(sum / count as f64) });
        }
        table.row(cells);
    }
    table
}

/// ABL1 — stage ablation: SAPLA with stages progressively enabled, and
/// with the exact (unconditional) bound mode.
pub fn ablation_stages_table(cfg: &RunConfig) -> Table {
    let datasets = load_datasets(cfg.datasets, &cfg.reduction_protocol);
    let m = cfg.ms[0];
    let variants: Vec<(&str, SaplaConfig)> = vec![
        (
            "init only",
            SaplaConfig {
                refine_split_merge: false,
                max_refine_rounds: 0,
                endpoint_movement: false,
                ..SaplaConfig::default()
            },
        ),
        ("init + split/merge", SaplaConfig { endpoint_movement: false, ..SaplaConfig::default() }),
        ("full (paper)", SaplaConfig::default()),
        ("full x3 stage loops", SaplaConfig { stage_loops: 3, ..SaplaConfig::default() }),
        (
            "full + exact bounds",
            SaplaConfig { bound_mode: BoundMode::Exact, ..SaplaConfig::default() },
        ),
    ];
    let mut table = Table::new(
        &format!("ABL1 — SAPLA stage ablation (M = {m})"),
        &["variant", "mean max dev", "mean sum dev", "time/series"],
    );
    for (name, config) in variants {
        let reducer = SaplaReducer::with_config(config);
        let mut dev_sum = 0.0;
        let mut sumdev_sum = 0.0;
        let mut time = Duration::ZERO;
        let mut count = 0usize;
        for ds in &datasets {
            for series in &ds.series {
                let (rep, t) = time_it(|| reducer.reduce(series, m).expect("valid budget"));
                time += t;
                let lin = rep.as_linear().expect("SAPLA emits linear representations");
                dev_sum += lin.max_deviation(series).expect("same length");
                sumdev_sum +=
                    lin.segment_deviations(series).expect("same length").iter().sum::<f64>();
                count += 1;
            }
        }
        let c = count as f64;
        table.row(vec![
            name.to_string(),
            f(dev_sum / c),
            f(sumdev_sum / c),
            dur(time / count as u32),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_deviation_table_has_six_methods() {
        let t = max_deviation_table(&RunConfig::tiny());
        assert_eq!(t.len(), 6); // 8 methods minus SAX and APLA
    }

    #[test]
    fn apla_head_to_head_has_seven_methods() {
        let t = max_deviation_apla_table(&RunConfig::tiny());
        assert_eq!(t.len(), 7); // 8 methods minus SAX
    }

    #[test]
    fn family_breakdown_runs() {
        let t = max_deviation_by_family_table(&RunConfig::tiny());
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn reduction_time_table_runs() {
        let t = reduction_time_table(&RunConfig::tiny());
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn ablation_runs() {
        let t = ablation_stages_table(&RunConfig::tiny());
        assert_eq!(t.len(), 5);
    }
}
