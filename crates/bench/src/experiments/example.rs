//! Fig. 1 / Figs. 5, 6, 8 — the paper's 20-point worked example.

use sapla_baselines::{all_reducers, SaplaReducer};
use sapla_core::sapla::SaplaConfig;
use sapla_core::{Representation, TimeSeries};

use sapla_baselines::Reducer;

use crate::table::{f, Table};

/// The series printed in Fig. 5a of the paper.
pub const FIG1_SERIES: [f64; 20] = [
    7.0, 8.0, 20.0, 15.0, 18.0, 8.0, 8.0, 15.0, 10.0, 1.0, 4.0, 3.0, 3.0, 5.0, 4.0, 9.0, 2.0, 9.0,
    10.0, 10.0,
];

/// The paper's reported sum-of-max-deviations for Fig. 1 (M = 12).
pub const PAPER_FIG1: [(&str, f64); 4] =
    [("SAPLA", 9.2727), ("APLA", 9.0909), ("APCA", 18.4167), ("PLA", 19.3999)];

fn sum_dev(rep: &Representation, s: &TimeSeries) -> Option<f64> {
    let lin = rep.linear_view()?;
    Some(lin.segment_deviations(s).ok()?.iter().sum())
}

/// Fig. 1 — every method on the worked example at M = 12, with the
/// paper's reported numbers alongside.
pub fn fig1_table() -> Table {
    let s = TimeSeries::new(FIG1_SERIES.to_vec()).expect("static example");
    let mut table = Table::new(
        "Fig. 1 — worked example, M = 12 (sum of per-segment max deviations)",
        &["method", "N", "max dev", "sum dev", "paper sum dev"],
    );
    for reducer in all_reducers() {
        if reducer.name() == "SAX" {
            continue;
        }
        let rep = reducer.reduce(&s, 12).expect("M = 12 divides all methods");
        let max = reducer.max_deviation(&s, &rep).expect("same length");
        let sum = sum_dev(&rep, &s);
        let paper = PAPER_FIG1
            .iter()
            .find(|(n, _)| *n == reducer.name())
            .map(|&(_, v)| f(v))
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            reducer.name().to_string(),
            rep.num_segments().to_string(),
            f(max),
            sum.map(f).unwrap_or_else(|| "-".into()),
            paper,
        ]);
    }
    table
}

/// Figs. 5/6/8 — SAPLA stage by stage on the worked example.
pub fn stages_table() -> Table {
    let s = TimeSeries::new(FIG1_SERIES.to_vec()).expect("static example");
    let stages: Vec<(&str, SaplaConfig)> = vec![
        (
            "Fig. 5 init (+count fix)",
            SaplaConfig {
                refine_split_merge: false,
                max_refine_rounds: 0,
                endpoint_movement: false,
                ..SaplaConfig::default()
            },
        ),
        (
            "Fig. 6 split & merge",
            SaplaConfig { endpoint_movement: false, ..SaplaConfig::default() },
        ),
        ("Fig. 8 endpoint movement", SaplaConfig::default()),
    ];
    let mut table = Table::new(
        "Figs. 5/6/8 — SAPLA stages on the worked example (N = 4)",
        &["stage", "endpoints", "max dev"],
    );
    for (name, config) in stages {
        let rep = SaplaReducer::with_config(config).reduce(&s, 12).expect("valid");
        let lin = rep.as_linear().expect("SAPLA is linear");
        table.row(vec![
            name.to_string(),
            format!("{:?}", lin.endpoints()),
            f(lin.max_deviation(&s).expect("same length")),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_table_reproduces_orderings() {
        let t = fig1_table();
        assert_eq!(t.len(), 7);
        let s = t.render();
        assert!(s.contains("SAPLA"));
        assert!(s.contains("APLA"));
    }

    #[test]
    fn stages_table_has_three_rows() {
        assert_eq!(stages_table().len(), 3);
    }
}
