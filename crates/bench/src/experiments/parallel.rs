//! Thread-sweep experiment for the parallel engine: ingest (work-stealing
//! batch reduction + sequential DBCH build) and multi-query k-NN wall
//! time as a function of worker count, on the catalogue profile.
//!
//! Every sweep point also *checks* the engine's core promise: the search
//! results at `t` threads are compared against the single-threaded
//! baseline and must match exactly, so a speedup here is never bought
//! with changed answers.

use std::time::Duration;

use sapla_baselines::all_reducers;
use sapla_index::{
    ingest_parallel, knn_batch, prepare_queries, scheme_for, NodeDistRule, Query, SearchStats,
};

use crate::harness::{load_datasets, time_it, RunConfig};
use crate::table::{dur, Table};

/// One measured point of the thread sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Worker count used for ingest and the query batch.
    pub threads: usize,
    /// Total ingest wall time (parallel reduction + sequential build)
    /// summed over datasets.
    pub ingest: Duration,
    /// Total multi-query k-NN wall time summed over datasets.
    pub knn: Duration,
}

impl SweepPoint {
    /// Combined ingest + query wall time.
    pub fn total(&self) -> Duration {
        self.ingest + self.knn
    }
}

/// Measure ingest + multi-query k-NN over the catalogue at each worker
/// count in `thread_counts`, using the paper's SAPLA pipeline. Panics if
/// any sweep point's search results deviate from the first point's —
/// determinism is part of what this experiment certifies.
pub fn thread_sweep(cfg: &RunConfig, thread_counts: &[usize], k: usize) -> Vec<SweepPoint> {
    let datasets = load_datasets(cfg.datasets, &cfg.index_protocol);
    let m = cfg.ms[0];
    let reducer = all_reducers()
        .into_iter()
        .find(|r| r.name() == "SAPLA")
        .expect("SAPLA is always registered");
    let scheme = scheme_for("SAPLA").unwrap();

    // A realistic multi-query load: the protocol's queries plus every
    // database series queried against its own dataset.
    let query_sets: Vec<Vec<Query>> = datasets
        .iter()
        .map(|ds| {
            let mut raws = ds.queries.clone();
            raws.extend(ds.series.iter().cloned());
            prepare_queries(&raws, reducer.as_ref(), m, 0).expect("query reduction")
        })
        .collect();

    let mut baseline: Option<Vec<Vec<SearchStats>>> = None;
    let mut points = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let mut ingest = Duration::ZERO;
        let mut knn = Duration::ZERO;
        let mut results: Vec<Vec<SearchStats>> = Vec::with_capacity(datasets.len());
        for (ds, queries) in datasets.iter().zip(&query_sets) {
            let (tree, t_ingest) = time_it(|| {
                ingest_parallel(
                    scheme.as_ref(),
                    reducer.as_ref(),
                    &ds.series,
                    m,
                    cfg.min_fill,
                    cfg.max_fill,
                    NodeDistRule::Paper,
                    threads,
                )
                .expect("ingest")
            });
            let ((per_query, _batch), t_knn) = time_it(|| {
                knn_batch(&tree, queries, k, scheme.as_ref(), &ds.series, threads)
                    .expect("knn batch")
            });
            ingest += t_ingest;
            knn += t_knn;
            results.push(per_query);
        }
        match &baseline {
            None => baseline = Some(results),
            Some(base) => {
                assert_eq!(base, &results, "results at {threads} threads deviate from the baseline")
            }
        }
        points.push(SweepPoint { threads, ingest, knn });
    }
    points
}

/// Render a sweep as a table with speedups relative to the first point.
pub fn thread_sweep_table(points: &[SweepPoint]) -> Table {
    let mut table = Table::new(
        "Parallel engine — ingest & multi-query k-NN vs worker count (SAPLA + DBCH)",
        &["threads", "ingest", "knn batch", "total", "speedup"],
    );
    let base = points.first().map(|p| p.total());
    for p in points {
        let speedup = match base {
            Some(b) if p.total().as_nanos() > 0 => b.as_secs_f64() / p.total().as_secs_f64(),
            _ => 1.0,
        };
        table.row(vec![
            p.threads.to_string(),
            dur(p.ingest),
            dur(p.knn),
            dur(p.total()),
            format!("{speedup:.2}x"),
        ]);
    }
    table
}

/// Default sweep grid: 1, 2, 4, and the hardware count — keeping only
/// counts the hardware can actually run in parallel (oversubscribing a
/// core measures scheduler overhead, not the engine). On a single-core
/// host the grid is just `[1]`.
pub fn default_thread_grid() -> Vec<usize> {
    let max = sapla_parallel::max_threads();
    let mut grid: Vec<usize> = [1usize, 2, 4, max].into_iter().filter(|&t| t <= max).collect();
    grid.sort_unstable();
    grid.dedup();
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_and_stays_deterministic() {
        let cfg = RunConfig::tiny();
        // thread_sweep panics internally if 2-thread results deviate.
        let points = thread_sweep(&cfg, &[1, 2], 3);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.total() > Duration::ZERO));
        let table = thread_sweep_table(&points);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn grid_is_sorted_and_unique() {
        let grid = default_thread_grid();
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(grid[0], 1);
    }
}
