//! Index experiments: Figs. 13 (pruning power & accuracy), 14 (ingest &
//! k-NN time), 15–16 (tree shape), and the DBCH node-distance ablation
//! (ABL2).

use std::collections::BTreeMap;
use std::time::Duration;

use sapla_baselines::{all_reducers, reduce_batch_parallel};
use sapla_index::{linear_scan_knn, scheme_for, DbchTree, NodeDistRule, Query, RTree};

use crate::harness::{load_datasets, time_it, RunConfig};
use crate::table::{dur, f, Table};

/// Aggregated outcome for one (method, tree) combination.
#[derive(Debug, Clone, Default)]
pub struct IndexOutcome {
    /// Mean pruning power ρ (Eq. 14) over queries × K.
    pub pruning: f64,
    /// Mean accuracy (Eq. 15) over queries × K.
    pub accuracy: f64,
    /// Mean ingest (batch reduction + tree build) time per dataset.
    pub ingest: Duration,
    /// Mean k-NN search time per query.
    pub knn_time: Duration,
    /// Mean internal-node count per tree.
    pub internal_nodes: f64,
    /// Mean leaf-node count per tree.
    pub leaf_nodes: f64,
    /// Mean total node count per tree.
    pub total_nodes: f64,
    /// Mean height per tree.
    pub height: f64,
    /// Mean leaf fill per tree.
    pub leaf_fill: f64,
}

#[derive(Debug, Clone, Default)]
struct Acc {
    pruning: f64,
    accuracy: f64,
    queries: usize,
    ingest: Duration,
    knn_time: Duration,
    knn_count: usize,
    internal: usize,
    leaf: usize,
    total: usize,
    height: usize,
    fill: f64,
    trees: usize,
}

/// Full indexing sweep. Returns `(outcomes keyed by (method, tree),
/// mean linear-scan time per query)`.
///
/// `with_queries = false` skips the k-NN phase (enough for Figs. 15–16).
pub fn run_indexing(
    cfg: &RunConfig,
    with_queries: bool,
) -> (BTreeMap<(String, String), IndexOutcome>, Duration) {
    run_indexing_with_rule(cfg, with_queries, NodeDistRule::Paper)
}

/// [`run_indexing`] with an explicit DBCH node-distance rule (ABL2).
pub fn run_indexing_with_rule(
    cfg: &RunConfig,
    with_queries: bool,
    rule: NodeDistRule,
) -> (BTreeMap<(String, String), IndexOutcome>, Duration) {
    let datasets = load_datasets(cfg.datasets, &cfg.index_protocol);
    let m = cfg.ms[0];
    let ks = cfg.effective_ks();
    let mut accs: BTreeMap<(String, String), Acc> = BTreeMap::new();
    let mut scan_time = Duration::ZERO;
    let mut scan_count = 0usize;

    for (di, ds) in datasets.iter().enumerate() {
        // Ground truth per query and K.
        let truths: Vec<Vec<Vec<usize>>> = if with_queries {
            ds.queries.iter().map(|q| ks.iter().map(|&k| ds.exact_knn(q, k)).collect()).collect()
        } else {
            Vec::new()
        };
        if with_queries {
            for q in &ds.queries {
                let (_, t) = time_it(|| {
                    linear_scan_knn(q, &ds.series, *ks.last().unwrap_or(&1)).expect("scan")
                });
                scan_time += t;
                scan_count += 1;
            }
        }

        for reducer in all_reducers() {
            if reducer.name() == "APLA" && di >= cfg.apla_dataset_cap {
                continue;
            }
            let scheme = scheme_for(reducer.name()).unwrap();
            // Ingest = reduction + tree build (the paper's ingest
            // experiment covers the whole pipeline; reduction dominates
            // and runs on the work-stealing pool at `cfg.threads`).
            let (reps, red_time) = time_it(|| {
                reduce_batch_parallel(reducer.as_ref(), &ds.series, m, cfg.threads)
                    .expect("valid budget")
            });
            let (rtree, rt_build) = time_it(|| {
                RTree::build(scheme.as_ref(), reps.clone(), cfg.min_fill, cfg.max_fill)
                    .expect("R-tree build")
            });
            let (dbch, db_build) = time_it(|| {
                DbchTree::build_with_rule(
                    scheme.as_ref(),
                    reps.clone(),
                    cfg.min_fill,
                    cfg.max_fill,
                    rule,
                )
                .expect("DBCH build")
            });

            for (tree_name, build_time, shape) in [
                ("R-tree", red_time + rt_build, rtree.shape()),
                ("DBCH-tree", red_time + db_build, dbch.shape()),
            ] {
                let acc =
                    accs.entry((reducer.name().to_string(), tree_name.to_string())).or_default();
                acc.ingest += build_time;
                acc.internal += shape.internal_nodes;
                acc.leaf += shape.leaf_nodes;
                acc.total += shape.total_nodes();
                acc.height += shape.height;
                acc.fill += shape.avg_leaf_fill();
                acc.trees += 1;
            }

            if !with_queries {
                continue;
            }
            for (qi, qraw) in ds.queries.iter().enumerate() {
                let q = Query::new(qraw, reducer.as_ref(), m).expect("query reduction");
                for (ki, &k) in ks.iter().enumerate() {
                    let truth = &truths[qi][ki];
                    let (r_stats, r_t) =
                        time_it(|| rtree.knn(&q, k, scheme.as_ref(), &ds.series).expect("knn"));
                    let (d_stats, d_t) =
                        time_it(|| dbch.knn(&q, k, scheme.as_ref(), &ds.series).expect("knn"));
                    for (tree_name, stats, t) in
                        [("R-tree", r_stats, r_t), ("DBCH-tree", d_stats, d_t)]
                    {
                        let acc = accs
                            .entry((reducer.name().to_string(), tree_name.to_string()))
                            .or_default();
                        acc.pruning += stats.pruning_power();
                        acc.accuracy += stats.accuracy(truth);
                        acc.queries += 1;
                        acc.knn_time += t;
                        acc.knn_count += 1;
                    }
                }
            }
        }
    }

    let outcomes = accs
        .into_iter()
        .map(|(key, a)| {
            let q = a.queries.max(1) as f64;
            let t = a.trees.max(1) as f64;
            (
                key,
                IndexOutcome {
                    pruning: a.pruning / q,
                    accuracy: a.accuracy / q,
                    ingest: a.ingest / a.trees.max(1) as u32,
                    knn_time: a.knn_time / a.knn_count.max(1) as u32,
                    internal_nodes: a.internal as f64 / t,
                    leaf_nodes: a.leaf as f64 / t,
                    total_nodes: a.total as f64 / t,
                    height: a.height as f64 / t,
                    leaf_fill: a.fill / t,
                },
            )
        })
        .collect();
    let scan = if scan_count == 0 { Duration::ZERO } else { scan_time / scan_count as u32 };
    (outcomes, scan)
}

/// Method order used by the paper's figures.
pub const METHOD_ORDER: [&str; 8] =
    ["SAPLA", "APLA", "APCA", "PLA", "PAA", "PAALM", "CHEBY", "SAX"];

fn two_tree_table(
    title: &str,
    col: &str,
    outcomes: &BTreeMap<(String, String), IndexOutcome>,
    get: impl Fn(&IndexOutcome) -> String,
) -> Table {
    let mut table =
        Table::new(title, &["method", &format!("{col} (R-tree)"), &format!("{col} (DBCH)")]);
    for name in METHOD_ORDER {
        let r = outcomes.get(&(name.to_string(), "R-tree".to_string()));
        let d = outcomes.get(&(name.to_string(), "DBCH-tree".to_string()));
        if r.is_none() && d.is_none() {
            continue;
        }
        table.row(vec![
            name.to_string(),
            r.map(&get).unwrap_or_else(|| "-".into()),
            d.map(&get).unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

/// Fig. 13a/13b from a finished sweep.
pub fn fig13_tables(outcomes: &BTreeMap<(String, String), IndexOutcome>) -> (Table, Table) {
    (
        two_tree_table(
            "Fig. 13a — mean pruning power ρ (lower is better)",
            "ρ",
            outcomes,
            |o| f(o.pruning),
        ),
        two_tree_table("Fig. 13b — mean accuracy (higher is better)", "acc", outcomes, |o| {
            f(o.accuracy)
        }),
    )
}

/// Fig. 14a/14b from a finished sweep (the linear-scan bar is appended to
/// 14b as in the paper).
pub fn fig14_tables(
    outcomes: &BTreeMap<(String, String), IndexOutcome>,
    scan: Duration,
) -> (Table, Table) {
    let a =
        two_tree_table("Fig. 14a — mean data ingest time per dataset", "build", outcomes, |o| {
            dur(o.ingest)
        });
    let mut b = two_tree_table("Fig. 14b — mean k-NN CPU time per query", "knn", outcomes, |o| {
        dur(o.knn_time)
    });
    b.row(vec!["LinearScan".into(), dur(scan), dur(scan)]);
    (a, b)
}

/// Fig. 15 (internal/leaf node counts) and Fig. 16 (total nodes & height).
pub fn fig15_16_tables(
    outcomes: &BTreeMap<(String, String), IndexOutcome>,
) -> (Table, Table, Table, Table) {
    (
        two_tree_table("Fig. 15a — mean internal node count", "internal", outcomes, |o| {
            f(o.internal_nodes)
        }),
        two_tree_table("Fig. 15b — mean leaf node count", "leaves", outcomes, |o| f(o.leaf_nodes)),
        two_tree_table("Fig. 16a — mean total node count", "nodes", outcomes, |o| {
            f(o.total_nodes)
        }),
        two_tree_table("Fig. 16b — mean tree height", "height", outcomes, |o| f(o.height)),
    )
}

/// K-sweep companion to Fig. 13: pruning power of SAPLA in both trees as
/// `K` grows through the paper's `{4, 8, 16, 32, 64}` (clipped to the
/// database size). Larger `K` forces more exact measurements, so ρ rises
/// for every index — the question is how fast.
pub fn k_sweep_table(cfg: &RunConfig) -> Table {
    let datasets = load_datasets(cfg.datasets, &cfg.index_protocol);
    let m = cfg.ms[0];
    let ks = cfg.effective_ks();
    let reducer = all_reducers()
        .into_iter()
        .find(|r| r.name() == "SAPLA")
        .expect("SAPLA is always registered");
    let scheme = scheme_for("SAPLA").unwrap();

    let mut rho_r = vec![0.0f64; ks.len()];
    let mut rho_d = vec![0.0f64; ks.len()];
    let mut acc_r = vec![0.0f64; ks.len()];
    let mut acc_d = vec![0.0f64; ks.len()];
    let mut count = 0usize;
    for ds in &datasets {
        let reps: Vec<_> =
            ds.series.iter().map(|s| reducer.reduce(s, m).expect("valid budget")).collect();
        let rtree = RTree::build(scheme.as_ref(), reps.clone(), cfg.min_fill, cfg.max_fill)
            .expect("R-tree build");
        let dbch =
            DbchTree::build(scheme.as_ref(), reps, cfg.min_fill, cfg.max_fill).expect("DBCH build");
        for qraw in &ds.queries {
            let q = Query::new(qraw, reducer.as_ref(), m).expect("query reduction");
            for (ki, &k) in ks.iter().enumerate() {
                let truth = ds.exact_knn(qraw, k);
                let r = rtree.knn(&q, k, scheme.as_ref(), &ds.series).expect("knn");
                let d = dbch.knn(&q, k, scheme.as_ref(), &ds.series).expect("knn");
                rho_r[ki] += r.pruning_power();
                rho_d[ki] += d.pruning_power();
                acc_r[ki] += r.accuracy(&truth);
                acc_d[ki] += d.accuracy(&truth);
            }
            count += 1;
        }
    }
    let mut table = Table::new(
        "Fig. 13 (K sweep, SAPLA) — ρ and accuracy vs K",
        &["K", "ρ R-tree", "ρ DBCH", "acc R-tree", "acc DBCH"],
    );
    for (ki, &k) in ks.iter().enumerate() {
        let c = count.max(1) as f64;
        table.row(vec![
            k.to_string(),
            f(rho_r[ki] / c),
            f(rho_d[ki] / c),
            f(acc_r[ki] / c),
            f(acc_d[ki] / c),
        ]);
    }
    table
}

/// ABL2 — DBCH node-distance rule ablation (paper rule vs triangle
/// inequality) for the adaptive methods.
pub fn ablation_dbch_table(cfg: &RunConfig) -> Table {
    let (paper, _) = run_indexing_with_rule(cfg, true, NodeDistRule::Paper);
    let (tri, _) = run_indexing_with_rule(cfg, true, NodeDistRule::Triangle);
    let mut table = Table::new(
        "ABL2 — DBCH node distance: paper rule vs triangle inequality",
        &["method", "ρ paper", "ρ triangle", "acc paper", "acc triangle"],
    );
    for name in ["SAPLA", "APLA", "APCA"] {
        let key = (name.to_string(), "DBCH-tree".to_string());
        let (Some(p), Some(t)) = (paper.get(&key), tri.get(&key)) else { continue };
        table.row(vec![name.to_string(), f(p.pruning), f(t.pruning), f(p.accuracy), f(t.accuracy)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_has_one_row_per_k() {
        let cfg = RunConfig::tiny();
        let t = k_sweep_table(&cfg);
        assert_eq!(t.len(), cfg.effective_ks().len());
    }

    #[test]
    fn tiny_sweep_produces_all_combinations() {
        let cfg = RunConfig::tiny();
        let (outcomes, scan) = run_indexing(&cfg, true);
        // 8 methods × 2 trees (APLA present: tiny cap ≥ 1 dataset).
        assert_eq!(outcomes.len(), 16);
        assert!(scan > Duration::ZERO);
        for ((method, tree), o) in &outcomes {
            assert!(o.pruning > 0.0 && o.pruning <= 1.0, "{method}/{tree}: ρ = {}", o.pruning);
            assert!(o.accuracy >= 0.0 && o.accuracy <= 1.0);
            assert!(o.total_nodes >= 1.0);
        }
        let (a, b) = fig13_tables(&outcomes);
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
        let (c, d) = fig14_tables(&outcomes, scan);
        assert_eq!(c.len(), 8);
        assert_eq!(d.len(), 9); // + linear scan row
        let (e, fg, g, h) = fig15_16_tables(&outcomes);
        assert!(e.len() == 8 && fg.len() == 8 && g.len() == 8 && h.len() == 8);
    }
}
