//! Appendix A empirical checks: Theorems 4.2 and 4.3 state the conditions
//! under which the `O(1)` bounds satisfy `β_i ≥ ε_i`, and the paper
//! reports *"during our experiment, we have not found these special
//! cases"*. This experiment replays the bound computations over the
//! catalogue and counts violations directly.

use sapla_core::bounds::{beta_increment, beta_merge, beta_split_left, beta_split_right};
use sapla_core::equations::eq3_eq4_merge;
use sapla_core::{LineFit, SegStats};

use crate::harness::{load_datasets, RunConfig};
use crate::table::{f, Table};

/// Violation statistics for one bound kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundCheck {
    /// Total (β, ε) comparisons performed.
    pub checks: usize,
    /// Cases with `β_i < ε_i` (the theorems' "special cases").
    pub violations: usize,
    /// Worst relative shortfall `(ε − β)/ε` among violations.
    pub worst_shortfall: f64,
}

impl BoundCheck {
    fn record(&mut self, beta: f64, eps: f64) {
        self.checks += 1;
        if beta + 1e-9 < eps {
            self.violations += 1;
            if eps > 0.0 {
                self.worst_shortfall = self.worst_shortfall.max((eps - beta) / eps);
            }
        }
    }

    /// Violation rate.
    pub fn rate(&self) -> f64 {
        if self.checks == 0 {
            0.0
        } else {
            self.violations as f64 / self.checks as f64
        }
    }
}

/// Replay increment (Thm 4.2), merge and split (Thm 4.3) bound
/// computations over catalogue series, comparing each `β_i` with the
/// exact segment max deviation `ε_i`.
pub fn check_bounds(cfg: &RunConfig) -> [(&'static str, BoundCheck); 4] {
    let protocol =
        sapla_data::Protocol { series_len: 128, series_per_dataset: 4, queries_per_dataset: 1 };
    let datasets = load_datasets(cfg.datasets.min(24), &protocol);

    let mut init = BoundCheck::default();
    let mut merge = BoundCheck::default();
    let mut split_l = BoundCheck::default();
    let mut split_r = BoundCheck::default();

    for ds in &datasets {
        for series in &ds.series {
            let v = series.values();
            let n = v.len();

            // Theorem 4.2: grow a segment point by point from several
            // starts; β from beta_increment must dominate the exact ε.
            for start in [0usize, n / 3, n / 2] {
                let mut stats = SegStats::single(v[start]).push_right(v[start + 1]);
                let mut fit = stats.fit();
                let mut max_d = 0.0f64;
                for end in (start + 3)..(start + 40).min(n) {
                    let new_stats = stats.push_right(v[end - 1]);
                    let new_fit = new_stats.fit();
                    let beta = beta_increment(
                        v[start],
                        v[end - 2],
                        v[end - 1],
                        &fit,
                        &new_fit,
                        &mut max_d,
                    );
                    let eps = new_fit.max_deviation(&v[start..end]);
                    init.record(beta, eps);
                    stats = new_stats;
                    fit = new_fit;
                }
            }

            // Theorem 4.3 (merge): merge adjacent windows of several sizes.
            for (ls, rs) in [(8usize, 8usize), (12, 20), (30, 10)] {
                let mut s = 0usize;
                while s + ls + rs <= n {
                    let left = LineFit::over_slice(&v[s..s + ls]);
                    let right = LineFit::over_slice(&v[s + ls..s + ls + rs]);
                    let merged = eq3_eq4_merge(&left, &right);
                    let beta = beta_merge(&v[s..s + ls + rs], &left, &right, &merged);
                    let eps = merged.max_deviation(&v[s..s + ls + rs]);
                    merge.record(beta, eps);
                    s += ls + rs;
                }
            }

            // Theorem 4.3 (split): split long windows at their middle.
            for len in [16usize, 40] {
                let mut s = 0usize;
                while s + len <= n {
                    let cut = s + len / 2;
                    let long = LineFit::over_slice(&v[s..s + len]);
                    let lf = LineFit::over_slice(&v[s..cut]);
                    let rf = LineFit::over_slice(&v[cut..s + len]);
                    split_l.record(
                        beta_split_left(v[s], v[cut - 1], &long, &lf),
                        lf.max_deviation(&v[s..cut]),
                    );
                    split_r.record(
                        beta_split_right(v[cut], v[s + len - 1], &long, &rf, cut - s),
                        rf.max_deviation(&v[cut..s + len]),
                    );
                    s += len;
                }
            }
        }
    }
    [
        ("β init (Thm 4.2)", init),
        ("β merge (Thm 4.3)", merge),
        ("β split left (Thm 4.3)", split_l),
        ("β split right (Thm 4.3)", split_r),
    ]
}

/// Render the Appendix-A table.
pub fn theorems_table(cfg: &RunConfig) -> Table {
    let rows = check_bounds(cfg);
    let mut table = Table::new(
        "Appendix A — do the O(1) bounds dominate the exact deviations?",
        &["bound", "checks", "violations", "rate", "worst shortfall"],
    );
    for (name, c) in rows {
        table.row(vec![
            name.to_string(),
            c.checks.to_string(),
            c.violations.to_string(),
            f(c.rate()),
            f(c.worst_shortfall),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_in_the_overwhelming_majority_of_cases() {
        // The paper claims it never observed β < ε; our synthetic families
        // are noisier than many UCR sets, so allow a small violation rate
        // for the conditional bounds — but they must be rare.
        let rows = check_bounds(&RunConfig::tiny());
        for (name, c) in rows {
            assert!(c.checks > 50, "{name}: too few checks ({})", c.checks);
            assert!(c.rate() < 0.35, "{name}: violation rate {}", c.rate());
        }
    }

    #[test]
    fn table_has_four_rows() {
        assert_eq!(theorems_table(&RunConfig::tiny()).len(), 4);
    }
}
