//! Fig. 10 / Fig. 11 — distance-measure tightness and the lower-bounding
//! lemma, measured over the catalogue.

use sapla_baselines::{Reducer, SaplaReducer};
use sapla_distance::{dist_ae, dist_lb, dist_par};

use crate::harness::{load_datasets, RunConfig};
use crate::table::{f, Table};

/// Aggregate tightness statistics for one measure.
#[derive(Debug, Clone, Default)]
pub struct Tightness {
    /// Mean ratio `measure / Dist_euclid` (1.0 = perfectly tight).
    pub mean_ratio: f64,
    /// Fraction of pairs where the measure exceeded the Euclidean
    /// distance (lower-bound violations).
    pub violation_rate: f64,
    /// Mean relative overshoot among violating pairs.
    pub mean_violation: f64,
}

/// Measure `Dist_PAR`, `Dist_LB` and `Dist_AE` against the exact Euclidean
/// distance over query-database pairs from the catalogue.
pub fn measure_tightness(cfg: &RunConfig) -> [(&'static str, Tightness); 3] {
    let datasets = load_datasets(cfg.datasets, &cfg.index_protocol);
    let m = cfg.ms[0];
    let reducer = SaplaReducer::new();

    let mut acc = [(0.0f64, 0usize, 0.0f64); 3]; // (ratio sum, violations, overshoot sum)
    let mut pairs = 0usize;
    for ds in &datasets {
        for q in &ds.queries {
            let q_rep = reducer.reduce(q, m).expect("valid budget");
            let q_lin = q_rep.as_linear().expect("SAPLA is linear");
            let q_sums = q.prefix_sums();
            for s in &ds.series {
                let c_rep = reducer.reduce(s, m).expect("valid budget");
                let c_lin = c_rep.as_linear().expect("SAPLA is linear");
                let exact = q.euclidean(s).expect("same length");
                if exact <= f64::EPSILON {
                    continue;
                }
                let measures = [
                    dist_par(q_lin, c_lin).expect("same length"),
                    dist_lb(&q_sums, c_lin).expect("same length"),
                    dist_ae(q, c_lin).expect("same length"),
                ];
                for (slot, &d) in acc.iter_mut().zip(&measures) {
                    slot.0 += d / exact;
                    if d > exact * (1.0 + 1e-12) {
                        slot.1 += 1;
                        slot.2 += d / exact - 1.0;
                    }
                }
                pairs += 1;
            }
        }
    }
    let names = ["Dist_PAR", "Dist_LB", "Dist_AE"];
    let mut out = [
        ("Dist_PAR", Tightness::default()),
        ("Dist_LB", Tightness::default()),
        ("Dist_AE", Tightness::default()),
    ];
    for (i, (ratio, viol, overshoot)) in acc.into_iter().enumerate() {
        out[i] = (
            names[i],
            Tightness {
                mean_ratio: ratio / pairs.max(1) as f64,
                violation_rate: viol as f64 / pairs.max(1) as f64,
                mean_violation: if viol == 0 { 0.0 } else { overshoot / viol as f64 },
            },
        );
    }
    out
}

/// Render the Fig. 10 table.
pub fn tightness_table(cfg: &RunConfig) -> Table {
    let rows = measure_tightness(cfg);
    let mut table = Table::new(
        "Fig. 10 — lower-bound tightness vs Euclidean distance (SAPLA reps)",
        &["measure", "mean ratio", "violation rate", "mean overshoot"],
    );
    for (name, t) in rows {
        table.row(vec![
            name.to_string(),
            f(t.mean_ratio),
            f(t.violation_rate),
            f(t.mean_violation),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tightness_orders_as_the_paper_describes() {
        let cfg = RunConfig::tiny();
        let [(_, par), (_, lb), (_, ae)] = measure_tightness(&cfg);
        // Dist_LB is an unconditional lower bound.
        assert_eq!(lb.violation_rate, 0.0, "Dist_LB must never violate");
        // Dist_LB ≤ Dist_PAR ≤ ~Dist ≤ ~Dist_AE in the mean.
        assert!(lb.mean_ratio <= par.mean_ratio + 1e-9);
        assert!(par.mean_ratio <= 1.05, "Dist_PAR mean ratio {}", par.mean_ratio);
        assert!(ae.mean_ratio >= par.mean_ratio - 0.05);
        // Dist_PAR violations are rare and small (the conditional lemma).
        assert!(par.violation_rate < 0.2, "PAR violations {}", par.violation_rate);
    }
}
