//! One module per experiment group; see DESIGN.md's per-experiment index.

pub mod example;
pub mod indexing;
pub mod reduction;
pub mod theorems;
pub mod tightness;
