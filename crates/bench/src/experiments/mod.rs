//! One module per experiment group; see DESIGN.md's per-experiment index.

pub mod example;
pub mod indexing;
pub mod parallel;
pub mod reduction;
pub mod theorems;
pub mod tightness;
