//! Run configuration, dataset loading and timing helpers.

use std::time::{Duration, Instant};

use sapla_data::{catalogue, Dataset, Protocol};

/// Scaled run configuration (see the crate docs for the environment
/// knobs).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// How many catalogue datasets to evaluate (family-balanced prefix).
    pub datasets: usize,
    /// Protocol for reduction-quality experiments (Figs. 12, Table 1).
    pub reduction_protocol: Protocol,
    /// Protocol for index experiments (Figs. 13–16).
    pub index_protocol: Protocol,
    /// Coefficient budgets `M` (paper: 12, 18, 24).
    pub ms: Vec<usize>,
    /// k-NN sizes `K` (paper: 4, 8, 16, 32, 64).
    pub ks: Vec<usize>,
    /// APLA is `O(N n²)`: cap the datasets it runs on (family-balanced
    /// prefix) so the suite stays affordable. Other methods always run in
    /// full.
    pub apla_dataset_cap: usize,
    /// … and the series per dataset APLA reduces.
    pub apla_series_cap: usize,
    /// R-tree / DBCH-tree minimum fill (paper: 2).
    pub min_fill: usize,
    /// R-tree / DBCH-tree maximum fill (paper: 5).
    pub max_fill: usize,
    /// Worker threads for parallel ingest / multi-query k-NN
    /// (`0` = hardware count; `1` = sequential).
    pub threads: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `SAPLA_THREADS` is special-cased: a garbage value aborts the run
/// instead of silently falling back to the default, because a typo'd
/// thread count would silently invalidate a whole benchmark sweep.
/// `0` (and unset) means all hardware threads.
fn env_threads() -> usize {
    match std::env::var("SAPLA_THREADS") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|_| {
            panic!("SAPLA_THREADS: {}", sapla_core::Error::InvalidThreads { value: raw.clone() })
        }),
        Err(_) => 0,
    }
}

impl RunConfig {
    /// Read the environment and build the active configuration.
    pub fn from_env() -> RunConfig {
        let full = std::env::var("SAPLA_FULL").map(|v| v == "1").unwrap_or(false);
        if full {
            let p = Protocol::paper();
            return RunConfig {
                datasets: 117,
                reduction_protocol: p,
                index_protocol: p,
                ms: vec![12, 18, 24],
                ks: vec![4, 8, 16, 32, 64],
                apla_dataset_cap: 117,
                apla_series_cap: p.series_per_dataset,
                min_fill: 2,
                max_fill: 5,
                threads: env_threads(),
            };
        }
        let datasets = env_usize("SAPLA_DATASETS", 24).min(117);
        let series = env_usize("SAPLA_SERIES", 40);
        let queries = env_usize("SAPLA_QUERIES", 3);
        let red_len = env_usize("SAPLA_LEN", 1024);
        let idx_len = env_usize("SAPLA_LEN", 256);
        RunConfig {
            datasets,
            reduction_protocol: Protocol {
                series_len: red_len,
                series_per_dataset: series,
                queries_per_dataset: queries,
            },
            index_protocol: Protocol {
                series_len: idx_len,
                series_per_dataset: series,
                queries_per_dataset: queries,
            },
            ms: vec![12, 18, 24],
            ks: vec![4, 8, 16, 32, 64],
            apla_dataset_cap: 8.min(datasets),
            apla_series_cap: 2,
            min_fill: 2,
            max_fill: 5,
            threads: env_threads(),
        }
    }

    /// A minimal configuration for tests.
    pub fn tiny() -> RunConfig {
        let p = Protocol { series_len: 128, series_per_dataset: 10, queries_per_dataset: 2 };
        RunConfig {
            datasets: 4,
            reduction_protocol: p,
            index_protocol: p,
            ms: vec![12],
            ks: vec![4],
            apla_dataset_cap: 2,
            apla_series_cap: 2,
            min_fill: 2,
            max_fill: 5,
            threads: 1,
        }
    }

    /// k values clipped to the database size.
    pub fn effective_ks(&self) -> Vec<usize> {
        self.ks.iter().copied().filter(|&k| k <= self.index_protocol.series_per_dataset).collect()
    }
}

/// Load the configured number of datasets under `protocol` — from
/// `SAPLA_UCR_DIR` when set, otherwise from the synthetic catalogue.
pub fn load_datasets(count: usize, protocol: &Protocol) -> Vec<Dataset> {
    if let Some(dir) = sapla_data::ucr::ucr_dir() {
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().is_dir())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        let loaded: Vec<Dataset> = names
            .iter()
            .take(count)
            .filter_map(|name| {
                sapla_data::ucr::load_dataset(
                    &dir,
                    name,
                    protocol.series_per_dataset,
                    protocol.queries_per_dataset,
                )
                .ok()
            })
            .filter(|d| !d.series.is_empty() && !d.queries.is_empty())
            .collect();
        if !loaded.is_empty() {
            return loaded;
        }
        eprintln!("SAPLA_UCR_DIR set but unusable; falling back to the synthetic catalogue");
    }
    catalogue().iter().take(count).map(|spec| spec.load(protocol)).collect()
}

/// Time a closure, returning its result and the elapsed wall time
/// (pure-CPU work on an unloaded machine; for the parallel paths wall
/// time is what the thread-sweep experiments compare — see DESIGN.md).
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_config_is_consistent() {
        let c = RunConfig::tiny();
        assert!(c.apla_dataset_cap <= c.datasets);
        assert_eq!(c.effective_ks(), vec![4]);
    }

    #[test]
    fn load_datasets_honours_count_and_protocol() {
        let p = Protocol { series_len: 64, series_per_dataset: 5, queries_per_dataset: 1 };
        let ds = load_datasets(3, &p);
        assert_eq!(ds.len(), 3);
        for d in &ds {
            assert_eq!(d.series.len(), 5);
            assert_eq!(d.queries.len(), 1);
            assert_eq!(d.series_len(), 64);
        }
    }

    #[test]
    fn timer_measures_something() {
        let (v, d) = time_it(|| (0..10_000).map(|x| x as f64).sum::<f64>());
        assert!(v > 0.0);
        assert!(d.as_nanos() > 0);
    }
}
