//! # sapla-bench
//!
//! The experiment harness reproducing every table and figure of the SAPLA
//! paper's evaluation (Section 6). Each figure has a bench target under
//! `benches/` (run with `cargo bench`); the heavy lifting lives here so
//! integration tests can reuse it.
//!
//! ## Scaling knobs (environment variables)
//!
//! | Variable | Default | Meaning |
//! |----------|---------|---------|
//! | `SAPLA_DATASETS` | 24 | catalogue prefix to evaluate (≤ 117) |
//! | `SAPLA_SERIES`   | 40 | database series per dataset |
//! | `SAPLA_QUERIES`  | 3  | query series per dataset |
//! | `SAPLA_LEN`      | 1024 (reduction) / 256 (indexing) | series length |
//! | `SAPLA_THREADS`  | 0 (hardware) | worker threads for parallel ingest / multi-query k-NN |
//! | `SAPLA_FULL=1`   | —  | the paper's full protocol: 117 × 100 × 5, `n = 1024` everywhere |
//! | `SAPLA_CSV_DIR`  | —  | also write every printed table as a CSV file for plotting |
//!
//! The split default (`n = 1024` for reduction-quality experiments,
//! `n = 256` for index experiments) keeps the `O(N n²)` APLA comparator
//! affordable while preserving every comparison's *shape*; `SAPLA_FULL=1`
//! runs the verbatim protocol.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod harness;
pub mod perf;
pub mod table;

pub use harness::{load_datasets, time_it, RunConfig};
pub use table::Table;
