//! Machine-readable performance trajectory: reduce throughput and
//! ingest / k-NN timings over a fixed `(n, segments)` grid, emitted as
//! JSON so successive PRs can record comparable numbers (the committed
//! baselines live at the repo root, e.g. `BENCH_PR2.json`).
//!
//! The grid is deliberately small and deterministic (seeded catalogue
//! data, single thread by default): the numbers are for *trajectory*
//! comparisons on one machine, not cross-machine claims.

use std::time::{Duration, Instant};

use sapla_baselines::{reduce_batch, SaplaReducer};
use sapla_core::simd::{self, SimdLevel};
use sapla_data::{catalogue, Protocol};
use sapla_index::{
    ingest_parallel, knn_batch, knn_batch_with_block, prepare_queries, scheme_for, Engine,
    EngineConfig, NodeDistRule,
};
use sapla_serve::{Client, Server, ServerConfig};

use crate::time_it;

/// The measurement grid.
#[derive(Debug, Clone)]
pub struct PerfGrid {
    /// Series lengths `n` to measure.
    pub lens: Vec<usize>,
    /// Segment budgets `N` to measure (`M = 3N` coefficients).
    pub segment_counts: Vec<usize>,
    /// Database series per reduce-throughput point.
    pub series_per_point: usize,
    /// Database size for the ingest / k-NN point.
    pub index_db: usize,
    /// Queries for the k-NN point.
    pub index_queries: usize,
    /// Minimum measuring time per point (repetitions adapt to this).
    pub min_time: Duration,
    /// Worker threads (`1` = the sequential baseline the trajectory
    /// tracks; parallel speedups are the thread-sweep benches' job).
    pub threads: usize,
    /// When `false`, strip the precompiled [`sapla_index::Query`] plans
    /// after preparation, forcing every search through the stock
    /// re-partitioning `Dist_PAR` path (no SoA blocks, no early
    /// abandoning). The before/after pair is how `BENCH_PR5.json`
    /// quantifies the planned kernels.
    pub use_plan: bool,
    /// Wire-request batch sizes (queries per kNN request) for the
    /// loopback daemon point; empty skips the serve measurement.
    pub serve_batches: Vec<usize>,
    /// Query-block sizes for the query-major leaf-batch sweep in the
    /// SIMD section (queries co-scheduled per worker chunk).
    pub query_blocks: Vec<usize>,
    /// When `false`, skip the scalar-vs-dispatched SIMD comparison
    /// (e.g. the bench's `--no-simd` run, where the whole grid is
    /// already pinned to the scalar kernels).
    pub simd_compare: bool,
    /// Database sizes for the cold-start section (in-memory rebuild vs
    /// `sapla-store` snapshot load); empty skips the measurement.
    pub cold_start_dbs: Vec<usize>,
}

impl PerfGrid {
    /// The PR-trajectory grid from the roadmap: `n ∈ {256, 1024, 4096}`,
    /// `N ∈ {8, 16, 32}`.
    pub fn full() -> PerfGrid {
        PerfGrid {
            lens: vec![256, 1024, 4096],
            segment_counts: vec![8, 16, 32],
            series_per_point: 8,
            index_db: 60,
            index_queries: 6,
            min_time: Duration::from_millis(250),
            threads: 1,
            use_plan: true,
            serve_batches: vec![1, 8, 64],
            query_blocks: vec![1, 4, 16],
            simd_compare: true,
            cold_start_dbs: vec![256, 1024, 4096],
        }
    }

    /// A tiny grid for CI smoke runs (`just bench-quick`).
    pub fn quick() -> PerfGrid {
        PerfGrid {
            lens: vec![128, 256],
            segment_counts: vec![8],
            series_per_point: 3,
            index_db: 16,
            index_queries: 2,
            min_time: Duration::from_millis(20),
            threads: 1,
            use_plan: true,
            serve_batches: vec![1, 8],
            query_blocks: vec![1, 4, 16],
            simd_compare: true,
            cold_start_dbs: vec![64, 256],
        }
    }
}

/// One reduce-throughput measurement.
#[derive(Debug, Clone)]
pub struct ReducePoint {
    /// Series length.
    pub n: usize,
    /// Segment budget `N`.
    pub segments: usize,
    /// Batch repetitions measured.
    pub reps: usize,
    /// Mean time per single-series reduction, nanoseconds.
    pub ns_per_series: f64,
    /// Reductions per second (the headline throughput number).
    pub series_per_sec: f64,
}

/// One ingest + multi-query k-NN measurement.
#[derive(Debug, Clone)]
pub struct IndexPoint {
    /// Series length.
    pub n: usize,
    /// Segment budget `N`.
    pub segments: usize,
    /// Database size.
    pub db: usize,
    /// Query count.
    pub queries: usize,
    /// Wall time to reduce + build the DBCH-tree, nanoseconds.
    pub ingest_ns: f64,
    /// Mean k-NN time per query (k = 4), nanoseconds.
    pub knn_ns_per_query: f64,
}

/// Per-point k-NN kernel detail: how the time of [`IndexPoint`] breaks
/// down per candidate, and how often the planned kernel abandoned early.
/// The rates come from `sapla-obs` counter deltas around the measured
/// loop, so they are all zero unless the bench is built with
/// `--features obs`.
#[derive(Debug, Clone)]
pub struct KnnPoint {
    /// Series length.
    pub n: usize,
    /// Segment budget `N`.
    pub segments: usize,
    /// Database size.
    pub db: usize,
    /// Query count.
    pub queries: usize,
    /// Mean k-NN wall time per leaf candidate the search considered
    /// (filter + refinement amortised), nanoseconds.
    pub refine_ns_per_candidate: f64,
    /// Fraction of planned `Dist_PAR` evaluations that abandoned early
    /// against the running k-th-best bound.
    pub abandon_rate: f64,
}

/// One SIMD A/B measurement over the planned k-NN path: the same
/// DBCH-tree batch search forced through the scalar kernels and through
/// the auto-detected vector level (answers are bit-identical — only the
/// clock moves), plus a query-block sweep at the detected level showing
/// how query-major co-scheduling amortises each SoA leaf load.
#[derive(Debug, Clone)]
pub struct SimdPoint {
    /// Series length.
    pub n: usize,
    /// The auto-detected dispatch level the `simd_ns_per_query` side
    /// ran at (`"off"` means this machine has no vector path).
    pub level: String,
    /// Mean k-NN time per query with kernels forced scalar, nanoseconds.
    pub scalar_ns_per_query: f64,
    /// Mean k-NN time per query at the detected level, nanoseconds.
    pub simd_ns_per_query: f64,
    /// `(query_block, ns_per_query)` at the detected level for each
    /// sweep point in [`PerfGrid::query_blocks`].
    pub blocks: Vec<(usize, f64)>,
}

/// One loopback-daemon throughput measurement: a single client sending
/// kNN requests of `batch` queries each against an in-process
/// `sapla-serve` daemon (TCP on localhost, k = 4). Includes wire
/// encode/decode, query preparation, admission batching, and the
/// engine search — the end-to-end service cost per query.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Series length.
    pub n: usize,
    /// Queries per wire request.
    pub batch: usize,
    /// Mean end-to-end time per query, nanoseconds.
    pub ns_per_query: f64,
    /// Queries answered per second (the headline serving number).
    pub queries_per_sec: f64,
}

/// One recorder-on vs recorder-off loopback A/B point: the same
/// single-client kNN workload as [`ServePoint`] measured with the
/// flight recorder armed and disarmed. The windowed sketches and
/// counters stay on in both sides (they are part of the build); the
/// knob isolates the per-request ring-write cost. In a stock
/// (obs-less) build both sides run the compiled-out stubs and the
/// overhead is pure measurement noise around zero.
#[derive(Debug, Clone)]
pub struct ObsOverheadPoint {
    /// Series length.
    pub n: usize,
    /// Queries per wire request.
    pub batch: usize,
    /// Queries per second with the flight recorder armed.
    pub recorder_on_qps: f64,
    /// Queries per second with the flight recorder disarmed.
    pub recorder_off_qps: f64,
    /// `(off - on) / off * 100`: the throughput the recorder costs,
    /// in percent (negative values are noise).
    pub overhead_pct: f64,
}

/// One cold-start comparison: building the engine from raw series
/// in memory (reduction + O(n log n) tree insertion) versus loading the
/// same engine from a `sapla-store` snapshot file (O(file size) I/O +
/// validation + one linear SoA rebuild).
#[derive(Debug, Clone)]
pub struct ColdStartPoint {
    /// Series length.
    pub n: usize,
    /// Database size (series in the index).
    pub db: usize,
    /// Mean wall time of `Engine::build`, nanoseconds.
    pub build_ns: f64,
    /// Mean wall time of `Engine::from_snapshot_file`, nanoseconds.
    pub load_ns: f64,
    /// `build_ns / load_ns` — how much faster the snapshot cold-start is.
    pub speedup: f64,
    /// Snapshot file size in bytes.
    pub file_bytes: u64,
    /// Load throughput, snapshot MiB per second.
    pub load_mb_per_s: f64,
}

/// A full emitter run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Worker threads used.
    pub threads: usize,
    /// Whether query plans were used (see [`PerfGrid::use_plan`]).
    pub use_plan: bool,
    /// Reduce-throughput grid.
    pub reduce: Vec<ReducePoint>,
    /// Ingest / k-NN grid (one point per series length).
    pub index: Vec<IndexPoint>,
    /// k-NN kernel detail, aligned with `index`.
    pub knn: Vec<KnnPoint>,
    /// Scalar-vs-dispatched SIMD comparison and query-block sweep (one
    /// point per series length; empty when [`PerfGrid::simd_compare`]
    /// is off).
    pub simd: Vec<SimdPoint>,
    /// Loopback daemon throughput at each request batch size.
    pub serve: Vec<ServePoint>,
    /// Flight-recorder on/off loopback A/B, aligned with `serve`'s
    /// batch sizes.
    pub obs_overhead: Vec<ObsOverheadPoint>,
    /// Snapshot-load vs in-memory-rebuild cold-start comparison, one
    /// point per [`PerfGrid::cold_start_dbs`] entry.
    pub cold_start: Vec<ColdStartPoint>,
    /// Operation counts over the whole run (`sapla-obs` snapshot; empty
    /// unless the bench crate is built with `--features obs` — the stock
    /// build stays uninstrumented so the timings measure the zero-cost
    /// configuration).
    pub ops: sapla_obs::Snapshot,
}

/// Deterministic measurement series: one catalogue dataset per family
/// flavour, interleaved so every point sees varied signal shapes.
fn grid_series(n: usize, count: usize) -> Vec<sapla_core::TimeSeries> {
    let protocol =
        Protocol { series_len: n, series_per_dataset: count.div_ceil(3), queries_per_dataset: 1 };
    let specs = catalogue();
    let mut out = Vec::with_capacity(count);
    // Families 0 (smooth), 5 (burst, the paper's stress case), 2 (walk).
    for spec_idx in [0usize, 5, 2] {
        let ds = specs[spec_idx].load(&protocol);
        out.extend(ds.series);
    }
    out.truncate(count);
    out
}

/// `after - before` for one named counter across two snapshots (0 when
/// absent, i.e. whenever obs is compiled out).
fn counter_delta(before: &sapla_obs::Snapshot, after: &sapla_obs::Snapshot, name: &str) -> u64 {
    let get = |snap: &sapla_obs::Snapshot| {
        snap.counters.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v)
    };
    get(after).saturating_sub(get(before))
}

/// Repeat `f` until `min_time` has elapsed (at least twice after one
/// warm-up call), returning `(reps, mean nanoseconds per call)`.
fn measure(min_time: Duration, mut f: impl FnMut()) -> (usize, f64) {
    f(); // warm-up: fills caches and scratch high-water marks
    let mut reps = 0usize;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        if reps >= 2 && start.elapsed() >= min_time {
            break;
        }
    }
    (reps, start.elapsed().as_nanos() as f64 / reps as f64)
}

/// Run the grid and collect the report.
pub fn run(grid: &PerfGrid) -> PerfReport {
    // Scope the ops section to this run (repetition counts adapt to the
    // machine, so the totals are per-report, not cross-run comparable).
    sapla_obs::reset();
    let reducer = SaplaReducer::new();
    let mut reduce = Vec::new();
    for &n in &grid.lens {
        for &segments in &grid.segment_counts {
            if n < 2 * segments {
                continue;
            }
            let series = grid_series(n, grid.series_per_point);
            let m = 3 * segments;
            let (reps, batch_ns) = measure(grid.min_time, || {
                let out = reduce_batch(&reducer, &series, m).expect("grid series reduce");
                std::hint::black_box(&out);
            });
            let ns_per_series = batch_ns / series.len() as f64;
            reduce.push(ReducePoint {
                n,
                segments,
                reps,
                ns_per_series,
                series_per_sec: 1e9 / ns_per_series,
            });
        }
    }

    let mut index = Vec::new();
    let mut knn = Vec::new();
    let scheme = scheme_for("SAPLA").unwrap();
    let segments = grid.segment_counts[0];
    let m = 3 * segments;
    for &n in &grid.lens {
        if n < 2 * segments {
            continue;
        }
        let db = grid_series(n, grid.index_db);
        let raw_queries =
            grid_series(n.max(4), grid.index_queries + grid.index_db).split_off(grid.index_db);
        let (tree, ingest) = time_it(|| {
            ingest_parallel(
                scheme.as_ref(),
                &reducer,
                &db,
                m,
                2,
                5,
                NodeDistRule::Paper,
                grid.threads,
            )
            .expect("grid ingest")
        });
        let mut queries =
            prepare_queries(&raw_queries, &reducer, m, grid.threads).expect("grid queries");
        if !grid.use_plan {
            // No plan → the scheme falls back to the stock streaming
            // `Dist_PAR` (no SoA, no abandoning): the before side of the
            // planned-kernel comparison.
            for q in &mut queries {
                q.plan = None;
            }
        }
        let before = sapla_obs::Snapshot::capture();
        let (reps, knn_ns) = measure(grid.min_time, || {
            let out = knn_batch(&tree, &queries, 4, scheme.as_ref(), &db, grid.threads)
                .expect("grid knn");
            std::hint::black_box(&out);
        });
        let after = sapla_obs::Snapshot::capture();
        // The deltas cover the warm-up call too, hence `reps + 1`.
        let calls = (reps + 1) as f64;
        let considered = counter_delta(&before, &after, "index.knn.entries_considered") as f64;
        let evals = counter_delta(&before, &after, "dist.par.evals") as f64;
        let abandoned = counter_delta(&before, &after, "dist.par.abandoned") as f64;
        index.push(IndexPoint {
            n,
            segments,
            db: db.len(),
            queries: queries.len(),
            ingest_ns: ingest.as_nanos() as f64,
            knn_ns_per_query: knn_ns / queries.len() as f64,
        });
        knn.push(KnnPoint {
            n,
            segments,
            db: db.len(),
            queries: queries.len(),
            refine_ns_per_candidate: if considered > 0.0 {
                knn_ns / (considered / calls)
            } else {
                0.0
            },
            abandon_rate: if evals > 0.0 { abandoned / evals } else { 0.0 },
        });
    }

    let simd = measure_simd(grid);
    let serve = measure_serve(grid);
    let obs_overhead = measure_obs_overhead(grid);
    let cold_start = measure_cold_start(grid);

    PerfReport {
        threads: grid.threads,
        use_plan: grid.use_plan,
        reduce,
        index,
        knn,
        simd,
        serve,
        obs_overhead,
        cold_start,
        ops: sapla_obs::Snapshot::capture(),
    }
}

/// In-memory rebuild vs snapshot-file load over increasing database
/// sizes. The build side repeats the full `Engine::build` (reduction +
/// tree insertion); the load side repeats `Engine::from_snapshot_file`
/// against a file written once per point and deleted afterwards.
fn measure_cold_start(grid: &PerfGrid) -> Vec<ColdStartPoint> {
    let Some(&n) = grid.lens.iter().find(|&&n| n >= 2 * grid.segment_counts[0]) else {
        return Vec::new();
    };
    let m = 3 * grid.segment_counts[0];
    let cfg = EngineConfig { m, ..EngineConfig::default() };
    let mut out = Vec::with_capacity(grid.cold_start_dbs.len());
    for &db_size in &grid.cold_start_dbs {
        let db = grid_series(n, db_size);
        let engine = Engine::build(cfg, Box::new(SaplaReducer::new()), db.clone(), grid.threads)
            .expect("cold start reference build");
        let path = std::env::temp_dir()
            .join(format!("sapla-cold-start-{}-{db_size}.snap", std::process::id()));
        let file_bytes = engine.write_snapshot_file(&path, None).expect("cold start snapshot");
        let (_, build_ns) = measure(grid.min_time, || {
            let built = Engine::build(cfg, Box::new(SaplaReducer::new()), db.clone(), grid.threads)
                .expect("cold start build");
            std::hint::black_box(&built);
        });
        let (_, load_ns) = measure(grid.min_time, || {
            let loaded = Engine::from_snapshot_file(&path).expect("cold start load");
            std::hint::black_box(&loaded);
        });
        let _ = std::fs::remove_file(&path);
        out.push(ColdStartPoint {
            n,
            db: db_size,
            build_ns,
            load_ns,
            speedup: build_ns / load_ns,
            file_bytes,
            load_mb_per_s: file_bytes as f64 / (1024.0 * 1024.0) / (load_ns / 1e9),
        });
    }
    out
}

/// Scalar-vs-dispatched A/B over the planned batch k-NN path, plus the
/// query-block sweep. Forces the process-global dispatch level around
/// each side and restores whatever was active on entry (so a bench run
/// that pre-forced scalar stays scalar afterwards).
fn measure_simd(grid: &PerfGrid) -> Vec<SimdPoint> {
    if !grid.simd_compare {
        return Vec::new();
    }
    let prev = simd::active();
    let detected = simd::detect();
    let reducer = SaplaReducer::new();
    let scheme = scheme_for("SAPLA").unwrap();
    let segments = grid.segment_counts[0];
    let m = 3 * segments;
    let mut out = Vec::new();
    for &n in &grid.lens {
        if n < 2 * segments {
            continue;
        }
        let db = grid_series(n, grid.index_db);
        let raw_queries =
            grid_series(n.max(4), grid.index_queries + grid.index_db).split_off(grid.index_db);
        let tree = ingest_parallel(
            scheme.as_ref(),
            &reducer,
            &db,
            m,
            2,
            5,
            NodeDistRule::Paper,
            grid.threads,
        )
        .expect("simd grid ingest");
        let queries =
            prepare_queries(&raw_queries, &reducer, m, grid.threads).expect("simd grid queries");
        let per_query = 1.0 / queries.len() as f64;
        let timed = |block: usize| {
            let (_, ns) = measure(grid.min_time, || {
                let out = knn_batch_with_block(
                    &tree,
                    &queries,
                    4,
                    scheme.as_ref(),
                    &db,
                    grid.threads,
                    block,
                )
                .expect("simd grid knn");
                std::hint::black_box(&out);
            });
            ns * per_query
        };
        simd::force(SimdLevel::Scalar).expect("scalar is always supported");
        let scalar_ns_per_query = timed(sapla_index::DEFAULT_QUERY_BLOCK);
        simd::force(detected).expect("detected level is supported");
        let simd_ns_per_query = timed(sapla_index::DEFAULT_QUERY_BLOCK);
        let blocks: Vec<(usize, f64)> =
            grid.query_blocks.iter().map(|&qb| (qb, timed(qb))).collect();
        out.push(SimdPoint {
            n,
            level: detected.name().to_string(),
            scalar_ns_per_query,
            simd_ns_per_query,
            blocks,
        });
    }
    simd::force(prev).expect("restoring the prior simd level");
    out
}

/// Loopback daemon throughput: one in-process server over the smallest
/// grid length, one blocking client, k = 4 requests at each batch size.
fn measure_serve(grid: &PerfGrid) -> Vec<ServePoint> {
    let Some(&n) = grid.lens.iter().find(|&&n| n >= 2 * grid.segment_counts[0]) else {
        return Vec::new();
    };
    if grid.serve_batches.is_empty() {
        return Vec::new();
    }
    let m = 3 * grid.segment_counts[0];
    let db = grid_series(n, grid.index_db);
    let raw_queries = grid_series(n, grid.index_queries + grid.index_db).split_off(grid.index_db);
    let cfg = EngineConfig { m, ..EngineConfig::default() };
    let engine = Engine::build(cfg, Box::new(SaplaReducer::new()), db, grid.threads)
        .expect("serve grid engine");
    let server = Server::start(
        engine,
        "127.0.0.1:0",
        ServerConfig { threads: grid.threads, ..ServerConfig::default() },
    )
    .expect("serve grid server");
    let mut client = Client::connect(server.addr()).expect("serve grid client");

    let mut out = Vec::with_capacity(grid.serve_batches.len());
    for &batch in &grid.serve_batches {
        // Cycle the query pool up to the requested batch size.
        let queries: Vec<Vec<f64>> =
            (0..batch).map(|i| raw_queries[i % raw_queries.len()].values().to_vec()).collect();
        let (_, ns_per_request) = measure(grid.min_time, || {
            let resp = client.knn(&queries, 4).expect("serve grid request");
            std::hint::black_box(&resp);
        });
        let ns_per_query = ns_per_request / batch as f64;
        out.push(ServePoint { n, batch, ns_per_query, queries_per_sec: 1e9 / ns_per_query });
    }
    server.stop();
    out
}

/// Recorder-armed vs recorder-disarmed loopback A/B over the same
/// server and client. Loopback throughput on a shared box drifts far
/// more second-to-second than the recorder's few dozen atomic stores
/// cost, so block measurements (one timed side, then the other) report
/// noise. Instead the sides alternate *request by request* — adjacent
/// requests see the same machine state, so drift cancels in the ratio
/// and only the armed/disarmed difference accumulates. The recorder is
/// re-armed on exit (its process-global default).
fn measure_obs_overhead(grid: &PerfGrid) -> Vec<ObsOverheadPoint> {
    let Some(&n) = grid.lens.iter().find(|&&n| n >= 2 * grid.segment_counts[0]) else {
        return Vec::new();
    };
    if grid.serve_batches.is_empty() {
        return Vec::new();
    }
    let m = 3 * grid.segment_counts[0];
    let db = grid_series(n, grid.index_db);
    let raw_queries = grid_series(n, grid.index_queries + grid.index_db).split_off(grid.index_db);
    let cfg = EngineConfig { m, ..EngineConfig::default() };
    let engine = Engine::build(cfg, Box::new(SaplaReducer::new()), db, grid.threads)
        .expect("obs overhead engine");
    let server = Server::start(
        engine,
        "127.0.0.1:0",
        ServerConfig { threads: grid.threads, ..ServerConfig::default() },
    )
    .expect("obs overhead server");
    let mut client = Client::connect(server.addr()).expect("obs overhead client");

    let mut out = Vec::with_capacity(grid.serve_batches.len());
    for &batch in &grid.serve_batches {
        let queries: Vec<Vec<f64>> =
            (0..batch).map(|i| raw_queries[i % raw_queries.len()].values().to_vec()).collect();
        let mut request = |armed: bool| {
            sapla_obs::recorder::set_armed(armed);
            let start = Instant::now();
            let resp = client.knn(&queries, 4).expect("obs overhead request");
            std::hint::black_box(&resp);
            start.elapsed().as_nanos()
        };
        // Warm-up both sides, then alternate until each side has
        // accumulated the grid's measuring time.
        request(true);
        request(false);
        let mut on = (0u128, 0u64);
        let mut off = (0u128, 0u64);
        let min_ns = grid.min_time.as_nanos();
        while on.0 < min_ns || off.0 < min_ns {
            on = (on.0 + request(true), on.1 + 1);
            off = (off.0 + request(false), off.1 + 1);
        }
        let qps = |(ns, reqs): (u128, u64)| (reqs * batch as u64) as f64 / (ns as f64 / 1e9);
        let recorder_on_qps = qps(on);
        let recorder_off_qps = qps(off);
        let overhead_pct = (recorder_off_qps - recorder_on_qps) / recorder_off_qps * 100.0;
        out.push(ObsOverheadPoint { n, batch, recorder_on_qps, recorder_off_qps, overhead_pct });
    }
    sapla_obs::recorder::set_armed(true);
    server.stop();
    out
}

fn push_kv(out: &mut String, key: &str, value: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    // Finite by construction; emit with enough precision to round-trip.
    out.push_str(&format!("{value:.1}"));
}

impl PerfReport {
    /// Serialise as JSON (hand-rolled: the workspace builds offline with
    /// no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"threads\": ");
        s.push_str(&self.threads.to_string());
        s.push_str(",\n  \"use_plan\": ");
        s.push_str(if self.use_plan { "true" } else { "false" });
        s.push_str(",\n  \"reduce\": [\n");
        for (i, p) in self.reduce.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"n\": {}, \"segments\": {}, \"reps\": {}, ",
                p.n, p.segments, p.reps
            ));
            push_kv(&mut s, "ns_per_series", p.ns_per_series);
            s.push_str(", ");
            push_kv(&mut s, "series_per_sec", p.series_per_sec);
            s.push('}');
            if i + 1 < self.reduce.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n  \"index\": [\n");
        for (i, p) in self.index.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"n\": {}, \"segments\": {}, \"db\": {}, \"queries\": {}, ",
                p.n, p.segments, p.db, p.queries
            ));
            push_kv(&mut s, "ingest_ns", p.ingest_ns);
            s.push_str(", ");
            push_kv(&mut s, "knn_ns_per_query", p.knn_ns_per_query);
            s.push('}');
            if i + 1 < self.index.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n  \"knn\": [\n");
        for (i, p) in self.knn.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"n\": {}, \"segments\": {}, \"db\": {}, \"queries\": {}, ",
                p.n, p.segments, p.db, p.queries
            ));
            push_kv(&mut s, "refine_ns_per_candidate", p.refine_ns_per_candidate);
            s.push_str(", ");
            // Four decimals: rates live well below the 0.1 resolution of
            // the timing fields.
            s.push_str(&format!("\"abandon_rate\":{:.4}", p.abandon_rate));
            s.push('}');
            if i + 1 < self.knn.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n  \"simd\": [\n");
        for (i, p) in self.simd.iter().enumerate() {
            s.push_str(&format!("    {{\"n\": {}, \"level\": \"{}\", ", p.n, p.level));
            push_kv(&mut s, "scalar_ns_per_query", p.scalar_ns_per_query);
            s.push_str(", ");
            push_kv(&mut s, "simd_ns_per_query", p.simd_ns_per_query);
            s.push_str(", \"blocks\": [");
            for (j, (qb, ns)) in p.blocks.iter().enumerate() {
                s.push_str(&format!("{{\"query_block\": {qb}, "));
                push_kv(&mut s, "ns_per_query", *ns);
                s.push('}');
                if j + 1 < p.blocks.len() {
                    s.push_str(", ");
                }
            }
            s.push_str("]}");
            if i + 1 < self.simd.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n  \"serve\": [\n");
        for (i, p) in self.serve.iter().enumerate() {
            s.push_str(&format!("    {{\"n\": {}, \"batch\": {}, ", p.n, p.batch));
            push_kv(&mut s, "ns_per_query", p.ns_per_query);
            s.push_str(", ");
            push_kv(&mut s, "queries_per_sec", p.queries_per_sec);
            s.push('}');
            if i + 1 < self.serve.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n  \"obs_overhead\": [\n");
        for (i, p) in self.obs_overhead.iter().enumerate() {
            s.push_str(&format!("    {{\"n\": {}, \"batch\": {}, ", p.n, p.batch));
            push_kv(&mut s, "recorder_on_qps", p.recorder_on_qps);
            s.push_str(", ");
            push_kv(&mut s, "recorder_off_qps", p.recorder_off_qps);
            // Two decimals: the acceptance bar is a 5% budget, so tenths
            // of a percent matter.
            s.push_str(&format!(", \"overhead_pct\":{:.2}", p.overhead_pct));
            s.push('}');
            if i + 1 < self.obs_overhead.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n  \"cold_start\": [\n");
        for (i, p) in self.cold_start.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"n\": {}, \"db\": {}, \"file_bytes\": {}, ",
                p.n, p.db, p.file_bytes
            ));
            push_kv(&mut s, "build_ns", p.build_ns);
            s.push_str(", ");
            push_kv(&mut s, "load_ns", p.load_ns);
            s.push_str(", ");
            push_kv(&mut s, "load_mb_per_s", p.load_mb_per_s);
            // Two decimals: the acceptance bar is a 10x speedup, so
            // hundredths matter near the threshold.
            s.push_str(&format!(", \"speedup\":{:.2}", p.speedup));
            s.push('}');
            if i + 1 < self.cold_start.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n  \"ops\": ");
        // The snapshot serialises itself; embed it as a nested object
        // (inner indentation is cosmetic, the JSON stays valid).
        s.push_str(self.ops.to_json().trim_end());
        s.push_str("\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_runs_and_serialises() {
        let report = run(&PerfGrid::quick());
        assert!(!report.reduce.is_empty());
        assert!(!report.index.is_empty());
        for p in &report.reduce {
            assert!(p.ns_per_series > 0.0 && p.series_per_sec > 0.0);
        }
        assert_eq!(report.knn.len(), report.index.len());
        let json = report.to_json();
        assert!(json.contains("\"reduce\""));
        assert!(json.contains("\"index\""));
        assert!(json.contains("\"knn\""));
        assert!(json.contains("\"refine_ns_per_candidate\""));
        assert!(json.contains("\"abandon_rate\""));
        assert!(json.contains("\"ns_per_series\""));
        assert!(json.contains("\"serve\""));
        assert!(json.contains("\"queries_per_sec\""));
        assert!(json.contains("\"simd\""));
        assert!(json.contains("\"scalar_ns_per_query\""));
        assert!(json.contains("\"query_block\""));
        assert_eq!(report.simd.len(), report.index.len());
        for p in &report.simd {
            assert!(p.scalar_ns_per_query > 0.0 && p.simd_ns_per_query > 0.0);
            assert_eq!(p.blocks.len(), PerfGrid::quick().query_blocks.len());
            assert!(p.blocks.iter().all(|&(qb, ns)| qb > 0 && ns > 0.0));
        }
        assert_eq!(report.serve.len(), PerfGrid::quick().serve_batches.len());
        for p in &report.serve {
            assert!(p.ns_per_query > 0.0 && p.queries_per_sec > 0.0);
        }
        assert!(json.contains("\"obs_overhead\""));
        assert!(json.contains("\"recorder_on_qps\""));
        assert!(json.contains("\"overhead_pct\""));
        assert_eq!(report.obs_overhead.len(), PerfGrid::quick().serve_batches.len());
        for p in &report.obs_overhead {
            assert!(p.recorder_on_qps > 0.0 && p.recorder_off_qps > 0.0);
            assert!(p.overhead_pct.is_finite());
        }
        assert!(json.contains("\"cold_start\""));
        assert!(json.contains("\"file_bytes\""));
        assert!(json.contains("\"load_mb_per_s\""));
        assert_eq!(report.cold_start.len(), PerfGrid::quick().cold_start_dbs.len());
        for p in &report.cold_start {
            assert!(p.build_ns > 0.0 && p.load_ns > 0.0);
            assert!(p.file_bytes > 0 && p.load_mb_per_s > 0.0);
            assert!(p.speedup.is_finite() && p.speedup > 0.0);
        }
        // The recorder is re-armed after the A/B (it's process-global).
        assert_eq!(sapla_obs::recorder::armed(), sapla_obs::enabled());
        // The ops section is always present; its content tracks the
        // feature state of this build.
        assert!(json.contains("\"ops\""));
        assert!(json.contains("\"counters\""));
        assert_eq!(report.ops.is_empty(), !sapla_obs::enabled());
        // Crude structural sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn quick_grid_runs_without_plans() {
        let mut grid = PerfGrid::quick();
        grid.use_plan = false;
        // Also exercises the `--no-simd` shape: no A/B section, and no
        // `simd::force` calls racing the other test in this process.
        grid.simd_compare = false;
        let report = run(&grid);
        assert!(!report.index.is_empty());
        assert!(report.simd.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"use_plan\": false"));
        assert!(json.contains("\"simd\": [\n  ]"));
    }
}
