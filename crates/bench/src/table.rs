//! Minimal aligned-table printer for the figure reproductions.

use std::fmt::Write as _;

/// A printable table: headers plus string rows, column-aligned.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout; when `SAPLA_CSV_DIR` is set, also write the table
    /// as a CSV file (named from the title) for plotting.
    pub fn print(&self) {
        print!("{}", self.render());
        if let Some(dir) = std::env::var_os("SAPLA_CSV_DIR") {
            let dir = std::path::PathBuf::from(dir);
            if std::fs::create_dir_all(&dir).is_ok() {
                let path = dir.join(format!("{}.csv", slug(&self.title)));
                if let Err(e) = std::fs::write(&path, self.to_csv()) {
                    eprintln!("could not write {}: {e}", path.display());
                }
            }
        }
    }

    /// Render as CSV (quoting cells that contain commas or quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String]| -> String {
            cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// File-name slug of a table title.
fn slug(title: &str) -> String {
    title
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_")
}

/// Format a float with 4 significant decimals.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

/// Format a duration in adaptive units.
pub fn dur(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("Fig. X — demo, with commas", &["name", "value"]);
        t.row(vec!["a,b".into(), "1".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "name,value");
        assert!(csv.contains("\"a,b\",1"));
        assert_eq!(slug("Fig. X — demo, with commas"), "fig_x_demo_with_commas");
    }

    #[test]
    fn formatters() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.5), "1234");
        assert_eq!(f(6.54321), "6.543");
        assert_eq!(f(0.001234), "0.00123");
        assert!(dur(std::time::Duration::from_micros(500)).ends_with("us"));
        assert!(dur(std::time::Duration::from_millis(5)).ends_with("ms"));
        assert!(dur(std::time::Duration::from_secs(2)).ends_with('s'));
    }
}
