//! The DBCH-tree — Distance-Based Covering with Convex Hull
//! (Section 5.2–5.3 of the paper).
//!
//! Instead of an MBR, every node is bounded by the two member
//! representations with the **maximum `Dist_PAR`** (the "convex hull");
//! their distance is the node's *volume*. Node splitting picks those two
//! as seeds and assigns entries to the nearer seed; branch picking chooses
//! the child whose volume grows least; query filtering uses the hull
//! distances (Section 5.3). All of it runs on the representation distance
//! (`Dist_PAR` for adaptive methods), which is what fixes the APCA-MBR
//! overlap problem.

use std::cmp::Reverse;

use sapla_core::{OrdF64, Representation, Result, TimeSeries};
use sapla_distance::{euclidean_early_abandon, safe_sq_bound};

use crate::knn::{HullMemo, KnnScratch, SearchStats, SearchTally};
use crate::scheme::{Query, Scheme};
use crate::soa::LeafBlock;
use crate::stats::TreeShape;

/// How the query-to-node distance of Section 5.3 is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeDistRule {
    /// The paper's rule: zero when both hull distances are inside the
    /// volume, otherwise the smaller hull distance. Not guaranteed to
    /// lower-bound (the paper notes internal nodes lose the lemma).
    #[default]
    Paper,
    /// Triangle-inequality rule: `max(0, max(d_u, d_l) − volume)` — a true
    /// lower bound in the representation metric (ablation `ABL2`).
    Triangle,
}

#[derive(Debug, Clone, Copy)]
struct Hull {
    /// Entry id of one hull end ("upper bound" in the paper's wording).
    u: usize,
    /// Entry id of the other hull end ("lower bound").
    l: usize,
    /// `Dist_PAR(u, l)` — the node volume.
    volume: f64,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Internal(Vec<usize>),
    Leaf(Vec<usize>),
}

#[derive(Debug, Clone)]
struct Node {
    hull: Hull,
    kind: NodeKind,
}

/// A DBCH-tree over reduced representations.
///
/// ```
/// use sapla_baselines::{Reducer, SaplaReducer};
/// use sapla_core::TimeSeries;
/// use sapla_index::{scheme_for, DbchTree, Query};
///
/// let series: Vec<TimeSeries> = (0..20)
///     .map(|i| TimeSeries::new((0..32).map(|t| ((t * (i + 2)) as f64 * 0.1).sin()).collect()).unwrap())
///     .collect();
/// let reducer = SaplaReducer::new();
/// let scheme = scheme_for("SAPLA")?;
/// let reps = series.iter().map(|s| reducer.reduce(s, 12)).collect::<Result<Vec<_>, _>>()?;
/// let tree = DbchTree::build(scheme.as_ref(), reps, 2, 5)?;
/// let q = Query::new(&series[5], &reducer, 12)?;
/// let knn = tree.knn(&q, 3, scheme.as_ref(), &series)?;
/// assert!(knn.retrieved.contains(&5));
/// assert!(knn.pruning_power() <= 1.0);
/// # Ok::<(), sapla_core::Error>(())
/// ```
pub struct DbchTree {
    min_fill: usize,
    max_fill: usize,
    root: usize,
    nodes: Vec<Node>,
    reps: Vec<Representation>,
    rule: NodeDistRule,
    /// Per-node SoA leaf blocks (parallel to `nodes`), refreshed at every
    /// leaf mutation; leaf refinement takes the cache-linear planned
    /// kernel through them when the query carries a plan.
    blocks: Vec<LeafBlock>,
    /// Additive `Dist_LB` slack for the strict-invariants audit: `0.0`
    /// for built trees, the maximum per-record quantization perturbation
    /// (in the windowed metric) for trees loaded from quantized
    /// snapshot leaves. See [`crate::scheme::assert_lb_le_exact`].
    pub(crate) lb_slack: f64,
}

/// One node of a [`DbchTree`] in exported, layout-stable form — the
/// unit the snapshot writer persists and [`DbchTree::from_raw_parts`]
/// consumes. Node ids are positions in the exported arena, preserved
/// verbatim so a reloaded tree replays searches bit-for-bit (heap
/// tie-breaking orders on node id).
#[derive(Debug, Clone)]
pub(crate) struct RawDbchNode {
    /// Leaf (entry ids) or internal (child node ids)?
    pub is_leaf: bool,
    /// Children ids (internal) or entry ids (leaf).
    pub ids: Vec<usize>,
    /// Hull endpoint entry id ("upper").
    pub hull_u: usize,
    /// Hull endpoint entry id ("lower").
    pub hull_l: usize,
    /// Stored hull volume (`Dist_PAR(u, l)` under the tree's reps).
    pub volume: f64,
}

impl DbchTree {
    /// Build by sequential insertion with the paper's node-distance rule.
    ///
    /// # Errors
    ///
    /// Propagates representation-distance failures from the scheme.
    pub fn build(
        scheme: &dyn Scheme,
        reps: Vec<Representation>,
        min_fill: usize,
        max_fill: usize,
    ) -> Result<DbchTree> {
        Self::build_with_rule(scheme, reps, min_fill, max_fill, NodeDistRule::Paper)
    }

    /// Build with an explicit node-distance rule.
    ///
    /// # Errors
    ///
    /// Propagates representation-distance failures from the scheme.
    pub fn build_with_rule(
        scheme: &dyn Scheme,
        reps: Vec<Representation>,
        min_fill: usize,
        max_fill: usize,
        rule: NodeDistRule,
    ) -> Result<DbchTree> {
        assert!(min_fill >= 1 && max_fill >= 2 * min_fill, "invalid fill factors");
        let mut tree = DbchTree {
            min_fill,
            max_fill,
            root: 0,
            nodes: vec![Node {
                hull: Hull { u: 0, l: 0, volume: 0.0 },
                kind: NodeKind::Leaf(vec![]),
            }],
            reps,
            rule,
            blocks: Vec::new(),
            lb_slack: 0.0,
        };
        tree.refresh_block(0);
        for id in 0..tree.reps.len() {
            tree.insert_entry(id, scheme)?;
        }
        Ok(tree)
    }

    /// Number of indexed series.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// `true` iff no series are indexed.
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }

    /// The indexed representations, by entry id (removed entries keep
    /// their slot — ids are stable).
    pub fn reps(&self) -> &[Representation] {
        &self.reps
    }

    /// Insert one more representation, returning its entry id.
    ///
    /// # Errors
    ///
    /// Propagates representation-distance failures from the scheme.
    pub fn insert(&mut self, scheme: &dyn Scheme, rep: Representation) -> Result<usize> {
        let id = self.reps.len();
        self.reps.push(rep);
        self.insert_entry(id, scheme)?;
        Ok(id)
    }

    /// ε-range search: ids of all indexed series whose **exact** Euclidean
    /// distance to the query is at most `epsilon`, filtered through the
    /// Section-5.3 node distances and the representation distance.
    ///
    /// # Errors
    ///
    /// Propagates distance-computation failures.
    pub fn range(
        &self,
        q: &Query,
        epsilon: f64,
        scheme: &dyn Scheme,
        raws: &[TimeSeries],
    ) -> Result<SearchStats> {
        debug_assert_eq!(raws.len(), self.reps.len());
        let mut hits: Vec<(f64, usize)> = Vec::new();
        let mut tally = SearchTally::default();
        let mut dist_scratch = sapla_distance::ParScratch::default();
        let mut memo = HullMemo::default();
        let use_soa = scheme.supports_par_plan() && q.plan.is_some();
        // Quantized-lineage bounds can overshoot the true distance by up
        // to `lb_slack`; widening the pruning cutoff keeps the search
        // sound (exact hits are still gated on `exact <= epsilon`
        // below). Exact trees have slack 0.0 — bitwise no-op.
        let prune_at = epsilon + self.lb_slack;
        if !self.is_empty() {
            let mut stack = vec![self.root];
            while let Some(nid) = stack.pop() {
                if self.node_dist(q, scheme, nid, &mut dist_scratch, &mut memo)? > prune_at {
                    tally.prune_node();
                    continue;
                }
                tally.visit_node();
                match &self.nodes[nid].kind {
                    NodeKind::Internal(children) => stack.extend(children.iter().copied()),
                    NodeKind::Leaf(entries) => {
                        tally.consider(entries.len());
                        let block = self
                            .blocks
                            .get(nid)
                            .filter(|b| use_soa && b.is_ok() && b.num_entries() == entries.len());
                        for (j, &e) in entries.iter().enumerate() {
                            // Hull representatives were already fully
                            // evaluated by `node_dist`; replaying the
                            // memoised square is the identical decision
                            // and value (see `HullMemo`).
                            let kept = if let Some(kept) = memo.filter(e, prune_at) {
                                sapla_obs::counter!("index.hull_memo.hits");
                                kept
                            } else {
                                match block {
                                    Some(b) => scheme.rep_dist_pruned_soa(
                                        q,
                                        b.entry(j)?,
                                        prune_at,
                                        &mut dist_scratch,
                                    )?,
                                    None => scheme.rep_dist_pruned(
                                        q,
                                        &self.reps[e],
                                        prune_at,
                                        &mut dist_scratch,
                                    )?,
                                }
                            };
                            if kept.is_some() {
                                tally.measure();
                                // Abandoned ⇒ exact > epsilon strictly:
                                // not a hit, same as the full comparison.
                                if let Some(exact) = euclidean_early_abandon(
                                    &q.raw,
                                    &raws[e],
                                    safe_sq_bound(epsilon),
                                )? {
                                    #[cfg(feature = "strict-invariants")]
                                    crate::scheme::assert_lb_le_exact(
                                        q,
                                        &self.reps[e],
                                        exact,
                                        self.lb_slack,
                                    )?;
                                    if exact <= epsilon {
                                        hits.push((exact, e));
                                    }
                                }
                            } else {
                                tally.prune();
                            }
                        }
                    }
                }
            }
        }
        // (distance, id) — a strict total order, so multi-shard engines
        // can merge per-shard hit lists deterministically.
        hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(SearchStats {
            retrieved: hits.iter().map(|&(_, i)| i).collect(),
            distances: hits.iter().map(|&(d, _)| d).collect(),
            measured: tally.finish_range(),
            total: self.reps.len(),
        })
    }

    /// Remove entry `id` from the index (ids stay stable; underfull nodes
    /// are dissolved and their entries reinserted, hulls recomputed).
    ///
    /// Returns `Ok(false)` when `id` is not (or no longer) indexed.
    ///
    /// # Errors
    ///
    /// Propagates representation-distance failures during hull
    /// recomputation / reinsertion.
    pub fn remove(&mut self, scheme: &dyn Scheme, id: usize) -> Result<bool> {
        if id >= self.reps.len() {
            return Ok(false);
        }
        let mut orphans = Vec::new();
        let (found, root_empty) = self.remove_rec(self.root, id, &mut orphans, scheme)?;
        if !found {
            return Ok(false);
        }
        if root_empty {
            self.nodes[self.root].kind = NodeKind::Leaf(vec![]);
            self.nodes[self.root].hull = Hull { u: 0, l: 0, volume: 0.0 };
            self.refresh_block(self.root);
        }
        loop {
            let next = match &self.nodes[self.root].kind {
                NodeKind::Internal(c) if c.len() == 1 => c[0],
                _ => break,
            };
            self.root = next;
        }
        for e in orphans {
            self.insert_entry(e, scheme)?;
        }
        Ok(true)
    }

    /// Ids currently stored in leaves (sorted).
    pub fn entry_ids(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_entries(self.root, &mut out);
        out.sort_unstable();
        out
    }

    /// Root node id, for the snapshot writer.
    pub(crate) fn root_id(&self) -> usize {
        self.root
    }

    /// Export the node arena verbatim — same slot order, same ids — so a
    /// tree reconstructed from the export replays best-first searches
    /// bit-for-bit (the traversal heap tie-breaks on node id).
    pub(crate) fn raw_nodes(&self) -> Vec<RawDbchNode> {
        self.nodes
            .iter()
            .map(|n| {
                let (is_leaf, ids) = match &n.kind {
                    NodeKind::Internal(c) => (false, c.clone()),
                    NodeKind::Leaf(e) => (true, e.clone()),
                };
                RawDbchNode {
                    is_leaf,
                    ids,
                    hull_u: n.hull.u,
                    hull_l: n.hull.l,
                    volume: n.hull.volume,
                }
            })
            .collect()
    }

    /// Reassemble a tree from persisted parts without re-running the
    /// O(n log n) insertion build: the node arena is adopted verbatim
    /// after a structural walk, then the SoA leaf blocks are rebuilt in
    /// one linear pass. Every malformed input is an `Err`, never a panic.
    ///
    /// Validated here: fill-factor sanity, root in range, the graph
    /// under `root` is a tree (no node visited twice) covering the whole
    /// arena (no detached slots), internal fanout non-empty, leaf entry
    /// ids unique / in range / covering `reps` exactly, hull endpoints
    /// in range and volumes finite. Semantic hull tightness is *not*
    /// re-derived here — exact-leaf loads can run [`Self::validate`] on
    /// top, quantized loads intentionally keep the written volumes.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::CorruptIndex`] naming the violated invariant.
    pub(crate) fn from_raw_parts(
        min_fill: usize,
        max_fill: usize,
        rule: NodeDistRule,
        root: usize,
        raw: Vec<RawDbchNode>,
        reps: Vec<Representation>,
        lb_slack: f64,
    ) -> Result<DbchTree> {
        fn corrupt(reason: &'static str) -> sapla_core::Error {
            sapla_core::Error::CorruptIndex { reason }
        }
        if min_fill < 1 || max_fill < 2 * min_fill {
            return Err(corrupt("snapshot fill factors violate min/max constraints"));
        }
        if !lb_slack.is_finite() || lb_slack < 0.0 {
            return Err(corrupt("snapshot lb slack is not a finite non-negative value"));
        }
        if root >= raw.len() {
            return Err(corrupt("snapshot root id outside the node arena"));
        }
        let mut visited = vec![false; raw.len()];
        let mut seen_entry = vec![false; reps.len()];
        let mut n_entries = 0usize;
        // Iterative walk (adversarial inputs could nest deeper than the
        // call stack tolerates).
        let mut stack = vec![root];
        while let Some(nid) = stack.pop() {
            let node =
                raw.get(nid).ok_or_else(|| corrupt("snapshot child id outside the node arena"))?;
            if std::mem::replace(&mut visited[nid], true) {
                return Err(corrupt("snapshot node arena contains a cycle or shared child"));
            }
            if node.hull_u >= reps.len().max(1) || node.hull_l >= reps.len().max(1) {
                return Err(corrupt("snapshot hull endpoint outside the rep arena"));
            }
            if !node.volume.is_finite() || node.volume < 0.0 {
                return Err(corrupt("snapshot hull volume is not a finite non-negative value"));
            }
            if node.is_leaf {
                for &e in &node.ids {
                    if e >= reps.len() {
                        return Err(corrupt("snapshot leaf entry outside the rep arena"));
                    }
                    if std::mem::replace(&mut seen_entry[e], true) {
                        return Err(corrupt("snapshot entry id stored in more than one leaf"));
                    }
                    n_entries += 1;
                }
            } else {
                if node.ids.is_empty() {
                    return Err(corrupt("snapshot internal node has no children"));
                }
                stack.extend(node.ids.iter().copied());
            }
        }
        if visited.iter().any(|v| !v) {
            return Err(corrupt("snapshot node arena contains detached nodes"));
        }
        if n_entries != reps.len() {
            return Err(corrupt("snapshot leaves do not cover the rep arena exactly"));
        }
        let nodes = raw
            .into_iter()
            .map(|n| Node {
                hull: Hull { u: n.hull_u, l: n.hull_l, volume: n.volume },
                kind: if n.is_leaf { NodeKind::Leaf(n.ids) } else { NodeKind::Internal(n.ids) },
            })
            .collect::<Vec<_>>();
        let mut tree =
            DbchTree { min_fill, max_fill, root, nodes, reps, rule, blocks: Vec::new(), lb_slack };
        for nid in 0..tree.nodes.len() {
            tree.refresh_block(nid);
        }
        Ok(tree)
    }

    /// Full structural integrity check, for stress tests and post-reload
    /// verification. Walks every reachable node and verifies:
    ///
    /// * fill bounds (`min_fill ≤ |node| ≤ max_fill`, root exempt below),
    /// * every entry id is unique and within the rep arena,
    /// * each node's hull endpoints are reachable members of its subtree
    ///   and the stored volume equals `Dist_PAR(u, l)` **bitwise**,
    /// * each hull's volume equals a fresh recomputation over the node's
    ///   current membership (bitwise — hulls may not go stale),
    /// * every all-linear leaf's SoA [`LeafBlock`] mirrors its entry list
    ///   coefficient-for-coefficient; internal nodes' blocks are
    ///   invalidated.
    ///
    /// # Errors
    ///
    /// [`sapla_core::Error::CorruptIndex`] naming the first violated
    /// invariant; distance errors propagate unchanged.
    pub fn validate(&self, scheme: &dyn Scheme) -> Result<()> {
        fn corrupt(reason: &'static str) -> sapla_core::Error {
            sapla_core::Error::CorruptIndex { reason }
        }
        let mut seen = Vec::new();
        self.validate_rec(self.root, scheme, &mut seen)?;
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(corrupt("entry id stored in more than one leaf"));
        }
        Ok(())
    }

    fn validate_rec(&self, node: usize, scheme: &dyn Scheme, seen: &mut Vec<usize>) -> Result<()> {
        fn corrupt(reason: &'static str) -> sapla_core::Error {
            sapla_core::Error::CorruptIndex { reason }
        }
        let Some(n) = self.nodes.get(node) else {
            return Err(corrupt("child id outside the node arena"));
        };
        let h = n.hull;
        match &n.kind {
            NodeKind::Leaf(entries) => {
                if entries.is_empty() {
                    if node != self.root {
                        return Err(corrupt("empty non-root leaf"));
                    }
                    return Ok(());
                }
                if entries.len() > self.max_fill {
                    return Err(corrupt("overfull leaf"));
                }
                if node != self.root && entries.len() < self.min_fill {
                    return Err(corrupt("underfull non-root leaf"));
                }
                if entries.iter().any(|&e| e >= self.reps.len()) {
                    return Err(corrupt("leaf entry outside the rep arena"));
                }
                if !entries.contains(&h.u) || !entries.contains(&h.l) {
                    return Err(corrupt("leaf hull endpoint is not a member"));
                }
                if self.pair(scheme, h.u, h.l)?.to_bits() != h.volume.to_bits() {
                    return Err(corrupt("leaf hull volume is not Dist(u, l)"));
                }
                if self.leaf_hull(scheme, entries)?.volume.to_bits() != h.volume.to_bits() {
                    return Err(corrupt("stale leaf hull volume"));
                }
                self.validate_block(node, entries)?;
                seen.extend_from_slice(entries);
                Ok(())
            }
            NodeKind::Internal(children) => {
                if children.is_empty() {
                    return Err(corrupt("internal node without children"));
                }
                if children.len() > self.max_fill {
                    return Err(corrupt("overfull internal node"));
                }
                if node != self.root && children.len() < self.min_fill {
                    return Err(corrupt("underfull non-root internal node"));
                }
                if node == self.root && children.len() < 2 {
                    return Err(corrupt("internal root not collapsed to its only child"));
                }
                if self.pair(scheme, h.u, h.l)?.to_bits() != h.volume.to_bits() {
                    return Err(corrupt("internal hull volume is not Dist(u, l)"));
                }
                if self.internal_hull(scheme, children)?.volume.to_bits() != h.volume.to_bits() {
                    return Err(corrupt("stale internal hull volume"));
                }
                if self.blocks.get(node).is_some_and(LeafBlock::is_ok) {
                    return Err(corrupt("internal node still carries a live leaf block"));
                }
                let before = seen.len();
                for &c in children {
                    self.validate_rec(c, scheme, seen)?;
                }
                if !seen[before..].contains(&h.u) || !seen[before..].contains(&h.l) {
                    return Err(corrupt("internal hull endpoint is not in the subtree"));
                }
                Ok(())
            }
        }
    }

    /// Check one leaf's SoA block against its entry list (see
    /// [`DbchTree::validate`]).
    fn validate_block(&self, node: usize, entries: &[usize]) -> Result<()> {
        fn corrupt(reason: &'static str) -> sapla_core::Error {
            sapla_core::Error::CorruptIndex { reason }
        }
        let all_linear = entries.iter().all(|&e| self.reps[e].as_linear().is_some());
        let Some(block) = self.blocks.get(node) else {
            return Err(corrupt("leaf without a block slot"));
        };
        if !all_linear {
            if block.is_ok() {
                return Err(corrupt("leaf block live over non-linear entries"));
            }
            return Ok(());
        }
        if !block.is_ok() {
            return Err(corrupt("leaf block invalidated for an all-linear leaf"));
        }
        if block.num_entries() != entries.len() {
            return Err(corrupt("leaf block entry count out of sync"));
        }
        for (j, &e) in entries.iter().enumerate() {
            let Some(lin) = self.reps[e].as_linear() else {
                return Err(corrupt("leaf block entry lost its linear representation"));
            };
            let view = block.entry(j)?;
            if view.num_segments() != lin.num_segments() {
                return Err(corrupt("leaf block segment count out of sync"));
            }
            for (i, seg) in lin.segments().iter().enumerate() {
                let (a, b, r) = view.seg(i);
                if a.to_bits() != seg.a.to_bits() || b.to_bits() != seg.b.to_bits() || r != seg.r {
                    return Err(corrupt("leaf block coefficients out of sync"));
                }
            }
        }
        Ok(())
    }

    fn collect_entries(&self, node: usize, out: &mut Vec<usize>) {
        match &self.nodes[node].kind {
            NodeKind::Internal(children) => {
                for &c in children {
                    self.collect_entries(c, out);
                }
            }
            NodeKind::Leaf(entries) => out.extend_from_slice(entries),
        }
    }

    /// Returns `(found, this node should be detached)`.
    fn remove_rec(
        &mut self,
        node: usize,
        id: usize,
        orphans: &mut Vec<usize>,
        scheme: &dyn Scheme,
    ) -> Result<(bool, bool)> {
        match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => {
                let Some(pos) = entries.iter().position(|&e| e == id) else {
                    return Ok((false, false));
                };
                let is_root = node == self.root;
                let remaining = {
                    let NodeKind::Leaf(entries) = &mut self.nodes[node].kind else {
                        unreachable!()
                    };
                    entries.remove(pos);
                    if entries.is_empty() {
                        self.blocks[node].invalidate();
                        return Ok((true, true));
                    }
                    if entries.len() < self.min_fill && !is_root {
                        orphans.append(entries);
                        self.blocks[node].invalidate();
                        return Ok((true, true));
                    }
                    entries.clone()
                };
                self.nodes[node].hull = self.leaf_hull(scheme, &remaining)?;
                self.refresh_block(node);
                Ok((true, false))
            }
            NodeKind::Internal(children) => {
                let children = children.clone();
                for (idx, &c) in children.iter().enumerate() {
                    let (found, detach) = self.remove_rec(c, id, orphans, scheme)?;
                    if !found {
                        continue;
                    }
                    let is_root = node == self.root;
                    let mut dissolved = false;
                    {
                        let NodeKind::Internal(kids) = &mut self.nodes[node].kind else {
                            unreachable!()
                        };
                        if detach {
                            kids.remove(idx);
                        }
                        if kids.is_empty() {
                            return Ok((true, true));
                        }
                        if kids.len() < self.min_fill && !is_root {
                            dissolved = true;
                        }
                    }
                    if dissolved {
                        let kids = match &self.nodes[node].kind {
                            NodeKind::Internal(k) => k.clone(),
                            NodeKind::Leaf(_) => unreachable!(),
                        };
                        for k in kids {
                            self.collect_entries(k, orphans);
                        }
                        return Ok((true, true));
                    }
                    let kids = match &self.nodes[node].kind {
                        NodeKind::Internal(k) => k.clone(),
                        NodeKind::Leaf(_) => unreachable!(),
                    };
                    self.nodes[node].hull = self.internal_hull(scheme, &kids)?;
                    return Ok((true, false));
                }
                Ok((false, false))
            }
        }
    }

    fn pair(&self, scheme: &dyn Scheme, a: usize, b: usize) -> Result<f64> {
        scheme.pair_dist(&self.reps[a], &self.reps[b])
    }

    /// Mirror a node into its SoA leaf block (see [`LeafBlock`]): leaves
    /// get their entry coefficients flattened, internal slots are marked
    /// unusable. Called at every site that mutates a leaf's entry list,
    /// keeping `blocks` parallel to `nodes`.
    fn refresh_block(&mut self, node: usize) {
        if self.blocks.len() < self.nodes.len() {
            self.blocks.resize_with(self.nodes.len(), LeafBlock::default);
        }
        match &self.nodes[node].kind {
            NodeKind::Leaf(entries) => self.blocks[node].rebuild(entries, &self.reps),
            NodeKind::Internal(_) => self.blocks[node].invalidate(),
        }
    }

    fn insert_entry(&mut self, id: usize, scheme: &dyn Scheme) -> Result<()> {
        if let Some(sibling) = self.insert_rec(self.root, id, scheme)? {
            let old_root = self.root;
            let hull = self.internal_hull(scheme, &[old_root, sibling])?;
            self.nodes.push(Node { hull, kind: NodeKind::Internal(vec![old_root, sibling]) });
            self.root = self.nodes.len() - 1;
            self.refresh_block(self.root);
        }
        Ok(())
    }

    fn insert_rec(&mut self, node: usize, id: usize, scheme: &dyn Scheme) -> Result<Option<usize>> {
        match &self.nodes[node].kind {
            NodeKind::Leaf(_) => {
                if let NodeKind::Leaf(entries) = &mut self.nodes[node].kind {
                    entries.push(id);
                }
                let entries = match &self.nodes[node].kind {
                    NodeKind::Leaf(e) => e.clone(),
                    NodeKind::Internal(_) => unreachable!(),
                };
                if entries.len() > self.max_fill {
                    Ok(Some(self.split_leaf(node, scheme)?))
                } else {
                    self.nodes[node].hull = self.leaf_hull(scheme, &entries)?;
                    self.refresh_block(node);
                    Ok(None)
                }
            }
            NodeKind::Internal(children) => {
                // Branch picking: minimum volume increase (Section 5.3).
                let children = children.clone();
                let mut best = (f64::INFINITY, f64::INFINITY, children[0]);
                for &c in &children {
                    let h = self.nodes[c].hull;
                    let du = self.pair(scheme, id, h.u)?;
                    let dl = self.pair(scheme, id, h.l)?;
                    let new_vol = h.volume.max(du).max(dl);
                    let inc = new_vol - h.volume;
                    if (inc, h.volume) < (best.0, best.1) {
                        best = (inc, h.volume, c);
                    }
                }
                let child = best.2;
                let sibling = self.insert_rec(child, id, scheme)?;
                if let Some(sib) = sibling {
                    if let NodeKind::Internal(children) = &mut self.nodes[node].kind {
                        children.push(sib);
                    }
                }
                let children = match &self.nodes[node].kind {
                    NodeKind::Internal(c) => c.clone(),
                    NodeKind::Leaf(_) => unreachable!(),
                };
                if children.len() > self.max_fill {
                    Ok(Some(self.split_internal(node, scheme)?))
                } else {
                    self.nodes[node].hull = self.internal_hull(scheme, &children)?;
                    Ok(None)
                }
            }
        }
    }

    /// Hull of a leaf: the entry pair with maximum distance.
    fn leaf_hull(&self, scheme: &dyn Scheme, entries: &[usize]) -> Result<Hull> {
        debug_assert!(!entries.is_empty());
        if entries.len() == 1 {
            return Ok(Hull { u: entries[0], l: entries[0], volume: 0.0 });
        }
        let mut best = Hull { u: entries[0], l: entries[1], volume: f64::NEG_INFINITY };
        for (i, &a) in entries.iter().enumerate() {
            for &b in &entries[i + 1..] {
                let d = self.pair(scheme, a, b)?;
                if d > best.volume {
                    best = Hull { u: a, l: b, volume: d };
                }
            }
        }
        Ok(best)
    }

    /// Hull of an internal node: the paper computes only pairs among the
    /// children's hull endpoints.
    fn internal_hull(&self, scheme: &dyn Scheme, children: &[usize]) -> Result<Hull> {
        let mut candidates: Vec<usize> = Vec::with_capacity(2 * children.len());
        for &c in children {
            let h = self.nodes[c].hull;
            candidates.push(h.u);
            if h.l != h.u {
                candidates.push(h.l);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        self.leaf_hull(scheme, &candidates)
    }

    fn split_leaf(&mut self, node: usize, scheme: &dyn Scheme) -> Result<usize> {
        let entries = match &mut self.nodes[node].kind {
            NodeKind::Leaf(e) => std::mem::take(e),
            NodeKind::Internal(_) => unreachable!(),
        };
        // Seeds: the maximum-distance pair (Section 5.3).
        let hull = self.leaf_hull(scheme, &entries)?;
        let (seed_a, seed_b) = (hull.u, hull.l);
        let mut ga = vec![seed_a];
        let mut gb = vec![seed_b];
        // Assign the rest to the nearer seed, honouring min_fill.
        let rest: Vec<usize> =
            entries.iter().copied().filter(|&e| e != seed_a && e != seed_b).collect();
        let total = rest.len();
        for (done, e) in rest.into_iter().enumerate() {
            let remaining = total - done;
            if ga.len() + remaining <= self.min_fill {
                ga.push(e);
                continue;
            }
            if gb.len() + remaining <= self.min_fill {
                gb.push(e);
                continue;
            }
            let da = self.pair(scheme, e, seed_a)?;
            let db = self.pair(scheme, e, seed_b)?;
            if da <= db {
                ga.push(e);
            } else {
                gb.push(e);
            }
        }
        let ha = self.leaf_hull(scheme, &ga)?;
        let hb = self.leaf_hull(scheme, &gb)?;
        self.nodes[node] = Node { hull: ha, kind: NodeKind::Leaf(ga) };
        self.nodes.push(Node { hull: hb, kind: NodeKind::Leaf(gb) });
        let sibling = self.nodes.len() - 1;
        self.refresh_block(node);
        self.refresh_block(sibling);
        Ok(sibling)
    }

    fn split_internal(&mut self, node: usize, scheme: &dyn Scheme) -> Result<usize> {
        let children = match &mut self.nodes[node].kind {
            NodeKind::Internal(c) => std::mem::take(c),
            NodeKind::Leaf(_) => unreachable!(),
        };
        // Seed children by the farthest representative (hull.u) pair.
        let mut seeds = (children[0], children[1]);
        let mut worst = f64::NEG_INFINITY;
        for (i, &a) in children.iter().enumerate() {
            for &b in &children[i + 1..] {
                let d = self.pair(scheme, self.nodes[a].hull.u, self.nodes[b].hull.u)?;
                if d > worst {
                    worst = d;
                    seeds = (a, b);
                }
            }
        }
        let mut ga = vec![seeds.0];
        let mut gb = vec![seeds.1];
        let rest: Vec<usize> =
            children.iter().copied().filter(|&c| c != seeds.0 && c != seeds.1).collect();
        let total = rest.len();
        for (done, c) in rest.into_iter().enumerate() {
            let remaining = total - done;
            if ga.len() + remaining <= self.min_fill {
                ga.push(c);
                continue;
            }
            if gb.len() + remaining <= self.min_fill {
                gb.push(c);
                continue;
            }
            let da = self.pair(scheme, self.nodes[c].hull.u, self.nodes[seeds.0].hull.u)?;
            let db = self.pair(scheme, self.nodes[c].hull.u, self.nodes[seeds.1].hull.u)?;
            if da <= db {
                ga.push(c);
            } else {
                gb.push(c);
            }
        }
        let ha = self.internal_hull(scheme, &ga)?;
        let hb = self.internal_hull(scheme, &gb)?;
        self.nodes[node] = Node { hull: ha, kind: NodeKind::Internal(ga) };
        self.nodes.push(Node { hull: hb, kind: NodeKind::Internal(gb) });
        let sibling = self.nodes.len() - 1;
        self.refresh_block(node);
        self.refresh_block(sibling);
        Ok(sibling)
    }

    /// Distance from the query to one hull representative, memoised per
    /// query: hull representatives recur across nodes (an internal
    /// hull's are drawn from its children's) and reappear as ordinary
    /// leaf entries, so the squared distance is cached on first
    /// evaluation and every re-use is `sq.sqrt()` — bitwise the fresh
    /// evaluation (see [`HullMemo`]).
    fn hull_rep_dist(
        &self,
        q: &Query,
        scheme: &dyn Scheme,
        entry: usize,
        dist: &mut sapla_distance::ParScratch,
        memo: &mut HullMemo,
    ) -> Result<f64> {
        if let Some(sq) = memo.get(entry) {
            sapla_obs::counter!("index.hull_memo.hits");
            return Ok(sq.sqrt());
        }
        let (d, sq) = scheme.rep_dist_sq_with(q, &self.reps[entry], dist)?;
        if let Some(sq) = sq {
            memo.insert(entry, sq);
        }
        Ok(d)
    }

    /// Query-to-node distance (Section 5.3).
    fn node_dist(
        &self,
        q: &Query,
        scheme: &dyn Scheme,
        node: usize,
        dist: &mut sapla_distance::ParScratch,
        memo: &mut HullMemo,
    ) -> Result<f64> {
        let h = self.nodes[node].hull;
        let du = self.hull_rep_dist(q, scheme, h.u, dist, memo)?;
        let dl = self.hull_rep_dist(q, scheme, h.l, dist, memo)?;
        Ok(match self.rule {
            NodeDistRule::Paper => {
                if du < h.volume && dl < h.volume {
                    0.0
                } else {
                    du.min(dl)
                }
            }
            NodeDistRule::Triangle => (du.max(dl) - h.volume).max(0.0),
        })
    }

    /// Best-first k-NN with exact refinement over `raws`.
    ///
    /// Nodes are visited in hull-distance order (Section 5.3); surviving
    /// leaf entries are filtered with the representation distance and
    /// fetched/measured exactly (one "disk access" each — the paper's
    /// pruning-power unit). Because hull distances separate far clusters
    /// even when their coefficient MBRs would overlap, whole leaves are
    /// skipped — the effect Fig. 13 quantifies.
    ///
    /// # Errors
    ///
    /// Propagates distance-computation failures.
    pub fn knn(
        &self,
        q: &Query,
        k: usize,
        scheme: &dyn Scheme,
        raws: &[TimeSeries],
    ) -> Result<SearchStats> {
        self.knn_with_scratch(q, k, scheme, raws, &mut KnnScratch::default())
    }

    /// [`DbchTree::knn`] reusing caller-owned buffers — same algorithm,
    /// same results, no steady-state allocation. The parallel multi-query
    /// engine ([`crate::parallel::knn_batch`]) holds one scratch per
    /// worker; single-threaded callers looping over many queries benefit
    /// the same way.
    ///
    /// # Errors
    ///
    /// Propagates distance-computation failures.
    pub fn knn_with_scratch(
        &self,
        q: &Query,
        k: usize,
        scheme: &dyn Scheme,
        raws: &[TimeSeries],
        scratch: &mut KnnScratch,
    ) -> Result<SearchStats> {
        debug_assert_eq!(raws.len(), self.reps.len());
        scratch.reset(k);
        let KnnScratch { results, nodes: heap, dist, hull } = scratch;
        let mut tally = SearchTally::default();
        if !self.is_empty() {
            let d = self.node_dist(q, scheme, self.root, dist, hull)?;
            heap.push(Reverse((OrdF64::new(d), self.root, 0)));
        }
        let use_soa = scheme.supports_par_plan() && q.plan.is_some();
        // Quantized-lineage node bounds can overshoot by up to
        // `lb_slack`; widen every node-pruning comparison by it (slack
        // is 0.0 on exact trees, so `t + 0.0` is bitwise `t`).
        let slack = self.lb_slack;
        while let Some(Reverse((d, nid, depth))) = heap.pop() {
            if d.get() > results.threshold() + slack {
                // Best-first order: the popped node *and* everything
                // still queued behind it are beyond the threshold.
                tally.prune_nodes(1 + heap.len());
                break;
            }
            tally.visit_node();
            match &self.nodes[nid].kind {
                NodeKind::Internal(children) => {
                    sapla_obs::lane_counter!("index.knn.fanout", depth, children.len() as u64);
                    for &c in children {
                        let node_d = self.node_dist(q, scheme, c, dist, hull)?;
                        if node_d <= results.threshold() + slack {
                            heap.push(Reverse((OrdF64::new(node_d), c, depth + 1)));
                        } else {
                            tally.prune_node();
                        }
                    }
                }
                NodeKind::Leaf(entries) => {
                    let block = self
                        .blocks
                        .get(nid)
                        .filter(|b| use_soa && b.is_ok() && b.num_entries() == entries.len());
                    crate::batched::eval_leaf_entries(
                        q,
                        scheme,
                        raws,
                        &self.reps,
                        entries,
                        block,
                        results,
                        dist,
                        hull,
                        &mut tally,
                        self.lb_slack,
                    )?;
                }
            }
        }
        let (mut retrieved, mut distances) = (Vec::with_capacity(k), Vec::with_capacity(k));
        results.drain_into(&mut retrieved, &mut distances);
        Ok(SearchStats {
            retrieved,
            distances,
            measured: tally.finish_knn(),
            total: self.reps.len(),
        })
    }

    /// Structural statistics (Figs. 15–16).
    pub fn shape(&self) -> TreeShape {
        let mut shape = TreeShape::default();
        self.walk(self.root, 1, &mut shape);
        shape
    }
}

impl crate::batched::BatchTree for DbchTree {
    fn root(&self) -> usize {
        self.root
    }
    fn is_empty(&self) -> bool {
        DbchTree::is_empty(self)
    }
    fn reps(&self) -> &[Representation] {
        &self.reps
    }
    fn node_view(&self, nid: usize) -> crate::batched::NodeView<'_> {
        match &self.nodes[nid].kind {
            NodeKind::Internal(c) => crate::batched::NodeView::Internal(c),
            NodeKind::Leaf(e) => crate::batched::NodeView::Leaf(e),
        }
    }
    fn leaf_block(&self, nid: usize, n_entries: usize) -> Option<&LeafBlock> {
        self.blocks.get(nid).filter(|b| b.is_ok() && b.num_entries() == n_entries)
    }
    fn node_bound(
        &self,
        q: &Query,
        scheme: &dyn Scheme,
        nid: usize,
        dist: &mut sapla_distance::ParScratch,
        memo: &mut HullMemo,
    ) -> Result<f64> {
        self.node_dist(q, scheme, nid, dist, memo)
    }
    fn count_fanout(&self, depth: usize, children: usize) {
        let (_depth, _children) = (depth, children);
        sapla_obs::lane_counter!("index.knn.fanout", _depth, _children as u64);
    }
    fn lb_slack(&self) -> f64 {
        self.lb_slack
    }
}

impl DbchTree {
    fn walk(&self, node: usize, depth: usize, shape: &mut TreeShape) {
        shape.height = shape.height.max(depth);
        match &self.nodes[node].kind {
            NodeKind::Internal(children) => {
                shape.internal_nodes += 1;
                for &c in children {
                    self.walk(c, depth + 1, shape);
                }
            }
            NodeKind::Leaf(entries) => {
                shape.leaf_nodes += 1;
                shape.entries += entries.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::scheme_for;
    use sapla_baselines::{Reducer, SaplaReducer};

    fn dataset(n_series: usize, len: usize) -> Vec<TimeSeries> {
        (0..n_series)
            .map(|i| {
                TimeSeries::new(
                    (0..len)
                        .map(|t| {
                            ((t + i * 11) as f64 * 0.17).sin() * (1.0 + (i % 5) as f64 * 0.2)
                                + (i as f64 * 0.61).sin() * 0.5
                        })
                        .collect(),
                )
                .unwrap()
                .znormalized()
            })
            .collect()
    }

    fn build_sapla(raws: &[TimeSeries], m: usize) -> (DbchTree, Box<dyn Scheme>) {
        let scheme = scheme_for("SAPLA").unwrap();
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, m).unwrap()).collect();
        let tree = DbchTree::build(scheme.as_ref(), reps, 2, 5).unwrap();
        (tree, scheme)
    }

    #[test]
    fn shape_covers_all_entries() {
        let raws = dataset(60, 64);
        let (tree, _) = build_sapla(&raws, 12);
        let shape = tree.shape();
        assert_eq!(shape.entries, 60);
        assert!(shape.height >= 2);
    }

    #[test]
    fn validate_accepts_sound_trees_and_detects_planted_corruption() {
        use sapla_core::Error;

        let raws = dataset(40, 64);
        let (tree, scheme) = build_sapla(&raws, 12);
        tree.validate(scheme.as_ref()).unwrap();

        // Empty and singleton trees are sound too.
        let empty = DbchTree::build(scheme.as_ref(), vec![], 2, 5).unwrap();
        empty.validate(scheme.as_ref()).unwrap();
        let (single, scheme1) = build_sapla(&dataset(1, 64), 12);
        single.validate(scheme1.as_ref()).unwrap();

        // Plant a stale hull volume: validate must name it.
        let (mut bad, scheme) = build_sapla(&raws, 12);
        let leaf =
            (0..bad.nodes.len()).find(|&n| matches!(bad.nodes[n].kind, NodeKind::Leaf(_))).unwrap();
        bad.nodes[leaf].hull.volume += 1.0;
        match bad.validate(scheme.as_ref()).unwrap_err() {
            Error::CorruptIndex { reason } => assert!(reason.contains("hull"), "{reason}"),
            other => panic!("unexpected error: {other:?}"),
        }

        // Plant a desynchronised leaf block (stale coefficients).
        let (mut bad, scheme) = build_sapla(&raws, 12);
        let leaf = (0..bad.nodes.len())
            .find(|&n| matches!(&bad.nodes[n].kind, NodeKind::Leaf(e) if !e.is_empty()))
            .unwrap();
        bad.blocks[leaf].rebuild(&[0], &bad.reps);
        match bad.validate(scheme.as_ref()).unwrap_err() {
            Error::CorruptIndex { reason } => assert!(reason.contains("block"), "{reason}"),
            other => panic!("unexpected error: {other:?}"),
        }

        // Plant a duplicated entry id across two leaves.
        let (mut bad, scheme) = build_sapla(&raws, 12);
        let leaves: Vec<usize> = (0..bad.nodes.len())
            .filter(|&n| matches!(&bad.nodes[n].kind, NodeKind::Leaf(e) if !e.is_empty()))
            .collect();
        assert!(leaves.len() >= 2);
        let stolen = match &bad.nodes[leaves[0]].kind {
            NodeKind::Leaf(e) => e[0],
            NodeKind::Internal(_) => unreachable!(),
        };
        if let NodeKind::Leaf(e) = &mut bad.nodes[leaves[1]].kind {
            e.push(stolen);
        }
        let entries = match &bad.nodes[leaves[1]].kind {
            NodeKind::Leaf(e) => e.clone(),
            NodeKind::Internal(_) => unreachable!(),
        };
        bad.nodes[leaves[1]].hull = bad.leaf_hull(scheme.as_ref(), &entries).unwrap();
        bad.refresh_block(leaves[1]);
        // Which invariant fires first depends on tree layout (the theft
        // can surface as a duplicate id, an overfull leaf, or a stale
        // ancestor hull) — any CorruptIndex is a successful detection.
        match bad.validate(scheme.as_ref()).unwrap_err() {
            Error::CorruptIndex { .. } => {}
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn knn_finds_self_and_close_neighbours() {
        let raws = dataset(50, 64);
        let (tree, scheme) = build_sapla(&raws, 12);
        let reducer = SaplaReducer::new();
        let q = Query::new(&raws[7], &reducer, 12).unwrap();
        let stats = tree.knn(&q, 5, scheme.as_ref(), &raws).unwrap();
        assert_eq!(stats.retrieved.len(), 5);
        assert!(stats.retrieved.contains(&7));
        assert!(stats.distances[0] < 1e-9);
        assert!(stats.measured <= raws.len());
    }

    #[test]
    fn high_accuracy_against_exact_knn() {
        let raws = dataset(60, 64);
        let (tree, scheme) = build_sapla(&raws, 12);
        let reducer = SaplaReducer::new();
        let query = TimeSeries::new(
            (0..64).map(|t| (t as f64 * 0.18).sin() * 1.3 + 0.2).collect::<Vec<_>>(),
        )
        .unwrap()
        .znormalized();
        let q = Query::new(&query, &reducer, 12).unwrap();
        let stats = tree.knn(&q, 8, scheme.as_ref(), &raws).unwrap();
        let mut truth: Vec<(f64, usize)> =
            raws.iter().enumerate().map(|(i, s)| (query.euclidean(s).unwrap(), i)).collect();
        truth.sort_by(|a, b| a.0.total_cmp(&b.0));
        let expect: Vec<usize> = truth[..8].iter().map(|&(_, i)| i).collect();
        let acc = stats.accuracy(&expect);
        assert!(acc >= 0.5, "accuracy {acc} too low");
    }

    #[test]
    fn triangle_rule_never_misses_more_than_paper_rule_on_average() {
        let raws = dataset(40, 64);
        let reducer = SaplaReducer::new();
        let scheme = scheme_for("SAPLA").unwrap();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let paper =
            DbchTree::build_with_rule(scheme.as_ref(), reps.clone(), 2, 5, NodeDistRule::Paper)
                .unwrap();
        let tri =
            DbchTree::build_with_rule(scheme.as_ref(), reps, 2, 5, NodeDistRule::Triangle).unwrap();
        let (mut acc_p, mut acc_t) = (0.0, 0.0);
        for qi in 0..5 {
            let q = Query::new(&raws[qi], &reducer, 12).unwrap();
            let truth: Vec<usize> = {
                let mut d: Vec<(f64, usize)> = raws
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (raws[qi].euclidean(s).unwrap(), i))
                    .collect();
                d.sort_by(|a, b| a.0.total_cmp(&b.0));
                d[..4].iter().map(|&(_, i)| i).collect()
            };
            acc_p += paper.knn(&q, 4, scheme.as_ref(), &raws).unwrap().accuracy(&truth);
            acc_t += tri.knn(&q, 4, scheme.as_ref(), &raws).unwrap().accuracy(&truth);
        }
        // The triangle rule is conservative, so it cannot be (much) less
        // accurate; the paper rule prunes harder.
        assert!(acc_t + 1e-9 >= acc_p - 1.0, "tri {acc_t} vs paper {acc_p}");
        assert!(acc_t > 0.0 && acc_p > 0.0);
    }

    #[test]
    fn incremental_insert_equals_build_results() {
        let raws = dataset(25, 64);
        let scheme = scheme_for("SAPLA").unwrap();
        let reducer = SaplaReducer::new();
        let reps: Vec<Representation> =
            raws.iter().map(|s| reducer.reduce(s, 12).unwrap()).collect();
        let bulk = DbchTree::build(scheme.as_ref(), reps.clone(), 2, 5).unwrap();
        let mut incr = DbchTree::build(scheme.as_ref(), vec![], 2, 5).unwrap();
        for rep in reps {
            incr.insert(scheme.as_ref(), rep).unwrap();
        }
        assert_eq!(incr.len(), bulk.len());
        let q = Query::new(&raws[1], &reducer, 12).unwrap();
        let a = bulk.knn(&q, 4, scheme.as_ref(), &raws).unwrap();
        let b = incr.knn(&q, 4, scheme.as_ref(), &raws).unwrap();
        assert_eq!(a.retrieved, b.retrieved);
    }

    #[test]
    fn range_search_returns_only_in_range_hits() {
        let raws = dataset(40, 64);
        let (tree, scheme) = build_sapla(&raws, 12);
        let reducer = SaplaReducer::new();
        let q = Query::new(&raws[3], &reducer, 12).unwrap();
        let eps = 4.0;
        let got = tree.range(&q, eps, scheme.as_ref(), &raws).unwrap();
        // Everything retrieved is truly within range, sorted, self found.
        assert!(got.retrieved.contains(&3));
        for (&id, &d) in got.retrieved.iter().zip(&got.distances) {
            assert!(d <= eps);
            assert!((raws[3].euclidean(&raws[id]).unwrap() - d).abs() < 1e-9);
        }
        assert!(got.distances.windows(2).all(|w| w[0] <= w[1]));
        // No false positives beyond the exact set (subset relation; the
        // conditional Dist_PAR bound may drop some true hits).
        let exact = crate::linear_scan::linear_scan_range(&raws[3], &raws, eps).unwrap();
        for id in &got.retrieved {
            assert!(exact.retrieved.contains(id));
        }
    }

    #[test]
    fn remove_keeps_search_consistent() {
        let raws = dataset(30, 64);
        let (mut tree, scheme) = build_sapla(&raws, 12);
        let reducer = SaplaReducer::new();
        for id in [0usize, 7, 15, 29, 16, 17] {
            assert!(tree.remove(scheme.as_ref(), id).unwrap(), "remove {id}");
            assert!(!tree.remove(scheme.as_ref(), id).unwrap(), "double remove {id}");
        }
        let ids = tree.entry_ids();
        assert_eq!(ids.len(), 24);
        let q = Query::new(&raws[3], &reducer, 12).unwrap();
        let stats = tree.knn(&q, 5, scheme.as_ref(), &raws).unwrap();
        assert_eq!(stats.retrieved.len(), 5);
        for id in &stats.retrieved {
            assert!(ids.contains(id), "returned removed id {id}");
        }
    }

    #[test]
    fn drain_and_refill() {
        let raws = dataset(10, 32);
        let (mut tree, scheme) = build_sapla(&raws, 6);
        for id in 0..10 {
            assert!(tree.remove(scheme.as_ref(), id).unwrap());
        }
        assert!(tree.entry_ids().is_empty());
        let reducer = SaplaReducer::new();
        let rep = reducer.reduce(&raws[2], 6).unwrap();
        let id = tree.insert(scheme.as_ref(), rep).unwrap();
        assert_eq!(tree.entry_ids(), vec![id]);
    }

    #[test]
    fn single_and_empty_edge_cases() {
        let raws = dataset(1, 32);
        let (tree, scheme) = build_sapla(&raws, 6);
        let reducer = SaplaReducer::new();
        let q = Query::new(&raws[0], &reducer, 6).unwrap();
        let stats = tree.knn(&q, 3, scheme.as_ref(), &raws).unwrap();
        assert_eq!(stats.retrieved, vec![0]);
        let empty = DbchTree::build(scheme.as_ref(), vec![], 2, 5).unwrap();
        assert!(empty.is_empty());
        let stats = empty.knn(&q, 3, scheme.as_ref(), &[]).unwrap();
        assert!(stats.retrieved.is_empty());
    }
}
